#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "synth/relation_task.h"

namespace snorkel {
namespace {

PipelineOptions FastOptions() {
  PipelineOptions options;
  options.gen.epochs = 150;
  options.disc.epochs = 10;
  options.num_threads = 2;
  return options;
}

TEST(PipelineTest, CdrEndToEndReproducesTable3Shape) {
  auto task = MakeCdrTask(42, 0.25);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  auto report = RunRelationPipeline(*task, FastOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Shape claims of Table 3 (not absolute numbers):
  // 1. The generative model is far more precise than raw distant
  //    supervision.
  EXPECT_GT(report->gen_test.Precision(), report->ds_test.Precision() + 0.1);
  // 2. The discriminative model generalizes beyond the LFs (Example 2.5):
  //    high recall, and overall at least on par with the generative stage.
  EXPECT_GT(report->disc_test.Recall(), 0.6);
  EXPECT_GT(report->disc_test.F1(), report->gen_test.F1() - 0.20);
  // 3. Snorkel (Disc.) beats the distant-supervision baseline on F1.
  EXPECT_GT(report->disc_test.F1(), report->ds_test.F1());
  // 4. Snorkel approaches hand supervision. The gap is wider here than the
  //    paper's ~2 F1 because the synthetic hand baseline trains on a large
  //    near-deterministic gold set; see EXPERIMENTS.md.
  EXPECT_GT(report->disc_test.F1(), report->hand_test.F1() - 0.25);
}

TEST(PipelineTest, GenerativeLabelsBeatUnweightedAverage) {
  // Table 5's premise: the generative model's probabilistic labels are
  // higher quality (lower Brier vs gold) than the unweighted LF average.
  auto task = MakeCdrTask(43, 0.25);
  ASSERT_TRUE(task.ok());
  auto report = RunRelationPipeline(*task, FastOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->gen_label_brier, report->unweighted_label_brier);
}

TEST(PipelineTest, LfSubsetRestrictsMatrix) {
  auto task = MakeSpousesTask(44, 0.2);
  ASSERT_TRUE(task.ok());
  PipelineOptions options = FastOptions();
  // A subset with positive and negative LFs so votes overlap and conflict
  // (with zero overlap, source accuracies are unidentifiable from Λ and the
  // pipeline reports FailedPrecondition — see the test below).
  options.lf_subset = {0, 1, 2, 5, 6, 8, 9};
  options.run_hand_baseline = false;
  options.run_ds_baseline = false;
  options.run_unweighted_baseline = false;
  auto report = RunRelationPipeline(*task, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->gen_accuracies.size(), 7u);
}

TEST(PipelineTest, LfSubsetValidated) {
  auto task = MakeSpousesTask(45, 0.1);
  ASSERT_TRUE(task.ok());
  PipelineOptions options = FastOptions();
  options.lf_subset = {999};
  EXPECT_FALSE(RunRelationPipeline(*task, options).ok());
}

TEST(PipelineTest, OptimizerPathRuns) {
  auto task = MakeSpousesTask(46, 0.15);
  ASSERT_TRUE(task.ok());
  PipelineOptions options = FastOptions();
  options.use_optimizer = true;
  options.optimizer.eta = 0.1;
  options.optimizer.structure.epochs = 15;
  options.optimizer.structure.sweep_epochs = 8;
  options.optimizer.structure.max_rows = 2000;
  options.run_hand_baseline = false;
  auto report = RunRelationPipeline(*task, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The decision is populated either way.
  EXPECT_GE(report->decision.predicted_advantage, 0.0);
}

TEST(PipelineTest, ClassBalanceEstimatedFromDev) {
  auto task = MakeChemTask(47, 0.15);
  ASSERT_TRUE(task.ok());
  auto report = RunRelationPipeline(*task, FastOptions());
  ASSERT_TRUE(report.ok());
  // Chem is ~4% positive; the dev estimate should reflect that.
  EXPECT_LT(report->class_balance, 0.15);
  EXPECT_GT(report->class_balance, 0.01);
}

}  // namespace
}  // namespace snorkel
