#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace snorkel {
namespace {

TEST(BinaryConfusionTest, HandComputedCounts) {
  // preds: +1 +1 -1 -1 0   gold: +1 -1 +1 -1 +1
  BinaryConfusion c = ComputeBinaryConfusion({1, 1, -1, -1, 0},
                                             {1, -1, 1, -1, 1});
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 2);  // Abstain on a positive counts as a miss.
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 5);
}

TEST(BinaryConfusionTest, DerivedScores) {
  BinaryConfusion c{.tp = 8, .fp = 2, .tn = 5, .fn = 4};
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_NEAR(c.Recall(), 8.0 / 12.0, 1e-12);
  double p = 0.8;
  double r = 8.0 / 12.0;
  EXPECT_NEAR(c.F1(), 2 * p * r / (p + r), 1e-12);
  EXPECT_NEAR(c.Accuracy(), 13.0 / 19.0, 1e-12);
}

TEST(BinaryConfusionTest, DegenerateScoresAreZero) {
  BinaryConfusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
}

TEST(BinaryConfusionTest, ToStringMentionsCounts) {
  BinaryConfusion c{.tp = 1, .fp = 2, .tn = 3, .fn = 4};
  std::string s = c.ToString();
  EXPECT_NE(s.find("tp=1"), std::string::npos);
  EXPECT_NE(s.find("fn=4"), std::string::npos);
}

TEST(ScoreProbabilisticTest, ThresholdsAtHalfByDefault) {
  BinaryConfusion c = ScoreProbabilistic({0.9, 0.4, 0.6, 0.1},
                                         {1, 1, -1, -1});
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(ScoreProbabilisticTest, CustomThreshold) {
  BinaryConfusion strict = ScoreProbabilistic({0.9, 0.7}, {1, -1}, 0.8);
  EXPECT_EQ(strict.tp, 1);
  EXPECT_EQ(strict.tn, 1);
}

TEST(RocAucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, -1, -1}), 1.0);
}

TEST(RocAucTest, ReversedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {1, 1, -1, -1}), 0.0);
}

TEST(RocAucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {1, 1, -1, -1}), 0.5);
}

TEST(RocAucTest, SingleClassGivesHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.3, 0.7}, {1, 1}), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // Pairs (pos, neg): (0.8 vs 0.3)=1, (0.8 vs 0.6)=1, (0.4 vs 0.3)=1,
  // (0.4 vs 0.6)=0 -> AUC = 3/4.
  EXPECT_DOUBLE_EQ(RocAuc({0.8, 0.4, 0.3, 0.6}, {1, 1, -1, -1}), 0.75);
}

TEST(RocAucTest, TieBetweenClassesCountsHalf) {
  // (0.5 vs 0.5) = 0.5, so AUC = 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5}, {1, -1}), 0.5);
}

TEST(MulticlassAccuracyTest, CountsExactMatches) {
  EXPECT_DOUBLE_EQ(MulticlassAccuracy({1, 2, 3, 1}, {1, 2, 1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(MulticlassAccuracy({}, {}), 0.0);
}

TEST(ConfusionMatrixTest, PlacesCountsAtGoldRowPredCol) {
  auto m = ConfusionMatrix({1, 2, 2, 3}, {1, 1, 2, 3}, 3);
  EXPECT_EQ(m[0][0], 1);  // gold 1 pred 1.
  EXPECT_EQ(m[0][1], 1);  // gold 1 pred 2.
  EXPECT_EQ(m[1][1], 1);  // gold 2 pred 2.
  EXPECT_EQ(m[2][2], 1);  // gold 3 pred 3.
  EXPECT_EQ(m[1][0], 0);
}

TEST(ConfusionMatrixTest, IgnoresOutOfRangeLabels) {
  auto m = ConfusionMatrix({0, 5, 1}, {1, 1, 1}, 3);
  EXPECT_EQ(m[0][0], 1);  // Only the in-range pair counted.
}

TEST(ErrorBucketsTest, PartitionCoversAllIndices) {
  auto buckets = BucketErrors({1, 1, -1, 0}, {1, -1, -1, 1});
  EXPECT_EQ(buckets.true_positives, std::vector<size_t>{0});
  EXPECT_EQ(buckets.false_positives, std::vector<size_t>{1});
  EXPECT_EQ(buckets.true_negatives, std::vector<size_t>{2});
  EXPECT_EQ(buckets.false_negatives, std::vector<size_t>{3});
  size_t total = buckets.true_positives.size() + buckets.false_positives.size() +
                 buckets.true_negatives.size() + buckets.false_negatives.size();
  EXPECT_EQ(total, 4u);
}

TEST(ErrorBucketsTest, BucketsConsistentWithConfusion) {
  std::vector<Label> preds = {1, -1, 1, -1, 0, 1};
  std::vector<Label> gold = {1, 1, -1, -1, 1, 1};
  auto buckets = BucketErrors(preds, gold);
  auto confusion = ComputeBinaryConfusion(preds, gold);
  EXPECT_EQ(static_cast<int64_t>(buckets.true_positives.size()), confusion.tp);
  EXPECT_EQ(static_cast<int64_t>(buckets.false_positives.size()), confusion.fp);
  EXPECT_EQ(static_cast<int64_t>(buckets.true_negatives.size()), confusion.tn);
  EXPECT_EQ(static_cast<int64_t>(buckets.false_negatives.size()), confusion.fn);
}

}  // namespace
}  // namespace snorkel
