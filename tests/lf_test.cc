#include <gtest/gtest.h>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "lf/labeling_function.h"

namespace snorkel {
namespace {

/// Corpus with two sentences:
///   doc0/s0: "magnesium causes severe quadriplegia in patients"
///   doc0/s1: "aspirin treats mild headache quickly"
struct Fixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  Fixture() {
    Document doc;
    Sentence s0;
    s0.words = {"magnesium", "causes", "severe", "quadriplegia", "in",
                "patients"};
    s0.mentions = {Mention{0, 1, "chemical", "C_mg"},
                   Mention{3, 4, "disease", "D_quad"}};
    Sentence s1;
    s1.words = {"aspirin", "treats", "mild", "headache", "quickly"};
    s1.mentions = {Mention{0, 1, "chemical", "C_asp"},
                   Mention{3, 4, "disease", "D_ha"}};
    doc.sentences = {s0, s1};
    corpus.AddDocument(std::move(doc));
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  CandidateView View(size_t i) const {
    return CandidateView(&corpus, &candidates[i], i);
  }
};

TEST(LabelingFunctionTest, WrapsArbitraryCallable) {
  LabelingFunction lf("lf_len", [](const CandidateView& view) -> Label {
    return view.TokenDistance() >= 2 ? 1 : kAbstain;
  });
  Fixture fx;
  EXPECT_EQ(lf.name(), "lf_len");
  EXPECT_EQ(lf.Apply(fx.View(0)), 1);
}

TEST(LabelingFunctionSetTest, AddAndNames) {
  LabelingFunctionSet set;
  EXPECT_TRUE(set.empty());
  size_t idx = set.Add(LabelingFunction(
      "a", [](const CandidateView&) -> Label { return 1; }));
  EXPECT_EQ(idx, 0u);
  set.AddAll({LabelingFunction("b", [](const CandidateView&) -> Label {
                return kAbstain;
              }),
              LabelingFunction("c", [](const CandidateView&) -> Label {
                return -1;
              })});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.Names(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DeclarativeTest, KeywordBetweenMatchesStemmedForms) {
  Fixture fx;
  auto lf = MakeKeywordBetweenLF("lf_causes", {"cause"}, 1);
  EXPECT_EQ(lf.Apply(fx.View(0)), 1);        // "causes" stems to "cause".
  EXPECT_EQ(lf.Apply(fx.View(1)), kAbstain);  // "treats" does not.
}

TEST(DeclarativeTest, KeywordBetweenExactModeIsStricter) {
  Fixture fx;
  auto lf = MakeKeywordBetweenLF("lf_exact", {"cause"}, 1, /*stem=*/false);
  EXPECT_EQ(lf.Apply(fx.View(0)), kAbstain);  // "causes" != "cause".
}

TEST(DeclarativeTest, DirectionalKeywordUsesSpanOrder) {
  Fixture fx;
  auto lf = MakeDirectionalKeywordLF("lf_dir", {"cause"}, 1, -1);
  EXPECT_EQ(lf.Apply(fx.View(0)), 1);  // Chemical precedes disease.

  // Build a reversed-order candidate: disease first.
  Corpus corpus;
  Document doc;
  Sentence s;
  s.words = {"quadriplegia", "caused", "by", "magnesium"};
  s.mentions = {Mention{0, 1, "disease", "D_quad"},
                Mention{3, 4, "chemical", "C_mg"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);
  CandidateView view(&corpus, &candidates[0], 0);
  EXPECT_EQ(lf.Apply(view), -1);  // span1 (chemical) is second.
}

TEST(DeclarativeTest, RegexBetween) {
  Fixture fx;
  auto lf = MakeRegexBetweenLF("lf_regex", "caus\\w+\\s+severe", 1);
  EXPECT_EQ(lf.Apply(fx.View(0)), 1);
  EXPECT_EQ(lf.Apply(fx.View(1)), kAbstain);
}

TEST(DeclarativeTest, ContextKeywordLooksOutsideSpans) {
  Fixture fx;
  auto lf = MakeContextKeywordLF("lf_ctx", {"patients"}, 3, -1);
  EXPECT_EQ(lf.Apply(fx.View(0)), -1);        // "patients" right of disease.
  EXPECT_EQ(lf.Apply(fx.View(1)), kAbstain);
}

TEST(DeclarativeTest, DistanceLF) {
  Fixture fx;
  auto lf = MakeDistanceLF("lf_far", 1, -1);
  EXPECT_EQ(lf.Apply(fx.View(0)), -1);  // Distance 2 > 1.
  auto lenient = MakeDistanceLF("lf_far2", 5, -1);
  EXPECT_EQ(lenient.Apply(fx.View(0)), kAbstain);
}

TEST(DeclarativeTest, OntologyLFDistantSupervision) {
  Fixture fx;
  KnowledgeBase kb;
  kb.Add("Causes", "C_mg", "D_quad");
  kb.Add("Treats", "C_asp", "D_ha");
  auto causes = MakeOntologyLF("lf_kb_causes", &kb, "Causes", 1);
  auto treats = MakeOntologyLF("lf_kb_treats", &kb, "Treats", -1);
  EXPECT_EQ(causes.Apply(fx.View(0)), 1);
  EXPECT_EQ(causes.Apply(fx.View(1)), kAbstain);
  EXPECT_EQ(treats.Apply(fx.View(0)), kAbstain);
  EXPECT_EQ(treats.Apply(fx.View(1)), -1);
}

TEST(DeclarativeTest, OntologyLFSymmetricMode) {
  Fixture fx;
  KnowledgeBase kb;
  kb.Add("Causes", "D_quad", "C_mg");  // Reversed direction only.
  auto strict = MakeOntologyLF("lf_strict", &kb, "Causes", 1);
  auto symmetric = MakeOntologyLF("lf_sym", &kb, "Causes", 1, true);
  EXPECT_EQ(strict.Apply(fx.View(0)), kAbstain);
  EXPECT_EQ(symmetric.Apply(fx.View(0)), 1);
}

TEST(DeclarativeTest, OntologyGeneratorOneLfPerSubset) {
  KnowledgeBase kb;
  kb.Add("Causes", "a", "b");
  kb.Add("Treats", "c", "d");
  auto lfs = MakeOntologyLFs("ctd", &kb, {{"Causes", 1}, {"Treats", -1}});
  ASSERT_EQ(lfs.size(), 2u);
  EXPECT_EQ(lfs[0].name(), "ctd_Causes");
  EXPECT_EQ(lfs[1].name(), "ctd_Treats");
}

TEST(DeclarativeTest, WeakClassifierThresholds) {
  Fixture fx;
  auto high = MakeWeakClassifierLF(
      "lf_clf_hi", [](const CandidateView&) { return 0.9; });
  auto low = MakeWeakClassifierLF(
      "lf_clf_lo", [](const CandidateView&) { return 0.1; });
  auto mid = MakeWeakClassifierLF(
      "lf_clf_mid", [](const CandidateView&) { return 0.5; });
  EXPECT_EQ(high.Apply(fx.View(0)), 1);
  EXPECT_EQ(low.Apply(fx.View(0)), -1);
  EXPECT_EQ(mid.Apply(fx.View(0)), kAbstain);
}

TEST(DeclarativeTest, CrowdWorkerReplaysVotes) {
  Fixture fx;
  auto lf = MakeCrowdWorkerLF("worker_0", {{0, 1}, {5, -1}});
  EXPECT_EQ(lf.Apply(fx.View(0)), 1);
  EXPECT_EQ(lf.Apply(fx.View(1)), kAbstain);  // Index 1 not voted.
}

TEST(DeclarativeTest, CrowdGeneratorOneLfPerWorker) {
  auto lfs = MakeCrowdWorkerLFs("w", {{{0, 1}}, {{0, -1}}, {}});
  ASSERT_EQ(lfs.size(), 3u);
  EXPECT_EQ(lfs[2].name(), "w_2");
}

TEST(DeclarativeTest, GuardedLF) {
  Fixture fx;
  auto base = MakeKeywordBetweenLF("base", {"cause", "treat"}, 1);
  auto guarded = MakeGuardedLF("guarded", base, [](const CandidateView& v) {
    return v.Span1Text() == "magnesium";
  });
  EXPECT_EQ(guarded.Apply(fx.View(0)), 1);
  EXPECT_EQ(guarded.Apply(fx.View(1)), kAbstain);  // Guard blocks aspirin.
}

TEST(DeclarativeTest, FirstVoteLF) {
  Fixture fx;
  auto first = MakeFirstVoteLF(
      "first",
      {MakeKeywordBetweenLF("a", {"nonexistent"}, 1),
       MakeKeywordBetweenLF("b", {"treat"}, -1),
       MakeKeywordBetweenLF("c", {"treat"}, 1)});
  EXPECT_EQ(first.Apply(fx.View(1)), -1);  // b wins over c.
  EXPECT_EQ(first.Apply(fx.View(0)), kAbstain);
}

TEST(DeclarativeTest, FingerprintTracksFactoryParameters) {
  // Same name, same factory: identical parameters ⇒ identical fingerprint;
  // ANY parameter change ⇒ new fingerprint (so the serve-layer column cache
  // and snapshot checks observe declarative edits without a version bump).
  auto base = MakeKeywordBetweenLF("lf", {"cause"}, 1);
  EXPECT_EQ(base.fingerprint(),
            MakeKeywordBetweenLF("lf", {"cause"}, 1).fingerprint());
  EXPECT_NE(base.fingerprint(),
            MakeKeywordBetweenLF("lf", {"cause", "induce"}, 1).fingerprint());
  EXPECT_NE(base.fingerprint(),
            MakeKeywordBetweenLF("lf", {"cause"}, -1).fingerprint());
  EXPECT_NE(base.fingerprint(),
            MakeKeywordBetweenLF("lf", {"cause"}, 1, false).fingerprint());
  EXPECT_NE(base.fingerprint(), MakeDistanceLF("lf", 1, 1).fingerprint());

  // Combinators fold the wrapped LF's fingerprint in.
  auto guard = [](const CandidateView&) { return true; };
  EXPECT_NE(
      MakeGuardedLF("g", MakeKeywordBetweenLF("lf", {"cause"}, 1), guard)
          .fingerprint(),
      MakeGuardedLF("g", MakeKeywordBetweenLF("lf", {"treat"}, 1), guard)
          .fingerprint());

  // The explicit-version constructor distinguishes opaque callables.
  auto fn = [](const CandidateView&) -> Label { return 1; };
  EXPECT_NE(LabelingFunction("lf", "v1", fn).fingerprint(),
            LabelingFunction("lf", "v2", fn).fingerprint());
}

// ----------------------------------------------------------------- Applier --

TEST(LFApplierTest, BuildsLabelMatrix) {
  Fixture fx;
  KnowledgeBase kb;
  kb.Add("Causes", "C_mg", "D_quad");
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
  lfs.Add(MakeOntologyLF("lf_kb", &kb, "Causes", 1));

  LFApplier applier;
  auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  EXPECT_EQ(matrix->num_rows(), 2u);
  EXPECT_EQ(matrix->num_lfs(), 3u);
  EXPECT_EQ(matrix->At(0, 0), 1);
  EXPECT_EQ(matrix->At(0, 1), kAbstain);
  EXPECT_EQ(matrix->At(0, 2), 1);
  EXPECT_EQ(matrix->At(1, 0), kAbstain);
  EXPECT_EQ(matrix->At(1, 1), -1);
  EXPECT_EQ(matrix->At(1, 2), kAbstain);
}

TEST(LFApplierTest, SerialAndParallelAgree) {
  // Build a larger candidate set by repeating documents.
  Corpus corpus;
  for (int d = 0; d < 100; ++d) {
    Document doc;
    Sentence s;
    s.words = {"magnesium", "causes", "quadriplegia"};
    s.mentions = {Mention{0, 1, "chemical", "C_mg"},
                  Mention{2, 3, "disease", "D_quad"}};
    doc.sentences = {s};
    corpus.AddDocument(std::move(doc));
  }
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 100u);
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));

  LFApplier serial(LFApplier::Options{.num_threads = 1, .cardinality = 2});
  LFApplier parallel(LFApplier::Options{.num_threads = 4, .cardinality = 2});
  auto a = serial.Apply(lfs, corpus, candidates);
  auto b = parallel.Apply(lfs, corpus, candidates);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a->At(i, 0), b->At(i, 0));
}

TEST(LFApplierTest, BuggyLfSurfacesError) {
  Fixture fx;
  LabelingFunctionSet lfs;
  lfs.Add(LabelingFunction(
      "lf_buggy", [](const CandidateView&) -> Label { return 7; }));
  LFApplier applier;
  auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
  EXPECT_FALSE(matrix.ok());
  EXPECT_EQ(matrix.status().code(), StatusCode::kInvalidArgument);
}

// Regression: an out-of-range vote must surface as InvalidArgument — never a
// corrupted Λ — on both the serial and the sharded multi-threaded path (the
// candidate set is large enough that the threaded applier actually shards).
TEST(LFApplierTest, OutOfRangeVoteErrorsUnderSerialAndParallel) {
  Corpus corpus;
  for (int d = 0; d < 256; ++d) {
    Document doc;
    Sentence s;
    s.words = {"magnesium", "causes", "quadriplegia"};
    s.mentions = {Mention{0, 1, "chemical", "C_mg"},
                  Mention{2, 3, "disease", "D_quad"}};
    doc.sentences = {s};
    corpus.AddDocument(std::move(doc));
  }
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 256u);

  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("lf_good", {"cause"}, 1));
  // Votes out of range on exactly one candidate, deep in the range.
  lfs.Add(LabelingFunction("lf_buggy", [](const CandidateView& view) -> Label {
    return view.index() == 200 ? 9 : kAbstain;
  }));

  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    LFApplier applier(LFApplier::Options{.num_threads = num_threads,
                                         .cardinality = 2});
    auto matrix = applier.Apply(lfs, corpus, candidates);
    ASSERT_FALSE(matrix.ok()) << "num_threads=" << num_threads;
    EXPECT_EQ(matrix.status().code(), StatusCode::kInvalidArgument)
        << "num_threads=" << num_threads;
    // The shared validity check runs inside the applier, so the error names
    // the offending LF instead of an anonymous matrix-construction failure.
    EXPECT_NE(matrix.status().message().find("lf_buggy"), std::string::npos)
        << matrix.status().ToString();
  }
}

TEST(LFApplierTest, EmptyCandidatesYieldEmptyMatrix) {
  Fixture fx;
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("lf", {"x"}, 1));
  LFApplier applier;
  auto matrix = applier.Apply(lfs, fx.corpus, {});
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_rows(), 0u);
  EXPECT_EQ(matrix->num_lfs(), 1u);
}

TEST(LFApplierTest, MulticlassCardinalityRespected) {
  Fixture fx;
  LabelingFunctionSet lfs;
  lfs.Add(LabelingFunction(
      "lf_multi", [](const CandidateView&) -> Label { return 3; }));
  LFApplier applier(LFApplier::Options{.num_threads = 1, .cardinality = 5});
  auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->cardinality(), 5);
  EXPECT_EQ(matrix->At(0, 0), 3);
}

}  // namespace
}  // namespace snorkel
