#include <gtest/gtest.h>

#include "text/dictionary_tagger.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

namespace snorkel {
namespace {

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("Magnesium causes quadriplegia.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "magnesium");
  EXPECT_EQ(tokens[2], "quadriplegia");
  EXPECT_EQ(tokens[3], ".");
}

TEST(TokenizerTest, DetachesMultiplePunctuation) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("(aspirin), \"headache\"!");
  // ( aspirin ) , " headache " !
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0], "(");
  EXPECT_EQ(tokens[1], "aspirin");
  EXPECT_EQ(tokens[2], ")");
  EXPECT_EQ(tokens[3], ",");
  EXPECT_EQ(tokens[7], "!");
}

TEST(TokenizerTest, KeepsInnerHyphenAndApostrophe) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("x-ray don't");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "x-ray");
  EXPECT_EQ(tokens[1], "don't");
}

TEST(TokenizerTest, CasePreservingMode) {
  Tokenizer tokenizer(Tokenizer::Options{.lowercase = false});
  auto tokens = tokenizer.Tokenize("John married Mary");
  EXPECT_EQ(tokens[0], "John");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("   \t\n ").empty());
}

TEST(SentenceSplitterTest, SplitsOnTerminators) {
  SentenceSplitter splitter;
  auto sentences = splitter.Split(
      "Magnesium causes weakness. The patient recovered! Was it reported?");
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(sentences[0], "Magnesium causes weakness.");
  EXPECT_EQ(sentences[1], "The patient recovered!");
  EXPECT_EQ(sentences[2], "Was it reported?");
}

TEST(SentenceSplitterTest, GuardsAbbreviationsAndDecimals) {
  SentenceSplitter splitter;
  auto sentences =
      splitter.Split("Dr. Smith measured 3.5 mg. The dose was low.");
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0], "Dr. Smith measured 3.5 mg.");
}

TEST(SentenceSplitterTest, SingleSentenceWithoutTerminator) {
  SentenceSplitter splitter;
  auto sentences = splitter.Split("no terminator here");
  ASSERT_EQ(sentences.size(), 1u);
  EXPECT_EQ(sentences[0], "no terminator here");
}

TEST(StemmerTest, VerbFormsCollapse) {
  EXPECT_EQ(Stemmer::Stem("causes"), "cause");
  EXPECT_EQ(Stemmer::Stem("caused"), "cause");
  EXPECT_EQ(Stemmer::Stem("causing"), "cause");
  EXPECT_EQ(Stemmer::Stem("cause"), "cause");
}

TEST(StemmerTest, PluralForms) {
  EXPECT_EQ(Stemmer::Stem("diseases"), "disease");
  EXPECT_EQ(Stemmer::Stem("studies"), "study");
  EXPECT_EQ(Stemmer::Stem("classes"), "class");  // sses -> ss rule.
}

TEST(StemmerTest, DoubleConsonantUndoubling) {
  EXPECT_EQ(Stemmer::Stem("stopped"), "stop");
  EXPECT_EQ(Stemmer::Stem("stopping"), "stop");
}

TEST(StemmerTest, ShortWordsUntouched) {
  EXPECT_EQ(Stemmer::Stem("is"), "is");
  EXPECT_EQ(Stemmer::Stem("was"), "was");
  EXPECT_EQ(Stemmer::Stem("gas"), "gas");
}

TEST(StemmerTest, InducedAndInduces) {
  EXPECT_EQ(Stemmer::Stem("induces"), Stemmer::Stem("induced"));
}

TEST(DictionaryTaggerTest, TagsSingleWordEntities) {
  DictionaryTagger tagger;
  tagger.AddEntry("magnesium", "chemical", "C_mg");
  Sentence s;
  s.words = {"patient", "took", "magnesium", "daily"};
  tagger.TagSentence(&s);
  ASSERT_EQ(s.mentions.size(), 1u);
  EXPECT_EQ(s.mentions[0].word_start, 2u);
  EXPECT_EQ(s.mentions[0].word_end, 3u);
  EXPECT_EQ(s.mentions[0].entity_type, "chemical");
  EXPECT_EQ(s.mentions[0].canonical_id, "C_mg");
}

TEST(DictionaryTaggerTest, LongestMatchWins) {
  DictionaryTagger tagger;
  tagger.AddEntry("myasthenia", "disease", "D_short");
  tagger.AddEntry("myasthenia gravis", "disease", "D_long");
  Sentence s;
  s.words = {"diagnosed", "with", "myasthenia", "gravis", "today"};
  tagger.TagSentence(&s);
  ASSERT_EQ(s.mentions.size(), 1u);
  EXPECT_EQ(s.mentions[0].canonical_id, "D_long");
  EXPECT_EQ(s.mentions[0].word_end, 4u);
}

TEST(DictionaryTaggerTest, CaseInsensitiveMatching) {
  DictionaryTagger tagger;
  tagger.AddEntry("Aspirin", "chemical", "C_asp");
  Sentence s;
  s.words = {"ASPIRIN", "helps"};
  tagger.TagSentence(&s);
  ASSERT_EQ(s.mentions.size(), 1u);
}

TEST(DictionaryTaggerTest, PreservesExistingMentions) {
  DictionaryTagger tagger;
  tagger.AddEntry("magnesium", "chemical", "C_mg");
  Sentence s;
  s.words = {"magnesium", "level"};
  s.mentions = {Mention{0, 1, "custom", "X"}};
  tagger.TagSentence(&s);
  ASSERT_EQ(s.mentions.size(), 1u);  // No double tag over covered words.
  EXPECT_EQ(s.mentions[0].entity_type, "custom");
}

TEST(DictionaryTaggerTest, MentionsSortedByPosition) {
  DictionaryTagger tagger;
  tagger.AddEntry("aspirin", "chemical", "C_asp");
  tagger.AddEntry("headache", "disease", "D_ha");
  Sentence s;
  s.words = {"headache", "treated", "with", "aspirin"};
  tagger.TagSentence(&s);
  ASSERT_EQ(s.mentions.size(), 2u);
  EXPECT_LT(s.mentions[0].word_start, s.mentions[1].word_start);
}

TEST(DictionaryTaggerTest, TagCorpusTouchesAllSentences) {
  DictionaryTagger tagger;
  tagger.AddEntry("aspirin", "chemical", "C_asp");
  Corpus corpus;
  Document doc;
  Sentence s1;
  s1.words = {"aspirin", "works"};
  Sentence s2;
  s2.words = {"more", "aspirin"};
  doc.sentences = {s1, s2};
  corpus.AddDocument(std::move(doc));
  tagger.TagCorpus(&corpus);
  EXPECT_EQ(corpus.NumMentions(), 2u);
}

}  // namespace
}  // namespace snorkel
