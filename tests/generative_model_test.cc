#include "core/generative_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/majority_vote.h"
#include "eval/metrics.h"
#include "synth/synthetic_matrix.h"
#include "util/math_util.h"

namespace snorkel {
namespace {

TEST(GenerativeModelTest, RejectsEmptyMatrix) {
  auto m = LabelMatrix::FromDense({});
  ASSERT_TRUE(m.ok());
  GenerativeModel model;
  EXPECT_FALSE(model.Fit(*m).ok());
}

TEST(GenerativeModelTest, RejectsMulticlassMatrix) {
  auto m = LabelMatrix::FromDense({{1, 3}}, 3);
  ASSERT_TRUE(m.ok());
  GenerativeModel model;
  Status s = model.Fit(*m);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GenerativeModelTest, RejectsBadCorrelationPairs) {
  auto data = SyntheticMatrixGenerator::GenerateIid(100, 4, 0.8, 0.5, 1);
  ASSERT_TRUE(data.ok());
  GenerativeModel model;
  EXPECT_FALSE(model.Fit(data->matrix, {{1, 1}}).ok());
  EXPECT_FALSE(model.Fit(data->matrix, {{0, 9}}).ok());
}

TEST(GenerativeModelTest, NormalizesAndDeduplicatesCorrelations) {
  auto data = SyntheticMatrixGenerator::GenerateIid(200, 4, 0.8, 0.5, 2);
  ASSERT_TRUE(data.ok());
  GenerativeModelOptions options;
  options.epochs = 10;
  GenerativeModel model(options);
  ASSERT_TRUE(model.Fit(data->matrix, {{2, 0}, {0, 2}, {1, 3}}).ok());
  ASSERT_EQ(model.correlations().size(), 2u);
  EXPECT_EQ(model.correlations()[0], (CorrelationPair{0, 2}));
  EXPECT_EQ(model.correlations()[1], (CorrelationPair{1, 3}));
}

TEST(GenerativeModelTest, RecoversHeterogeneousAccuracies) {
  // Three strong LFs (90%) and three weak ones (60%): the learned accuracy
  // estimates must rank every strong LF above every weak LF and land near
  // the true values.
  std::vector<SyntheticLfSpec> lfs;
  for (int j = 0; j < 3; ++j) lfs.push_back({0.9, 0.5, -1, 1.0});
  for (int j = 0; j < 3; ++j) lfs.push_back({0.6, 0.5, -1, 1.0});
  auto data = SyntheticMatrixGenerator::Generate({6000, 0.5, 3}, lfs);
  ASSERT_TRUE(data.ok());

  GenerativeModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  auto acc = model.EstimatedAccuracies();
  for (int strong = 0; strong < 3; ++strong) {
    EXPECT_NEAR(acc[strong], 0.9, 0.07);
    for (int weak = 3; weak < 6; ++weak) {
      EXPECT_GT(acc[strong], acc[weak]);
    }
  }
  for (int weak = 3; weak < 6; ++weak) EXPECT_NEAR(acc[weak], 0.6, 0.07);
}

TEST(GenerativeModelTest, RecoversPropensityThroughCoverage) {
  // With learn_propensity the model's implied coverage
  // P(Λ_j != ∅) = (e^wl + e^{wl+wa}) / z_j should match the data.
  auto data = SyntheticMatrixGenerator::GenerateIid(5000, 5, 0.8, 0.3, 4);
  ASSERT_TRUE(data.ok());
  GenerativeModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  for (size_t j = 0; j < 5; ++j) {
    double wl = model.propensity_weights()[j];
    double wa = model.accuracy_weights()[j];
    double z = 1.0 + std::exp(wl) + std::exp(wl + wa);
    double implied_coverage = (std::exp(wl) + std::exp(wl + wa)) / z;
    EXPECT_NEAR(implied_coverage, data->matrix.Coverage(j), 0.03);
  }
}

TEST(GenerativeModelTest, PredictionsBeatMajorityVoteWithSkewedAccuracies) {
  // One excellent LF among mediocre ones: weighting should beat MV accuracy
  // on conflict rows (the Example 1.1 situation).
  std::vector<SyntheticLfSpec> lfs = {
      {0.95, 0.8, -1, 1.0}, {0.55, 0.8, -1, 1.0}, {0.55, 0.8, -1, 1.0}};
  auto data = SyntheticMatrixGenerator::Generate({5000, 0.5, 5}, lfs);
  ASSERT_TRUE(data.ok());

  GenerativeModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  auto gm_conf = ComputeBinaryConfusion(model.PredictLabels(data->matrix),
                                        data->gold);
  auto mv_conf = ComputeBinaryConfusion(MajorityVotePredictions(data->matrix),
                                        data->gold);
  EXPECT_GT(gm_conf.Accuracy(), mv_conf.Accuracy() + 0.02);
}

TEST(GenerativeModelTest, PredictProbaMatchesSigmoidOfWeightedVote) {
  auto data = SyntheticMatrixGenerator::GenerateIid(300, 4, 0.8, 0.5, 6);
  ASSERT_TRUE(data.ok());
  GenerativeModelOptions options;
  options.epochs = 50;
  GenerativeModel model(options);
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  auto proba = model.PredictProba(data->matrix);
  for (size_t i = 0; i < 20; ++i) {
    double f = WeightedVote(data->matrix.row(i), model.accuracy_weights());
    EXPECT_NEAR(proba[i], Sigmoid(f), 1e-9);
  }
}

TEST(GenerativeModelTest, EmptyRowsGetClassBalance) {
  auto m = LabelMatrix::FromDense({{1, 1}, {0, 0}});
  ASSERT_TRUE(m.ok());
  GenerativeModelOptions options;
  options.epochs = 20;
  options.class_balance = 0.3;
  GenerativeModel model(options);
  ASSERT_TRUE(model.Fit(*m).ok());
  auto proba = model.PredictProba(*m);
  EXPECT_NEAR(proba[1], 0.3, 1e-9);
}

TEST(GenerativeModelTest, PredictLabelsThresholdsProba) {
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 5, 0.8, 0.5, 7);
  ASSERT_TRUE(data.ok());
  GenerativeModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  auto proba = model.PredictProba(data->matrix);
  auto labels = model.PredictLabels(data->matrix);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (proba[i] > 0.5) {
      EXPECT_EQ(labels[i], 1);
    } else if (proba[i] < 0.5) {
      EXPECT_EQ(labels[i], -1);
    } else {
      EXPECT_EQ(labels[i], kAbstain);
    }
  }
}

TEST(GenerativeModelTest, DeterministicGivenSeed) {
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 6, 0.75, 0.3, 8);
  ASSERT_TRUE(data.ok());
  GenerativeModelOptions options;
  options.epochs = 80;
  GenerativeModel a(options);
  GenerativeModel b(options);
  ASSERT_TRUE(a.Fit(data->matrix).ok());
  ASSERT_TRUE(b.Fit(data->matrix).ok());
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_DOUBLE_EQ(a.accuracy_weights()[j], b.accuracy_weights()[j]);
  }
}

TEST(GenerativeModelTest, BitwiseDeterministicAcrossThreadCounts) {
  // The parallel training loops use fixed shard boundaries and one RNG
  // stream per Gibbs chain, so the fitted weights must be bitwise-identical
  // for any worker-pool size at a fixed seed. Correlations are included so
  // the Gibbs negative phase (chains swept concurrently) is exercised too.
  auto data = SyntheticMatrixGenerator::GenerateIid(1500, 8, 0.75, 0.3, 21);
  ASSERT_TRUE(data.ok());
  std::vector<CorrelationPair> correlations = {{0, 1}, {2, 5}, {3, 4}};

  auto fit_with_threads = [&](int num_threads) {
    GenerativeModelOptions options;
    options.epochs = 60;
    options.num_threads = num_threads;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(data->matrix, correlations).ok());
    return model;
  };
  GenerativeModel one = fit_with_threads(1);
  GenerativeModel two = fit_with_threads(2);
  GenerativeModel eight = fit_with_threads(8);

  for (size_t j = 0; j < 8; ++j) {
    // EXPECT_EQ on doubles is exact equality — bitwise, not approximate.
    EXPECT_EQ(one.accuracy_weights()[j], two.accuracy_weights()[j]) << j;
    EXPECT_EQ(one.accuracy_weights()[j], eight.accuracy_weights()[j]) << j;
    EXPECT_EQ(one.propensity_weights()[j], two.propensity_weights()[j]) << j;
    EXPECT_EQ(one.propensity_weights()[j], eight.propensity_weights()[j]) << j;
  }
  for (size_t c = 0; c < correlations.size(); ++c) {
    EXPECT_EQ(one.correlation_weights()[c], two.correlation_weights()[c]) << c;
    EXPECT_EQ(one.correlation_weights()[c], eight.correlation_weights()[c])
        << c;
  }
  // Inference shards the same way: posteriors must match bitwise as well.
  auto p1 = one.PredictProba(data->matrix);
  auto p8 = eight.PredictProba(data->matrix);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p8[i]) << "row " << i;
  }
}

TEST(GenerativeModelTest, ThreadCountDeterminismWithWarmStart) {
  // Unbalanced class prior routes training through the Dawid-Skene EM warm
  // start, whose row loops are sharded too; the guarantee must hold there.
  auto data = SyntheticMatrixGenerator::GenerateIid(1200, 6, 0.8, 0.4, 22);
  ASSERT_TRUE(data.ok());
  auto fit_with_threads = [&](int num_threads) {
    GenerativeModelOptions options;
    options.epochs = 40;
    options.class_balance = 0.2;
    options.num_threads = num_threads;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(data->matrix).ok());
    return model;
  };
  GenerativeModel one = fit_with_threads(1);
  GenerativeModel eight = fit_with_threads(8);
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(one.accuracy_weights()[j], eight.accuracy_weights()[j]) << j;
    EXPECT_EQ(one.propensity_weights()[j], eight.propensity_weights()[j]) << j;
  }
}

TEST(GenerativeModelTest, FittingImprovesMarginalLikelihood) {
  auto data = SyntheticMatrixGenerator::GenerateIid(2000, 8, 0.85, 0.4, 9);
  ASSERT_TRUE(data.ok());
  GenerativeModelOptions barely;
  barely.epochs = 1;
  barely.em_warm_start_iters = 0;  // Cold start: genuinely underfit.
  GenerativeModel underfit(barely);
  ASSERT_TRUE(underfit.Fit(data->matrix).ok());
  GenerativeModel fit;
  ASSERT_TRUE(fit.Fit(data->matrix).ok());
  auto ll_under = underfit.LogMarginalLikelihood(data->matrix);
  auto ll_fit = fit.LogMarginalLikelihood(data->matrix);
  ASSERT_TRUE(ll_under.ok() && ll_fit.ok());
  EXPECT_GT(*ll_fit, *ll_under);
}

TEST(GenerativeModelTest, MarginalLikelihoodUnavailableWithCorrelations) {
  auto data = SyntheticMatrixGenerator::GenerateIid(200, 4, 0.8, 0.5, 10);
  ASSERT_TRUE(data.ok());
  GenerativeModelOptions options;
  options.epochs = 10;
  GenerativeModel model(options);
  ASSERT_TRUE(model.Fit(data->matrix, {{0, 1}}).ok());
  auto ll = model.LogMarginalLikelihood(data->matrix);
  EXPECT_FALSE(ll.ok());
  EXPECT_EQ(ll.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GenerativeModelTest, GibbsTrainingAgreesWithExactTraining) {
  // Ablation A1: the sampled negative phase must land near the closed-form
  // one on an independent model.
  auto data = SyntheticMatrixGenerator::GenerateIid(3000, 6, 0.8, 0.4, 11);
  ASSERT_TRUE(data.ok());
  GenerativeModel exact;
  ASSERT_TRUE(exact.Fit(data->matrix).ok());
  GenerativeModelOptions gibbs_options;
  gibbs_options.force_gibbs = true;
  gibbs_options.num_chains = 64;
  GenerativeModel gibbs(gibbs_options);
  ASSERT_TRUE(gibbs.Fit(data->matrix).ok());
  auto exact_acc = exact.EstimatedAccuracies();
  auto gibbs_acc = gibbs.EstimatedAccuracies();
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(exact_acc[j], gibbs_acc[j], 0.1) << "lf " << j;
  }
}

TEST(GenerativeModelTest, CorrelationModelingFixesExample31) {
  // Example 3.1: 5 perfectly correlated LFs at 50% accuracy plus 5
  // independent LFs at 90%. The independent model over-credits the
  // correlated block; modeling the correlations restores the ordering.
  auto data = SyntheticMatrixGenerator::GenerateExample31(
      /*num_points=*/2000, /*num_correlated=*/5, /*num_independent=*/5,
      /*corr_accuracy=*/0.5, /*indep_accuracy=*/0.9, /*seed=*/12);
  ASSERT_TRUE(data.ok());

  GenerativeModelOptions options;
  options.epochs = 400;
  GenerativeModel independent(options);
  ASSERT_TRUE(independent.Fit(data->matrix).ok());

  GenerativeModelOptions corr_options;
  corr_options.epochs = 600;
  corr_options.num_chains = 64;
  GenerativeModel correlated(corr_options);
  // All within-block pairs.
  std::vector<CorrelationPair> pairs;
  for (size_t j = 0; j < 5; ++j) {
    for (size_t k = j + 1; k < 5; ++k) pairs.push_back({j, k});
  }
  ASSERT_TRUE(correlated.Fit(data->matrix, pairs).ok());

  auto indep_acc = independent.EstimatedAccuracies();
  auto corr_acc = correlated.EstimatedAccuracies();
  double indep_block = 0.0;
  double indep_good = 0.0;
  double corr_block = 0.0;
  double corr_good = 0.0;
  for (size_t j = 0; j < 5; ++j) {
    indep_block += indep_acc[j] / 5;
    corr_block += corr_acc[j] / 5;
    indep_good += indep_acc[j + 5] / 5;
    corr_good += corr_acc[j + 5] / 5;
  }
  // Pathology: the independent model inflates the correlated block above the
  // truly accurate LFs.
  EXPECT_GT(indep_block, indep_good);
  // Fix: with correlation factors, the accurate LFs win.
  EXPECT_GT(corr_good, corr_block);

  // Downstream, predictions improve substantially.
  auto indep_conf = ComputeBinaryConfusion(
      independent.PredictLabels(data->matrix), data->gold);
  auto corr_conf = ComputeBinaryConfusion(
      correlated.PredictLabels(data->matrix), data->gold);
  EXPECT_GT(corr_conf.Accuracy(), indep_conf.Accuracy() + 0.1);
}

TEST(GenerativeModelTest, LearnedWeightsTrackTrueWeightsOrdering) {
  // Spearman-style check: estimated weights must be monotone in the true
  // accuracies for a spread of LF qualities.
  std::vector<SyntheticLfSpec> lfs;
  std::vector<double> accs = {0.55, 0.65, 0.75, 0.85, 0.95};
  for (double a : accs) lfs.push_back({a, 0.6, -1, 1.0});
  auto data = SyntheticMatrixGenerator::Generate({8000, 0.5, 13}, lfs);
  ASSERT_TRUE(data.ok());
  GenerativeModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  auto est = model.EstimatedAccuracies();
  for (size_t j = 0; j + 1 < est.size(); ++j) {
    EXPECT_LT(est[j], est[j + 1]) << "accuracy ordering violated at " << j;
  }
}

}  // namespace
}  // namespace snorkel
