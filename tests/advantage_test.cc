#include "core/advantage.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/majority_vote.h"
#include "synth/synthetic_matrix.h"
#include "util/math_util.h"

namespace snorkel {
namespace {

TEST(WeightMappingTest, AccuracyWeightRoundTrip) {
  for (double alpha : {0.55, 0.62, 0.73, 0.82, 0.95}) {
    EXPECT_NEAR(WeightToAccuracy(AccuracyToWeight(alpha)), alpha, 1e-9);
  }
}

TEST(WeightMappingTest, Footnote8Defaults) {
  // (w_min, w̄, w_max) = (0.5, 1.0, 1.5) correspond to accuracies between
  // 62% and 82% with mean 73% (paper footnote 8).
  EXPECT_NEAR(WeightToAccuracy(0.5), 0.62, 0.01);
  EXPECT_NEAR(WeightToAccuracy(1.0), 0.73, 0.01);
  EXPECT_NEAR(WeightToAccuracy(1.5), 0.82, 0.01);
}

TEST(ModelingAdvantageTest, UniformWeightsGiveZero) {
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 8, 0.75, 0.3, 1);
  ASSERT_TRUE(data.ok());
  std::vector<double> uniform(8, 1.0);
  EXPECT_DOUBLE_EQ(ModelingAdvantage(data->matrix, data->gold, uniform), 0.0);
}

TEST(ModelingAdvantageTest, CorrectDisagreementCountsPositive) {
  // Row: LF0 votes +1, LF1 votes -1; gold +1. MV ties (<= 0 margin); the
  // weighted vote resolves toward the accurate LF0.
  auto m = LabelMatrix::FromDense({{1, -1}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(ModelingAdvantage(*m, {1}, {2.0, 0.5}), 1.0);
  // With gold -1 the same disagreement is harmful... but f1 <= 0 too, so the
  // "incorrectly disagrees" branch requires f1 > 0; here it contributes 0.
  EXPECT_DOUBLE_EQ(ModelingAdvantage(*m, {-1}, {2.0, 0.5}), 0.0);
}

TEST(ModelingAdvantageTest, IncorrectDisagreementCountsNegative) {
  // MV is correct (+1 majority); bad weights flip it.
  auto m = LabelMatrix::FromDense({{1, 1, -1}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(ModelingAdvantage(*m, {1}, {0.1, 0.1, 5.0}), -1.0);
}

TEST(ModelingAdvantageTest, OptimalWeightsNeverHurtOnAverage) {
  // With true log-odds weights, A_w* should be >= 0 on a reasonable sample
  // (WMV* only diverges from MV when it helps in expectation).
  std::vector<SyntheticLfSpec> lfs;
  for (int j = 0; j < 6; ++j) {
    lfs.push_back(SyntheticLfSpec{j < 3 ? 0.9 : 0.6, 0.4, -1, 1.0});
  }
  auto data = SyntheticMatrixGenerator::Generate({4000, 0.5, 7}, lfs);
  ASSERT_TRUE(data.ok());
  double adv = ModelingAdvantage(data->matrix, data->gold, data->true_weights);
  EXPECT_GE(adv, 0.0);
}

TEST(PredictedAdvantageTest, ZeroWhenNoConflicts) {
  // A single LF can never flip MV: Φ fails for the opposing class.
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 1, 0.8, 0.5, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(PredictedAdvantage(data->matrix), 0.0);
}

TEST(PredictedAdvantageTest, TiedConflictRowContributes) {
  // One row, two conflicting votes: both classes have f1 = 0, Φ holds, and
  // σ(0) = 0.5 each, so Ã* = 1.
  auto m = LabelMatrix::FromDense({{1, -1}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(PredictedAdvantage(*m), 1.0);
}

TEST(PredictedAdvantageTest, UpperBoundsOptimalAdvantageOnSynthetic) {
  // Proposition 2: E[A* | Λ] <= Ã*(Λ). Check the empirical analog with the
  // planted optimal weights, allowing small sampling slack.
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto data = SyntheticMatrixGenerator::GenerateIid(3000, 10, 0.75, 0.1, seed);
    ASSERT_TRUE(data.ok());
    double optimal =
        ModelingAdvantage(data->matrix, data->gold, data->true_weights);
    double predicted = PredictedAdvantage(data->matrix);
    EXPECT_LE(optimal, predicted + 0.02) << "seed " << seed;
  }
}

TEST(PredictedAdvantageTest, GrowsWithConflictRate) {
  // Mid-density conflicting LFs should produce a larger bound than sparse,
  // rarely-overlapping LFs.
  auto sparse = SyntheticMatrixGenerator::GenerateIid(2000, 3, 0.75, 0.05, 21);
  auto dense = SyntheticMatrixGenerator::GenerateIid(2000, 10, 0.6, 0.5, 22);
  ASSERT_TRUE(sparse.ok() && dense.ok());
  EXPECT_LT(PredictedAdvantage(sparse->matrix),
            PredictedAdvantage(dense->matrix));
}

TEST(LowDensityBoundTest, QuadraticInDensity) {
  // Bound = d̄² ᾱ(1-ᾱ).
  EXPECT_DOUBLE_EQ(LowDensityBound(1.0, 0.75), 0.1875);
  EXPECT_DOUBLE_EQ(LowDensityBound(2.0, 0.75), 0.75);
  EXPECT_DOUBLE_EQ(LowDensityBound(0.0, 0.75), 0.0);
}

TEST(LowDensityBoundTest, BoundsEmpiricalAdvantageAtLowDensity) {
  auto data = SyntheticMatrixGenerator::GenerateIid(5000, 5, 0.75, 0.05, 31);
  ASSERT_TRUE(data.ok());
  double optimal =
      ModelingAdvantage(data->matrix, data->gold, data->true_weights);
  double bound = LowDensityBound(data->matrix.LabelDensity(), 0.75);
  EXPECT_LE(optimal, bound + 0.01);
}

TEST(HighDensityBoundTest, DecaysExponentiallyWithDensity) {
  double b1 = HighDensityBound(0.5, 0.75, 10.0);
  double b2 = HighDensityBound(0.5, 0.75, 100.0);
  EXPECT_LT(b2, b1);
  EXPECT_NEAR(b1, std::exp(-2.0 * 0.5 * 0.25 * 0.25 * 10.0), 1e-12);
}

TEST(HighDensityBoundTest, NoDecayAtChanceAccuracy) {
  EXPECT_DOUBLE_EQ(HighDensityBound(0.5, 0.5, 100.0), 1.0);
}

TEST(AdvantageRegimesTest, MidDensityBeatsBothExtremes) {
  // The Figure 4 shape: the optimal advantage is larger in the mid-density
  // regime than in the low- and high-density regimes.
  auto low = SyntheticMatrixGenerator::GenerateIid(4000, 3, 0.75, 0.1, 41);
  auto mid = SyntheticMatrixGenerator::GenerateIid(4000, 30, 0.75, 0.1, 42);
  auto high = SyntheticMatrixGenerator::GenerateIid(4000, 500, 0.75, 0.1, 43);
  ASSERT_TRUE(low.ok() && mid.ok() && high.ok());
  double a_low = ModelingAdvantage(low->matrix, low->gold, low->true_weights);
  double a_mid = ModelingAdvantage(mid->matrix, mid->gold, mid->true_weights);
  double a_high =
      ModelingAdvantage(high->matrix, high->gold, high->true_weights);
  EXPECT_GT(a_mid, a_low);
  EXPECT_GT(a_mid, a_high);
}

}  // namespace
}  // namespace snorkel
