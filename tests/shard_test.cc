// Tests for the sharded serving tier (src/shard/): the hash partitioner,
// the ShardRouter's bitwise equivalence with an unsharded LabelService,
// backpressure + shutdown-drain semantics, typed per-shard failure
// propagation, and mmap-vs-copy snapshot loading.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "obs/trace.h"
#include "pipeline/export_snapshot.h"
#include "serve/snapshot.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"
#include "synth/crossmodal.h"

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Corpus of `n` one-sentence documents, alternating "causes" / "treats"
/// (same shape as serve_test's fixture, with per-document canonical ids so
/// every candidate has a distinct stable shard key).
struct ShardFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit ShardFixture(int num_docs = 120) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }

  ModelSnapshot MakeSnapshot(const LabelingFunctionSet& lfs) const {
    auto matrix = LFApplier().Apply(lfs, corpus, candidates);
    EXPECT_TRUE(matrix.ok());
    GenerativeModelOptions options;
    options.epochs = 60;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(*matrix).ok());
    auto snapshot =
        ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
    EXPECT_TRUE(snapshot.ok());
    return *snapshot;
  }
};

// ------------------------------------------------------------ partitioner --

TEST(PartitionerTest, PartitionCoversEveryCandidateExactlyOnce) {
  ShardFixture fx;
  for (size_t shards : {1u, 2u, 3u, 4u}) {
    CandidatePartitioner partitioner(shards);
    ShardedBatch batch = partitioner.Partition(fx.candidates);
    ASSERT_EQ(batch.num_shards(), shards);
    EXPECT_EQ(batch.total, fx.candidates.size());
    std::set<size_t> seen;
    size_t placed = 0;
    for (size_t s = 0; s < shards; ++s) {
      ASSERT_EQ(batch.shard_candidates[s].size(),
                batch.shard_to_request[s].size());
      placed += batch.shard_candidates[s].size();
      for (size_t t = 0; t < batch.shard_to_request[s].size(); ++t) {
        size_t original = batch.shard_to_request[s][t];
        EXPECT_TRUE(seen.insert(original).second)
            << "candidate " << original << " routed twice";
        // The sub-batch row really is that candidate.
        EXPECT_EQ(CandidateShardKey(batch.shard_candidates[s][t]),
                  CandidateShardKey(fx.candidates[original]));
      }
    }
    EXPECT_EQ(placed, fx.candidates.size());
  }
}

TEST(PartitionerTest, PlacementIsContentStableAcrossBatchCompositions) {
  ShardFixture fx;
  CandidatePartitioner partitioner(4);
  // Shard assignment must be a pure function of the candidate — slicing the
  // request differently cannot move a candidate to another shard.
  std::vector<Candidate> half(fx.candidates.begin(),
                              fx.candidates.begin() + fx.candidates.size() / 2);
  for (const Candidate& c : half) {
    EXPECT_EQ(partitioner.ShardOf(c), CandidateShardKey(c) % 4);
  }
  ShardedBatch full = partitioner.Partition(fx.candidates);
  ShardedBatch sub = partitioner.Partition(half);
  for (size_t s = 0; s < 4; ++s) {
    for (size_t t = 0; t < sub.shard_to_request[s].size(); ++t) {
      EXPECT_EQ(partitioner.ShardOf(sub.shard_candidates[s][t]), s);
    }
  }
  // With >=2 shards and this many distinct candidates, traffic must spread.
  size_t nonempty = 0;
  for (size_t s = 0; s < 4; ++s) {
    nonempty += full.shard_candidates[s].empty() ? 0 : 1;
  }
  EXPECT_GE(nonempty, 2u);
}

// ----------------------------------------------------- bitwise equivalence --

TEST(ShardRouterTest, BitwiseIdenticalToUnshardedService) {
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);

  // Ground truth: ONE unsharded service answering the whole request.
  auto unsharded = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  request.include_votes = true;
  auto expected = unsharded->Label(request);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t shards : {2u, 3u, 4u}) {
    ShardRouter::Options options;
    options.num_shards = shards;
    auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_EQ(router->num_shards(), shards);

    auto actual = router->Label(request);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    // Posteriors must match BITWISE (exact double equality), in request
    // order.
    ASSERT_EQ(actual->posteriors.size(), expected->posteriors.size());
    for (size_t i = 0; i < expected->posteriors.size(); ++i) {
      EXPECT_EQ(actual->posteriors[i], expected->posteriors[i])
          << "posterior bits drifted at row " << i << " with " << shards
          << " shards";
    }
    EXPECT_EQ(actual->hard_labels, expected->hard_labels);

    // include_votes: the reassembled Λ matches cell for cell.
    ASSERT_EQ(actual->votes.num_rows(), expected->votes.num_rows());
    ASSERT_EQ(actual->votes.num_lfs(), expected->votes.num_lfs());
    for (size_t i = 0; i < expected->votes.num_rows(); ++i) {
      for (size_t j = 0; j < expected->votes.num_lfs(); ++j) {
        EXPECT_EQ(actual->votes.At(i, j), expected->votes.At(i, j))
            << "vote mismatch at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(ShardRouterTest, RepeatRequestsHitEveryReplicaCacheAndAggregate) {
  // The shard workers serve index-preserving ref sub-batches; the
  // concurrent column cache fingerprints them by content + index, so a
  // repeated request hits on every shard — and the per-replica cache
  // counters aggregate through RouterStats.
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);

  ShardRouter::Options options;
  options.num_shards = 2;
  auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), options);
  ASSERT_TRUE(router.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto first = router->Label(request);
  auto second = router->Label(request);
  auto third = router->Label(request);
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(second->posteriors, first->posteriors);
  EXPECT_EQ(third->posteriors, first->posteriors);

  RouterStats stats = router->stats();
  // The router reports WHICH artifact the whole tier serves: every replica
  // was created from the same snapshot, so the tier-level identity is that
  // snapshot's (version 0 outside a store) and matches each replica's.
  EXPECT_EQ(stats.snapshot_version, 0u);
  EXPECT_EQ(stats.snapshot_checksum, snapshot.CanonicalChecksum());
  for (const auto& shard : stats.per_shard) {
    EXPECT_EQ(shard.snapshot_checksum, stats.snapshot_checksum);
  }
  // Request 1 computed 3 columns per shard; requests 2 and 3 reused them.
  EXPECT_EQ(stats.lf_columns_computed, 2u * 3u);
  EXPECT_EQ(stats.lf_columns_reused, 2u * 2u * 3u);
  EXPECT_EQ(stats.cache_set_misses, 2u);
  EXPECT_EQ(stats.cache_set_hits, 2u * 2u);
  EXPECT_EQ(stats.cache_bytes, 3u * fx.candidates.size() * sizeof(Label));
  // The aggregates are exactly the per-shard sums.
  uint64_t reused = 0;
  for (const auto& shard : stats.per_shard) reused += shard.lf_columns_reused;
  EXPECT_EQ(stats.lf_columns_reused, reused);

  // Tier-wide cache invalidation reaches every replica.
  router->InvalidateCache();
  EXPECT_EQ(router->stats().cache_bytes, 0u);
  ASSERT_TRUE(router->Label(request).ok());
  EXPECT_EQ(router->stats().lf_columns_computed, 2u * 2u * 3u);
}

TEST(ShardRouterTest, ServeSpansReachRingBeforeLabelReturns) {
  // The worker closes its shard.serve span and flushes BEFORE Finish()
  // unblocks the caller, so a drain issued right after Label() returns must
  // already see every serve-side span — no "moments later" race.
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);
  ShardRouter::Options options;
  options.num_shards = 2;
  auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), options);
  ASSERT_TRUE(router.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;

  obs::SetSpanRingCapacityForTest(1024);  // Clears the ring.
  obs::SetTracingEnabled(true);
  uint64_t trace_id = obs::MintId();
  {
    obs::ScopedTraceContext ctx(obs::TraceContext{trace_id, 0});
    ASSERT_TRUE(router->Label(request).ok());
    std::vector<obs::Span> spans =
        obs::CollectSpans(trace_id, /*drain=*/true);
    size_t serve_spans = 0;
    size_t queue_waits = 0;
    for (const obs::Span& span : spans) {
      if (span.name == "shard.serve") ++serve_spans;
      if (span.name == "shard.queue_wait") ++queue_waits;
    }
    // One serve + one queue-wait span per shard touched by the request.
    EXPECT_EQ(serve_spans, 2u) << "drain after Label() missed serve spans";
    EXPECT_EQ(queue_waits, 2u);
  }
  obs::SetTracingEnabled(false);
  obs::SetSpanRingCapacityForTest(16384);
}

TEST(ShardRouterTest, FleetLatencyHistogramIsExactPerShardSum) {
  // Every replica observes model-pass latencies into a histogram with the
  // shared obs::LatencyBucketsMs bounds; RouterStats.latency must be the
  // bucket-by-bucket sum, and tier quantiles must come from that merged
  // population (not from averaging per-shard quantiles).
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);

  ShardRouter::Options options;
  options.num_shards = 3;
  auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), options);
  ASSERT_TRUE(router.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(router->Label(request).ok());

  RouterStats stats = router->stats();
  ASSERT_EQ(stats.per_shard.size(), 3u);

  // The fleet snapshot carries the shared bounds and a non-empty population.
  EXPECT_EQ(stats.latency.bounds, obs::LatencyBucketsMs());
  EXPECT_GT(stats.latency.count, 0u);

  // Sum the per-shard histograms by hand; the router's merge must agree
  // exactly — counts, per-bucket populations, sum, and max.
  obs::HistogramSnapshot manual;
  uint64_t total_passes = 0;
  for (const auto& shard : stats.per_shard) {
    EXPECT_EQ(shard.latency.bounds, obs::LatencyBucketsMs());
    EXPECT_EQ(shard.latency.count, shard.num_requests);
    total_passes += shard.latency.count;
    manual.Merge(shard.latency);
  }
  EXPECT_EQ(stats.latency.count, total_passes);
  EXPECT_EQ(stats.latency.counts, manual.counts);
  EXPECT_DOUBLE_EQ(stats.latency.sum, manual.sum);
  EXPECT_DOUBLE_EQ(stats.latency.max, manual.max);

  // Quantiles over the merged population are sane: ordered and bounded by
  // the observed extremes.
  const double p50 = stats.latency.Quantile(0.5);
  const double p99 = stats.latency.Quantile(0.99);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, stats.latency.max);

  // The legacy per-shard quantile fields are derived from the same
  // histogram the router merges.
  for (const auto& shard : stats.per_shard) {
    EXPECT_DOUBLE_EQ(shard.p50_latency_ms, shard.latency.Quantile(0.5));
    EXPECT_DOUBLE_EQ(shard.p99_latency_ms, shard.latency.Quantile(0.99));
    EXPECT_DOUBLE_EQ(shard.max_latency_ms, shard.latency.max);
  }
}

TEST(ShardRouterTest, ConcurrentCallersStayBitwiseCorrectUnderFusion) {
  ShardFixture fx(160);
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);

  // Batches of 32; expected posteriors per batch from an unsharded service.
  constexpr size_t kBatch = 32;
  std::vector<std::vector<Candidate>> batches;
  for (size_t b = 0; b < fx.candidates.size(); b += kBatch) {
    size_t e = std::min(b + kBatch, fx.candidates.size());
    batches.emplace_back(fx.candidates.begin() + b, fx.candidates.begin() + e);
  }
  auto unsharded = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(unsharded.ok());
  std::vector<std::vector<double>> expected;
  for (const auto& batch : batches) {
    LabelRequest request;
    request.corpus = &fx.corpus;
    request.candidates = &batch;
    auto response = unsharded->Label(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(response->posteriors);
  }

  // Hammer the router from 4 threads; a tiny max_fuse-friendly queue makes
  // worker-side coalescing likely. Every response must still be exact.
  ShardRouter::Options options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.max_fuse = 8;
  auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), options);
  ASSERT_TRUE(router.ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t b = static_cast<size_t>(t); b < batches.size();
             b += kThreads) {
          LabelRequest request;
          request.corpus = &fx.corpus;
          request.candidates = &batches[b];
          auto response = router->Label(request);
          if (!response.ok() || response->posteriors != expected[b]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  RouterStats stats = router->stats();
  EXPECT_EQ(stats.num_requests,
            static_cast<uint64_t>(kRounds) * batches.size());
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.rejected_requests, 0u);
  EXPECT_EQ(stats.per_shard.size(), 2u);
  // Every candidate went somewhere, and both shards saw traffic.
  uint64_t shard_candidates = 0;
  for (const auto& shard : stats.per_shard) {
    EXPECT_GT(shard.num_candidates, 0u);
    shard_candidates += shard.num_candidates;
  }
  EXPECT_EQ(shard_candidates, stats.num_candidates);
  EXPECT_GT(stats.throughput_cps, 0.0);
}

TEST(ShardRouterTest, IndexDependentLfsSeeOriginalRequestIndices) {
  // Sub-batches are fanned out as index-preserving refs, so an LF keyed on
  // CandidateView::index() — e.g. a crowd-vote LF reading stored votes by
  // row — votes identically under sharding. (A partition that renumbered
  // rows 0..n_s-1 per shard would silently corrupt such LFs' votes.)
  ShardFixture fx(96);
  LabelingFunctionSet lfs;
  lfs.Add(LabelingFunction("lf_crowd", [](const CandidateView& view) -> Label {
    return view.index() % 3 == 0 ? 1 : (view.index() % 3 == 1 ? -1 : kAbstain);
  }));
  lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);

  auto unsharded = LabelService::Create(snapshot, lfs);
  ASSERT_TRUE(unsharded.ok());
  ShardRouter::Options options;
  options.num_shards = 3;
  auto router = ShardRouter::Create(snapshot, lfs, options);
  ASSERT_TRUE(router.ok());

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  request.include_votes = true;
  auto expected = unsharded->Label(request);
  auto actual = router->Label(request);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(actual->posteriors, expected->posteriors);
  for (size_t i = 0; i < expected->votes.num_rows(); ++i) {
    EXPECT_EQ(actual->votes.At(i, 0), expected->votes.At(i, 0))
        << "index-dependent vote drifted at row " << i;
  }
}

TEST(ShardRouterTest, MoveAssignmentShutsDownTheReplacedTier) {
  ShardFixture fx(48);
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);
  auto first = ShardRouter::Create(snapshot, fx.MakeLfs(), {});
  auto second = ShardRouter::Create(snapshot, fx.MakeLfs(), {});
  ASSERT_TRUE(first.ok() && second.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  ASSERT_TRUE(first->Label(request).ok());
  // Assigning over a LIVE router must drain and join its workers first (a
  // defaulted move would destroy joinable threads → std::terminate), then
  // adopt the other tier, which keeps serving.
  *first = std::move(*second);
  auto response = first->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->posteriors.size(), fx.candidates.size());
}

TEST(ShardRouterTest, EmptyRequestYieldsEmptyResponse) {
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);
  auto router = ShardRouter::Create(snapshot, fx.MakeLfs(), {});
  ASSERT_TRUE(router.ok());
  std::vector<Candidate> none;
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &none;
  auto response = router->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->posteriors.empty());
  EXPECT_TRUE(response->hard_labels.empty());
}

// ------------------------------------------------- K-class (Crowd) tier --

/// Crowd-shaped K-class serving fixture: 5 classes, one LF per simulated
/// worker (index-dependent votes), snapshot carrying the fitted Dawid-Skene
/// model in a DAWD section.
struct KClassShardFixture {
  CrowdServingTask task;
  ModelSnapshot snapshot;

  explicit KClassShardFixture(size_t num_items = 120,
                              size_t num_workers = 10) {
    CrowdServingOptions options;
    options.num_items = num_items;
    options.num_workers = num_workers;
    auto made = MakeCrowdServingTask(options);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    task = std::move(*made);
    auto captured = TrainKClassSnapshot(task.lfs, task.corpus,
                                        task.candidates, task.cardinality);
    EXPECT_TRUE(captured.ok()) << captured.status().ToString();
    snapshot = std::move(*captured);
  }
};

TEST(KClassShardRouterTest, MergedClassPosteriorsBitwiseIdenticalToUnsharded) {
  KClassShardFixture fx;
  const size_t k = 5;

  // Ground truth twice over: ONE unsharded service, and the direct
  // DawidSkeneModel::PredictProba on the same K-class matrix.
  auto unsharded = LabelService::Create(fx.snapshot, fx.task.lfs);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  LabelRequest request;
  request.corpus = &fx.task.corpus;
  request.candidates = &fx.task.candidates;
  request.include_votes = true;
  auto expected = unsharded->Label(request);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  LFApplier applier(LFApplier::Options{0, fx.task.cardinality});
  auto matrix =
      applier.Apply(fx.task.lfs, fx.task.corpus, fx.task.candidates);
  ASSERT_TRUE(matrix.ok());
  auto model = fx.snapshot.RestoreDawidSkeneModel();
  ASSERT_TRUE(model.ok());
  auto direct = model->PredictProba(*matrix);
  ASSERT_EQ(expected->class_posteriors.size(), direct.size() * k);
  for (size_t i = 0; i < direct.size(); ++i) {
    for (size_t c = 0; c < k; ++c) {
      ASSERT_EQ(expected->class_posteriors[i * k + c], direct[i][c])
          << "service drifted from the direct model at (" << i << ", " << c
          << ")";
    }
  }

  for (size_t shards : {2u, 3u, 4u}) {
    ShardRouter::Options options;
    options.num_shards = shards;
    auto router = ShardRouter::Create(fx.snapshot, fx.task.lfs, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();

    auto actual = router->Label(request);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->cardinality, 5);
    EXPECT_TRUE(actual->posteriors.empty());

    // The merged K-vector posteriors must match BITWISE, index-preserving.
    ASSERT_EQ(actual->class_posteriors.size(),
              expected->class_posteriors.size());
    for (size_t t = 0; t < expected->class_posteriors.size(); ++t) {
      EXPECT_EQ(actual->class_posteriors[t], expected->class_posteriors[t])
          << "class-posterior bits drifted at flat index " << t << " with "
          << shards << " shards";
    }
    EXPECT_EQ(actual->hard_labels, expected->hard_labels);

    // include_votes: the reassembled K-class Λ matches cell for cell.
    ASSERT_EQ(actual->votes.num_rows(), expected->votes.num_rows());
    ASSERT_EQ(actual->votes.num_lfs(), expected->votes.num_lfs());
    for (size_t i = 0; i < expected->votes.num_rows(); ++i) {
      for (size_t j = 0; j < expected->votes.num_lfs(); ++j) {
        EXPECT_EQ(actual->votes.At(i, j), expected->votes.At(i, j))
            << "vote mismatch at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(KClassShardRouterTest, ConcurrentCallersWithFusionStayBitwise) {
  KClassShardFixture fx(160, 8);

  // Batches of 24; expected K-vectors per batch from an unsharded service.
  constexpr size_t kBatch = 24;
  std::vector<std::vector<Candidate>> batches;
  for (size_t b = 0; b < fx.task.candidates.size(); b += kBatch) {
    size_t e = std::min(b + kBatch, fx.task.candidates.size());
    batches.emplace_back(fx.task.candidates.begin() + b,
                         fx.task.candidates.begin() + e);
  }
  auto unsharded = LabelService::Create(fx.snapshot, fx.task.lfs);
  ASSERT_TRUE(unsharded.ok());
  std::vector<std::vector<double>> expected;
  for (const auto& batch : batches) {
    LabelRequest request;
    request.corpus = &fx.task.corpus;
    request.candidates = &batch;
    auto response = unsharded->Label(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(response->class_posteriors);
  }

  // Hammer the router from 4 threads with fusion-friendly settings; every
  // K-vector response must still be exact (fused passes slice at k-row
  // boundaries).
  ShardRouter::Options options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.max_fuse = 8;
  auto router = ShardRouter::Create(fx.snapshot, fx.task.lfs, options);
  ASSERT_TRUE(router.ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t b = static_cast<size_t>(t); b < batches.size();
             b += kThreads) {
          LabelRequest request;
          request.corpus = &fx.task.corpus;
          request.candidates = &batches[b];
          auto response = router->Label(request);
          if (!response.ok() ||
              response->class_posteriors != expected[b]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  RouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.num_requests,
            static_cast<uint64_t>(kRounds) * batches.size());
}

// ------------------------------------------- backpressure and shutdown --

/// Base LF set with an explicitly versioned lf_causes, so behaviour
/// variants below (slow, poisoned) can share its (name, version)
/// fingerprint and pass the replicas' snapshot validation.
LabelingFunctionSet MakeSwappableLfs(LabelingFunction::Fn causes_fn) {
  LabelingFunctionSet lfs;
  lfs.Add(LabelingFunction("lf_causes", "v1", std::move(causes_fn)));
  lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
  lfs.Add(MakeDistanceLF("lf_far", 4, -1));
  return lfs;
}

Label NormalCauses(const CandidateView& view) {
  for (const auto& w : view.WordsBetween()) {
    if (w.rfind("cause", 0) == 0) return 1;
  }
  return kAbstain;
}

/// Same fingerprint as MakeSwappableLfs(NormalCauses) but stalls per
/// sub-batch — used to fill queues deterministically enough to observe
/// rejections and shutdown draining.
LabelingFunctionSet MakeSlowLfs() {
  return MakeSwappableLfs([](const CandidateView& view) -> Label {
    if (view.index() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return NormalCauses(view);
  });
}

TEST(ShardRouterTest, FullQueueRejectsTypedWhenNotBlocking) {
  ShardFixture fx(64);
  // Snapshot trained under the normal behaviour; the slow set has identical
  // (name, version) fingerprints, so the replicas accept it.
  ModelSnapshot snapshot = fx.MakeSnapshot(MakeSwappableLfs(NormalCauses));

  ShardRouter::Options options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.workers_per_shard = 1;
  options.block_on_full = false;  // Reject policy.
  options.max_fuse = 1;           // Keep the worker busy one job at a time.
  auto router = ShardRouter::Create(snapshot, MakeSlowLfs(), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  constexpr int kCallers = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&] {
      LabelRequest request;
      request.corpus = &fx.corpus;
      request.candidates = &fx.candidates;
      auto response = router->Label(request);
      if (response.ok()) {
        ok_count.fetch_add(1);
      } else if (response.status().code() == StatusCode::kResourceExhausted) {
        rejected_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  // With a 30ms-per-job worker, capacity 1, and 8 simultaneous callers, at
  // least one must be admitted and at least one shed. Nothing may fail with
  // an unexpected code.
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(rejected_count.load(), 1);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_EQ(router->stats().rejected_requests,
            static_cast<uint64_t>(rejected_count.load()));
}

TEST(ShardRouterTest, ShutdownDrainsInFlightAndRejectsNewRequests) {
  ShardFixture fx(64);
  ModelSnapshot snapshot = fx.MakeSnapshot(MakeSwappableLfs(NormalCauses));
  ShardRouter::Options options;
  options.num_shards = 2;
  options.queue_capacity = 4;
  auto router = ShardRouter::Create(snapshot, MakeSlowLfs(), options);
  ASSERT_TRUE(router.ok());

  // Concurrent producers keep submitting while the main thread shuts down:
  // every call must resolve as either a full response or a typed shutdown
  // rejection — never a hang, a crash, or partial garbage.
  std::atomic<int> ok_count{0};
  std::atomic<int> closed_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < 4; ++r) {
        LabelRequest request;
        request.corpus = &fx.corpus;
        request.candidates = &fx.candidates;
        auto response = router->Label(request);
        if (response.ok()) {
          if (response->posteriors.size() == fx.candidates.size()) {
            ok_count.fetch_add(1);
          } else {
            other_count.fetch_add(1);  // Partial response = bug.
          }
        } else if (response.status().code() ==
                   StatusCode::kFailedPrecondition) {
          closed_count.fetch_add(1);
        } else {
          other_count.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  router->Shutdown();
  router->Shutdown();  // Idempotent.
  for (auto& th : threads) th.join();

  EXPECT_GE(ok_count.load(), 1);
  EXPECT_EQ(other_count.load(), 0);

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto after = router->Label(request);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
}

// -------------------------------------------------- failure propagation --

TEST(ShardRouterTest, ShardFailureFailsWholeRequestWithShardContext) {
  ShardFixture fx(64);
  ModelSnapshot snapshot = fx.MakeSnapshot(MakeSwappableLfs(NormalCauses));

  constexpr size_t kShards = 4;
  // Poison exactly one candidate: its owning shard's replica rejects the
  // out-of-range vote, every other shard serves fine — and the router must
  // fail the WHOLE request, typed, naming the shard.
  const Candidate& poisoned = fx.candidates[5];
  const std::string poisoned_id = poisoned.span1.canonical_id;
  size_t poisoned_shard = CandidateShardKey(poisoned) % kShards;

  LabelingFunctionSet bad = MakeSwappableLfs(
      [poisoned_id](const CandidateView& view) -> Label {
        if (view.candidate().span1.canonical_id == poisoned_id) {
          return 7;  // Out of range for a binary task.
        }
        return NormalCauses(view);
      });

  ShardRouter::Options options;
  options.num_shards = kShards;
  auto router = ShardRouter::Create(snapshot, std::move(bad), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto response = router->Label(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find(
                "shard " + std::to_string(poisoned_shard)),
            std::string::npos)
      << "error lacks shard context: " << response.status().ToString();
  EXPECT_EQ(router->stats().failed_requests, 1u);

  // The tier is not poisoned: a request avoiding the bad candidate serves.
  std::vector<Candidate> clean;
  for (const Candidate& c : fx.candidates) {
    if (c.span1.canonical_id != poisoned_id) clean.push_back(c);
  }
  LabelRequest clean_request;
  clean_request.corpus = &fx.corpus;
  clean_request.candidates = &clean;
  auto clean_response = router->Label(clean_request);
  ASSERT_TRUE(clean_response.ok()) << clean_response.status().ToString();
  EXPECT_EQ(clean_response->posteriors.size(), clean.size());
}

TEST(ShardRouterTest, AllowPartialDegradesTypedInsteadOfFailingWhole) {
  ShardFixture fx(64);
  ModelSnapshot snapshot = fx.MakeSnapshot(MakeSwappableLfs(NormalCauses));

  constexpr size_t kShards = 4;
  const Candidate& poisoned = fx.candidates[5];
  const std::string poisoned_id = poisoned.span1.canonical_id;
  size_t poisoned_shard = CandidateShardKey(poisoned) % kShards;

  LabelingFunctionSet bad = MakeSwappableLfs(
      [poisoned_id](const CandidateView& view) -> Label {
        if (view.candidate().span1.canonical_id == poisoned_id) {
          return 7;  // Out of range for a binary task.
        }
        return NormalCauses(view);
      });

  ShardRouter::Options options;
  options.num_shards = kShards;
  auto reference =
      ShardRouter::Create(snapshot, MakeSwappableLfs(NormalCauses), options);
  ASSERT_TRUE(reference.ok());
  auto router = ShardRouter::Create(snapshot, std::move(bad), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto expected = reference->Label(request);
  ASSERT_TRUE(expected.ok());

  // Same poisoned tier as the whole-failure test above, but the caller opts
  // into degraded service: the response arrives ok, flagged partial, with
  // the healthy shards' rows bit-identical and the poisoned shard's rows
  // marked uncovered.
  request.allow_partial = true;
  auto response = router->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->is_partial);

  size_t covered_rows = 0;
  for (size_t i = 0; i < fx.candidates.size(); ++i) {
    bool on_poisoned_shard =
        CandidateShardKey(fx.candidates[i]) % kShards == poisoned_shard;
    EXPECT_EQ(response->RowCovered(i), !on_poisoned_shard) << "row " << i;
    if (on_poisoned_shard) {
      EXPECT_EQ(response->posteriors[i], 0.0);
      EXPECT_EQ(response->hard_labels[i], kAbstain);
    } else {
      EXPECT_EQ(response->posteriors[i], expected->posteriors[i]) << i;
      ++covered_rows;
    }
  }
  EXPECT_GT(covered_rows, 0u);
  EXPECT_LT(covered_rows, fx.candidates.size());

  // Per-shard outcomes carry the typed verdicts, sorted by shard.
  ASSERT_EQ(response->shard_outcomes.size(), kShards);
  for (const ShardOutcome& outcome : response->shard_outcomes) {
    if (outcome.shard == poisoned_shard) {
      EXPECT_EQ(outcome.code, StatusCode::kInvalidArgument);
      EXPECT_FALSE(outcome.message.empty());
    } else {
      EXPECT_EQ(outcome.code, StatusCode::kOk);
    }
  }
  RouterStats stats = router->stats();
  EXPECT_EQ(stats.degraded_requests, 1u);
  EXPECT_EQ(stats.failed_requests, 0u);
}

// ------------------------------------------------------- mmap snapshots --

TEST(MmapSnapshotTest, MappedLoadBitwiseEqualsCopyLoad) {
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);
  std::string path = TempPath("mapped.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  auto copied = LoadSnapshot(path);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  SnapshotLoadInfo info;
  auto mapped = LoadSnapshotMapped(path, &info);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(info.used_mmap);
#endif
  EXPECT_GT(info.file_bytes, 0u);

  // Bitwise-equal payload either way.
  EXPECT_EQ(mapped->lf_names, copied->lf_names);
  EXPECT_EQ(mapped->lf_fingerprints, copied->lf_fingerprints);
  EXPECT_EQ(mapped->class_balance, copied->class_balance);
  EXPECT_EQ(mapped->acc_weights, copied->acc_weights);
  EXPECT_EQ(mapped->lab_weights, copied->lab_weights);
  EXPECT_EQ(mapped->corr_weights, copied->corr_weights);

  // And a router built over the mapped artifact serves the exact posteriors
  // of one built from the in-memory snapshot.
  SnapshotLoadInfo router_info;
  auto router =
      ShardRouter::FromFile(path, fx.MakeLfs(), {}, &router_info);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(router_info.used_mmap);
#endif
  auto direct = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(direct.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto expected = direct->Label(request);
  auto actual = router->Label(request);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(actual->posteriors, expected->posteriors);
  std::remove(path.c_str());
}

TEST(MmapSnapshotTest, MappedPathDetectsCorruptionTruncationAndBadMagic) {
  ShardFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = fx.MakeSnapshot(lfs);
  std::string bytes = SerializeSnapshot(snapshot);
  std::string path = TempPath("corrupt_mapped.snk");

  auto write_raw = [&](const std::string& data) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!data.empty()) {
      ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    }
    std::fclose(f);
  };

  // Flipped payload byte: checksum mismatch through the mapped view.
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x20;
  write_raw(corrupted);
  auto loaded = LoadSnapshotMapped(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);

  // Truncation at several prefix lengths.
  for (size_t len : {size_t{0}, size_t{7}, bytes.size() / 2,
                     bytes.size() - 1}) {
    write_raw(bytes.substr(0, len));
    auto truncated = LoadSnapshotMapped(path);
    ASSERT_FALSE(truncated.ok()) << "prefix length " << len;
    EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);
  }

  // Bad magic.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  write_raw(wrong_magic);
  auto bad = LoadSnapshotMapped(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Missing file.
  std::remove(path.c_str());
  auto missing = LoadSnapshotMapped(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace snorkel
