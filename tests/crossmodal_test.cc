#include "synth/crossmodal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dawid_skene.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/user_study.h"

namespace snorkel {
namespace {

TEST(RadiologyTaskTest, ValidatesOptions) {
  RadiologyOptions options;
  options.num_reports = 0;
  EXPECT_FALSE(MakeRadiologyTask(options).ok());
}

TEST(RadiologyTaskTest, ShapesAndModalities) {
  RadiologyOptions options;
  options.num_reports = 400;
  auto task = MakeRadiologyTask(options);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->candidates.size(), 400u);
  EXPECT_EQ(task->gold.size(), 400u);
  EXPECT_EQ(task->image_features.size(), 400u);
  EXPECT_EQ(task->lfs.size(), 18u);  // Table 2.
  for (const auto& image : task->image_features) {
    EXPECT_EQ(image.size(), task->image_feature_dim);
  }
}

TEST(RadiologyTaskTest, AbnormalRateMatchesTable2) {
  RadiologyOptions options;
  options.num_reports = 4000;
  auto task = MakeRadiologyTask(options);
  ASSERT_TRUE(task.ok());
  double pos = 0;
  for (Label y : task->gold) pos += y > 0 ? 1 : 0;
  EXPECT_NEAR(pos / 4000.0, 0.36, 0.03);
}

TEST(RadiologyTaskTest, ReportLfsCarrySignal) {
  RadiologyOptions options;
  options.num_reports = 800;
  auto task = MakeRadiologyTask(options);
  ASSERT_TRUE(task.ok());
  LFApplier applier;
  auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(matrix.ok());
  // The strongest abnormality cue LF should be quite accurate.
  double best = 0.0;
  for (size_t j = 0; j < matrix->num_lfs(); ++j) {
    best = std::max(best, matrix->EmpiricalAccuracy(j, task->gold));
  }
  EXPECT_GT(best, 0.85);
  EXPECT_GT(matrix->FractionCovered(), 0.7);
}

TEST(RadiologyTaskTest, ImageModalityIsInformativeButNoisy) {
  RadiologyOptions options;
  options.num_reports = 2000;
  auto task = MakeRadiologyTask(options);
  ASSERT_TRUE(task.ok());
  // A trivial mean-difference classifier on images should beat chance but
  // stay well below perfect (the paper's AUC is ~0.72-0.76).
  std::vector<double> score(task->gold.size(), 0.0);
  // Use feature 0..dim-1 signs learned from the first 500 items.
  std::vector<double> direction(task->image_feature_dim, 0.0);
  for (size_t i = 0; i < 500; ++i) {
    for (const auto& [f, v] : task->image_features[i].entries) {
      direction[f] += task->gold[i] * static_cast<double>(v);
    }
  }
  for (size_t i = 0; i < task->gold.size(); ++i) {
    for (const auto& [f, v] : task->image_features[i].entries) {
      score[i] += direction[f] * static_cast<double>(v);
    }
  }
  double auc = RocAuc(score, task->gold);
  EXPECT_GT(auc, 0.6);
  EXPECT_LT(auc, 0.95);
}

TEST(CrowdTaskTest, ValidatesOptions) {
  CrowdOptions options;
  options.num_items = 0;
  EXPECT_FALSE(MakeCrowdTask(options).ok());
  options = CrowdOptions();
  options.min_worker_accuracy = 0.9;
  options.max_worker_accuracy = 0.5;
  EXPECT_FALSE(MakeCrowdTask(options).ok());
}

TEST(CrowdTaskTest, ShapesMatchTable2) {
  auto task = MakeCrowdTask();
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->worker_matrix.num_rows(), 505u);
  EXPECT_EQ(task->worker_matrix.num_lfs(), 102u);
  EXPECT_EQ(task->worker_matrix.cardinality(), 5);
  EXPECT_EQ(task->tweets.size(), 505u);
  EXPECT_EQ(task->text_features.size(), 505u);
  // ~20 votes per item.
  EXPECT_NEAR(task->worker_matrix.LabelDensity(), 20.0, 4.0);
}

TEST(CrowdTaskTest, WorkersHaveConflicts) {
  auto task = MakeCrowdTask();
  ASSERT_TRUE(task.ok());
  size_t conflict_rows = 0;
  for (size_t i = 0; i < task->worker_matrix.num_rows(); ++i) {
    const auto& row = task->worker_matrix.row(i);
    for (size_t a = 1; a < row.size(); ++a) {
      if (row[a].label != row[0].label) {
        ++conflict_rows;
        break;
      }
    }
  }
  // The paper stresses that worker conflicts are common on this task.
  EXPECT_GT(conflict_rows, task->worker_matrix.num_rows() / 2);
}

TEST(CrowdTaskTest, DawidSkeneRecoversWorkerQuality) {
  CrowdOptions options;
  options.num_items = 1500;  // More items for tighter estimates.
  auto task = MakeCrowdTask(options);
  ASSERT_TRUE(task.ok());
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(task->worker_matrix).ok());
  // Estimated accuracies correlate with the planted ones: check mean
  // absolute error over workers.
  double mae = 0.0;
  for (size_t w = 0; w < task->worker_accuracies.size(); ++w) {
    mae += std::fabs(model.WorkerAccuracy(w) - task->worker_accuracies[w]);
  }
  mae /= static_cast<double>(task->worker_accuracies.size());
  EXPECT_LT(mae, 0.12);
}

TEST(UserStudyTest, PoolShapes) {
  UserStudyOptions options;
  options.corpus_scale = 0.1;
  auto pool = MakeUserStudyPool(options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->user_lf_ranges.size(), 14u);
  size_t total = 0;
  for (auto [begin, end] : pool->user_lf_ranges) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, pool->pool.size());
    total += end - begin;
  }
  EXPECT_EQ(total, pool->pool.size());
  // The merged pool approaches the paper's 125-LF scale.
  EXPECT_GT(pool->pool.size(), 50u);
}

TEST(UserStudyTest, UsersVaryInQuality) {
  UserStudyOptions options;
  options.corpus_scale = 0.1;
  auto pool = MakeUserStudyPool(options);
  ASSERT_TRUE(pool.ok());
  LFApplier applier;
  auto matrix =
      applier.Apply(pool->pool, pool->task.corpus, pool->task.candidates);
  ASSERT_TRUE(matrix.ok());
  // Accuracy spread across the pool: some LFs near chance, some strong.
  double lo = 1.0;
  double hi = 0.0;
  for (size_t j = 0; j < matrix->num_lfs(); ++j) {
    double acc = matrix->EmpiricalAccuracy(j, pool->task.gold);
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
  }
  EXPECT_LT(lo, 0.6);
  EXPECT_GT(hi, 0.8);
}

TEST(UserStudyTest, ValidatesOptions) {
  UserStudyOptions options;
  options.num_users = 0;
  EXPECT_FALSE(MakeUserStudyPool(options).ok());
}

}  // namespace
}  // namespace snorkel
