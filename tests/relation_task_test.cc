#include "synth/relation_task.h"

#include <gtest/gtest.h>

#include <set>

#include "lf/applier.h"

namespace snorkel {
namespace {

TEST(RelationTaskTest, ValidatesSpec) {
  RelationTaskSpec spec;
  spec.cues.strong_pos = {{"causes"}};
  spec.cues.neutral = {{"and"}};
  spec.num_documents = 0;
  EXPECT_FALSE(GenerateRelationTask(spec).ok());
  spec.num_documents = 10;
  spec.positive_rate = 0.0;
  EXPECT_FALSE(GenerateRelationTask(spec).ok());
  spec.positive_rate = 0.3;
  spec.cues.strong_pos.clear();
  EXPECT_FALSE(GenerateRelationTask(spec).ok());
}

class TaskFixture : public ::testing::TestWithParam<const char*> {
 protected:
  Result<RelationTask> Make() {
    std::string name = GetParam();
    if (name == "CDR") return MakeCdrTask(7, 0.1);
    if (name == "Spouses") return MakeSpousesTask(7, 0.1);
    if (name == "EHR") return MakeEhrTask(7, 0.05);
    return MakeChemTask(7, 0.1);
  }
};

TEST_P(TaskFixture, ShapesAreConsistent) {
  auto task = Make();
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_GT(task->candidates.size(), 100u);
  EXPECT_EQ(task->candidates.size(), task->gold.size());
  EXPECT_EQ(task->candidates.size(), task->ds_labels.size());
  EXPECT_EQ(task->lfs.size(), task->lf_groups.size());
  EXPECT_GE(task->lfs.size(), 11u);
  // Splits partition the candidates.
  EXPECT_EQ(task->train_idx.size() + task->dev_idx.size() +
                task->test_idx.size(),
            task->candidates.size());
  std::set<size_t> all(task->train_idx.begin(), task->train_idx.end());
  all.insert(task->dev_idx.begin(), task->dev_idx.end());
  all.insert(task->test_idx.begin(), task->test_idx.end());
  EXPECT_EQ(all.size(), task->candidates.size());
}

TEST_P(TaskFixture, LfGroupsAreKnown)  {
  auto task = Make();
  ASSERT_TRUE(task.ok());
  for (const auto& group : task->lf_groups) {
    EXPECT_TRUE(group == "pattern" || group == "distant" ||
                group == "structure")
        << group;
  }
}

TEST_P(TaskFixture, LfsApplyCleanly) {
  auto task = Make();
  ASSERT_TRUE(task.ok());
  LFApplier applier;
  auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  EXPECT_EQ(matrix->num_rows(), task->candidates.size());
  EXPECT_EQ(matrix->num_lfs(), task->lfs.size());
  // Most candidates get at least some supervision signal.
  EXPECT_GT(matrix->FractionCovered(), 0.5);
  // Density is in the paper's regime (Table 1 reports 1.2 - 2.3).
  EXPECT_GT(matrix->LabelDensity(), 0.45);
  EXPECT_LT(matrix->LabelDensity(), 8.0);
}

TEST_P(TaskFixture, DeterministicGivenSeed) {
  auto a = Make();
  auto b = Make();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->gold.size(), b->gold.size());
  EXPECT_EQ(a->gold, b->gold);
  EXPECT_EQ(a->ds_labels, b->ds_labels);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskFixture,
                         ::testing::Values("CDR", "Spouses", "EHR", "Chem"));

TEST(RelationTaskTest, PositiveFractionsMatchTable2) {
  auto cdr = MakeCdrTask(11, 0.2);
  auto spouses = MakeSpousesTask(11, 0.2);
  auto ehr = MakeEhrTask(11, 0.1);
  auto chem = MakeChemTask(11, 0.2);
  ASSERT_TRUE(cdr.ok() && spouses.ok() && ehr.ok() && chem.ok());
  EXPECT_NEAR(cdr->PositiveFraction(), 0.246, 0.03);
  EXPECT_NEAR(spouses->PositiveFraction(), 0.083, 0.02);
  EXPECT_NEAR(ehr->PositiveFraction(), 0.368, 0.03);
  EXPECT_NEAR(chem->PositiveFraction(), 0.041, 0.015);
}

TEST(RelationTaskTest, LfCountsMatchTable2) {
  auto cdr = MakeCdrTask(1, 0.05);
  auto spouses = MakeSpousesTask(1, 0.05);
  auto ehr = MakeEhrTask(1, 0.05);
  auto chem = MakeChemTask(1, 0.05);
  ASSERT_TRUE(cdr.ok() && spouses.ok() && ehr.ok() && chem.ok());
  EXPECT_EQ(cdr->lfs.size(), 33u);
  EXPECT_EQ(spouses->lfs.size(), 11u);
  EXPECT_EQ(ehr->lfs.size(), 24u);
  EXPECT_EQ(chem->lfs.size(), 16u);
}

TEST(RelationTaskTest, DistantSupervisionIsNoisy) {
  // The DS baseline must have meaningfully lower precision than perfect —
  // related pairs co-occur in non-asserting sentences (Table 3 shape).
  auto task = MakeCdrTask(13, 0.3);
  ASSERT_TRUE(task.ok());
  int64_t tp = 0;
  int64_t fp = 0;
  for (size_t i = 0; i < task->gold.size(); ++i) {
    if (task->ds_labels[i] > 0) {
      if (task->gold[i] > 0) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }
  ASSERT_GT(tp + fp, 0);
  double precision =
      static_cast<double>(tp) / static_cast<double>(tp + fp);
  EXPECT_LT(precision, 0.7);
  EXPECT_GT(precision, 0.1);
}

TEST(RelationTaskTest, EhrBaselineIsRegexNotKb) {
  auto task = MakeEhrTask(17, 0.05);
  ASSERT_TRUE(task.ok());
  // The EHR spec disables the KB entirely.
  EXPECT_EQ(task->kb->SubsetSize("PrimaryA"), 0u);
  // Its regex-style baseline is high precision (paper: 81.4).
  int64_t tp = 0;
  int64_t fp = 0;
  for (size_t i = 0; i < task->gold.size(); ++i) {
    if (task->ds_labels[i] > 0) {
      (task->gold[i] > 0 ? tp : fp) += 1;
    }
  }
  ASSERT_GT(tp + fp, 0);
  EXPECT_GT(static_cast<double>(tp) / static_cast<double>(tp + fp), 0.7);
}

TEST(RelationTaskTest, ChemIsSameTypeRelation) {
  auto task = MakeChemTask(19, 0.1);
  ASSERT_TRUE(task.ok());
  for (size_t i = 0; i < std::min<size_t>(task->candidates.size(), 50); ++i) {
    EXPECT_EQ(task->candidates[i].span1.entity_type, "compound");
    EXPECT_EQ(task->candidates[i].span2.entity_type, "compound");
    EXPECT_NE(task->candidates[i].span1.canonical_id,
              task->candidates[i].span2.canonical_id);
  }
}

TEST(RelationTaskTest, ScaleShrinksCorpus) {
  auto small = MakeCdrTask(23, 0.05);
  auto large = MakeCdrTask(23, 0.2);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small->corpus.num_documents(), large->corpus.num_documents());
}

}  // namespace
}  // namespace snorkel
