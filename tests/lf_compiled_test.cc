// Tier-1 suite for the compiled LF execution engine (src/lf/compiled/).
//
// The engine's contract is BITWISE parity: dispatching compilable LFs
// through the shared Aho-Corasick batch scan must produce a label matrix
// whose CSR arrays (entries + row offsets) are identical to the interpreted
// per-row path, at any thread count, for every synthetic workload in the
// repo. These tests pin that contract over all four §4.1.1 relation tasks,
// the unary radiology task, hand-built degenerate-token corpora, the
// snapshot-loaded (Decode'd) program path, the IncrementalApplier cache,
// and a many-threads shared-applier hammer (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/candidate.h"
#include "data/context.h"
#include "data/knowledge_base.h"
#include "lf/applier.h"
#include "lf/compiled/engine.h"
#include "lf/compiled/program.h"
#include "lf/declarative.h"
#include "lf/labeling_function.h"
#include "pipeline/export_snapshot.h"
#include "serve/incremental_applier.h"
#include "serve/label_service.h"
#include "shard/shard_router.h"
#include "synth/crossmodal.h"
#include "synth/relation_task.h"
#include "util/status.h"

namespace snorkel {
namespace {

/// Applies `lfs` with a fresh applier under `options`; fails the calling
/// test (and returns an empty matrix) on error.
LabelMatrix MustApply(const LFApplier::Options& options,
                      const LabelingFunctionSet& lfs, const Corpus& corpus,
                      const std::vector<Candidate>& candidates) {
  LFApplier applier(options);
  auto matrix = applier.Apply(lfs, corpus, candidates);
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  return matrix.ok() ? std::move(*matrix) : LabelMatrix();
}

/// The parity check: identical CSR arrays, not just equal summaries.
void ExpectSameMatrix(const LabelMatrix& compiled,
                      const LabelMatrix& interpreted) {
  ASSERT_EQ(compiled.row_offsets(), interpreted.row_offsets());
  ASSERT_TRUE(compiled.entries() == interpreted.entries());
  EXPECT_EQ(compiled.num_lfs(), interpreted.num_lfs());
  EXPECT_EQ(compiled.cardinality(), interpreted.cardinality());
}

/// Compiled-vs-interpreted parity at 1 / 2 / 8 threads. The interpreted
/// baseline runs serial so any divergence is attributable to the engine,
/// not the sharding.
void CheckParityAcrossThreadCounts(const LabelingFunctionSet& lfs,
                                   const Corpus& corpus,
                                   const std::vector<Candidate>& candidates) {
  ASSERT_FALSE(candidates.empty());
  LabelMatrix interpreted = MustApply(
      {.num_threads = 1, .use_compiled = false}, lfs, corpus, candidates);
  ASSERT_FALSE(interpreted.entries().empty());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    LabelMatrix compiled = MustApply(
        {.num_threads = threads, .use_compiled = true}, lfs, corpus,
        candidates);
    ExpectSameMatrix(compiled, interpreted);
  }
}

// ---------------------------------------------------------------------------
// Compilability partition: which LFs the compiler takes, which fall back.
// ---------------------------------------------------------------------------

TEST(CompiledProgramTest, CompilesEveryDeclarativeFamilyAndOnlyThose) {
  KnowledgeBase kb;
  kb.Add("causes", "C_mg", "D_quad");

  LabelingFunctionSet lfs;
  // The seven compilable families.
  lfs.Add(MakeKeywordBetweenLF("kw", {"causes", "induced"}, 1));
  lfs.Add(MakeDirectionalKeywordLF("dir", {"treats"}, 1, -1));
  lfs.Add(MakeContextKeywordLF("ctx", {"no"}, 3, -1));
  lfs.Add(MakeSentenceKeywordLF("sent", {"normal"}, -1));
  lfs.Add(MakeDocumentKeywordLF("doc", {"history"}, -1));
  lfs.Add(MakeRegexBetweenLF("rx_literal", "severe|acute", 1));
  lfs.Add(MakeDistanceLF("dist", 8, -1));
  size_t compilable = lfs.size();
  // Everything else must stay interpreted: a regex beyond literal
  // alternations, distant supervision, a weak classifier, a crowd worker,
  // the combinators, and a raw lambda.
  lfs.Add(MakeRegexBetweenLF("rx_general", "caus\\w+\\s+severe", 1));
  lfs.Add(MakeOntologyLF("onto", &kb, "causes", 1));
  lfs.Add(MakeWeakClassifierLF(
      "weak", [](const CandidateView&) { return 0.9; }));
  lfs.Add(MakeCrowdWorkerLF("crowd", {{0, 1}}));
  lfs.Add(MakeGuardedLF("guarded", MakeKeywordBetweenLF("g", {"causes"}, 1),
                        [](const CandidateView&) { return true; }));
  lfs.Add(MakeFirstVoteLF(
      "first", {MakeKeywordBetweenLF("f", {"causes"}, 1)}));
  lfs.Add(LabelingFunction(
      "lambda", [](const CandidateView&) -> Label { return kAbstain; }));

  auto program = CompileLfSet(lfs);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->num_lfs, lfs.size());
  EXPECT_EQ(program->num_compiled(), compilable);
  ASSERT_EQ(program->slot_of_lf.size(), lfs.size());
  for (size_t j = 0; j < lfs.size(); ++j) {
    if (j < compilable) {
      EXPECT_GE(program->slot_of_lf[j], 0) << lfs.Names()[j];
    } else {
      EXPECT_EQ(program->slot_of_lf[j], -1) << lfs.Names()[j];
    }
  }
  EXPECT_TRUE(ProgramMatchesLfSet(*program, lfs));
}

// ---------------------------------------------------------------------------
// Parity over every synthetic workload in the repo.
// ---------------------------------------------------------------------------

TEST(CompiledParityTest, CdrTaskBitwiseAt1_2_8Threads) {
  auto task = MakeCdrTask(42, 0.08);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  // The relation suites mix compilable pattern LFs with interpreted
  // distant-supervision LFs, so this exercises the fused dispatch path.
  auto program = CompileLfSet(task->lfs);
  EXPECT_GT(program->num_compiled(), 0u);
  EXPECT_LT(program->num_compiled(), task->lfs.size());
  CheckParityAcrossThreadCounts(task->lfs, task->corpus, task->candidates);
}

TEST(CompiledParityTest, SpousesTaskBitwiseAt1_2_8Threads) {
  auto task = MakeSpousesTask(7, 0.08);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  CheckParityAcrossThreadCounts(task->lfs, task->corpus, task->candidates);
}

TEST(CompiledParityTest, EhrTaskBitwiseAt1_2_8Threads) {
  auto task = MakeEhrTask(11, 0.08);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  CheckParityAcrossThreadCounts(task->lfs, task->corpus, task->candidates);
}

TEST(CompiledParityTest, ChemTaskBitwiseAt1_2_8Threads) {
  auto task = MakeChemTask(23, 0.08);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  CheckParityAcrossThreadCounts(task->lfs, task->corpus, task->candidates);
}

TEST(CompiledParityTest, RadiologyUnaryCandidatesBitwise) {
  RadiologyOptions options;
  options.num_reports = 250;
  auto task = MakeRadiologyTask(options);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  // Unary candidates (span1 == span2): the sentence/document-scope families
  // and the degenerate between-range (empty) both get exercised.
  CheckParityAcrossThreadCounts(task->lfs, task->corpus, task->candidates);
}

TEST(CompiledParityTest, DegenerateTokensBitwise) {
  // Hand-built corpus hitting the engine's edge cases: empty tokens (incl.
  // one LEADING the between-range, where byte offsets alone would misplace
  // a regex hit), embedded whitespace, uppercase, punctuation, and a
  // candidate pair spanning sentences-with-context keywords.
  Corpus corpus;
  Document doc;
  Sentence s0;
  s0.words = {"magnesium", "", "severe", "quadriplegia"};
  s0.mentions = {Mention{0, 1, "chemical", "C_mg"},
                 Mention{3, 4, "disease", "D_q"}};
  Sentence s1;
  s1.words = {"", "Aspirin", "TREATS", "odd token", "headache", ""};
  s1.mentions = {Mention{1, 2, "chemical", "C_asp"},
                 Mention{4, 5, "disease", "D_ha"}};
  Sentence s2;
  s2.words = {"no", "history", "of", "quadriplegia", ",", "normal", "exam"};
  s2.mentions = {Mention{3, 4, "disease", "D_q"},
                 Mention{3, 4, "disease", "D_q2"}};
  doc.sentences = {s0, s1, s2};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_FALSE(candidates.empty());

  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("kw", {"treats"}, 1));
  lfs.Add(MakeDirectionalKeywordLF("dir", {"treats"}, 1, -1));
  lfs.Add(MakeRegexBetweenLF("rx", "severe|acute", 1));
  lfs.Add(MakeContextKeywordLF("ctx", {"no", "exam"}, 3, -1));
  lfs.Add(MakeDistanceLF("dist", 2, -1));
  lfs.Add(MakeSentenceKeywordLF("sent", {"normal"}, -1));
  lfs.Add(MakeDocumentKeywordLF("dockw", {"history"}, -1));
  CheckParityAcrossThreadCounts(lfs, corpus, candidates);
}

TEST(CompiledParityTest, RefPathPreservesIndicesBitwise) {
  auto task = MakeCdrTask(42, 0.05);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  // A strided sub-batch with original indices — the sharded tier's fan-out
  // shape. Index-dependent behaviour must match the interpreted refs path.
  std::vector<CandidateRef> rows;
  for (size_t i = 0; i < task->candidates.size(); i += 3) {
    rows.push_back(CandidateRef{&task->candidates[i], i});
  }
  ASSERT_FALSE(rows.empty());
  LFApplier interpreted({.num_threads = 1, .use_compiled = false});
  LFApplier compiled({.num_threads = 2, .use_compiled = true});
  auto base = interpreted.ApplyRefs(task->lfs, task->corpus, rows);
  auto fast = compiled.ApplyRefs(task->lfs, task->corpus, rows);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ExpectSameMatrix(*fast, *base);
}

// ---------------------------------------------------------------------------
// Error semantics under compiled dispatch.
// ---------------------------------------------------------------------------

TEST(CompiledParityTest, InterpretedOutOfRangeVoteStillSurfacesTyped) {
  Corpus corpus;
  Document doc;
  Sentence s;
  s.words = {"magnesium", "causes", "quadriplegia"};
  s.mentions = {Mention{0, 1, "chemical", "C"}, Mention{2, 3, "disease", "D"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);

  // A compilable LF rides along; the buggy interpreted lambda must still
  // fail the request loudly instead of corrupting the matrix.
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("kw", {"causes"}, 1));
  lfs.Add(LabelingFunction(
      "buggy", [](const CandidateView&) -> Label { return 7; }));
  LFApplier applier({.num_threads = 1, .use_compiled = true});
  auto result = applier.Apply(lfs, corpus, candidates);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Wire format: Encode/Decode round trip and rejection of malformed input.
// ---------------------------------------------------------------------------

TEST(CompiledProgramTest, EncodeDecodeRoundTripsByteEqual) {
  auto task = MakeCdrTask(42, 0.05);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  auto program = CompileLfSet(task->lfs);
  ASSERT_GT(program->num_compiled(), 0u);

  std::string encoded = program->Encode();
  // Determinism: recompiling the same set encodes byte-identically.
  EXPECT_EQ(CompileLfSet(task->lfs)->Encode(), encoded);

  auto decoded = CompiledLfProgram::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->Encode(), encoded);
  EXPECT_EQ((*decoded)->num_lfs, program->num_lfs);
  EXPECT_EQ((*decoded)->slot_of_lf, program->slot_of_lf);
  EXPECT_TRUE(ProgramMatchesLfSet(**decoded, task->lfs));
}

TEST(CompiledProgramTest, DecodeRejectsTruncationWithIOError) {
  auto task = MakeCdrTask(42, 0.05);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  std::string encoded = CompileLfSet(task->lfs)->Encode();
  for (size_t keep : {size_t{1}, encoded.size() / 2, encoded.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    auto decoded = CompiledLfProgram::Decode(encoded.substr(0, keep));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
  }
}

TEST(CompiledProgramTest, ProgramMembershipMismatchDetected) {
  auto cdr = MakeCdrTask(42, 0.05);
  auto ehr = MakeEhrTask(11, 0.05);
  ASSERT_TRUE(cdr.ok() && ehr.ok());
  auto program = CompileLfSet(cdr->lfs);
  EXPECT_FALSE(ProgramMatchesLfSet(*program, ehr->lfs));
}

// ---------------------------------------------------------------------------
// Snapshot-provided programs: the applier uses a matching Decode'd program
// and falls back to a live compile on mismatch — same bytes either way.
// ---------------------------------------------------------------------------

TEST(CompiledProgramTest, DecodedProgramServesBitwiseIdentical) {
  auto task = MakeEhrTask(11, 0.06);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  auto decoded = CompiledLfProgram::Decode(CompileLfSet(task->lfs)->Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  LabelMatrix interpreted =
      MustApply({.num_threads = 1, .use_compiled = false}, task->lfs,
                task->corpus, task->candidates);
  LabelMatrix via_snapshot = MustApply(
      {.num_threads = 2, .use_compiled = true, .compiled_program = *decoded},
      task->lfs, task->corpus, task->candidates);
  ExpectSameMatrix(via_snapshot, interpreted);
}

TEST(CompiledProgramTest, ForeignProgramFallsBackToCorrectOutput) {
  auto cdr = MakeCdrTask(42, 0.05);
  auto chem = MakeChemTask(23, 0.05);
  ASSERT_TRUE(cdr.ok() && chem.ok());
  // A program for a DIFFERENT LF set must never be consulted: output stays
  // bitwise-correct for the set actually applied.
  LabelMatrix interpreted =
      MustApply({.num_threads = 1, .use_compiled = false}, chem->lfs,
                chem->corpus, chem->candidates);
  LabelMatrix mismatched = MustApply(
      {.num_threads = 2,
       .use_compiled = true,
       .compiled_program = CompileLfSet(cdr->lfs)},
      chem->lfs, chem->corpus, chem->candidates);
  ExpectSameMatrix(mismatched, interpreted);
}

// ---------------------------------------------------------------------------
// IncrementalApplier: compiled miss computation fills the same cache.
// ---------------------------------------------------------------------------

TEST(CompiledIncrementalTest, CachedColumnsInterchangeableWithInterpreted) {
  auto task = MakeEhrTask(11, 0.06);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  LabelMatrix interpreted =
      MustApply({.num_threads = 1, .use_compiled = false}, task->lfs,
                task->corpus, task->candidates);

  IncrementalApplier applier(
      IncrementalApplier::Options{.num_threads = 1, .use_compiled = true});
  auto cold = applier.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ExpectSameMatrix(*cold, interpreted);

  auto warm = applier.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameMatrix(*warm, interpreted);
  EXPECT_GT(applier.stats().columns_reused, 0u);
}

// ---------------------------------------------------------------------------
// Through the router: a trained snapshot (carrying its LFCP program) served
// by ShardRouter with compiled dispatch must answer bitwise-identically to
// interpreted serving, at any shard count.
// ---------------------------------------------------------------------------

TEST(CompiledServingTest, RouterServesCompiledIdenticalToInterpreted) {
  auto task = MakeCdrTask(42, 0.05);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  ExportSnapshotOptions export_options;
  export_options.gen.epochs = 20;
  export_options.include_disc_model = false;
  auto snapshot = TrainSnapshot(*task, export_options);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_NE(snapshot->compiled_lfs, nullptr);

  LabelRequest request;
  request.corpus = &task->corpus;
  request.candidates = &task->candidates;
  request.include_votes = true;

  LabelService::Options interpreted_options;
  interpreted_options.use_compiled_lfs = false;
  auto interpreted =
      LabelService::Create(*snapshot, task->lfs, interpreted_options);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
  auto expected = interpreted->Label(request);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t shards : {size_t{1}, size_t{3}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardRouter::Options options;
    options.num_shards = shards;
    auto router = ShardRouter::Create(*snapshot, task->lfs, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    auto actual = router->Label(request);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->posteriors, expected->posteriors);
    EXPECT_EQ(actual->hard_labels, expected->hard_labels);
    EXPECT_EQ(actual->votes.row_offsets(), expected->votes.row_offsets());
    EXPECT_TRUE(actual->votes.entries() == expected->votes.entries());
    router->Shutdown();
  }
}

// ---------------------------------------------------------------------------
// Concurrency: one applier, one shared program, many requester threads.
// Run under TSan in CI (the compiled engine shares the immutable program
// and per-corpus scan state across the pool's workers).
// ---------------------------------------------------------------------------

TEST(CompiledConcurrencyTest, SharedApplierHammerStaysBitwise) {
  auto task = MakeChemTask(23, 0.05);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  LabelMatrix baseline =
      MustApply({.num_threads = 1, .use_compiled = false}, task->lfs,
                task->corpus, task->candidates);

  LFApplier shared({.num_threads = 4, .use_compiled = true});
  IncrementalApplier incremental(
      IncrementalApplier::Options{.num_threads = 4, .use_compiled = true});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> requesters;
  for (int t = 0; t < 8; ++t) {
    requesters.emplace_back([&] {
      for (int iter = 0; iter < 3; ++iter) {
        auto direct = shared.Apply(task->lfs, task->corpus, task->candidates);
        auto cached =
            incremental.Apply(task->lfs, task->corpus, task->candidates);
        for (const auto* result : {&direct, &cached}) {
          if (!result->ok() ||
              !((**result).entries() == baseline.entries()) ||
              (**result).row_offsets() != baseline.row_offsets()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : requesters) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Process-wide scan cache: repeat applies must reuse scans, and corpus
// mutation (identity bump) must never serve stale ones.
// ---------------------------------------------------------------------------

TEST(CompiledScanCacheTest, RepeatAppliesHitCacheAndStayBitwise) {
  auto task = MakeCdrTask(101, 0.08);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  LabelMatrix baseline =
      MustApply({.num_threads = 1, .use_compiled = false}, task->lfs,
                task->corpus, task->candidates);

  LFApplier compiled({.num_threads = 1, .use_compiled = true});
  auto first = compiled.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  CompiledScanCacheStats after_first = GetCompiledScanCacheStats();
  auto second = compiled.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  CompiledScanCacheStats after_second = GetCompiledScanCacheStats();

  // Second pass over the same (program, corpus) is pure lookup: every
  // sentence hits, nothing new is scanned.
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
  ExpectSameMatrix(*first, baseline);
  ExpectSameMatrix(*second, baseline);
}

TEST(CompiledScanCacheTest, MutatedCorpusGetsFreshScans) {
  Corpus corpus;
  Document doc;
  Sentence s;
  s.words = {"aspirin", "causes", "headache"};
  s.mentions = {Mention{0, 1, "chemical", "C_asp"},
                Mention{2, 3, "disease", "D_ha"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);

  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("kw_cause", {"cause"}, 1));

  LFApplier compiled({.num_threads = 1, .use_compiled = true});
  auto before = compiled.Apply(lfs, corpus, candidates);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->entries().size(), 1u);  // "causes" matched

  // In-place edit through the mutable accessor bumps the corpus identity,
  // so the cached scan for the old text can never be served again.
  corpus.mutable_document(0)->sentences[0].words[1] = "prevents";
  auto after = compiled.Apply(lfs, corpus, candidates);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->entries().empty());
  LabelMatrix interpreted = MustApply({.num_threads = 1, .use_compiled = false},
                                      lfs, corpus, candidates);
  ExpectSameMatrix(*after, interpreted);
}

TEST(CompiledScanCacheTest, CorpusIdentityFreshOnCopyStableAcrossMove) {
  Corpus a;
  uint64_t id_a = a.identity();
  Corpus b = a;
  EXPECT_NE(b.identity(), id_a);  // copies never alias cached scans
  uint64_t id_b = b.identity();
  Corpus c = std::move(b);
  EXPECT_EQ(c.identity(), id_b);  // moves carry the cache with the contents
  EXPECT_NE(b.identity(), id_b);  // moved-from is a fresh (empty) corpus
  a.AddDocument(Document{});
  EXPECT_NE(a.identity(), id_a);  // mutation invalidates
}

}  // namespace
}  // namespace snorkel
