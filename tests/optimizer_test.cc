#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "synth/synthetic_matrix.h"

namespace snorkel {
namespace {

OptimizerOptions FastOptions() {
  OptimizerOptions options;
  options.eta = 0.1;  // Coarse ε grid keeps tests fast.
  options.structure.epochs = 20;
  options.structure.sweep_epochs = 10;
  options.structure.max_rows = 2000;
  return options;
}

TEST(OptimizerTest, RejectsMulticlass) {
  auto m = LabelMatrix::FromDense({{1, 3}}, 3);
  ASSERT_TRUE(m.ok());
  ModelingStrategyOptimizer optimizer(FastOptions());
  EXPECT_FALSE(optimizer.Choose(*m).ok());
}

TEST(OptimizerTest, RejectsBadHyperparameters) {
  auto data = SyntheticMatrixGenerator::GenerateIid(100, 3, 0.8, 0.5, 1);
  ASSERT_TRUE(data.ok());
  OptimizerOptions bad = FastOptions();
  bad.eta = 0.0;
  EXPECT_FALSE(ModelingStrategyOptimizer(bad).Choose(data->matrix).ok());
  bad = FastOptions();
  bad.gamma = -1.0;
  EXPECT_FALSE(ModelingStrategyOptimizer(bad).Choose(data->matrix).ok());
}

TEST(OptimizerTest, SingleLfChoosesMajorityVote) {
  // One LF can never beat its own majority vote: Ã* = 0 < γ.
  auto data = SyntheticMatrixGenerator::GenerateIid(1000, 1, 0.8, 0.3, 2);
  ASSERT_TRUE(data.ok());
  ModelingStrategyOptimizer optimizer(FastOptions());
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->strategy, ModelingStrategy::kMajorityVote);
  EXPECT_DOUBLE_EQ(decision->predicted_advantage, 0.0);
  EXPECT_TRUE(decision->correlations.empty());
}

TEST(OptimizerTest, LowDensityChoosesMajorityVote) {
  // Very sparse votes: almost no conflicts, Ã* below γ.
  auto data = SyntheticMatrixGenerator::GenerateIid(3000, 4, 0.8, 0.02, 3);
  ASSERT_TRUE(data.ok());
  ModelingStrategyOptimizer optimizer(FastOptions());
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->strategy, ModelingStrategy::kMajorityVote);
}

TEST(OptimizerTest, MidDensityChoosesGenerativeModel) {
  auto data = SyntheticMatrixGenerator::GenerateIid(2000, 10, 0.75, 0.1, 4);
  ASSERT_TRUE(data.ok());
  ModelingStrategyOptimizer optimizer(FastOptions());
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->strategy, ModelingStrategy::kGenerativeModel);
  EXPECT_GE(decision->predicted_advantage, optimizer.options().gamma);
  // The ε sweep ran and the chosen ε comes from its grid.
  EXPECT_FALSE(decision->sweep.empty());
  EXPECT_GT(decision->chosen_epsilon, 0.0);
}

TEST(OptimizerTest, SweepGridMatchesEta) {
  auto data = SyntheticMatrixGenerator::GenerateIid(1000, 8, 0.7, 0.3, 5);
  ASSERT_TRUE(data.ok());
  OptimizerOptions options = FastOptions();
  options.eta = 0.1;  // Grid {0.1, ..., 0.5}: 5 points.
  ModelingStrategyOptimizer optimizer(options);
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  if (decision->strategy == ModelingStrategy::kGenerativeModel) {
    EXPECT_EQ(decision->sweep.size(), 5u);
    EXPECT_DOUBLE_EQ(decision->sweep.front().epsilon, 0.5);
    EXPECT_DOUBLE_EQ(decision->sweep.back().epsilon, 0.1);
  }
}

TEST(OptimizerTest, StructureSearchCanBeDisabled) {
  auto data = SyntheticMatrixGenerator::GenerateIid(2000, 10, 0.75, 0.1, 6);
  ASSERT_TRUE(data.ok());
  OptimizerOptions options = FastOptions();
  options.search_structure = false;
  ModelingStrategyOptimizer optimizer(options);
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->strategy, ModelingStrategy::kGenerativeModel);
  EXPECT_TRUE(decision->sweep.empty());
  EXPECT_TRUE(decision->correlations.empty());
}

TEST(OptimizerTest, CorrelatedLfsSurfaceInDecision) {
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      3000, /*num_clusters=*/2, /*cluster_size=*/3, /*num_independent=*/4,
      /*accuracy=*/0.75, /*propensity=*/0.4, /*copy_prob=*/0.9, /*seed=*/7);
  ASSERT_TRUE(data.ok());
  ModelingStrategyOptimizer optimizer(FastOptions());
  auto decision = optimizer.Choose(data->matrix);
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision->strategy, ModelingStrategy::kGenerativeModel);
  EXPECT_FALSE(decision->correlations.empty());
}

TEST(OptimizerTest, GammaControlsTheThreshold) {
  auto data = SyntheticMatrixGenerator::GenerateIid(2000, 10, 0.75, 0.1, 8);
  ASSERT_TRUE(data.ok());
  OptimizerOptions lenient = FastOptions();
  lenient.gamma = 0.0;
  OptimizerOptions strict = FastOptions();
  strict.gamma = 1.1;  // Impossible bar: Ã* <= 2 but realistic values < 1.
  auto lenient_decision =
      ModelingStrategyOptimizer(lenient).Choose(data->matrix);
  auto strict_decision = ModelingStrategyOptimizer(strict).Choose(data->matrix);
  ASSERT_TRUE(lenient_decision.ok() && strict_decision.ok());
  EXPECT_EQ(lenient_decision->strategy, ModelingStrategy::kGenerativeModel);
  EXPECT_EQ(strict_decision->strategy, ModelingStrategy::kMajorityVote);
}

TEST(OptimizerTest, StrategyToString) {
  EXPECT_EQ(ModelingStrategyToString(ModelingStrategy::kMajorityVote), "MV");
  EXPECT_EQ(ModelingStrategyToString(ModelingStrategy::kGenerativeModel), "GM");
}

}  // namespace
}  // namespace snorkel
