#include <gtest/gtest.h>

#include "data/candidate.h"
#include "data/context.h"
#include "data/knowledge_base.h"

namespace snorkel {
namespace {

Corpus MakeCorpus() {
  // "we study a patient who became quadriplegic after parenteral magnesium
  //  administration for preeclampsia" with tagged chemical/disease mentions.
  Sentence s;
  s.words = {"we",         "study",      "a",   "patient",
             "who",        "became",     "quadriplegic",
             "after",      "parenteral", "magnesium",
             "administration", "for",    "preeclampsia"};
  s.mentions = {
      Mention{6, 7, "disease", "D_quad"},
      Mention{9, 10, "chemical", "C_mg"},
      Mention{12, 13, "disease", "D_pre"},
  };
  Document doc;
  doc.name = "doc0";
  doc.sentences.push_back(std::move(s));
  Corpus corpus;
  corpus.AddDocument(std::move(doc));
  return corpus;
}

TEST(ContextTest, SentenceText) {
  Sentence s;
  s.words = {"a", "b", "c"};
  EXPECT_EQ(s.Text(), "a b c");
  EXPECT_EQ(s.TextBetween(1, 3), "b c");
  EXPECT_EQ(s.TextBetween(2, 99), "c");
  EXPECT_EQ(s.TextBetween(3, 3), "");
}

TEST(ContextTest, CorpusCounts) {
  Corpus corpus = MakeCorpus();
  EXPECT_EQ(corpus.num_documents(), 1u);
  EXPECT_EQ(corpus.NumSentences(), 1u);
  EXPECT_EQ(corpus.NumMentions(), 3u);
}

TEST(ContextTest, GetSentenceBoundsChecked) {
  Corpus corpus = MakeCorpus();
  EXPECT_TRUE(corpus.GetSentence(0, 0).ok());
  EXPECT_FALSE(corpus.GetSentence(1, 0).ok());
  EXPECT_FALSE(corpus.GetSentence(0, 5).ok());
}

TEST(CandidateExtractorTest, ExtractsTypedPairs) {
  Corpus corpus = MakeCorpus();
  CandidateExtractor extractor("chemical", "disease");
  auto candidates = extractor.Extract(corpus);
  // magnesium pairs with both diseases.
  ASSERT_EQ(candidates.size(), 2u);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.span1.entity_type, "chemical");
    EXPECT_EQ(c.span2.entity_type, "disease");
  }
}

TEST(CandidateExtractorTest, SameTypePairsEmittedOnce) {
  Corpus corpus = MakeCorpus();
  CandidateExtractor extractor("disease", "disease");
  auto candidates = extractor.Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);  // (quad, pre) once, not twice.
  EXPECT_LE(candidates[0].span1.word_start, candidates[0].span2.word_start);
}

TEST(CandidateExtractorTest, NoMatchingTypesYieldsEmpty) {
  Corpus corpus = MakeCorpus();
  CandidateExtractor extractor("gene", "disease");
  EXPECT_TRUE(extractor.Extract(corpus).empty());
}

TEST(CandidateViewTest, NavigationHelpers) {
  Corpus corpus = MakeCorpus();
  CandidateExtractor extractor("chemical", "disease");
  auto candidates = extractor.Extract(corpus);
  // Candidate 0: (magnesium, quadriplegic) — span2 precedes span1.
  const Candidate* mg_quad = nullptr;
  const Candidate* mg_pre = nullptr;
  for (const auto& c : candidates) {
    if (c.span2.canonical_id == "D_quad") mg_quad = &c;
    if (c.span2.canonical_id == "D_pre") mg_pre = &c;
  }
  ASSERT_NE(mg_quad, nullptr);
  ASSERT_NE(mg_pre, nullptr);

  CandidateView quad_view(&corpus, mg_quad, 0);
  EXPECT_EQ(quad_view.Span1Text(), "magnesium");
  EXPECT_EQ(quad_view.Span2Text(), "quadriplegic");
  EXPECT_FALSE(quad_view.Span1First());
  EXPECT_EQ(quad_view.TextBetween(), "after parenteral");
  EXPECT_EQ(quad_view.TokenDistance(), 2u);

  CandidateView pre_view(&corpus, mg_pre, 1);
  EXPECT_TRUE(pre_view.Span1First());
  EXPECT_EQ(pre_view.TextBetween(), "administration for");
  EXPECT_EQ(pre_view.index(), 1u);
}

TEST(CandidateViewTest, WindowHelpers) {
  Corpus corpus = MakeCorpus();
  CandidateExtractor extractor("chemical", "disease");
  auto candidates = extractor.Extract(corpus);
  const Candidate* mg_quad = nullptr;
  for (const auto& c : candidates) {
    if (c.span2.canonical_id == "D_quad") mg_quad = &c;
  }
  ASSERT_NE(mg_quad, nullptr);
  CandidateView view(&corpus, mg_quad, 0);
  // First span in sentence order is "quadriplegic" (index 6).
  auto left = view.WordsLeftOfFirst(2);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0], "who");
  EXPECT_EQ(left[1], "became");
  // Second span is "magnesium" (index 9).
  auto right = view.WordsRightOfSecond(2);
  ASSERT_EQ(right.size(), 2u);
  EXPECT_EQ(right[0], "administration");
  EXPECT_EQ(right[1], "for");
}

TEST(CandidateViewTest, AdjacentSpansHaveEmptyBetween) {
  Sentence s;
  s.words = {"aspirin", "headache"};
  s.mentions = {Mention{0, 1, "chemical", "C_asp"},
                Mention{1, 2, "disease", "D_ha"}};
  Document doc;
  doc.sentences.push_back(s);
  Corpus corpus;
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);
  CandidateView view(&corpus, &candidates[0], 0);
  EXPECT_EQ(view.TextBetween(), "");
  EXPECT_EQ(view.TokenDistance(), 0u);
  EXPECT_TRUE(view.WordsBetween().empty());
}

TEST(KnowledgeBaseTest, AddAndContains) {
  KnowledgeBase kb;
  kb.Add("Causes", "C_mg", "D_quad");
  kb.Add("Treats", "C_mg", "D_pre");
  EXPECT_TRUE(kb.Contains("Causes", "C_mg", "D_quad"));
  EXPECT_FALSE(kb.Contains("Causes", "D_quad", "C_mg"));  // Directional.
  EXPECT_FALSE(kb.Contains("Causes", "C_mg", "D_pre"));
  EXPECT_TRUE(kb.Contains("Treats", "C_mg", "D_pre"));
  EXPECT_FALSE(kb.Contains("Unknown", "C_mg", "D_quad"));
}

TEST(KnowledgeBaseTest, SubsetBookkeeping) {
  KnowledgeBase kb;
  kb.Add("A", "x", "y");
  kb.Add("A", "x", "y");  // Duplicate.
  kb.Add("A", "x", "z");
  kb.Add("B", "q", "r");
  EXPECT_EQ(kb.SubsetSize("A"), 2u);
  EXPECT_EQ(kb.SubsetSize("B"), 1u);
  EXPECT_EQ(kb.SubsetSize("C"), 0u);
  ASSERT_EQ(kb.subset_names().size(), 2u);
  EXPECT_EQ(kb.subset_names()[0], "A");
}

TEST(KnowledgeBaseTest, KeySeparatorAvoidsCollisions) {
  KnowledgeBase kb;
  kb.Add("S", "ab", "c");
  EXPECT_FALSE(kb.Contains("S", "a", "bc"));
}

}  // namespace
}  // namespace snorkel
