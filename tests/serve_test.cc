#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include "lf/applier.h"
#include "lf/compiled/program.h"
#include "lf/declarative.h"
#include "pipeline/export_snapshot.h"
#include "serve/incremental_applier.h"
#include "serve/label_service.h"
#include "serve/snapshot.h"
#include "synth/crossmodal.h"
#include "synth/synthetic_matrix.h"
#include "util/binary_io.h"
#include "util/hash.h"

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

GenerativeModelOptions FastGenOptions() {
  GenerativeModelOptions options;
  options.epochs = 60;
  return options;
}

/// A small synthetic Λ plus a generative model fit on it (independent
/// factors, so training is fast and deterministic).
struct FittedModel {
  LabelMatrix matrix;
  GenerativeModel model{FastGenOptions()};

  FittedModel() {
    auto synth = SyntheticMatrixGenerator::GenerateIid(
        /*num_points=*/400, /*num_lfs=*/6, /*accuracy=*/0.75,
        /*propensity=*/0.5, /*seed=*/7);
    EXPECT_TRUE(synth.ok()) << synth.status().ToString();
    matrix = synth->matrix;
    Status status = model.Fit(matrix);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    for (size_t j = 0; j < matrix.num_lfs(); ++j) {
      names.push_back("lf_" + std::to_string(j));
    }
    return names;
  }
  std::vector<uint64_t> Fingerprints() const {
    std::vector<uint64_t> fps;
    for (const auto& name : Names()) fps.push_back(Fnv1a64(name));
    return fps;
  }
};

// ------------------------------------------------------------- snapshots --

TEST(SnapshotTest, InMemoryRoundTripIsBitwiseIdentical) {
  FittedModel fx;
  auto snapshot = ModelSnapshot::Capture(fx.model, fx.Names(),
                                         fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  std::string bytes = SerializeSnapshot(*snapshot);
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Bitwise-equal weights...
  EXPECT_EQ(loaded->acc_weights, fx.model.accuracy_weights());
  EXPECT_EQ(loaded->lab_weights, fx.model.propensity_weights());
  EXPECT_EQ(loaded->lf_names, fx.Names());
  EXPECT_EQ(loaded->class_balance, fx.model.class_balance());

  // ...and identical posteriors on a held-out batch.
  auto restored = loaded->RestoreGenerativeModel();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::vector<double> expected = fx.model.PredictProba(fx.matrix);
  std::vector<double> actual = restored->PredictProba(fx.matrix);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "posterior drift at row " << i;
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  std::string path = TempPath("roundtrip.snk");
  ASSERT_TRUE(SaveSnapshot(*snapshot, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->acc_weights, snapshot->acc_weights);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorrelatedModelRoundTripsStructure) {
  auto synth = SyntheticMatrixGenerator::GenerateExample31(
      /*num_points=*/300, /*num_correlated=*/2, /*num_independent=*/3,
      /*corr_accuracy=*/0.7, /*indep_accuracy=*/0.75, /*seed=*/11);
  ASSERT_TRUE(synth.ok());
  GenerativeModelOptions options;
  options.epochs = 30;
  options.num_chains = 8;
  GenerativeModel model(options);
  ASSERT_TRUE(model.Fit(synth->matrix, {{0, 1}}).ok());

  std::vector<std::string> names;
  std::vector<uint64_t> fps;
  for (size_t j = 0; j < synth->matrix.num_lfs(); ++j) {
    names.push_back("lf_" + std::to_string(j));
    fps.push_back(j);
  }
  auto snapshot = ModelSnapshot::Capture(model, names, fps);
  ASSERT_TRUE(snapshot.ok());
  auto loaded = DeserializeSnapshot(SerializeSnapshot(*snapshot));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->correlations.size(), 1u);
  EXPECT_EQ(loaded->correlations[0].j, 0u);
  EXPECT_EQ(loaded->correlations[0].k, 1u);
  EXPECT_EQ(loaded->corr_weights, model.correlation_weights());
}

TEST(SnapshotTest, DiscModelRoundTrip) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());

  // Tiny classifier over 8 buckets.
  std::vector<FeatureVector> features(50);
  std::vector<double> soft(50);
  for (size_t i = 0; i < 50; ++i) {
    features[i].Add(static_cast<uint32_t>(i % 8), 1.0f);
    soft[i] = (i % 8) < 4 ? 0.9 : 0.1;
  }
  LogisticRegressionClassifier disc;
  ASSERT_TRUE(disc.Fit(features, 8, soft).ok());
  ASSERT_TRUE(snapshot->AttachDiscModel(disc, 8).ok());

  auto loaded = DeserializeSnapshot(SerializeSnapshot(*snapshot));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_disc_model);
  auto restored = loaded->RestoreDiscModel();
  ASSERT_TRUE(restored.ok());
  std::vector<double> expected = disc.PredictProba(features);
  std::vector<double> actual = restored->PredictProba(features);
  EXPECT_EQ(expected, actual);
}

TEST(SnapshotTest, BadMagicRejected) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = SerializeSnapshot(*snapshot);
  bytes[0] = 'X';
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, WrongVersionRejected) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = SerializeSnapshot(*snapshot);
  bytes[4] = static_cast<char>(kSnapshotVersion + 1);  // Version field.
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, TruncationAndCorruptionAreIOErrors) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = SerializeSnapshot(*snapshot);

  // Truncation at every prefix length must error, never crash.
  for (size_t len : {size_t{0}, size_t{3}, size_t{15}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto loaded = DeserializeSnapshot(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }

  // A flipped payload byte fails the checksum.
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x40;
  auto loaded = DeserializeSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SnapshotTest, RestoreWeightsValidatesShapes) {
  GenerativeModel model;
  EXPECT_EQ(model.RestoreWeights(0, {}, {}, {}, {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.RestoreWeights(2, {1.0}, {1.0, 1.0}, {}, {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      model.RestoreWeights(2, {1.0, 1.0}, {1.0, 1.0}, {0.5}, {}).code(),
      StatusCode::kInvalidArgument);
  // Unnormalized pair (j >= k).
  EXPECT_EQ(model
                .RestoreWeights(2, {1.0, 1.0}, {1.0, 1.0}, {0.5},
                                {CorrelationPair{1, 0}})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(model
                  .RestoreWeights(2, {1.0, 1.0}, {1.0, 1.0}, {0.5},
                                  {CorrelationPair{0, 1}})
                  .ok());
  EXPECT_TRUE(model.is_fit());
}

// -------------------------------------------------- incremental applier --

/// Corpus of `n` sentences, half "causes", half "treats".
struct ServeFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit ServeFixture(int num_docs = 100) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }
};

TEST(IncrementalApplierTest, MatchesPlainApplier) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  auto expected = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(expected.ok());
  IncrementalApplier applier;
  auto actual = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(actual->num_rows(), expected->num_rows());
  ASSERT_EQ(actual->num_lfs(), expected->num_lfs());
  for (size_t i = 0; i < expected->num_rows(); ++i) {
    for (size_t j = 0; j < expected->num_lfs(); ++j) {
      EXPECT_EQ(actual->At(i, j), expected->At(i, j));
    }
  }
}

TEST(IncrementalApplierTest, EditingOneLfRecomputesOneColumn) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  IncrementalApplier applier;
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, fx.candidates).ok());
  EXPECT_EQ(applier.stats().columns_computed, 3u);
  EXPECT_EQ(applier.stats().columns_reused, 0u);

  // Unchanged LF set: all columns reused.
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, fx.candidates).ok());
  EXPECT_EQ(applier.stats().columns_computed, 3u);
  EXPECT_EQ(applier.stats().columns_reused, 3u);

  // The §4.1 iterate loop: edit ONE LF (same name, new version ⇒ new
  // fingerprint); exactly one column recomputes.
  LabelingFunctionSet edited;
  edited.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  edited.Add(LabelingFunction("lf_treats", "v2",
                              [](const CandidateView& view) -> Label {
                                for (const auto& w : view.WordsBetween()) {
                                  if (w == "treats") return -1;
                                }
                                return kAbstain;
                              }));
  edited.Add(MakeDistanceLF("lf_far", 4, -1));
  auto matrix = applier.Apply(edited, fx.corpus, fx.candidates);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(applier.stats().columns_computed, 4u);  // +1, not +3.
  EXPECT_EQ(applier.stats().columns_reused, 5u);    // +2 untouched columns.
  EXPECT_EQ(matrix->At(1, 1), -1);                  // New column is live.
}

TEST(IncrementalApplierTest, AlternatingSetsBothStayCached) {
  // The pre-PR-5 cache remembered ONE candidate set, so alternating batches
  // (A/B/A/B) invalidated each other and got zero reuse. The multi-set
  // cache keeps a column map per set: after the first A and B, every later
  // request of either set reuses all of its columns.
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  std::vector<Candidate> a(fx.candidates.begin(), fx.candidates.begin() + 50);
  std::vector<Candidate> b(fx.candidates.begin() + 50, fx.candidates.end());
  auto expected_a = LFApplier().Apply(lfs, fx.corpus, a);
  auto expected_b = LFApplier().Apply(lfs, fx.corpus, b);
  ASSERT_TRUE(expected_a.ok() && expected_b.ok());

  IncrementalApplier applier;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const auto* batch : {&a, &b}) {
      auto matrix = applier.Apply(lfs, fx.corpus, *batch);
      ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
      const LabelMatrix& expected =
          batch == &a ? *expected_a : *expected_b;
      for (size_t i = 0; i < expected.num_rows(); ++i) {
        for (size_t j = 0; j < expected.num_lfs(); ++j) {
          EXPECT_EQ(matrix->At(i, j), expected.At(i, j));
        }
      }
    }
  }
  EXPECT_EQ(applier.stats().columns_computed, 6u);   // 3 per set, once.
  EXPECT_EQ(applier.stats().columns_reused, 12u);    // 2 cycles × 2 sets × 3.
  EXPECT_EQ(applier.stats().set_misses, 2u);
  EXPECT_EQ(applier.stats().set_hits, 4u);
  EXPECT_EQ(applier.cached_sets(), 2u);
  EXPECT_GT(applier.stats().bytes_cached, 0u);
}

TEST(IncrementalApplierTest, AppendOnlyStreamComputesOnlyTailRows) {
  // The "candidates arrive in a growing log" serving shape: a request whose
  // prefix is a cached set extends the cached columns instead of
  // recomputing all rows.
  ServeFixture fx(120);
  LabelingFunctionSet lfs = fx.MakeLfs();
  std::vector<Candidate> prefix(fx.candidates.begin(),
                                fx.candidates.begin() + 80);

  IncrementalApplier applier;
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, prefix).ok());
  EXPECT_EQ(applier.stats().appended_rows, 0u);

  auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  // The extended set's columns count as computed, but only the 40-row tails
  // actually ran the LFs.
  EXPECT_EQ(applier.stats().columns_computed, 6u);
  EXPECT_EQ(applier.stats().appended_rows, 3u * 40u);
  EXPECT_EQ(applier.stats().set_misses, 2u);

  // Bitwise-identical to a fresh stateless apply of the full set.
  auto expected = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < expected->num_rows(); ++i) {
    for (size_t j = 0; j < expected->num_lfs(); ++j) {
      EXPECT_EQ(matrix->At(i, j), expected->At(i, j));
    }
  }

  // The grown set is now cached whole: serving it again reuses everything.
  uint64_t computed_before = applier.stats().columns_computed;
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, fx.candidates).ok());
  EXPECT_EQ(applier.stats().columns_computed, computed_before);
}

TEST(IncrementalApplierTest, ByteBudgetEvictsLeastRecentlyUsedSet) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  std::vector<Candidate> a(fx.candidates.begin(), fx.candidates.begin() + 50);
  std::vector<Candidate> b(fx.candidates.begin() + 50, fx.candidates.end());
  const size_t set_bytes = 3 * 50 * sizeof(Label);  // 3 columns × 50 rows.

  // Budget fits ONE set's columns: the in-use set always survives (it is
  // pinned during Apply), the other is evicted.
  IncrementalApplier applier(IncrementalApplier::Options{
      .num_threads = 1, .cardinality = 2, .max_cached_bytes = set_bytes});
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, a).ok());
  EXPECT_EQ(applier.stats().bytes_cached, set_bytes);
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, b).ok());
  EXPECT_EQ(applier.cached_sets(), 1u);  // A evicted under pressure from B.
  EXPECT_EQ(applier.stats().evicted_sets, 1u);
  EXPECT_EQ(applier.stats().bytes_cached, set_bytes);

  // A comes back as a fresh miss (and evicts B in turn).
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, a).ok());
  EXPECT_EQ(applier.stats().columns_computed, 9u);
  EXPECT_EQ(applier.stats().evicted_sets, 2u);
}

TEST(IncrementalApplierTest, OwnedAndRefRequestsShareCachedColumns) {
  // An identity ref view fingerprints like the owned vector (content +
  // reported index), so the sharded tier's ref path and the owned path
  // share one set of cached columns.
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  IncrementalApplier applier;
  auto owned = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(applier.stats().columns_computed, 3u);

  std::vector<CandidateRef> refs = MakeCandidateRefs(fx.candidates);
  auto by_ref = applier.ApplyRefs(lfs, fx.corpus, refs);
  ASSERT_TRUE(by_ref.ok()) << by_ref.status().ToString();
  EXPECT_EQ(applier.stats().columns_computed, 3u);  // All reused.
  EXPECT_EQ(applier.stats().set_hits, 1u);
  for (size_t i = 0; i < owned->num_rows(); ++i) {
    for (size_t j = 0; j < owned->num_lfs(); ++j) {
      EXPECT_EQ(by_ref->At(i, j), owned->At(i, j));
    }
  }

  // A ref batch with DIFFERENT reported indices is a different set: an
  // index-dependent LF would label it differently, so it must not reuse.
  std::vector<CandidateRef> shifted = refs;
  for (auto& row : shifted) row.index += 1000;
  ASSERT_TRUE(applier.ApplyRefs(lfs, fx.corpus, shifted).ok());
  EXPECT_EQ(applier.stats().set_misses, 2u);
  EXPECT_EQ(applier.stats().columns_computed, 6u);
}

TEST(IncrementalApplierTest, BuggyLfSurfacesErrorWithoutPoisoningCache) {
  ServeFixture fx;
  LabelingFunctionSet lfs;
  lfs.Add(LabelingFunction("lf_buggy",
                           [](const CandidateView&) -> Label { return 7; }));
  IncrementalApplier applier;
  auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_FALSE(matrix.ok());
  EXPECT_EQ(matrix.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(applier.cached_columns(), 0u);
  // The failed request's set entry is reclaimed too: a stream of failing
  // requests over fresh sets must not grow the set map without bound
  // (zero-byte entries are invisible to the byte-budget eviction).
  EXPECT_EQ(applier.cached_sets(), 0u);
  for (int d = 0; d < 5; ++d) {
    ServeFixture other(20 + d);
    ASSERT_FALSE(applier.Apply(lfs, other.corpus, other.candidates).ok());
  }
  EXPECT_EQ(applier.cached_sets(), 0u);
}

TEST(IncrementalApplierTest, SameShapedSetsFromDifferentCorporaDoNotCollide) {
  // LFs read corpus TEXT, which the candidate-row hash does not cover: two
  // corpora whose candidates have identical span coordinates, entity types,
  // and canonical ids but different words must not share cached columns
  // (the fingerprint is salted with the corpus identity).
  ServeFixture fx;
  Corpus flipped;  // Same shape as fx.corpus, "causes"/"treats" swapped.
  for (int d = 0; d < 100; ++d) {
    Document doc;
    Sentence s;
    if (d % 2 == 0) {
      s.words = {"aspirin", "treats", "headache"};
    } else {
      s.words = {"magnesium", "causes", "quadriplegia"};
    }
    const std::string id = std::to_string(d);
    s.mentions = {Mention{0, 1, "chemical", "C" + id},
                  Mention{2, 3, "disease", "D" + id}};
    doc.sentences = {s};
    flipped.AddDocument(std::move(doc));
  }

  LabelingFunctionSet lfs = fx.MakeLfs();
  IncrementalApplier applier;
  auto original = applier.Apply(lfs, fx.corpus, fx.candidates);
  auto swapped = applier.Apply(lfs, flipped, fx.candidates);
  ASSERT_TRUE(original.ok() && swapped.ok());
  EXPECT_EQ(applier.stats().set_misses, 2u) << "corpora shared a cache set";
  // Row 0 reads "causes" in fx.corpus and "treats" in the flipped corpus.
  EXPECT_EQ(original->At(0, 0), 1);
  EXPECT_EQ(swapped->At(0, 0), kAbstain);
  EXPECT_EQ(swapped->At(0, 1), -1);
}

TEST(IncrementalApplierTest, ThrowingLfFailsClaimsWithoutWedgingTheSet) {
  // An LF that THROWS (user code) unwinds out of Apply. The claimed
  // columns must not be left in a computing state — that would block every
  // later request for this candidate set forever.
  ServeFixture fx;
  LabelingFunctionSet throwing;
  throwing.Add(LabelingFunction("lf_throws",
                                [](const CandidateView&) -> Label {
                                  throw std::runtime_error("LF bug");
                                }));
  IncrementalApplier applier;
  EXPECT_THROW(applier.Apply(throwing, fx.corpus, fx.candidates),
               std::runtime_error);
  EXPECT_EQ(applier.cached_columns(), 0u);
  EXPECT_EQ(applier.cached_sets(), 0u);

  // The same set is not wedged: it throws again (no silent cache), and a
  // healthy LF set over the same candidates serves normally.
  EXPECT_THROW(applier.Apply(throwing, fx.corpus, fx.candidates),
               std::runtime_error);
  auto matrix = applier.Apply(fx.MakeLfs(), fx.corpus, fx.candidates);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
}

TEST(IncrementalApplierTest, InvalidateDropsOneColumnEverywhere) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  std::vector<Candidate> a(fx.candidates.begin(), fx.candidates.begin() + 50);
  std::vector<Candidate> b(fx.candidates.begin() + 50, fx.candidates.end());
  IncrementalApplier applier;
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, a).ok());
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, b).ok());
  ASSERT_EQ(applier.cached_columns(), 6u);
  uint64_t bytes_before = applier.stats().bytes_cached;

  applier.Invalidate(lfs.at(1).fingerprint());
  EXPECT_EQ(applier.cached_columns(), 4u);  // Dropped from BOTH sets.
  EXPECT_EQ(applier.stats().bytes_cached,
            bytes_before - 2 * 50 * sizeof(Label));

  // Re-serving recomputes exactly the invalidated column per set.
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, a).ok());
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, b).ok());
  EXPECT_EQ(applier.stats().columns_computed, 8u);
  EXPECT_EQ(applier.cached_columns(), 6u);

  applier.InvalidateAll();
  EXPECT_EQ(applier.cached_sets(), 0u);
  EXPECT_EQ(applier.stats().bytes_cached, 0u);
}

TEST(IncrementalApplierTest, SerialAndParallelAgree) {
  ServeFixture fx(200);
  LabelingFunctionSet lfs = fx.MakeLfs();
  IncrementalApplier serial(
      IncrementalApplier::Options{.num_threads = 1, .cardinality = 2});
  IncrementalApplier parallel(
      IncrementalApplier::Options{.num_threads = 4, .cardinality = 2});
  auto a = serial.Apply(lfs, fx.corpus, fx.candidates);
  auto b = parallel.Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    for (size_t j = 0; j < a->num_lfs(); ++j) {
      EXPECT_EQ(a->At(i, j), b->At(i, j));
    }
  }
}

// ------------------------------------ concurrent column cache (TSan'd) --

/// Cell-for-cell equality against a reference matrix (bitwise: labels are
/// integers, so equality IS bit equality).
bool MatrixEquals(const LabelMatrix& actual, const LabelMatrix& expected) {
  if (actual.num_rows() != expected.num_rows() ||
      actual.num_lfs() != expected.num_lfs()) {
    return false;
  }
  for (size_t i = 0; i < expected.num_rows(); ++i) {
    for (size_t j = 0; j < expected.num_lfs(); ++j) {
      if (actual.At(i, j) != expected.At(i, j)) return false;
    }
  }
  return true;
}

TEST(ConcurrentCacheTest, HitStormSharesColumnsWithoutRecomputation) {
  ServeFixture fx(200);
  LabelingFunctionSet lfs = fx.MakeLfs();
  auto expected = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(expected.ok());

  IncrementalApplier applier(
      IncrementalApplier::Options{.num_threads = 1, .cardinality = 2});
  ASSERT_TRUE(applier.Apply(lfs, fx.corpus, fx.candidates).ok());  // Warm.

  constexpr int kThreads = 8;
  constexpr int kIterations = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int it = 0; it < kIterations; ++it) {
        auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
        if (!matrix.ok() || !MatrixEquals(*matrix, *expected)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Every concurrent call was answered from cache: the columns were
  // computed exactly once, by the warming call.
  EXPECT_EQ(applier.stats().columns_computed, 3u);
  EXPECT_EQ(applier.stats().columns_reused,
            3u * static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(ConcurrentCacheTest, DuplicateMissesCollapseToOneComputation) {
  // All threads miss the same cold (LF, set) keys simultaneously: exactly
  // one computation may run per column; losers wait for the winner and
  // still return the correct matrix.
  ServeFixture fx(200);
  LabelingFunctionSet lfs = fx.MakeLfs();
  auto expected = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  ASSERT_TRUE(expected.ok());

  for (int round = 0; round < 5; ++round) {
    IncrementalApplier applier(
        IncrementalApplier::Options{.num_threads = 1, .cardinality = 2});
    constexpr int kThreads = 8;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto matrix = applier.Apply(lfs, fx.corpus, fx.candidates);
        if (!matrix.ok() || !MatrixEquals(*matrix, *expected)) {
          mismatches.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(applier.stats().columns_computed, 3u)
        << "a duplicate miss escaped the collapse in round " << round;
    EXPECT_EQ(applier.stats().set_misses, 1u);
  }
}

TEST(ConcurrentCacheTest, EvictionUnderBytePressureRacesReadersSafely) {
  // Four alternating sets under a budget that fits roughly one: every Apply
  // triggers eviction while other threads read the entries being evicted.
  // Entries are shared_ptr-held and pinned while in use, so readers must
  // always see complete, correct columns.
  ServeFixture fx(160);
  LabelingFunctionSet lfs = fx.MakeLfs();
  constexpr size_t kSets = 4;
  std::vector<std::vector<Candidate>> sets;
  std::vector<LabelMatrix> expected;
  for (size_t s = 0; s < kSets; ++s) {
    sets.emplace_back(fx.candidates.begin() + s * 40,
                      fx.candidates.begin() + (s + 1) * 40);
    auto fresh = LFApplier().Apply(lfs, fx.corpus, sets.back());
    ASSERT_TRUE(fresh.ok());
    expected.push_back(std::move(*fresh));
  }

  IncrementalApplier applier(IncrementalApplier::Options{
      .num_threads = 1,
      .cardinality = 2,
      .max_cached_bytes = 3 * 40 * sizeof(Label)});
  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        size_t s = static_cast<size_t>(t + it) % kSets;
        auto matrix = applier.Apply(lfs, fx.corpus, sets[s]);
        if (!matrix.ok() || !MatrixEquals(*matrix, expected[s])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(applier.stats().evicted_sets, 0u);
  // Quiescent: nothing pinned, so the budget holds (= one resident set).
  EXPECT_LE(applier.stats().bytes_cached, 3u * 40u * sizeof(Label));
}

TEST(ConcurrentCacheTest, ConcurrentAppendExtensionsStayBitwise) {
  // Growing-log shape under concurrency: callers serve different prefixes
  // of one stream; extensions must reuse cached prefixes and stay bitwise.
  ServeFixture fx(160);
  LabelingFunctionSet lfs = fx.MakeLfs();
  constexpr size_t kSteps = 4;
  std::vector<std::vector<Candidate>> prefixes;
  std::vector<LabelMatrix> expected;
  for (size_t s = 1; s <= kSteps; ++s) {
    prefixes.emplace_back(fx.candidates.begin(),
                          fx.candidates.begin() + s * 40);
    auto fresh = LFApplier().Apply(lfs, fx.corpus, prefixes.back());
    ASSERT_TRUE(fresh.ok());
    expected.push_back(std::move(*fresh));
  }

  IncrementalApplier applier(
      IncrementalApplier::Options{.num_threads = 1, .cardinality = 2});
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t s = 0; s < kSteps; ++s) {
        auto matrix = applier.Apply(lfs, fx.corpus, prefixes[s]);
        if (!matrix.ok() || !MatrixEquals(*matrix, expected[s])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------------- label service --

/// Fits a model over the fixture's LF votes and captures a snapshot.
ModelSnapshot MakeServableSnapshot(const ServeFixture& fx,
                                   const LabelingFunctionSet& lfs) {
  auto matrix = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  EXPECT_TRUE(matrix.ok());
  GenerativeModelOptions options;
  options.epochs = 60;
  GenerativeModel model(options);
  EXPECT_TRUE(model.Fit(*matrix).ok());
  auto snapshot =
      ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
  EXPECT_TRUE(snapshot.ok());
  return *snapshot;
}

TEST(LabelServiceTest, ServesPosteriorsMatchingDirectModel) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = MakeServableSnapshot(fx, lfs);

  auto service = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  request.include_votes = true;
  auto response = service->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->posteriors.size(), fx.candidates.size());

  // Must equal the direct (offline) computation exactly.
  auto matrix = LFApplier().Apply(lfs, fx.corpus, fx.candidates);
  auto model = snapshot.RestoreGenerativeModel();
  ASSERT_TRUE(model.ok());
  std::vector<double> expected = model->PredictProba(*matrix);
  EXPECT_EQ(response->posteriors, expected);
  EXPECT_EQ(response->votes.num_lfs(), lfs.size());
  EXPECT_GT(response->latency_ms, 0.0);

  // "causes" rows serve positive, "treats" rows negative.
  EXPECT_EQ(response->hard_labels[0], 1);
  EXPECT_EQ(response->hard_labels[1], -1);
}

TEST(LabelServiceTest, RepeatBatchesHitTheColumnCache) {
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  auto service = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(service.ok());

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(service->Label(request).ok());
  }
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.num_requests, 5u);
  EXPECT_EQ(stats.num_candidates, 5 * fx.candidates.size());
  // Artifact identity rides along in the stats so operators can tell WHICH
  // snapshot answered: version 0 for a non-store snapshot, canonical
  // checksum always.
  EXPECT_EQ(stats.snapshot_version, 0u);
  EXPECT_EQ(stats.snapshot_checksum, snapshot.CanonicalChecksum());
  EXPECT_EQ(service->snapshot_version(), stats.snapshot_version);
  EXPECT_EQ(service->snapshot_checksum(), stats.snapshot_checksum);
  EXPECT_EQ(stats.lf_columns_computed, 3u);
  EXPECT_EQ(stats.lf_columns_reused, 12u);
  // Set-level cache counters surface through the service stats chain.
  EXPECT_EQ(stats.cache_set_misses, 1u);
  EXPECT_EQ(stats.cache_set_hits, 4u);
  EXPECT_EQ(stats.cache_bytes, 3 * fx.candidates.size() * sizeof(Label));
  EXPECT_EQ(stats.cache_appended_rows, 0u);
  EXPECT_GT(stats.throughput_cps, 0.0);
  EXPECT_GE(stats.p99_latency_ms, stats.p50_latency_ms);

  // The serving-layer escape hatch for corpus reuse the fingerprint cannot
  // observe: dropping the cache forces recomputation on the next request.
  service->InvalidateCache();
  EXPECT_EQ(service->stats().cache_bytes, 0u);
  ASSERT_TRUE(service->Label(request).ok());
  EXPECT_EQ(service->stats().lf_columns_computed, 6u);
}

TEST(LabelServiceTest, RegistryExportsMatchServiceStatsExactly) {
  // Every ServiceStats serving metric is also visible through the unified
  // registry, with equal values. The Default registry is process-global and
  // same-name instruments sum, so compare DELTAS around this service's
  // traffic rather than absolute exports.
  auto sample = [](const char* name,
                   obs::MetricType type) -> obs::MetricSample {
    for (auto& s : obs::MetricsRegistry::Default().Collect()) {
      if (s.name == name && s.type == type) return s;
    }
    return {};
  };
  const obs::MetricSample req_before =
      sample("snorkel_serve_requests_total", obs::MetricType::kCounter);
  const obs::MetricSample cand_before =
      sample("snorkel_serve_candidates_total", obs::MetricType::kCounter);
  const obs::MetricSample lat_before =
      sample("snorkel_serve_latency_ms", obs::MetricType::kHistogram);

  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  auto service = std::make_unique<Result<LabelService>>(
      LabelService::Create(snapshot, fx.MakeLfs()));
  ASSERT_TRUE(service->ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  for (int r = 0; r < 3; ++r) ASSERT_TRUE((*service)->Label(request).ok());

  const ServiceStats stats = (*service)->stats();
  EXPECT_EQ(sample("snorkel_serve_requests_total", obs::MetricType::kCounter)
                    .value -
                req_before.value,
            static_cast<double>(stats.num_requests));
  EXPECT_EQ(sample("snorkel_serve_candidates_total",
                   obs::MetricType::kCounter)
                    .value -
                cand_before.value,
            static_cast<double>(stats.num_candidates));
  const obs::MetricSample lat_after =
      sample("snorkel_serve_latency_ms", obs::MetricType::kHistogram);
  EXPECT_EQ(lat_after.histogram.count - lat_before.histogram.count,
            stats.latency.count);
  EXPECT_EQ(stats.latency.count, stats.num_requests);

  // The stats-side quantiles are computed from the SAME histogram the
  // registry exports — the service keeps no second latency store.
  EXPECT_DOUBLE_EQ(stats.p50_latency_ms, stats.latency.Quantile(0.5));
  EXPECT_DOUBLE_EQ(stats.p99_latency_ms, stats.latency.Quantile(0.99));

  // And once the service dies, its weak-registered instruments drop out of
  // the next Collect() instead of exporting stale values.
  service.reset();
  const obs::MetricSample req_after_death =
      sample("snorkel_serve_requests_total", obs::MetricType::kCounter);
  EXPECT_EQ(req_after_death.value, req_before.value);
}

TEST(LabelServiceTest, RefRequestsMatchOwnedRequestsBitwise) {
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  auto service = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(service.ok());

  LabelRequest owned;
  owned.corpus = &fx.corpus;
  owned.candidates = &fx.candidates;
  auto expected = service->Label(owned);
  ASSERT_TRUE(expected.ok());

  // The zero-copy ref form of the same request: identical response.
  std::vector<CandidateRef> refs = MakeCandidateRefs(fx.candidates);
  LabelRequest by_ref;
  by_ref.corpus = &fx.corpus;
  by_ref.candidate_refs = &refs;
  auto actual = service->Label(by_ref);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->posteriors, expected->posteriors);
  EXPECT_EQ(actual->hard_labels, expected->hard_labels);
  // The identity ref view shares the owned request's cached columns.
  EXPECT_EQ(service->stats().lf_columns_computed, 3u);
  EXPECT_EQ(service->stats().cache_set_hits, 1u);

  // Setting both forms (or neither) is a typed misuse.
  LabelRequest both;
  both.corpus = &fx.corpus;
  both.candidates = &fx.candidates;
  both.candidate_refs = &refs;
  EXPECT_EQ(service->Label(both).status().code(),
            StatusCode::kInvalidArgument);
  LabelRequest neither;
  neither.corpus = &fx.corpus;
  EXPECT_EQ(service->Label(neither).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelServiceTest, ConcurrentCachedCallersServeIdenticalResponses) {
  // The cached path no longer serializes callers behind an apply mutex:
  // concurrent requests over alternating sets must all hit the concurrent
  // cache and return exactly the single-threaded responses.
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  LabelService::Options options;
  options.num_threads = 1;  // Callers provide the concurrency.
  auto service = LabelService::Create(snapshot, fx.MakeLfs(), options);
  ASSERT_TRUE(service.ok());

  std::vector<Candidate> a(fx.candidates.begin(), fx.candidates.begin() + 50);
  std::vector<Candidate> b(fx.candidates.begin() + 50, fx.candidates.end());
  std::vector<std::vector<double>> expected;
  for (const auto* batch : {&a, &b}) {
    LabelRequest request;
    request.corpus = &fx.corpus;
    request.candidates = batch;
    auto response = service->Label(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(response->posteriors);
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 15;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        size_t which = static_cast<size_t>(t + it) % 2;
        LabelRequest request;
        request.corpus = &fx.corpus;
        request.candidates = which == 0 ? &a : &b;
        auto response = service->Label(request);
        if (!response.ok() || response->posteriors != expected[which]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Both sets stayed cached throughout: nothing recomputed after warmup.
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.lf_columns_computed, 6u);
  EXPECT_EQ(stats.cache_set_misses, 2u);
  EXPECT_EQ(stats.num_requests,
            2u + static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(LabelServiceTest, ThroughputIsWallClockNotSummedLatency) {
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  auto service = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(service.ok());

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  ASSERT_TRUE(service->Label(request).ok());
  // Idle gap between requests. The old definition divided by SUMMED request
  // latencies, which excludes this gap (and double-counts overlapped time
  // under concurrent callers); wall-clock throughput must include it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(service->Label(request).ok());

  ServiceStats stats = service->stats();
  EXPECT_GE(stats.busy_span_s, 0.09);
  EXPECT_LE(stats.throughput_cps,
            static_cast<double>(stats.num_candidates) / 0.09);
  EXPECT_GT(stats.throughput_cps, 0.0);
}

TEST(LabelServiceTest, RejectsMisalignedLfSet) {
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());

  // Wrong count.
  LabelingFunctionSet too_few;
  too_few.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  EXPECT_EQ(LabelService::Create(snapshot, std::move(too_few)).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong name in one column.
  LabelingFunctionSet renamed;
  renamed.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  renamed.Add(MakeKeywordBetweenLF("lf_cures", {"treat"}, -1));
  renamed.Add(MakeDistanceLF("lf_far", 4, -1));
  EXPECT_EQ(LabelService::Create(snapshot, std::move(renamed)).status().code(),
            StatusCode::kInvalidArgument);

  // Same name, changed behaviour (bumped version ⇒ new fingerprint).
  LabelingFunctionSet rebehaved;
  rebehaved.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  rebehaved.Add(LabelingFunction(
      "lf_treats", "v2", [](const CandidateView&) -> Label { return -1; }));
  rebehaved.Add(MakeDistanceLF("lf_far", 4, -1));
  EXPECT_EQ(
      LabelService::Create(snapshot, std::move(rebehaved)).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(LabelServiceTest, FromFileEndToEnd) {
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  std::string path = TempPath("service.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  auto service = LabelService::FromFile(path, fx.MakeLfs());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  EXPECT_TRUE(service->Label(request).ok());
  std::remove(path.c_str());
}

// ------------------------------------------------- pipeline export step --

TEST(ExportSnapshotTest, TrainedTaskProducesServableArtifact) {
  auto task = MakeCdrTask(/*seed=*/3, /*scale=*/0.1);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  ExportSnapshotOptions options;
  options.gen.epochs = 40;
  options.disc.epochs = 5;
  std::string path = TempPath("cdr.snk");
  ASSERT_TRUE(ExportSnapshot(*task, options, path).ok());

  auto service = LabelService::FromFile(path, task->lfs);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LabelRequest request;
  request.corpus = &task->corpus;
  request.candidates = &task->candidates;
  auto response = service->Label(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->posteriors.size(), task->candidates.size());

  // The embedded disc model restores too.
  auto snapshot = LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->has_disc_model);
  EXPECT_TRUE(snapshot->RestoreDiscModel().ok());
  std::remove(path.c_str());
}

// ------------------------------------- snapshot format v2 + evolution --

std::string TestDataPath(const std::string& name) {
  return std::string(SNORKEL_TEST_DATA_DIR) + "/" + name;
}

/// A fitted Dawid-Skene model over a small K-class crowd fixture, plus the
/// captured DAWD snapshot.
struct KClassFixture {
  CrowdServingTask task;
  ModelSnapshot snapshot;

  explicit KClassFixture(size_t num_items = 80, size_t num_workers = 8) {
    CrowdServingOptions options;
    options.num_items = num_items;
    options.num_workers = num_workers;
    auto made = MakeCrowdServingTask(options);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    task = std::move(*made);
    auto captured = TrainKClassSnapshot(task.lfs, task.corpus,
                                        task.candidates, task.cardinality);
    EXPECT_TRUE(captured.ok()) << captured.status().ToString();
    snapshot = std::move(*captured);
  }
};

/// Appends one extra section with an unrecognized tag (simulating a file
/// written by a FUTURE build) and bumps the section count.
std::string WithUnknownSection(std::string bytes, const std::string& payload) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 8, sizeof(count));
  ++count;
  std::memcpy(bytes.data() + 8, &count, sizeof(count));
  bytes.append("XTRA", 4);
  BinaryWriter framing;
  framing.WriteU64(payload.size());
  bytes += framing.buffer();
  bytes += payload;
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1a64(payload));
  bytes += checksum.buffer();
  return bytes;
}

/// Byte offset of section `index`'s payload within a v2 file.
size_t SectionPayloadOffset(const std::string& bytes, size_t index) {
  auto sections = ListSnapshotSections(bytes);
  EXPECT_TRUE(sections.ok());
  size_t pos = 4 + 4 + 4;  // magic | version | section count.
  for (size_t s = 0; s < index; ++s) {
    pos += 4 + 8 + (*sections)[s].payload_size + 8;
  }
  return pos + 4 + 8;  // This section's tag + size prefix.
}

TEST(SnapshotFormatTest, V2SectionedRoundTripWithDawidSkene) {
  KClassFixture fx;
  EXPECT_TRUE(fx.snapshot.has_ds_model);
  EXPECT_FALSE(fx.snapshot.has_gen_model);
  EXPECT_EQ(fx.snapshot.cardinality, 5);

  std::string bytes = SerializeSnapshot(fx.snapshot);
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lf_names, fx.snapshot.lf_names);
  EXPECT_EQ(loaded->lf_fingerprints, fx.snapshot.lf_fingerprints);
  EXPECT_EQ(loaded->cardinality, 5);
  EXPECT_EQ(loaded->ds_class_priors, fx.snapshot.ds_class_priors);
  EXPECT_EQ(loaded->ds_confusions, fx.snapshot.ds_confusions);
  EXPECT_EQ(loaded->skipped_sections, 0u);

  // Restored posteriors are bitwise the captured model's.
  auto restored = loaded->RestoreDawidSkeneModel();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  LFApplier applier(LFApplier::Options{0, fx.task.cardinality});
  auto matrix =
      applier.Apply(fx.task.lfs, fx.task.corpus, fx.task.candidates);
  ASSERT_TRUE(matrix.ok());
  auto original = fx.snapshot.RestoreDawidSkeneModel();
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(restored->PredictProbaFlat(*matrix),
            original->PredictProbaFlat(*matrix));

  // Model-kind mismatches are typed.
  EXPECT_EQ(loaded->RestoreGenerativeModel().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotFormatTest, V2SectionTableListsTagsInOrder) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = SerializeSnapshot(*snapshot);
  auto sections = ListSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  ASSERT_EQ(sections->size(), 2u);
  EXPECT_EQ((*sections)[0].tag, "LFMD");
  EXPECT_EQ((*sections)[1].tag, "GENM");
  for (const auto& section : *sections) {
    EXPECT_TRUE(section.known);
    EXPECT_TRUE(section.checksum_ok);
    EXPECT_GT(section.payload_size, 0u);
  }
}

TEST(SnapshotFormatTest, GoldenV1FixtureStillLoadsOnThisBinary) {
  // Committed bytes written by the v1 writer: the compatibility contract.
  auto loaded = LoadSnapshot(TestDataPath("golden_v1.snk"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lf_names,
            (std::vector<std::string>{"lf_a", "lf_b", "lf_c"}));
  EXPECT_EQ(loaded->lf_fingerprints, (std::vector<uint64_t>{11, 22, 33}));
  EXPECT_EQ(loaded->cardinality, 2);
  EXPECT_TRUE(loaded->has_gen_model);
  EXPECT_EQ(loaded->class_balance, 0.625);
  EXPECT_EQ(loaded->acc_weights, (std::vector<double>{0.5, -0.25, 1.5}));
  EXPECT_EQ(loaded->lab_weights, (std::vector<double>{0.125, 0.25, 0.375}));
  EXPECT_EQ(loaded->corr_weights, (std::vector<double>{0.75}));
  ASSERT_EQ(loaded->correlations.size(), 1u);
  EXPECT_EQ(loaded->correlations[0], (CorrelationPair{0, 1}));
  ASSERT_TRUE(loaded->has_disc_model);
  EXPECT_EQ(loaded->disc_weights,
            (std::vector<double>{0.5, -0.5, 0.25, 0.0}));
  EXPECT_EQ(loaded->disc_bias, -0.125);
  EXPECT_TRUE(loaded->RestoreGenerativeModel().ok());
  EXPECT_TRUE(loaded->RestoreDiscModel().ok());
  // V1 predates the DAWD section.
  EXPECT_FALSE(loaded->has_ds_model);
  EXPECT_EQ(loaded->RestoreDawidSkeneModel().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotFormatTest, GoldenV2FixtureLoadsExactly) {
  auto loaded = LoadSnapshot(TestDataPath("golden_v2.snk"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lf_names,
            (std::vector<std::string>{"worker_0", "worker_1"}));
  EXPECT_EQ(loaded->cardinality, 3);
  EXPECT_TRUE(loaded->has_ds_model);
  EXPECT_FALSE(loaded->has_gen_model);
  EXPECT_EQ(loaded->ds_class_priors, (std::vector<double>{0.25, 0.25, 0.5}));
  ASSERT_EQ(loaded->ds_confusions.size(), 18u);
  EXPECT_EQ(loaded->ds_confusions[0], 0.75);

  auto model = loaded->RestoreDawidSkeneModel();
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Prior-weighted diagonals of the exactly-representable fixtures.
  EXPECT_EQ(model->WorkerAccuracy(0), 0.75);
  EXPECT_EQ(model->WorkerAccuracy(1), 0.5);
  // Unanimous class-2 votes decode to the MAP label 2.
  auto matrix = LabelMatrix::FromDense({{2, 2}}, 3);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(model->PredictLabels(*matrix), (std::vector<Label>{2}));
}

TEST(SnapshotFormatTest, FreshV1BytesLoadOnThisBinary) {
  FittedModel fx;
  auto snapshot =
      ModelSnapshot::Capture(fx.model, fx.Names(), fx.Fingerprints());
  ASSERT_TRUE(snapshot.ok());
  auto v1_bytes = SerializeSnapshotV1(*snapshot);
  ASSERT_TRUE(v1_bytes.ok()) << v1_bytes.status().ToString();
  auto loaded = DeserializeSnapshot(*v1_bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->acc_weights, snapshot->acc_weights);
  EXPECT_EQ(loaded->lab_weights, snapshot->lab_weights);
  EXPECT_EQ(loaded->class_balance, snapshot->class_balance);
  EXPECT_TRUE(loaded->has_gen_model);

  // The legacy writer cannot express sections v1 never had.
  KClassFixture kclass(40, 4);
  EXPECT_EQ(SerializeSnapshotV1(kclass.snapshot).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotFormatTest, V1ArtifactServesBitwiseIdenticalToV2) {
  // The binary-snapshot regression contract: the same captured model,
  // shipped as v1 bytes and as v2 bytes, must serve byte-identical
  // responses through the refactored stack.
  ServeFixture fx;
  ModelSnapshot snapshot = MakeServableSnapshot(fx, fx.MakeLfs());
  auto v1_bytes = SerializeSnapshotV1(snapshot);
  ASSERT_TRUE(v1_bytes.ok());
  auto from_v1 = DeserializeSnapshot(*v1_bytes);
  auto from_v2 = DeserializeSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(from_v1.ok() && from_v2.ok());

  auto service_v1 = LabelService::Create(*from_v1, fx.MakeLfs());
  auto service_v2 = LabelService::Create(*from_v2, fx.MakeLfs());
  ASSERT_TRUE(service_v1.ok() && service_v2.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  request.include_votes = true;
  auto response_v1 = service_v1->Label(request);
  auto response_v2 = service_v2->Label(request);
  ASSERT_TRUE(response_v1.ok() && response_v2.ok());
  EXPECT_EQ(response_v1->posteriors, response_v2->posteriors);
  EXPECT_EQ(response_v1->hard_labels, response_v2->hard_labels);
  EXPECT_EQ(response_v1->cardinality, 2);
  EXPECT_TRUE(response_v1->class_posteriors.empty());
  for (size_t i = 0; i < response_v2->votes.num_rows(); ++i) {
    for (size_t j = 0; j < response_v2->votes.num_lfs(); ++j) {
      EXPECT_EQ(response_v1->votes.At(i, j), response_v2->votes.At(i, j));
    }
  }
}

TEST(SnapshotFormatTest, UnknownSectionIsSkippedNotFatal) {
  KClassFixture fx(40, 4);
  std::string bytes = SerializeSnapshot(fx.snapshot);
  std::string future =
      WithUnknownSection(bytes, "payload from a future format revision");
  auto loaded = DeserializeSnapshot(future);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->skipped_sections, 1u);
  EXPECT_EQ(loaded->ds_confusions, fx.snapshot.ds_confusions);

  // The section lister reports it as present-but-unknown.
  auto sections = ListSnapshotSections(future);
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->back().tag, "XTRA");
  EXPECT_FALSE(sections->back().known);
  EXPECT_TRUE(sections->back().checksum_ok);

  // But a CORRUPT unknown section is still fatal: skip-unknown skips
  // meaning, not integrity.
  std::string corrupt_future = future;
  corrupt_future[corrupt_future.size() - 12] ^= 0x01;  // Inside payload.
  auto rejected = DeserializeSnapshot(corrupt_future);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kIOError);
}

TEST(SnapshotFormatTest, PerSectionCorruptionIsTypedAndNamesTheSection) {
  KClassFixture fx(40, 4);
  std::string bytes = SerializeSnapshot(fx.snapshot);
  auto sections = ListSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ((*sections)[1].tag, "DAWD");

  // Flip one byte inside the DAWD payload: IOError naming the section.
  std::string corrupted = bytes;
  size_t offset = SectionPayloadOffset(bytes, 1);
  corrupted[offset + (*sections)[1].payload_size / 2] ^= 0x10;
  auto loaded = DeserializeSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("DAWD"), std::string::npos)
      << "error lacks section context: " << loaded.status().ToString();

  // LFMD corruption names LFMD.
  corrupted = bytes;
  corrupted[SectionPayloadOffset(bytes, 0) + 2] ^= 0x10;
  loaded = DeserializeSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("LFMD"), std::string::npos);
}

TEST(SnapshotFormatTest, HugeSectionLengthIsTruncationNotOverflow) {
  KClassFixture fx(40, 4);
  std::string bytes = SerializeSnapshot(fx.snapshot);
  // Overwrite the first section's u64 payload_size with a near-2^64 value:
  // a naive `size + 8 > remaining` check would wrap and pass. Must be a
  // typed truncation error, never a hang or OOB read.
  uint64_t huge = ~uint64_t{0} - 7;
  std::memcpy(bytes.data() + 12 + 4, &huge, sizeof(huge));
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  auto sections = ListSnapshotSections(bytes);
  ASSERT_FALSE(sections.ok());
  EXPECT_EQ(sections.status().code(), StatusCode::kIOError);
}

TEST(SnapshotFormatTest, V2TruncationAtEveryBoundaryIsIOError) {
  KClassFixture fx(40, 4);
  std::string bytes = SerializeSnapshot(fx.snapshot);
  // Mid-header, mid-section-table, mid-payload, mid-checksum, one short.
  for (size_t len : {size_t{0}, size_t{6}, size_t{13},
                     SectionPayloadOffset(bytes, 1) + 4, bytes.size() - 1}) {
    auto loaded = DeserializeSnapshot(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError)
        << "prefix length " << len;
  }
  // Trailing garbage after the declared sections is also detected.
  auto loaded = DeserializeSnapshot(bytes + "junk");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// ------------------------------------ LFCP (compiled LF) format evolution --

/// Mirrors GoldenLfcpLfs() in tools/make_golden_snapshots.cc EXACTLY —
/// fingerprints hash (name, version), so these calls reproduce the
/// committed fixture's columns. Keep the two in sync.
LabelingFunctionSet GoldenLfcpLfs() {
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("kw_causes", {"causes", "induced"}, 1));
  lfs.Add(MakeDirectionalKeywordLF("dir_treats", {"treats"}, 1, -1));
  lfs.Add(MakeRegexBetweenLF("rx_severe", "severe|acute", 1));
  lfs.Add(MakeContextKeywordLF("ctx_negated", {"no", "without"}, 3, -1));
  lfs.Add(MakeDistanceLF("dist_far", 8, -1));
  lfs.Add(MakeSentenceKeywordLF("sent_normal", {"normal"}, -1));
  lfs.Add(MakeDocumentKeywordLF("doc_history", {"history"}, -1));
  lfs.Add(LabelingFunction("opaque_short", "v1",
                           [](const CandidateView& view) -> Label {
                             return view.TokenDistance() <= 2 ? 1 : kAbstain;
                           }));
  return lfs;
}

/// A corpus exercising every compiled family: keyword/regex between,
/// directional (both orders), context window, sentence scope, and document
/// scope through a mention-free second sentence.
struct LfcpServeFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit LfcpServeFixture(int num_docs = 40) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      switch (d % 4) {
        case 0:
          s.words = {"magnesium", "causes", "severe", "quadriplegia"};
          s.mentions = {Mention{0, 1, "chemical", "C"},
                        Mention{3, 4, "disease", "D"}};
          break;
        case 1:
          s.words = {"aspirin", "treats", "headache"};
          s.mentions = {Mention{0, 1, "chemical", "C"},
                        Mention{2, 3, "disease", "D"}};
          break;
        case 2:
          // Disease precedes chemical: the directional LF's reverse arm.
          s.words = {"headache", "treats", "aspirin"};
          s.mentions = {Mention{2, 3, "chemical", "C"},
                        Mention{0, 1, "disease", "D"}};
          break;
        default:
          s.words = {"without", "magnesium", "history", "of", "quadriplegia",
                     "normal"};
          s.mentions = {Mention{1, 2, "chemical", "C"},
                        Mention{4, 5, "disease", "D"}};
          break;
      }
      doc.sentences = {s};
      if (d % 2 == 1) {
        // Mention-free sentence reachable only through document scope.
        Sentence extra;
        extra.words = {"prior", "history", "of", "migraine"};
        doc.sentences.push_back(extra);
      }
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }
};

TEST(SnapshotFormatTest, GoldenLfcpFixtureMatchesLiveCompileBitwise) {
  auto loaded = LoadSnapshot(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->compiled_lfs, nullptr);
  EXPECT_EQ(loaded->skipped_sections, 0u);
  EXPECT_EQ(loaded->compiled_lfs->num_lfs, 8u);
  // Every declarative family compiles; the opaque lambda stays interpreted.
  EXPECT_EQ(loaded->compiled_lfs->num_compiled(), 7u);
  ASSERT_EQ(loaded->compiled_lfs->slot_of_lf.size(), 8u);
  EXPECT_EQ(loaded->compiled_lfs->slot_of_lf[7], -1);

  LabelingFunctionSet lfs = GoldenLfcpLfs();
  EXPECT_TRUE(ProgramMatchesLfSet(*loaded->compiled_lfs, lfs));
  // The compiler is deterministic, so the committed LFCP bytes are exactly
  // what a live compile of the same LF set produces today.
  EXPECT_EQ(loaded->compiled_lfs->Encode(), CompileLfSet(lfs)->Encode());

  // The section lister knows the tag.
  auto bytes = ReadFileBytes(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(bytes.ok());
  auto sections = ListSnapshotSections(*bytes);
  ASSERT_TRUE(sections.ok());
  bool found = false;
  for (const auto& section : *sections) {
    if (section.tag == "LFCP") {
      found = true;
      EXPECT_TRUE(section.known);
      EXPECT_TRUE(section.checksum_ok);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SnapshotFormatTest, GoldenLfcpServesCompiledIdenticalToInterpreted) {
  auto loaded = LoadSnapshot(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  LfcpServeFixture fx;
  ASSERT_FALSE(fx.candidates.empty());

  LabelService::Options interpreted_options;
  interpreted_options.use_compiled_lfs = false;
  auto compiled = LabelService::Create(*loaded, GoldenLfcpLfs());
  auto interpreted =
      LabelService::Create(*loaded, GoldenLfcpLfs(), interpreted_options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  request.include_votes = true;
  auto a = compiled->Label(request);
  auto b = interpreted->Label(request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->posteriors, b->posteriors);
  EXPECT_EQ(a->hard_labels, b->hard_labels);
  EXPECT_EQ(a->votes.entries(), b->votes.entries());
  EXPECT_EQ(a->votes.row_offsets(), b->votes.row_offsets());
  EXPECT_GT(a->votes.entries().size(), 0u);
}

TEST(SnapshotFormatTest, LfcpSectionSkipsOnReadersThatDontKnowIt) {
  // Simulates an OLD binary reading a NEW snapshot: rewriting the LFCP tag
  // to one no build recognizes exercises the identical skip-unknown path an
  // LFCP-unaware reader takes. The checksum still verifies (it covers the
  // payload, not the tag), the model sections load, and serving falls back
  // to the interpreted LF path with identical output.
  auto bytes_read = ReadFileBytes(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(bytes_read.ok());
  std::string bytes = *bytes_read;
  auto sections = ListSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  size_t lfcp_index = sections->size();
  for (size_t s = 0; s < sections->size(); ++s) {
    if ((*sections)[s].tag == "LFCP") lfcp_index = s;
  }
  ASSERT_LT(lfcp_index, sections->size());
  size_t tag_offset = SectionPayloadOffset(bytes, lfcp_index) - 12;
  std::memcpy(bytes.data() + tag_offset, "ZZZZ", 4);

  auto skipped = DeserializeSnapshot(bytes);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped->skipped_sections, 1u);
  EXPECT_EQ(skipped->compiled_lfs, nullptr);

  auto full = LoadSnapshot(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(full.ok());
  LfcpServeFixture fx;
  auto service_skipped = LabelService::Create(*skipped, GoldenLfcpLfs());
  auto service_full = LabelService::Create(*full, GoldenLfcpLfs());
  ASSERT_TRUE(service_skipped.ok() && service_full.ok());
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto a = service_skipped->Label(request);
  auto b = service_full->Label(request);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->posteriors, b->posteriors);
  EXPECT_EQ(a->hard_labels, b->hard_labels);
}

TEST(SnapshotFormatTest, LfcpCorruptionIsTypedAndNamesTheSection) {
  auto bytes_read = ReadFileBytes(TestDataPath("golden_v2_lfcp.snk"));
  ASSERT_TRUE(bytes_read.ok());
  const std::string& bytes = *bytes_read;
  auto sections = ListSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  size_t lfcp_index = sections->size();
  for (size_t s = 0; s < sections->size(); ++s) {
    if ((*sections)[s].tag == "LFCP") lfcp_index = s;
  }
  ASSERT_LT(lfcp_index, sections->size());
  const size_t payload_offset = SectionPayloadOffset(bytes, lfcp_index);
  const size_t payload_size = (*sections)[lfcp_index].payload_size;

  // A flipped payload byte fails the section checksum, naming LFCP.
  std::string corrupted = bytes;
  corrupted[payload_offset + payload_size / 2] ^= 0x04;
  auto loaded = DeserializeSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("LFCP"), std::string::npos)
      << loaded.status().ToString();

  // A checksum-consistent but malformed program payload fails in the
  // program decoder — still a typed IOError naming the section.
  std::string bad_version = bytes;
  uint32_t version = 99;
  std::memcpy(bad_version.data() + payload_offset, &version,
              sizeof(version));
  uint64_t checksum = Fnv1a64(std::string_view(bad_version)
                                  .substr(payload_offset, payload_size));
  std::memcpy(bad_version.data() + payload_offset + payload_size, &checksum,
              sizeof(checksum));
  loaded = DeserializeSnapshot(bad_version);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("LFCP"), std::string::npos)
      << loaded.status().ToString();

  // Truncation inside the LFCP payload is framing-level truncation.
  loaded = DeserializeSnapshot(
      std::string_view(bytes).substr(0, payload_offset + payload_size / 2));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SnapshotFormatTest, LfcpMisalignedWithLfmdIsRejected) {
  ServeFixture fx;
  LabelingFunctionSet lfs = fx.MakeLfs();
  ModelSnapshot snapshot = MakeServableSnapshot(fx, lfs);

  // Wrong column count: a program compiled for a different LF set.
  snapshot.compiled_lfs = CompileLfSet(GoldenLfcpLfs());
  auto loaded = DeserializeSnapshot(SerializeSnapshot(snapshot));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("LFCP"), std::string::npos);

  // Same column count, different behaviour (fingerprint drift).
  LabelingFunctionSet renamed;
  renamed.Add(MakeKeywordBetweenLF("lf_causes_v2", {"cause"}, 1));
  renamed.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
  renamed.Add(MakeDistanceLF("lf_far", 4, -1));
  snapshot.compiled_lfs = CompileLfSet(renamed);
  loaded = DeserializeSnapshot(SerializeSnapshot(snapshot));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("LFCP"), std::string::npos);

  // The matching program round-trips fine.
  snapshot.compiled_lfs = CompileLfSet(lfs);
  loaded = DeserializeSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->compiled_lfs, nullptr);
  EXPECT_EQ(loaded->compiled_lfs->Encode(), snapshot.compiled_lfs->Encode());
}

// ------------------------------------------------- K-class label service --

TEST(KClassServiceTest, ServesClassPosteriorsMatchingDirectModel) {
  KClassFixture fx;
  auto service = LabelService::Create(fx.snapshot, fx.task.lfs);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(service->cardinality(), 5);

  LabelRequest request;
  request.corpus = &fx.task.corpus;
  request.candidates = &fx.task.candidates;
  request.include_votes = true;
  auto response = service->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const size_t n = fx.task.candidates.size();
  const size_t k = 5;
  EXPECT_EQ(response->cardinality, 5);
  EXPECT_TRUE(response->posteriors.empty()) << "binary field on a K-class "
                                               "response";
  ASSERT_EQ(response->class_posteriors.size(), n * k);
  ASSERT_EQ(response->hard_labels.size(), n);

  // Must equal the direct (offline) Dawid-Skene computation bitwise.
  LFApplier applier(LFApplier::Options{0, 5});
  auto matrix =
      applier.Apply(fx.task.lfs, fx.task.corpus, fx.task.candidates);
  ASSERT_TRUE(matrix.ok());
  auto model = fx.snapshot.RestoreDawidSkeneModel();
  ASSERT_TRUE(model.ok());
  auto expected = model->PredictProba(*matrix);
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t c = 0; c < k; ++c) {
      EXPECT_EQ(response->class_posteriors[i * k + c], expected[i][c])
          << "posterior drift at (" << i << ", " << c << ")";
      row_sum += response->class_posteriors[i * k + c];
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
  EXPECT_EQ(response->hard_labels, model->PredictLabels(*matrix));
  for (Label y : response->hard_labels) {
    EXPECT_GE(y, 1);
    EXPECT_LE(y, 5);
  }

  // The vote matrix is the K-class Λ.
  EXPECT_EQ(response->votes.cardinality(), 5);
  EXPECT_EQ(response->votes.num_lfs(), fx.task.lfs.size());
}

TEST(KClassServiceTest, ColumnCacheServesIdenticalKClassResponses) {
  KClassFixture fx(60, 6);
  LabelService::Options options;
  options.use_incremental_cache = true;
  auto service = LabelService::Create(fx.snapshot, fx.task.lfs, options);
  ASSERT_TRUE(service.ok());

  LabelRequest request;
  request.corpus = &fx.task.corpus;
  request.candidates = &fx.task.candidates;
  auto first = service->Label(request);
  auto second = service->Label(request);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->class_posteriors, second->class_posteriors);
  EXPECT_EQ(first->hard_labels, second->hard_labels);
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.lf_columns_computed, 6u);
  EXPECT_EQ(stats.lf_columns_reused, 6u);
}

TEST(KClassServiceTest, KClassSnapshotThroughV2FileAndMmap) {
  KClassFixture fx(60, 6);
  std::string path = TempPath("kclass.snk");
  ASSERT_TRUE(SaveSnapshot(fx.snapshot, path).ok());

  auto in_memory = LabelService::Create(fx.snapshot, fx.task.lfs);
  auto from_file = LabelService::FromFile(path, fx.task.lfs);
  ASSERT_TRUE(in_memory.ok() && from_file.ok())
      << from_file.status().ToString();
  LabelRequest request;
  request.corpus = &fx.task.corpus;
  request.candidates = &fx.task.candidates;
  auto expected = in_memory->Label(request);
  auto actual = from_file->Label(request);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(actual->class_posteriors, expected->class_posteriors);
  EXPECT_EQ(actual->hard_labels, expected->hard_labels);
  std::remove(path.c_str());
}

TEST(KClassServiceTest, BinaryDawidSkeneSnapshotServesScalarPosterior) {
  // A cardinality-2 Dawid-Skene snapshot (no GENM section) is a valid
  // artifact and serves the scalar posterior P(class 0) = P(y = +1).
  CrowdServingOptions options;
  options.num_items = 60;
  options.num_workers = 6;
  options.cardinality = 2;
  auto task = MakeCrowdServingTask(options);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  for (Label y : task->gold) {
    EXPECT_TRUE(y == 1 || y == -1) << "binary crowd gold must be ±1";
  }
  auto snapshot =
      TrainKClassSnapshot(task->lfs, task->corpus, task->candidates, 2);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE(snapshot->has_ds_model);
  EXPECT_FALSE(snapshot->has_gen_model);
  EXPECT_EQ(snapshot->cardinality, 2);

  auto service = LabelService::Create(*snapshot, task->lfs);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(service->cardinality(), 2);
  LabelRequest request;
  request.corpus = &task->corpus;
  request.candidates = &task->candidates;
  auto response = service->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->cardinality, 2);
  EXPECT_TRUE(response->class_posteriors.empty());
  ASSERT_EQ(response->posteriors.size(), task->candidates.size());

  // Scalar = the DS model's class-0 column, bitwise.
  LFApplier applier(LFApplier::Options{0, 2});
  auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
  ASSERT_TRUE(matrix.ok());
  auto model = snapshot->RestoreDawidSkeneModel();
  ASSERT_TRUE(model.ok());
  std::vector<double> flat = model->PredictProbaFlat(*matrix);
  for (size_t i = 0; i < response->posteriors.size(); ++i) {
    EXPECT_EQ(response->posteriors[i], flat[i * 2]) << "row " << i;
    EXPECT_TRUE(response->hard_labels[i] == 1 ||
                response->hard_labels[i] == -1 ||
                response->hard_labels[i] == kAbstain);
  }
}

TEST(KClassServiceTest, KClassSnapshotWithoutDawdSectionRejected) {
  KClassFixture fx(40, 4);
  ModelSnapshot stripped = fx.snapshot;
  stripped.has_ds_model = false;
  stripped.ds_class_priors.clear();
  stripped.ds_confusions.clear();
  auto service = LabelService::Create(stripped, fx.task.lfs);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(KClassServiceTest, OutOfRangeWorkerVoteFailsTypedWithLfName) {
  KClassFixture fx(40, 4);
  // Same (name, version) fingerprints as the snapshot — the replicas accept
  // the set — but worker_0 now votes outside {1..5}.
  LabelingFunctionSet bad;
  bad.Add(LabelingFunction("worker_0", "v1",
                           [](const CandidateView&) -> Label { return 9; }));
  for (size_t j = 1; j < fx.task.lfs.size(); ++j) {
    bad.Add(fx.task.lfs.at(j));
  }
  auto service = LabelService::Create(fx.snapshot, std::move(bad));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LabelRequest request;
  request.corpus = &fx.task.corpus;
  request.candidates = &fx.task.candidates;
  auto response = service->Label(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find("worker_0"), std::string::npos)
      << "error lacks the offending LF's name: "
      << response.status().ToString();
}

// ------------------------------------------------------------ binary io --

TEST(BinaryIoTest, ScalarAndVectorRoundTrip) {
  BinaryWriter writer;
  writer.WriteU32(7);
  writer.WriteF64(-1.5);
  writer.WriteString("hello");
  writer.WriteF64Vector({1.0, 2.0});
  writer.WriteStringVector({"a", "bb"});
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU32(), 7u);
  EXPECT_EQ(reader.ReadF64(), -1.5);
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadF64Vector(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(reader.ReadStringVector(), (std::vector<std::string>{"a", "bb"}));
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BinaryIoTest, TruncatedReadLatchesError) {
  BinaryWriter writer;
  writer.WriteU32(7);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU64(), 0u);  // 8 bytes requested, 4 available.
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
  EXPECT_EQ(reader.ReadU32(), 0u);  // Still latched.
}

}  // namespace
}  // namespace snorkel
