#include "core/dawid_skene.h"

#include <gtest/gtest.h>

#include "core/majority_vote.h"
#include "eval/metrics.h"
#include "synth/synthetic_matrix.h"
#include "util/random.h"

namespace snorkel {
namespace {

/// Simulates a K-class crowdsourcing matrix: each worker votes on each item
/// with probability `propensity`, is correct with probability equal to its
/// accuracy, and otherwise picks a uniformly random wrong class.
struct CrowdData {
  LabelMatrix matrix;
  std::vector<Label> gold;
};

CrowdData MakeCrowd(size_t num_items, const std::vector<double>& worker_accs,
                    int cardinality, double propensity, uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> gold(num_items);
  std::vector<std::vector<Label>> dense(
      num_items, std::vector<Label>(worker_accs.size(), kAbstain));
  for (size_t i = 0; i < num_items; ++i) {
    gold[i] = static_cast<Label>(rng.UniformInt(1, cardinality));
    for (size_t j = 0; j < worker_accs.size(); ++j) {
      if (!rng.Bernoulli(propensity)) continue;
      if (rng.Bernoulli(worker_accs[j])) {
        dense[i][j] = gold[i];
      } else {
        Label wrong = static_cast<Label>(rng.UniformInt(1, cardinality - 1));
        if (wrong >= gold[i]) ++wrong;
        dense[i][j] = wrong;
      }
    }
  }
  auto matrix = LabelMatrix::FromDense(dense, cardinality);
  EXPECT_TRUE(matrix.ok());
  return CrowdData{std::move(matrix).value(), std::move(gold)};
}

TEST(DawidSkeneTest, RejectsEmptyMatrix) {
  auto m = LabelMatrix::FromDense({});
  ASSERT_TRUE(m.ok());
  DawidSkeneModel model;
  EXPECT_FALSE(model.Fit(*m).ok());
}

TEST(DawidSkeneTest, RecoversWorkerAccuraciesFiveClasses) {
  std::vector<double> accs = {0.9, 0.9, 0.7, 0.5, 0.3};
  CrowdData crowd = MakeCrowd(2000, accs, 5, 0.8, 17);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  for (size_t j = 0; j < accs.size(); ++j) {
    EXPECT_NEAR(model.WorkerAccuracy(j), accs[j], 0.08) << "worker " << j;
  }
}

TEST(DawidSkeneTest, BeatsPluralityVoteWithHeterogeneousWorkers) {
  // Two excellent workers among six noisy ones; weighting should win.
  std::vector<double> accs = {0.95, 0.95, 0.45, 0.45, 0.45, 0.45};
  CrowdData crowd = MakeCrowd(3000, accs, 5, 0.7, 18);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  double ds_acc = MulticlassAccuracy(model.PredictLabels(crowd.matrix),
                                     crowd.gold);
  double mv_acc = MulticlassAccuracy(PluralityVotePredictions(crowd.matrix),
                                     crowd.gold);
  EXPECT_GT(ds_acc, mv_acc + 0.05);
}

TEST(DawidSkeneTest, BinaryMatrixLabelMapping) {
  auto data = SyntheticMatrixGenerator::GenerateIid(1500, 6, 0.85, 0.7, 19);
  ASSERT_TRUE(data.ok());
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  EXPECT_EQ(model.cardinality(), 2);
  EXPECT_EQ(model.ClassToLabel(0), 1);
  EXPECT_EQ(model.ClassToLabel(1), -1);
  EXPECT_EQ(model.LabelToClass(1), 0u);
  EXPECT_EQ(model.LabelToClass(-1), 1u);
  auto preds = model.PredictLabels(data->matrix);
  auto conf = ComputeBinaryConfusion(preds, data->gold);
  EXPECT_GT(conf.Accuracy(), 0.9);
}

TEST(DawidSkeneTest, AgreesWithGenerativeModelOnBinaryIid) {
  // Both models estimate the same latent-class structure on independent
  // binary data; their accuracy estimates should be close.
  auto data = SyntheticMatrixGenerator::GenerateIid(4000, 5, 0.8, 0.6, 20);
  ASSERT_TRUE(data.ok());
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(data->matrix).ok());
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(model.WorkerAccuracy(j), 0.8, 0.07);
  }
}

TEST(DawidSkeneTest, PosteriorsSumToOne) {
  CrowdData crowd = MakeCrowd(200, {0.8, 0.6, 0.4}, 3, 0.9, 21);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  auto proba = model.PredictProba(crowd.matrix);
  for (const auto& row : proba) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DawidSkeneTest, AllAbstainRowGetsClassPriors) {
  auto m = LabelMatrix::FromDense({{1, 1}, {1, 1}, {1, 0}, {2, 2}, {0, 0}}, 3);
  ASSERT_TRUE(m.ok());
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(*m).ok());
  auto proba = model.PredictProba(*m);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(proba[4][c], model.class_priors()[c], 1e-9);
  }
}

TEST(DawidSkeneTest, EstimatesClassImbalance) {
  // 80/20 binary imbalance with accurate workers.
  Rng rng(22);
  std::vector<std::vector<Label>> dense;
  for (int i = 0; i < 2000; ++i) {
    Label y = rng.Bernoulli(0.8) ? 1 : -1;
    std::vector<Label> row(4, kAbstain);
    for (int j = 0; j < 4; ++j) {
      row[static_cast<size_t>(j)] =
          rng.Bernoulli(0.9) ? y : static_cast<Label>(-y);
    }
    dense.push_back(std::move(row));
  }
  auto m = LabelMatrix::FromDense(dense);
  ASSERT_TRUE(m.ok());
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(*m).ok());
  // Class index 0 is +1.
  EXPECT_NEAR(model.class_priors()[0], 0.8, 0.05);
}

TEST(DawidSkeneTest, UniformPriorsWhenBalanceEstimationDisabled) {
  CrowdData crowd = MakeCrowd(500, {0.8, 0.7}, 4, 0.9, 23);
  DawidSkeneOptions options;
  options.estimate_class_balance = false;
  DawidSkeneModel model(options);
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  for (double p : model.class_priors()) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(DawidSkeneTest, ConvergesBeforeMaxIters) {
  CrowdData crowd = MakeCrowd(800, {0.9, 0.8, 0.7}, 3, 0.9, 24);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  EXPECT_LT(model.iterations(), 200);
}

TEST(DawidSkeneTest, ConfusionRowsAreDistributions) {
  CrowdData crowd = MakeCrowd(500, {0.75, 0.55}, 4, 0.8, 25);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());
  for (size_t j = 0; j < 2; ++j) {
    for (size_t c = 0; c < 4; ++c) {
      double sum = 0.0;
      for (double v : model.Confusion(j)[c]) sum += v;
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(DawidSkeneTest, FlatPosteriorsMatchNestedAndAnyThreadCount) {
  CrowdData crowd = MakeCrowd(700, {0.8, 0.6, 0.45, 0.7}, 5, 0.7, 31);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());

  auto nested = model.PredictProba(crowd.matrix);
  std::vector<double> flat = model.PredictProbaFlat(crowd.matrix);
  ASSERT_EQ(flat.size(), nested.size() * 5);
  for (size_t i = 0; i < nested.size(); ++i) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(flat[i * 5 + c], nested[i][c])
          << "flat/nested drift at (" << i << ", " << c << ")";
    }
  }

  // The serving kernel shards over fixed-grain rows: any thread count must
  // produce the same bits.
  for (int threads : {1, 2, 8}) {
    DawidSkeneOptions options;
    options.num_threads = threads;
    DawidSkeneModel threaded(options);
    ASSERT_TRUE(threaded
                    .Restore(model.cardinality(), model.num_lfs(),
                             model.class_priors(), model.FlatConfusions())
                    .ok());
    EXPECT_EQ(threaded.PredictProbaFlat(crowd.matrix), flat)
        << "thread count " << threads << " drifted";
  }
}

TEST(DawidSkeneTest, RestoreRoundTripsBitwise) {
  CrowdData crowd = MakeCrowd(400, {0.85, 0.5, 0.65}, 3, 0.75, 13);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(crowd.matrix).ok());

  DawidSkeneModel restored;
  ASSERT_TRUE(restored
                  .Restore(model.cardinality(), model.num_lfs(),
                           model.class_priors(), model.FlatConfusions())
                  .ok());
  EXPECT_TRUE(restored.is_fit());
  EXPECT_EQ(restored.cardinality(), 3);
  EXPECT_EQ(restored.num_lfs(), 3u);
  EXPECT_EQ(restored.PredictProbaFlat(crowd.matrix),
            model.PredictProbaFlat(crowd.matrix));
  EXPECT_EQ(restored.PredictLabels(crowd.matrix),
            model.PredictLabels(crowd.matrix));
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(restored.WorkerAccuracy(j), model.WorkerAccuracy(j));
  }
}

TEST(DawidSkeneTest, RestoreValidatesShapesAndPositivity) {
  DawidSkeneModel model;
  // Wrong prior length.
  EXPECT_EQ(model.Restore(3, 1, {0.5, 0.5}, std::vector<double>(9, 1.0 / 3))
                .code(),
            StatusCode::kInvalidArgument);
  // Wrong confusion length.
  EXPECT_EQ(model.Restore(3, 1, {0.4, 0.3, 0.3}, std::vector<double>(8, 0.1))
                .code(),
            StatusCode::kInvalidArgument);
  // A zero probability would be log'd to -inf.
  std::vector<double> with_zero(9, 1.0 / 3);
  with_zero[4] = 0.0;
  EXPECT_EQ(model.Restore(3, 1, {0.4, 0.3, 0.3}, with_zero).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(model.is_fit());
  EXPECT_TRUE(
      model.Restore(3, 1, {0.4, 0.3, 0.3}, std::vector<double>(9, 1.0 / 3))
          .ok());
  EXPECT_TRUE(model.is_fit());
}

}  // namespace
}  // namespace snorkel
