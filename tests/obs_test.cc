// Unit tests for the observability subsystem (src/obs): metrics instruments
// and registry, histogram quantile edge cases, the Prometheus renderer, the
// tracing runtime (context propagation, span buffers, the bounded ring),
// and the span wire codec + Chrome trace-event export.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace snorkel {
namespace obs {
namespace {

// ------------------------------------------------------- histogram edges --

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h("h", LatencyBucketsMs());
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(0.99), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.max, 0.0);
}

TEST(HistogramTest, SingleObservationPinsEveryQuantileNearIt) {
  Histogram h("h", LatencyBucketsMs());
  h.Observe(3.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 3.0);
  EXPECT_EQ(snap.Mean(), 3.0);
  // One sample: every quantile interpolates inside its bucket (2, 4] and is
  // clamped to the observed max.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GT(snap.Quantile(q), 2.0) << "q=" << q;
    EXPECT_LE(snap.Quantile(q), 3.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllSamplesInOneBucketInterpolateWithinItsEdges) {
  Histogram h("h", {1.0, 10.0, 100.0});
  for (int i = 0; i < 1000; ++i) h.Observe(5.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.counts[1], 1000u);
  double p50 = snap.Quantile(0.5);
  double p99 = snap.Quantile(0.99);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 5.0);  // Clamped by max, never past it.
  EXPECT_LE(p99, 5.0);
  EXPECT_LE(p50, p99);
  EXPECT_EQ(snap.max, 5.0);
}

TEST(HistogramTest, OverflowBucketInterpolatesTowardMaxAndStaysFinite) {
  Histogram h("h", {1.0, 2.0});
  for (int i = 0; i < 100; ++i) h.Observe(1000.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.counts[2], 100u);
  double p99 = snap.Quantile(0.99);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 1000.0);
}

TEST(HistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram h("h", {10.0, 1.0, 10.0, 5.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 5.0, 10.0}));
}

TEST(HistogramTest, MergeSumsPopulationsAndRejectsMismatchedBounds) {
  Histogram a("a", {1.0, 2.0});
  Histogram b("b", {1.0, 2.0});
  a.Observe(0.5);
  a.Observe(5.0);
  b.Observe(1.5);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);
  EXPECT_DOUBLE_EQ(merged.sum, 7.0);
  EXPECT_EQ(merged.max, 5.0);

  // An empty snapshot adopts the other's bounds wholesale.
  HistogramSnapshot empty;
  empty.Merge(b.Snapshot());
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.bounds, b.Snapshot().bounds);

  // Mismatched bounds must NOT merge wrong — the merge is a no-op.
  Histogram c("c", {10.0, 20.0});
  c.Observe(15.0);
  HistogramSnapshot guarded = a.Snapshot();
  guarded.Merge(c.Snapshot());
  EXPECT_EQ(guarded.count, 2u);
}

TEST(HistogramTest, ConcurrentObserveLosesNothing) {
  Histogram h("h", LatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.5);
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, 1.5 * kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, SameNameInstrumentsSumAndExpiredOnesPrune) {
  MetricsRegistry registry;
  auto c1 = registry.CreateCounter("requests_total");
  auto c2 = registry.CreateCounter("requests_total");
  c1->Increment(3);
  c2->Increment(4);
  auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "requests_total");
  EXPECT_EQ(samples[0].value, 7.0);

  // Dropping an owner removes its contribution at the next Collect — the
  // registry holds weak_ptrs only.
  c2.reset();
  samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 3.0);
}

TEST(MetricsRegistryTest, CounterAndGaugeSharingANameStayDistinct) {
  MetricsRegistry registry;
  auto c = registry.CreateCounter("x");
  auto g = registry.CreateGauge("x");
  c->Increment(1);
  g->Set(9.0);
  auto samples = registry.Collect();
  EXPECT_EQ(samples.size(), 2u);
}

TEST(MetricsRegistryTest, CallbacksExportForeignValuesUntilUnregistered) {
  MetricsRegistry registry;
  std::atomic<uint64_t> foreign{41};
  uint64_t token = registry.RegisterCallback(
      "foreign_total", MetricType::kCounter,
      [&foreign] { return static_cast<double>(foreign.load()); });
  foreign.store(42);
  auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 42.0);
  registry.UnregisterCallback(token);
  EXPECT_TRUE(registry.Collect().empty());
}

TEST(MetricsRegistryTest, HistogramsWithSameNameMergeInCollect) {
  MetricsRegistry registry;
  auto h1 = registry.CreateHistogram("latency_ms", LatencyBucketsMs());
  auto h2 = registry.CreateHistogram("latency_ms", LatencyBucketsMs());
  h1->Observe(1.0);
  h2->Observe(100.0);
  auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].histogram.count, 2u);
  EXPECT_EQ(samples[0].histogram.max, 100.0);
}

TEST(MetricsRegistryTest, PrometheusTextHasTypesBucketsSumAndCount) {
  MetricsRegistry registry;
  auto c = registry.CreateCounter("snorkel_test_requests_total");
  auto g = registry.CreateGauge("snorkel_test_depth");
  auto h = registry.CreateHistogram("snorkel_test_latency_ms", {1.0, 2.0});
  c->Increment(5);
  g->Set(2.5);
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);
  std::string text = RenderPrometheusText(registry.Collect());
  EXPECT_NE(text.find("# TYPE snorkel_test_requests_total counter\n"
                      "snorkel_test_requests_total 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("snorkel_test_depth 2.500000\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE snorkel_test_latency_ms histogram"),
            std::string::npos);
  // Bucket counts are CUMULATIVE and +Inf equals _count.
  EXPECT_NE(text.find("snorkel_test_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("snorkel_test_latency_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("snorkel_test_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  // 101.0 is integral, so it renders without a mantissa.
  EXPECT_NE(text.find("snorkel_test_latency_ms_sum 101\n"),
            std::string::npos);
  EXPECT_NE(text.find("snorkel_test_latency_ms_count 3\n"),
            std::string::npos);
}

// ----------------------------------------------------------------- tracing --

/// Deterministic clock for span timing; SetClockForTest(nullptr) restores.
uint64_t g_fake_now = 0;
uint64_t FakeClock() { return g_fake_now; }

struct TraceFixture : ::testing::Test {
  void SetUp() override {
    SetTracingEnabled(false);
    SetSpanRingCapacityForTest(16384);  // Also clears the ring.
    g_fake_now = 1'000'000'000;
    SetClockForTest(&FakeClock);
  }
  void TearDown() override {
    SetClockForTest(nullptr);
    SetTracingEnabled(false);
    SetSpanRingCapacityForTest(16384);
  }
};

TEST_F(TraceFixture, UntracedThreadRecordsNothing) {
  {
    TraceSpan span("stage");
    EXPECT_FALSE(span.active());
    g_fake_now += 1000;
  }
  FlushThreadSpans();
  EXPECT_TRUE(CollectSpans(0, /*drain=*/true).empty());
}

TEST_F(TraceFixture, NestedSpansRecordParentChainAndFakeClockTimes) {
  TraceContext ctx;
  ctx.trace_id = 77;
  ScopedTraceContext scope(ctx);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    g_fake_now += 5'000'000;  // 5 ms.
    {
      TraceSpan inner("inner");
      inner_id = inner.span_id();
      inner.Annotate("rows=3");
      inner.Annotate("cache=hit");
      g_fake_now += 2'000'000;  // 2 ms.
    }
  }
  std::vector<Span> spans = CollectSpans(77, /*drain=*/true);
  ASSERT_EQ(spans.size(), 2u);
  // Inner closed first; both carry the ambient trace id.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[0].span_id, inner_id);
  EXPECT_EQ(spans[0].annotation, "rows=3 cache=hit");
  EXPECT_EQ(spans[0].end_ns - spans[0].start_ns, 2'000'000u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].end_ns - spans[1].start_ns, 7'000'000u);
}

TEST_F(TraceFixture, ScopedContextRestoresOnExit) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    TraceContext ctx;
    ctx.trace_id = 5;
    ctx.parent_span = 6;
    ScopedTraceContext scope(ctx);
    EXPECT_EQ(CurrentTraceContext().trace_id, 5u);
    EXPECT_EQ(CurrentTraceContext().parent_span, 6u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST_F(TraceFixture, EmitSpanRecordsRetroactivelyAndIgnoresInvalidContext) {
  TraceContext none;
  EXPECT_EQ(EmitSpan(none, "dead", 1, 2), 0u);
  TraceContext ctx;
  ctx.trace_id = 9;
  ctx.parent_span = 4;
  uint64_t id = EmitSpan(ctx, "queue_wait", 100, 250, "depth=7");
  EXPECT_NE(id, 0u);
  std::vector<Span> spans = CollectSpans(9, /*drain=*/true);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, id);
  EXPECT_EQ(spans[0].parent_id, 4u);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].end_ns, 250u);
  EXPECT_EQ(spans[0].annotation, "depth=7");
}

TEST_F(TraceFixture, CollectFiltersByTraceIdAndPeekKeepsSpans) {
  TraceContext a;
  a.trace_id = 1;
  TraceContext b;
  b.trace_id = 2;
  EmitSpan(a, "a1", 10, 20);
  EmitSpan(b, "b1", 10, 20);
  EmitSpan(a, "a2", 30, 40);

  std::vector<Span> peeked = CollectSpans(1, /*drain=*/false);
  ASSERT_EQ(peeked.size(), 2u);
  EXPECT_EQ(peeked[0].name, "a1");
  EXPECT_EQ(peeked[1].name, "a2");
  // Peek left them in place; drain removes ONLY trace 1.
  EXPECT_EQ(CollectSpans(1, /*drain=*/true).size(), 2u);
  EXPECT_TRUE(CollectSpans(1, /*drain=*/true).empty());
  EXPECT_EQ(CollectSpans(0, /*drain=*/true).size(), 1u);  // b1 survives.
}

TEST_F(TraceFixture, RingEvictsOldestAndCountsDrops) {
  SetSpanRingCapacityForTest(4);
  const uint64_t dropped_before = DroppedSpans();
  TraceContext ctx;
  ctx.trace_id = 3;
  for (int i = 0; i < 10; ++i) {
    EmitSpan(ctx, ("s" + std::to_string(i)).c_str(), i, i + 1);
  }
  std::vector<Span> spans = CollectSpans(3, /*drain=*/true);
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s6");  // Oldest six evicted.
  EXPECT_EQ(spans.back().name, "s9");
  EXPECT_EQ(DroppedSpans() - dropped_before, 6u);
}

TEST_F(TraceFixture, MintedIdsAreNonZeroAndTracingFlagGatesRoots) {
  EXPECT_NE(MintId(), 0u);
  EXPECT_NE(MintId(), MintId());
  EXPECT_FALSE(TracingEnabled());
  SetTracingEnabled(true);
  EXPECT_TRUE(TracingEnabled());
}

TEST_F(TraceFixture, FormatSpanTreeIndentsChildrenUnderParents) {
  TraceContext ctx;
  ctx.trace_id = 11;
  uint64_t root = EmitSpan(ctx, "router.request", 1'000'000, 9'000'000);
  ctx.parent_span = root;
  EmitSpan(ctx, "client.send", 2'000'000, 3'000'000);
  std::string tree = FormatSpanTree(CollectSpans(11, /*drain=*/true));
  EXPECT_NE(tree.find("router.request"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\n  client.send"), std::string::npos) << tree;
}

// ------------------------------------------------------------- span codec --

TEST_F(TraceFixture, SpanBatchRoundTripsAndToleratesTrailingBytes) {
  SpanBatch batch;
  batch.process = "shard-1234";
  Span span;
  span.trace_id = 42;
  span.span_id = 7;
  span.parent_id = 3;
  span.name = "server.label";
  span.start_ns = 100;
  span.end_ns = 900;
  span.annotation = "rows=12";
  batch.spans.push_back(span);
  batch.spans.push_back(Span{41, 8, 0, "other", 50, 60, ""});

  std::string payload = EncodeSpansPayload(batch);
  auto decoded = DecodeSpansPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->process, "shard-1234");
  ASSERT_EQ(decoded->spans.size(), 2u);
  EXPECT_EQ(decoded->spans[0].trace_id, 42u);
  EXPECT_EQ(decoded->spans[0].name, "server.label");
  EXPECT_EQ(decoded->spans[0].annotation, "rows=12");
  EXPECT_EQ(decoded->spans[1].span_id, 8u);

  // Appended fields from a future peer must not break this decoder.
  auto extended = DecodeSpansPayload(payload + "future-bytes");
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->spans.size(), 2u);

  // Truncation is a typed error, not UB.
  auto truncated = DecodeSpansPayload(
      std::string_view(payload).substr(0, payload.size() / 2));
  EXPECT_FALSE(truncated.ok());
}

TEST_F(TraceFixture, ChromeTraceJsonEmitsProcessesLanesAndEscapes) {
  SpanBatch router;
  router.process = "router \"r1\"";  // Quote must be escaped in JSON.
  uint64_t root = 90;
  router.spans.push_back(
      Span{5, root, 0, "router.request", 1'000'000, 9'000'000, ""});
  SpanBatch shard;
  shard.process = "shard-1";
  shard.spans.push_back(
      Span{5, 91, root, "server.label", 2'000'000, 8'000'000, "rows=3"});
  // A different trace id filtered out when trace_id is pinned.
  shard.spans.push_back(Span{6, 92, 0, "noise", 0, 1, ""});
  // Span names pass through the same JSON escaping as process names and
  // survive past the event formatter's scratch buffer without truncation.
  std::string long_name = "hop \"x\"\\" + std::string(300, 'y');
  shard.spans.push_back(Span{5, 93, root, long_name, 3'000'000, 4'000'000,
                             ""});

  std::string json = ChromeTraceJson({router, shard}, /*trace_id=*/5);
  EXPECT_NE(json.find("\"router \\\"r1\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hop \\\"x\\\"\\\\" + std::string(300, 'y') + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shard-1\""), std::string::npos);
  EXPECT_NE(json.find("\"router.request\""), std::string::npos);
  EXPECT_NE(json.find("\"server.label\""), std::string::npos);
  EXPECT_EQ(json.find("\"noise\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Microsecond conversion: 1'000'000 ns start -> ts 1000.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos) << json;
}

TEST_F(TraceFixture, ProcessLabelDefaultsToPidAndIsSettable) {
  std::string original = ProcessLabel();
  EXPECT_FALSE(original.empty());
  SetProcessLabel("test-proc");
  EXPECT_EQ(ProcessLabel(), "test-proc");
  SetProcessLabel(original);
}

}  // namespace
}  // namespace obs
}  // namespace snorkel
