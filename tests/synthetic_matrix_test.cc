#include "synth/synthetic_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/advantage.h"

namespace snorkel {
namespace {

TEST(SyntheticMatrixTest, ValidatesParameters) {
  EXPECT_FALSE(SyntheticMatrixGenerator::Generate({0, 0.5, 1}, {}).ok());
  EXPECT_FALSE(SyntheticMatrixGenerator::Generate({10, 0.0, 1}, {}).ok());
  EXPECT_FALSE(SyntheticMatrixGenerator::Generate({10, 1.0, 1}, {}).ok());
  EXPECT_FALSE(
      SyntheticMatrixGenerator::Generate({10, 0.5, 1}, {{1.5, 0.5, -1, 1.0}})
          .ok());
  // copy_of must reference a lower index.
  EXPECT_FALSE(
      SyntheticMatrixGenerator::Generate({10, 0.5, 1}, {{0.8, 0.5, 0, 1.0}})
          .ok());
}

TEST(SyntheticMatrixTest, ShapesAndGold) {
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 7, 0.75, 0.3, 1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->matrix.num_rows(), 500u);
  EXPECT_EQ(data->matrix.num_lfs(), 7u);
  EXPECT_EQ(data->gold.size(), 500u);
  for (Label y : data->gold) EXPECT_TRUE(y == 1 || y == -1);
  EXPECT_EQ(data->true_weights.size(), 7u);
  EXPECT_TRUE(data->true_correlations.empty());
}

TEST(SyntheticMatrixTest, EmpiricalAccuracyMatchesSpec) {
  auto data = SyntheticMatrixGenerator::GenerateIid(20000, 3, 0.8, 0.5, 2);
  ASSERT_TRUE(data.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(data->matrix.EmpiricalAccuracy(j, data->gold), 0.8, 0.02);
    EXPECT_NEAR(data->matrix.Coverage(j), 0.5, 0.02);
  }
}

TEST(SyntheticMatrixTest, ClassBalanceRespected) {
  auto data = SyntheticMatrixGenerator::Generate({20000, 0.25, 3},
                                                 {{0.8, 0.5, -1, 1.0}});
  ASSERT_TRUE(data.ok());
  double pos = 0;
  for (Label y : data->gold) pos += y > 0 ? 1 : 0;
  EXPECT_NEAR(pos / 20000.0, 0.25, 0.02);
}

TEST(SyntheticMatrixTest, TrueWeightsAreLogOdds) {
  auto data = SyntheticMatrixGenerator::GenerateIid(10, 2, 0.75, 0.5, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_NEAR(data->true_weights[0], AccuracyToWeight(0.75), 1e-12);
}

TEST(SyntheticMatrixTest, PerfectCopiesAreIdenticalColumns) {
  auto data = SyntheticMatrixGenerator::GenerateExample31(500, 3, 2, 0.6, 0.9, 5);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < 500; ++i) {
    Label head = data->matrix.At(i, 0);
    EXPECT_EQ(data->matrix.At(i, 1), head);
    EXPECT_EQ(data->matrix.At(i, 2), head);
  }
  // Planted correlations point copies at the head.
  ASSERT_EQ(data->true_correlations.size(), 2u);
  EXPECT_EQ(data->true_correlations[0], (CorrelationPair{0, 1}));
  EXPECT_EQ(data->true_correlations[1], (CorrelationPair{0, 2}));
}

TEST(SyntheticMatrixTest, PartialCopiesAgreeMoreThanChance) {
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      10000, 1, 2, 0, 0.75, 1.0, 0.6, 6);
  ASSERT_TRUE(data.ok());
  double agree = 0;
  for (size_t i = 0; i < data->matrix.num_rows(); ++i) {
    if (data->matrix.At(i, 0) == data->matrix.At(i, 1)) agree += 1;
  }
  agree /= static_cast<double>(data->matrix.num_rows());
  // Two independent 75% LFs agree 62.5% of the time; the copier agrees
  // 60% + 40% * 62.5% = 85%.
  EXPECT_NEAR(agree, 0.85, 0.02);
}

TEST(SyntheticMatrixTest, ClusteredLayoutAndPlantedPairs) {
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      100, /*num_clusters=*/2, /*cluster_size=*/3, /*num_independent=*/4,
      0.8, 0.5, 0.9, 7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->matrix.num_lfs(), 10u);
  // Copies reference heads 0 and 3.
  ASSERT_EQ(data->true_correlations.size(), 4u);
  EXPECT_EQ(data->true_correlations[0], (CorrelationPair{0, 1}));
  EXPECT_EQ(data->true_correlations[2], (CorrelationPair{3, 4}));
}

TEST(SyntheticMatrixTest, DeterministicGivenSeed) {
  auto a = SyntheticMatrixGenerator::GenerateIid(300, 5, 0.7, 0.3, 9);
  auto b = SyntheticMatrixGenerator::GenerateIid(300, 5, 0.7, 0.3, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->gold, b->gold);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(a->matrix.At(i, j), b->matrix.At(i, j));
    }
  }
}

TEST(SyntheticMatrixTest, DifferentSeedsDiffer) {
  auto a = SyntheticMatrixGenerator::GenerateIid(300, 5, 0.7, 0.3, 10);
  auto b = SyntheticMatrixGenerator::GenerateIid(300, 5, 0.7, 0.3, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = a->gold != b->gold;
  for (size_t i = 0; i < 300 && !any_diff; ++i) {
    for (size_t j = 0; j < 5 && !any_diff; ++j) {
      any_diff = a->matrix.At(i, j) != b->matrix.At(i, j);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticMatrixTest, AdversarialAccuracyBelowChance) {
  auto data = SyntheticMatrixGenerator::Generate({10000, 0.5, 12},
                                                 {{0.2, 0.8, -1, 1.0}});
  ASSERT_TRUE(data.ok());
  EXPECT_NEAR(data->matrix.EmpiricalAccuracy(0, data->gold), 0.2, 0.02);
  EXPECT_LT(data->true_weights[0], 0.0);
}

}  // namespace
}  // namespace snorkel
