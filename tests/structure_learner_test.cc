#include "core/structure_learner.h"

#include <gtest/gtest.h>

#include <set>

#include "synth/synthetic_matrix.h"

namespace snorkel {
namespace {

std::set<std::pair<size_t, size_t>> AsSet(
    const std::vector<CorrelationPair>& pairs) {
  std::set<std::pair<size_t, size_t>> out;
  for (const auto& p : pairs) out.insert({p.j, p.k});
  return out;
}

TEST(StructureLearnerTest, RejectsMulticlassMatrix) {
  auto m = LabelMatrix::FromDense({{1, 3}}, 3);
  ASSERT_TRUE(m.ok());
  StructureLearner learner;
  EXPECT_FALSE(learner.LearnStructure(*m).ok());
}

TEST(StructureLearnerTest, RejectsNonPositiveEpsilon) {
  auto data = SyntheticMatrixGenerator::GenerateIid(100, 3, 0.8, 0.5, 1);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  EXPECT_FALSE(learner.LearnStructure(data->matrix, 0.0).ok());
  EXPECT_FALSE(learner.LearnStructure(data->matrix, -0.1).ok());
}

TEST(StructureLearnerTest, SingleLfYieldsNoPairs) {
  auto data = SyntheticMatrixGenerator::GenerateIid(100, 1, 0.8, 0.5, 2);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto pairs = learner.LearnStructure(data->matrix);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(StructureLearnerTest, FindsPlantedCorrelatedBlock) {
  // 4 perfect copies (indices 0-3) + 6 independents: every selected pair
  // should be inside the block, and the block should be found.
  auto data = SyntheticMatrixGenerator::GenerateExample31(
      3000, /*num_correlated=*/4, /*num_independent=*/6,
      /*corr_accuracy=*/0.6, /*indep_accuracy=*/0.8, /*seed=*/3);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto pairs = learner.LearnStructure(data->matrix, 0.2);
  ASSERT_TRUE(pairs.ok());
  ASSERT_FALSE(pairs->empty());
  size_t in_block = 0;
  for (const auto& p : *pairs) {
    if (p.j < 4 && p.k < 4) ++in_block;
  }
  // The block dominates the selection and most block pairs are recovered.
  EXPECT_GE(in_block * 2, pairs->size() * 2 - pairs->size());
  EXPECT_GE(in_block, 3u);
  EXPECT_LE(pairs->size() - in_block, 2u);
}

TEST(StructureLearnerTest, IndependentLfsYieldFewPairs) {
  auto data = SyntheticMatrixGenerator::GenerateIid(3000, 8, 0.75, 0.4, 4);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto pairs = learner.LearnStructure(data->matrix, 0.2);
  ASSERT_TRUE(pairs.ok());
  EXPECT_LE(pairs->size(), 2u);  // 28 possible pairs; nearly all rejected.
}

TEST(StructureLearnerTest, PartialCopiesStillDetected) {
  // Copies with 70% copy probability are still strongly dependent.
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      4000, /*num_clusters=*/1, /*cluster_size=*/3, /*num_independent=*/5,
      /*accuracy=*/0.75, /*propensity=*/0.5, /*copy_prob=*/0.7, /*seed=*/5);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto pairs = learner.LearnStructure(data->matrix, 0.15);
  ASSERT_TRUE(pairs.ok());
  auto set = AsSet(*pairs);
  // At least the head-copy pairs (0,1) or (0,2) or the sibling pair (1,2).
  bool found_cluster_pair = set.count({0, 1}) || set.count({0, 2}) ||
                            set.count({1, 2});
  EXPECT_TRUE(found_cluster_pair);
}

TEST(StructureLearnerTest, SweepCountsAreMonotoneInEpsilon) {
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      2000, 2, 3, 4, 0.75, 0.5, 0.9, 6);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto sweep = learner.Sweep(data->matrix, {0.4, 0.3, 0.2, 0.1, 0.05});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 5u);
  for (size_t i = 0; i + 1 < sweep->size(); ++i) {
    EXPECT_GT((*sweep)[i].epsilon, (*sweep)[i + 1].epsilon);
    // Lower ε keeps at least as many correlations (warm-started path).
    EXPECT_LE((*sweep)[i].num_correlations, (*sweep)[i + 1].num_correlations);
  }
}

TEST(StructureLearnerTest, SweepDeduplicatesAndSortsEpsilons) {
  auto data = SyntheticMatrixGenerator::GenerateIid(500, 4, 0.8, 0.5, 7);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto sweep = learner.Sweep(data->matrix, {0.1, 0.3, 0.1, 0.2});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  EXPECT_DOUBLE_EQ((*sweep)[0].epsilon, 0.3);
  EXPECT_DOUBLE_EQ((*sweep)[2].epsilon, 0.1);
}

TEST(ElbowTest, PicksKneeBeforeExplosion) {
  std::vector<StructureSweepPoint> sweep = {
      {0.30, 0}, {0.25, 2}, {0.20, 4}, {0.15, 6}, {0.10, 80}, {0.05, 400}};
  size_t elbow = StructureLearner::SelectElbowIndex(sweep);
  // The knee is at count 6 (index 3): past it the count explodes.
  EXPECT_EQ(elbow, 3u);
}

TEST(ElbowTest, HandlesShortSweeps) {
  EXPECT_EQ(StructureLearner::SelectElbowIndex({}), 0u);
  EXPECT_EQ(StructureLearner::SelectElbowIndex({{0.1, 5}}), 0u);
  EXPECT_EQ(StructureLearner::SelectElbowIndex({{0.2, 1}, {0.1, 9}}), 0u);
}

TEST(ElbowTest, FlatSweepPicksInterior) {
  std::vector<StructureSweepPoint> sweep = {{0.3, 5}, {0.2, 5}, {0.1, 5}};
  size_t elbow = StructureLearner::SelectElbowIndex(sweep);
  EXPECT_GE(elbow, 1u);
  EXPECT_LE(elbow, 1u);
}

TEST(StructureLearnerTest, DeterministicGivenSeed) {
  auto data = SyntheticMatrixGenerator::GenerateClustered(
      1500, 1, 4, 3, 0.7, 0.5, 0.9, 8);
  ASSERT_TRUE(data.ok());
  StructureLearner learner;
  auto a = learner.LearnStructure(data->matrix, 0.15);
  auto b = learner.LearnStructure(data->matrix, 0.15);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(AsSet(*a), AsSet(*b));
}

}  // namespace
}  // namespace snorkel
