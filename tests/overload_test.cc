// Saturation harness for the overload-control stack: a REAL shard_server
// process (tools/shard_server.cc over loopback TCP), deliberately capacity-
// constrained (1 worker, every label sleeps an injected 5 ms, small cost
// budget), driven PAST its capacity. The invariants under test:
//
//   - GOODPUT HOLDS: at 2x the closed-loop load that saturates the shard,
//     successful-response throughput stays within a constant factor of
//     single-load capacity — overload degrades into typed rejections, not
//     congestion collapse;
//   - EXPIRED WORK IS CANCELLED: a request whose budget dies mid-service is
//     stopped cooperatively (the expired_work_cancelled counter moves), not
//     run to completion for a caller that already gave up;
//   - EVERY REJECTION IS TYPED AND ACTIONABLE: failures under overload are
//     kResourceExhausted / kDeadlineExceeded / kUnavailable with messages,
//     and every server-side kResourceExhausted carries a retry_after_ms
//     hint priced off the queued backlog;
//   - PRIORITY HOLDS: interactive (small) requests displace queued bulk
//     work, bulk is shed first and handed back typed (shed_total moves);
//   - RECOVERY IS COMPLETE: after the overload drains, a response is
//     bitwise-identical to an unsharded in-process LabelService — overload
//     leaves no residue in the model path.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "net/remote_client.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"

#ifndef SNORKEL_SHARD_SERVER_BIN
#define SNORKEL_SHARD_SERVER_BIN ""
#endif

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Same corpus and LF set as tools/shard_server.cc's "cdr-demo" built-in.
struct OverloadFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit OverloadFixture(int num_docs = 64) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }

  ModelSnapshot MakeSnapshot() const {
    LabelingFunctionSet lfs = MakeLfs();
    auto matrix = LFApplier().Apply(lfs, corpus, candidates);
    EXPECT_TRUE(matrix.ok());
    GenerativeModelOptions options;
    options.epochs = 60;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(*matrix).ok());
    auto snapshot =
        ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
    EXPECT_TRUE(snapshot.ok());
    return *snapshot;
  }

  LabelResponse Expected(const ModelSnapshot& snapshot) const {
    auto service = LabelService::Create(snapshot, MakeLfs());
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    LabelRequest request;
    request.corpus = &corpus;
    request.candidates = &candidates;
    auto response = service->Label(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return *response;
  }
};

/// One spawned shard_server process with caller-chosen extra flags.
class ServerProcess {
 public:
  ServerProcess() = default;
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;
  ~ServerProcess() { Kill(); }

  bool Start(const std::string& snapshot_path,
             const std::vector<std::string>& extra_args) {
    port_file_ = TempPath("overload_port_" + std::to_string(getpid()));
    std::remove(port_file_.c_str());
    std::vector<std::string> full = {SNORKEL_SHARD_SERVER_BIN, "--snapshot",
                                     snapshot_path, "--port-file", port_file_};
    full.insert(full.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(full.size() + 1);
    for (std::string& arg : full) argv.push_back(arg.data());
    argv.push_back(nullptr);

    pid_ = fork();
    if (pid_ == 0) {
      std::freopen("/dev/null", "w", stderr);
      execv(argv[0], argv.data());
      _exit(127);
    }
    if (pid_ < 0) {
      ADD_FAILURE() << "fork failed";
      return false;
    }
    for (int i = 0; i < 500; ++i) {
      auto bytes = ReadFileBytes(port_file_);
      if (bytes.ok() && !bytes->empty() && bytes->back() == '\n') {
        port_ = static_cast<uint16_t>(std::atoi(bytes->c_str()));
        return port_ != 0;
      }
      int status = 0;
      if (waitpid(pid_, &status, WNOHANG) == pid_) {
        ADD_FAILURE() << "shard_server exited during startup, status "
                      << status;
        pid_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "shard_server never wrote its port file";
    return false;
  }

  uint16_t port() const { return port_; }

  void Kill() {
    if (pid_ <= 0) return;
    kill(pid_, SIGKILL);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    std::remove(port_file_.c_str());
  }

 private:
  pid_t pid_ = -1;
  uint16_t port_ = 0;
  std::string port_file_;
};

bool IsTypedOverloadFailure(const Status& status) {
  return (status.code() == StatusCode::kResourceExhausted ||
          status.code() == StatusCode::kDeadlineExceeded ||
          status.code() == StatusCode::kUnavailable) &&
         !status.message().empty();
}

/// Closed-loop phase: `callers` threads issue back-to-back small
/// (interactive-lane) requests for `duration`; returns successes completed.
uint64_t ClosedLoopGoodput(uint16_t port, const OverloadFixture& fx,
                           const std::vector<CandidateRef>& rows, int callers,
                           std::chrono::milliseconds duration) {
  RemoteShardClient::Options options;
  options.port = port;
  options.adaptive_initial_limit = 64.0;  // Measure the SERVER, not the stub.
  RemoteShardClient client = RemoteShardClient::Create(options);
  std::atomic<uint64_t> successes{0};
  std::atomic<int> untyped{0};
  const auto stop_at = std::chrono::steady_clock::now() + duration;
  std::vector<std::thread> threads;
  for (int t = 0; t < callers; ++t) {
    threads.emplace_back([&] {
      while (std::chrono::steady_clock::now() < stop_at) {
        auto response = client.Label(fx.corpus, rows, false, true,
                                     /*deadline_ms=*/2000);
        if (response.ok()) {
          successes.fetch_add(1);
        } else if (!IsTypedOverloadFailure(response.status())) {
          untyped.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(untyped.load(), 0);
  return successes.load();
}

TEST(OverloadTest, SaturationHoldsGoodputCancelsExpiredWorkAndRecovers) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  OverloadFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("overload.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  // Capacity-constrained on purpose: 1 worker, every request sleeps an
  // injected 5 ms (deterministic ~200 req/s ceiling), cost budget 200
  // (one queued 64-row bulk job at cost 64 rows x 3 LFs = 192 nearly
  // fills it), 16-row interactive lane split, CoDel target 25 ms.
  ServerProcess server;
  ASSERT_TRUE(server.Start(
      path, {"--workers", "1", "--queue-capacity", "8", "--queue-cost-budget",
             "200", "--interactive-rows", "16", "--sojourn-target-ms", "25",
             "--inject-delay-every-n", "1", "--inject-delay-ms", "5"}));

  std::vector<CandidateRef> all_rows = MakeCandidateRefs(fx.candidates);
  std::vector<CandidateRef> small_rows(all_rows.begin(), all_rows.begin() + 4);
  std::vector<CandidateRef> mid_rows(all_rows.begin(), all_rows.begin() + 16);

  // ---- Phase 1+2: goodput at saturating load, then at 2x that load. The
  // shard must shed the excess, not collapse: overload control's core
  // promise is that goodput at 2x stays within a constant factor of
  // capacity. ----
  const auto phase = std::chrono::milliseconds(1200);
  const uint64_t goodput_1x =
      ClosedLoopGoodput(server.port(), fx, small_rows, /*callers=*/2, phase);
  ASSERT_GT(goodput_1x, 0u);
  const uint64_t goodput_2x =
      ClosedLoopGoodput(server.port(), fx, small_rows, /*callers=*/4, phase);
  EXPECT_GE(static_cast<double>(goodput_2x),
            0.7 * static_cast<double>(goodput_1x))
      << "goodput collapsed under 2x load: " << goodput_1x << " -> "
      << goodput_2x;

  // ---- Phase 3: burst far past capacity with BULK requests while a
  // trickle of interactive requests runs. Every failure must be typed;
  // every server-side kResourceExhausted must carry a retry_after hint;
  // interactive arrivals displace queued bulk (shed_total moves). ----
  RemoteShardClient::Options burst_options;
  burst_options.port = server.port();
  burst_options.adaptive_initial_limit = 64.0;
  RemoteShardClient burst_client = RemoteShardClient::Create(burst_options);

  constexpr int kBulkCallers = 12;
  constexpr int kBulkRounds = 4;
  std::atomic<int> bulk_ok{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> untyped_failures{0};
  std::atomic<int> exhausted_without_hint{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kBulkCallers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kBulkRounds; ++i) {
        bool failed_fast = false;
        uint64_t retry_after_ms = 0;
        auto response =
            burst_client.Label(fx.corpus, all_rows, false, true,
                               /*deadline_ms=*/500, &failed_fast,
                               &retry_after_ms);
        if (response.ok()) {
          bulk_ok.fetch_add(1);
          continue;
        }
        if (!IsTypedOverloadFailure(response.status())) {
          ADD_FAILURE() << "untyped overload failure: "
                        << response.status().ToString();
          untyped_failures.fetch_add(1);
          continue;
        }
        typed_failures.fetch_add(1);
        if (response.status().code() == StatusCode::kResourceExhausted &&
            !failed_fast && retry_after_ms == 0) {
          exhausted_without_hint.fetch_add(1);
        }
      }
    });
  }
  // The interactive trickle: small enough for the interactive lane, big
  // enough (16 rows x 3 LFs = 48 cost) that it cannot fit next to a queued
  // 192-cost bulk job under the 200 budget — displacement must fire.
  std::thread interactive([&] {
    RemoteShardClient::Options options;
    options.port = server.port();
    options.adaptive_initial_limit = 64.0;
    RemoteShardClient client = RemoteShardClient::Create(options);
    for (int i = 0; i < 30; ++i) {
      auto response = client.Label(fx.corpus, mid_rows, false, true,
                                   /*deadline_ms=*/500);
      if (!response.ok()) {
        EXPECT_TRUE(IsTypedOverloadFailure(response.status()))
            << response.status().ToString();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  for (auto& th : threads) th.join();
  interactive.join();

  EXPECT_GE(typed_failures.load(), 1)
      << "a 12-caller bulk burst against a ~200-cost budget must overload";
  EXPECT_EQ(untyped_failures.load(), 0);
  EXPECT_EQ(exhausted_without_hint.load(), 0)
      << "server-side kResourceExhausted without a retry_after_ms hint";

  // ---- Phase 4: expired work is cancelled mid-service. A 3 ms budget is
  // admitted and dequeued live, then dies inside the injected 5 ms sleep;
  // the replica's cancellation token stops the compute. ----
  RemoteShardClient::Options cancel_options;
  cancel_options.port = server.port();
  RemoteShardClient cancel_client = RemoteShardClient::Create(cancel_options);
  for (int i = 0; i < 10; ++i) {
    auto response = cancel_client.Label(fx.corpus, all_rows, false, true,
                                        /*deadline_ms=*/3);
    ASSERT_FALSE(response.ok());
    EXPECT_TRUE(IsTypedOverloadFailure(response.status()))
        << response.status().ToString();
  }

  // Wire-visible proof of the overload story: work was shed (displacement),
  // admission rejected over budget, and expired work was cancelled
  // mid-service — the saturation harness's counters, over the stats RPC.
  RemoteShardClient::Options stats_options;
  stats_options.port = server.port();
  RemoteShardClient stats_client = RemoteShardClient::Create(stats_options);
  Result<WireServerStats> stats = Status::Internal("unset");
  for (int i = 0; i < 100; ++i) {
    stats = stats_client.GetStats(2000);
    if (stats.ok() && stats->expired_work_cancelled > 0 &&
        stats->shed_total > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->expired_work_cancelled, 1u)
      << "no expired work was ever cancelled mid-flight";
  EXPECT_GE(stats->shed_total, 1u)
      << "interactive traffic never displaced queued bulk work";
  EXPECT_GE(stats->queue_rejections + stats->shed_total +
                stats->deadline_rejections,
            1u);

  // ---- Phase 5: prompt, bitwise recovery. The tiny-deadline jobs the
  // clients abandoned are still draining server-side (cancellation stops
  // the compute, not the queue slots already admitted), so a well-behaved
  // client honors the retry_after hint until admission reopens; it must
  // reopen within a couple hundred ms, and the response must match the
  // in-process oracle bit for bit. ----
  Result<LabelResponse> recovered = Status::Internal("never attempted");
  for (int i = 0; i < 100; ++i) {
    bool failed_fast = false;
    uint64_t retry_after_ms = 0;
    recovered = stats_client.Label(fx.corpus, all_rows, false, true,
                                   /*deadline_ms=*/10'000, &failed_fast,
                                   &retry_after_ms);
    if (recovered.ok()) break;
    ASSERT_TRUE(IsTypedOverloadFailure(recovered.status()))
        << recovered.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        retry_after_ms > 0 ? std::min<uint64_t>(retry_after_ms, 100) : 20));
  }
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->posteriors, expected.posteriors);
  EXPECT_EQ(recovered->hard_labels, expected.hard_labels);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snorkel
