// Tests for the networked shard fabric (src/net/): the checksummed wire
// format (round-trips, skip-unknown, typed corruption), the SnapshotStore's
// atomic versioned publication, and the loopback serving path — ShardServer
// + RemoteShardClient/RemoteShardRouter bitwise parity with an in-process
// LabelService, typed backpressure/deadlines, health fail-fast, hedged
// retries, partial degradation, and zero-downtime snapshot hot-swap.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "net/health.h"
#include "net/placement.h"
#include "net/remote_client.h"
#include "net/remote_router.h"
#include "net/shard_server.h"
#include "net/snapshot_store.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/snapshot.h"
#include "shard/partitioner.h"
#include "util/binary_io.h"
#include "util/fault.h"

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A store directory that is guaranteed empty: gtest's TempDir is shared
/// across runs, and SnapshotStore versions are immutable by design, so a
/// leftover artifact from a previous run would poison Publish().
std::string FreshStoreDir(const std::string& name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Same corpus shape as the shard tier's fixture: `n` one-sentence
/// documents alternating "causes" / "treats", per-document canonical ids.
/// The LF set is the CLI's built-in "cdr-demo" set (tools/shard_server.cc),
/// so in-process fixtures and spawned serving processes agree on
/// fingerprints.
struct NetFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit NetFixture(int num_docs = 120) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }

  ModelSnapshot MakeSnapshot(const LabelingFunctionSet& lfs,
                             int epochs = 60) const {
    auto matrix = LFApplier().Apply(lfs, corpus, candidates);
    EXPECT_TRUE(matrix.ok());
    GenerativeModelOptions options;
    options.epochs = epochs;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(*matrix).ok());
    auto snapshot =
        ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
    EXPECT_TRUE(snapshot.ok());
    return *snapshot;
  }

  /// Expected response from ONE unsharded in-process service.
  LabelResponse Expected(const ModelSnapshot& snapshot,
                         bool include_votes = true) const {
    auto service = LabelService::Create(snapshot, MakeLfs());
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    LabelRequest request;
    request.corpus = &corpus;
    request.candidates = &candidates;
    request.include_votes = include_votes;
    auto response = service->Label(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return *response;
  }
};

// -------------------------------------------------------------- wire ABI --

TEST(WireStatusTest, EveryStatusCodeRoundTripsAndValuesArePinned) {
  const StatusCode codes[] = {
      StatusCode::kOk,            StatusCode::kInvalidArgument,
      StatusCode::kNotFound,      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,    StatusCode::kAlreadyExists,
      StatusCode::kInternal,      StatusCode::kIOError,
      StatusCode::kResourceExhausted, StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : codes) {
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
  }
  // Wire values are ABI — pinned, not derived from enum order. The two
  // serving-tier codes this PR adds get the next free slots.
  EXPECT_EQ(StatusCodeToWire(StatusCode::kOk), 0u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kResourceExhausted), 8u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kUnavailable), 9u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kDeadlineExceeded), 10u);
  // A code minted by a newer peer maps to kInternal, not UB.
  EXPECT_EQ(StatusCodeFromWire(9999), StatusCode::kInternal);
}

TEST(WireStatusTest, ErrorFrameRoundTripsEveryCode) {
  const StatusCode codes[] = {
      StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted, StatusCode::kInvalidArgument};
  for (StatusCode code : codes) {
    Status status(code, "shard 3 said no");
    Frame frame = EncodeErrorFrame(77, status);
    auto decoded = DecodeFrame(EncodeFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, FrameType::kError);
    EXPECT_EQ(decoded->request_id, 77u);
    Status back = DecodeErrorFrame(*decoded);
    EXPECT_EQ(back.code(), code);
    EXPECT_EQ(back.message(), "shard 3 said no");
  }
}

TEST(WireStatusTest, ErrorFrameRetryAfterRoundTripsAndOldFormatReadsZero) {
  // The retry_after_ms hint is an APPENDED field of the ERRS payload: new
  // peers round-trip it, the 2-arg encode writes 0, and an OLD peer's
  // 2-field payload (code + message only) decodes with hint 0 — never an
  // error (trailing-bytes / short-payload tolerance, both directions).
  Status status = Status::ResourceExhausted("shard admission queue is full");
  auto hinted = DecodeFrame(EncodeFrame(EncodeErrorFrame(5, status, 40)));
  ASSERT_TRUE(hinted.ok());
  uint64_t retry_after_ms = 99;
  Status back = DecodeErrorFrame(*hinted, &retry_after_ms);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(retry_after_ms, 40u);
  // The hint is optional for the caller: the 1-arg decode still works.
  EXPECT_EQ(DecodeErrorFrame(*hinted).code(), StatusCode::kResourceExhausted);

  // No hint supplied: encodes 0, decodes 0.
  auto unhinted = DecodeFrame(EncodeFrame(EncodeErrorFrame(6, status)));
  ASSERT_TRUE(unhinted.ok());
  retry_after_ms = 99;
  (void)DecodeErrorFrame(*unhinted, &retry_after_ms);
  EXPECT_EQ(retry_after_ms, 0u);

  // An OLD peer's ERRS payload stops after the message. Truncate the
  // trailing u64 and decode: hint reads 0, code and message intact.
  Frame old_peer = *hinted;
  for (FrameSection& section : old_peer.sections) {
    ASSERT_GE(section.payload.size(), sizeof(uint64_t));
    section.payload.resize(section.payload.size() - sizeof(uint64_t));
  }
  retry_after_ms = 99;
  Status compat = DecodeErrorFrame(old_peer, &retry_after_ms);
  EXPECT_EQ(compat.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(compat.message(), "shard admission queue is full");
  EXPECT_EQ(retry_after_ms, 0u);
}

TEST(WireFrameTest, RoundTripPreservesTypeIdAndSections) {
  Frame frame;
  frame.type = FrameType::kLabelResponse;
  frame.request_id = 0xDEADBEEFCAFEull;
  frame.sections.push_back(FrameSection{"ABCD", std::string("payload\0x", 9)});
  frame.sections.push_back(FrameSection{"WXYZ", ""});  // Empty payload legal.
  std::string bytes = EncodeFrame(frame);
  ASSERT_GE(bytes.size(), kWireHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "SNRP");

  auto header = DecodeFrameHeader(
      std::string_view(bytes).substr(0, kWireHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->version, kWireVersion);
  EXPECT_EQ(header->body_size, bytes.size() - kWireHeaderBytes);

  auto decoded = DecodeFrame(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, frame.type);
  EXPECT_EQ(decoded->request_id, frame.request_id);
  ASSERT_EQ(decoded->sections.size(), 2u);
  EXPECT_EQ(decoded->sections[0].tag, "ABCD");
  EXPECT_EQ(decoded->sections[0].payload, frame.sections[0].payload);
  EXPECT_EQ(decoded->sections[1].tag, "WXYZ");
  EXPECT_TRUE(decoded->sections[1].payload.empty());
}

TEST(WireFrameTest, CorruptionTruncationAndVersionAreTypedErrors) {
  Frame frame;
  frame.type = FrameType::kLabelRequest;
  frame.request_id = 1;
  frame.sections.push_back(FrameSection{"CORP", "the corpus bytes"});
  std::string bytes = EncodeFrame(frame);

  // A flipped payload byte is a checksum mismatch NAMING the section.
  std::string corrupted = bytes;
  corrupted[bytes.size() - sizeof(uint64_t) - 3] ^= 0x40;
  auto bad = DecodeFrame(corrupted);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);
  EXPECT_NE(bad.status().message().find("CORP"), std::string::npos)
      << bad.status().ToString();

  // Truncation at every boundary is typed, never UB.
  for (size_t len : {size_t{0}, size_t{3}, kWireHeaderBytes - 1,
                     kWireHeaderBytes + 2, bytes.size() - 1}) {
    auto truncated = DecodeFrame(bytes.substr(0, len));
    ASSERT_FALSE(truncated.ok()) << "prefix length " << len;
    EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);
  }

  // Bad magic.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  auto magic = DecodeFrame(wrong_magic);
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.status().code(), StatusCode::kInvalidArgument);

  // A newer wire version must be refused (the peer has to speak down).
  std::string newer = bytes;
  uint32_t v2 = kWireVersion + 1;
  std::memcpy(&newer[4], &v2, sizeof(v2));
  auto version = DecodeFrame(newer);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.status().code(), StatusCode::kFailedPrecondition);

  // A hostile body-size prefix is rejected before any allocation.
  std::string huge = bytes;
  uint64_t bound = kMaxWireFrameBytes + 1;
  std::memcpy(&huge[8], &bound, sizeof(bound));
  auto oversized = DecodeFrameHeader(
      std::string_view(huge).substr(0, kWireHeaderBytes));
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kIOError);

  // Bytes after the last section are framing garbage.
  std::string trailing = bytes + "x";
  uint64_t body = bytes.size() - kWireHeaderBytes + 1;
  std::memcpy(&trailing[8], &body, sizeof(body));
  auto garbage = DecodeFrame(trailing);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kIOError);
}

TEST(WireFrameTest, UnknownSectionsAndAppendedFieldsAreSkippedNotFatal) {
  NetFixture fx(8);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  LabelResponse expected = fx.Expected(snapshot);

  // A response frame from a "newer server" that appended a section the
  // client does not know: decoding keeps working and ignores it.
  Frame frame = EncodeLabelResponse(9, expected);
  frame.sections.push_back(FrameSection{"XTRA", "future payload"});
  auto reencoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(reencoded.ok()) << reencoded.status().ToString();
  auto decoded = DecodeLabelResponse(*reencoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->posteriors, expected.posteriors);

  // A request frame from a "newer client" that appended fields to ROPT:
  // known fields decode, the tail is tolerated.
  Frame request = EncodeLabelRequest(11, fx.corpus,
                                     MakeCandidateRefs(fx.candidates),
                                     /*include_votes=*/true,
                                     /*apply_class_balance=*/false,
                                     /*deadline_ms=*/250);
  for (FrameSection& section : request.sections) {
    if (section.tag == "ROPT") section.payload += "appended future fields";
  }
  auto round = DecodeFrame(EncodeFrame(request));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  auto wire = DecodeLabelRequest(*round);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_TRUE(wire->include_votes);
  EXPECT_FALSE(wire->apply_class_balance);
  EXPECT_EQ(wire->deadline_ms, 250u);
}

TEST(WireRequestTest, CorpusSliceKeepsOriginalDocumentIndices) {
  NetFixture fx(60);
  // A sub-batch touching a sparse set of documents — exactly what a router
  // fans out to one shard.
  std::vector<CandidateRef> rows;
  for (size_t i : {size_t{5}, size_t{6}, size_t{41}, size_t{58}}) {
    rows.push_back(CandidateRef{&fx.candidates[i], i});
  }
  Frame frame = EncodeLabelRequest(21, fx.corpus, rows, false, true, 0);
  auto decoded_frame = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded_frame.ok()) << decoded_frame.status().ToString();
  auto wire = DecodeLabelRequest(*decoded_frame);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();

  ASSERT_EQ(wire->candidates.size(), rows.size());
  ASSERT_EQ(wire->indices.size(), rows.size());
  for (size_t t = 0; t < rows.size(); ++t) {
    const Candidate& original = *rows[t].candidate;
    const Candidate& shipped = wire->candidates[t];
    // The span coordinates — every LF observable — are byte-identical,
    // including the ORIGINAL document index.
    EXPECT_EQ(shipped.span1.doc, original.span1.doc);
    EXPECT_EQ(shipped.span2.doc, original.span2.doc);
    EXPECT_EQ(shipped.span1.canonical_id, original.span1.canonical_id);
    EXPECT_EQ(shipped.span2.canonical_id, original.span2.canonical_id);
    EXPECT_EQ(wire->indices[t], rows[t].index);
    // The sparse reconstruction put the full document at that index.
    const Document& doc = wire->corpus.document(shipped.span1.doc);
    const Document& expected = fx.corpus.document(original.span1.doc);
    ASSERT_EQ(doc.sentences.size(), expected.sentences.size());
    EXPECT_EQ(doc.sentences[0].words, expected.sentences[0].words);
    ASSERT_EQ(doc.sentences[0].mentions.size(),
              expected.sentences[0].mentions.size());
    EXPECT_EQ(doc.sentences[0].mentions[0].canonical_id,
              expected.sentences[0].mentions[0].canonical_id);
  }
  // Only referenced documents ship; the rest are empty filler.
  EXPECT_EQ(wire->corpus.num_documents(), 59u);  // Highest ref is doc 58.
  EXPECT_TRUE(wire->corpus.document(0).sentences.empty());

  // And the slice actually serves: identical posteriors to the in-process
  // ref path for the same rows.
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  auto direct = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(direct.ok());
  LabelRequest by_ref;
  by_ref.corpus = &fx.corpus;
  by_ref.candidate_refs = &rows;
  auto expected = direct->Label(by_ref);
  ASSERT_TRUE(expected.ok());

  auto sliced = LabelService::Create(snapshot, fx.MakeLfs());
  ASSERT_TRUE(sliced.ok());
  std::vector<CandidateRef> shipped_refs;
  for (size_t t = 0; t < wire->candidates.size(); ++t) {
    shipped_refs.push_back(CandidateRef{
        &wire->candidates[t], static_cast<size_t>(wire->indices[t])});
  }
  LabelRequest over_slice;
  over_slice.corpus = &wire->corpus;
  over_slice.candidate_refs = &shipped_refs;
  auto actual = sliced->Label(over_slice);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->posteriors, expected->posteriors);
}

TEST(WireRequestTest, DanglingDocumentReferenceIsTypedIOError) {
  NetFixture fx(6);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  // Rewrite the CAND section so one candidate points past the slice: the
  // server must reject the frame, not index out of bounds. The forged
  // payload mirrors the wire candidate layout (two spans + index).
  BinaryWriter forged;
  forged.WriteU64(1);
  for (int span = 0; span < 2; ++span) {
    forged.WriteU32(1000);  // doc — far beyond the 6-document slice.
    forged.WriteU32(0);
    forged.WriteU32(0);
    forged.WriteU32(1);
    forged.WriteString("chemical");
    forged.WriteString("C0");
  }
  forged.WriteU64(0);
  Frame forged_frame = EncodeLabelRequest(1, fx.corpus, rows, false, true, 0);
  for (FrameSection& section : forged_frame.sections) {
    if (section.tag == "CAND") section.payload = forged.TakeBuffer();
  }
  auto decoded = DecodeFrame(EncodeFrame(forged_frame));
  ASSERT_TRUE(decoded.ok());
  auto wire = DecodeLabelRequest(*decoded);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), StatusCode::kIOError);
}

TEST(WireRequestTest, SmallDocumentAtHighOriginalIndexDecodes) {
  // A large corpus where the request references one SMALL document at a
  // HIGH original index: the CORP payload is a few hundred bytes while the
  // index is 100000. The decoder must accept this (the index is bounded by
  // the candidate range, not by the payload size) — rejecting it would
  // break parity with in-process serving for any large corpus.
  Corpus corpus;
  for (int d = 0; d < 100000; ++d) corpus.AddDocument(Document{});
  Document doc;
  Sentence s;
  s.words = {"magnesium", "causes", "quadriplegia"};
  s.mentions = {Mention{0, 1, "chemical", "C99k"},
                Mention{2, 3, "disease", "D99k"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));

  std::vector<Candidate> candidates =
      CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);
  ASSERT_EQ(candidates[0].span1.doc, 100000u);
  std::vector<CandidateRef> rows = MakeCandidateRefs(candidates);
  Frame frame = EncodeLabelRequest(5, corpus, rows, false, true, 0);
  std::string bytes = EncodeFrame(frame);
  // The regression this pins: the whole frame is far smaller than the
  // original document index it carries.
  ASSERT_LT(bytes.size(), 100000u);
  auto decoded = DecodeFrame(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto wire = DecodeLabelRequest(*decoded);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->corpus.num_documents(), 100001u);
  EXPECT_TRUE(wire->corpus.document(0).sentences.empty());
  ASSERT_EQ(wire->corpus.document(100000).sentences.size(), 1u);
  EXPECT_EQ(wire->corpus.document(100000).sentences[0].words, s.words);
}

TEST(WireRequestTest, OutOfRangeSentenceOrWordRangeIsTypedIOError) {
  NetFixture fx(6);
  // One candidate on document 0, so the slice ships exactly that document
  // (one sentence, three words) and the forged span coordinates below are
  // the only thing wrong with the request.
  std::vector<CandidateRef> rows = {CandidateRef{&fx.candidates[0], 0}};
  struct Case {
    uint32_t sentence;
    uint32_t word_start;
    uint32_t word_end;
  };
  for (const Case& c :
       {Case{7, 0, 1}, Case{0, 0, 999}, Case{0, 2, 1}}) {
    BinaryWriter forged;
    forged.WriteU64(1);
    for (int span = 0; span < 2; ++span) {
      forged.WriteU32(0);  // doc — valid, inside the slice.
      forged.WriteU32(c.sentence);
      forged.WriteU32(c.word_start);
      forged.WriteU32(c.word_end);
      forged.WriteString("chemical");
      forged.WriteString("C0");
    }
    forged.WriteU64(0);
    Frame forged_frame =
        EncodeLabelRequest(1, fx.corpus, rows, false, true, 0);
    for (FrameSection& section : forged_frame.sections) {
      if (section.tag == "CAND") section.payload = forged.TakeBuffer();
    }
    auto decoded = DecodeFrame(EncodeFrame(forged_frame));
    ASSERT_TRUE(decoded.ok());
    // A checksummed-but-hostile span must fail TYPED at decode, never reach
    // LF execution as an out-of-bounds sentence or word read.
    auto wire = DecodeLabelRequest(*decoded);
    ASSERT_FALSE(wire.ok())
        << "sentence=" << c.sentence << " words=[" << c.word_start << ","
        << c.word_end << ")";
    EXPECT_EQ(wire.status().code(), StatusCode::kIOError);
  }
}

TEST(SocketTest, FrameReaderResumesAcrossDeadlineMidFrame) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto client =
      Socket::Connect("127.0.0.1", listener->port(), DeadlineAfterMs(2000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto served = listener->Accept(2000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = 123;
  frame.sections.push_back(FrameSection{"ABCD", std::string(4096, 'x')});
  std::string bytes = EncodeFrame(frame);

  // First half of the frame, then silence past the receive deadline: the
  // reader reports kDeadlineExceeded but KEEPS the partial bytes.
  size_t half = bytes.size() / 2;
  ASSERT_TRUE(client
                  ->SendAll(std::string_view(bytes).substr(0, half),
                            DeadlineAfterMs(2000))
                  .ok());
  FrameReader reader;
  auto partial = reader.Recv(*served, DeadlineAfterMs(50), /*eof_ok=*/true);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kDeadlineExceeded);
  // Re-arming while the peer stays quiet changes nothing.
  partial = reader.Recv(*served, DeadlineAfterMs(50), /*eof_ok=*/true);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kDeadlineExceeded);

  // The second half arrives: the SAME reader completes the frame losslessly
  // — no bad-magic desync, no dropped bytes.
  ASSERT_TRUE(client
                  ->SendAll(std::string_view(bytes).substr(half),
                            DeadlineAfterMs(2000))
                  .ok());
  auto full = reader.Recv(*served, DeadlineAfterMs(2000), /*eof_ok=*/true);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->type, FrameType::kPing);
  EXPECT_EQ(full->request_id, 123u);
  ASSERT_EQ(full->sections.size(), 1u);
  EXPECT_EQ(full->sections[0].payload, std::string(4096, 'x'));

  // A clean close between frames still surfaces as kNotFound (EOF).
  client->Close();
  auto eof = reader.Recv(*served, DeadlineAfterMs(2000), /*eof_ok=*/true);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
}

TEST(WireResponseTest, BinaryResponseRoundTripsBitwise) {
  NetFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  LabelResponse expected = fx.Expected(snapshot, /*include_votes=*/true);

  auto decoded_frame = DecodeFrame(
      EncodeFrame(EncodeLabelResponse(42, expected)));
  ASSERT_TRUE(decoded_frame.ok()) << decoded_frame.status().ToString();
  EXPECT_EQ(decoded_frame->request_id, 42u);
  auto actual = DecodeLabelResponse(*decoded_frame);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();

  EXPECT_EQ(actual->cardinality, 2);
  // Doubles cross the wire as raw IEEE-754 bytes: EXACT equality.
  EXPECT_EQ(actual->posteriors, expected.posteriors);
  EXPECT_EQ(actual->hard_labels, expected.hard_labels);
  ASSERT_EQ(actual->votes.num_rows(), expected.votes.num_rows());
  ASSERT_EQ(actual->votes.num_lfs(), expected.votes.num_lfs());
  for (size_t i = 0; i < expected.votes.num_rows(); ++i) {
    for (size_t j = 0; j < expected.votes.num_lfs(); ++j) {
      EXPECT_EQ(actual->votes.At(i, j), expected.votes.At(i, j));
    }
  }
}

TEST(WireResponseTest, KClassResponseRoundTripsShapeAndBits) {
  LabelResponse response;
  response.cardinality = 5;
  response.hard_labels = {1, 4, 2};
  response.class_posteriors = {0.1, 0.2, 0.3, 0.25, 0.15,  //
                               0.0, 0.0, 0.0, 0.0, 1.0,    //
                               0.2, 0.2, 0.2, 0.2, 0.2};
  auto decoded_frame =
      DecodeFrame(EncodeFrame(EncodeLabelResponse(7, response)));
  ASSERT_TRUE(decoded_frame.ok());
  auto actual = DecodeLabelResponse(*decoded_frame);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->cardinality, 5);
  EXPECT_EQ(actual->class_posteriors, response.class_posteriors);
  EXPECT_EQ(actual->hard_labels, response.hard_labels);
  EXPECT_TRUE(actual->posteriors.empty());
}

TEST(WireStatsTest, StatsResponseRoundTrips) {
  WireServerStats stats;
  stats.snapshot_version = 17;
  stats.snapshot_checksum = 0xABCDEF0123456789ull;
  stats.requests_served = 12345;
  stats.candidates_served = 678900;
  stats.queue_rejections = 7;
  stats.snapshot_swaps = 3;
  stats.cardinality = 5;
  auto decoded_frame =
      DecodeFrame(EncodeFrame(EncodeStatsResponse(88, stats)));
  ASSERT_TRUE(decoded_frame.ok());
  auto actual = DecodeStatsResponse(*decoded_frame);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->snapshot_version, 17u);
  EXPECT_EQ(actual->snapshot_checksum, 0xABCDEF0123456789ull);
  EXPECT_EQ(actual->requests_served, 12345u);
  EXPECT_EQ(actual->candidates_served, 678900u);
  EXPECT_EQ(actual->queue_rejections, 7u);
  EXPECT_EQ(actual->snapshot_swaps, 3u);
  EXPECT_EQ(actual->cardinality, 5);
}

// --------------------------------------------------------- SnapshotStore --

TEST(SnapshotStoreTest, PublishListCurrentAndImmutableVersions) {
  std::string dir = FreshStoreDir("store_basic");
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Empty store: no current version.
  auto empty = store->CurrentVersion();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
  auto none = store->ListVersions();
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  ASSERT_TRUE(store->Publish(1, "artifact one").ok());
  ASSERT_TRUE(store->Publish(3, "artifact three").ok());
  auto versions = store->ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint64_t>{1, 3}));
  auto current = store->CurrentVersion();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 3u);

  // Versions are immutable: republishing is AlreadyExists and the original
  // bytes survive.
  Status overwrite = store->Publish(1, "usurper");
  ASSERT_FALSE(overwrite.ok());
  EXPECT_EQ(overwrite.code(), StatusCode::kAlreadyExists);
  auto bytes = ReadFileBytes(store->PathFor(1));
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "artifact one");

  // Unrelated files (and in-progress publish temps) are not versions.
  ASSERT_TRUE(WriteFileBytes(dir + "/.publish-9-12345", "partial").ok());
  ASSERT_TRUE(WriteFileBytes(dir + "/README", "notes").ok());
  versions = store->ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint64_t>{1, 3}));
}

TEST(SnapshotStoreTest, PromoteFileCopiesWithoutDestroyingTheSource) {
  std::string dir = FreshStoreDir("store_promote");
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok());
  std::string source = TempPath("candidate.snk");
  ASSERT_TRUE(WriteFileBytes(source, "candidate artifact bytes").ok());

  ASSERT_TRUE(store->PromoteFile(source, 1).ok());
  auto promoted = ReadFileBytes(store->PathFor(1));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(*promoted, "candidate artifact bytes");
  // The candidate file is left in place for any later step.
  auto still_there = ReadFileBytes(source);
  ASSERT_TRUE(still_there.ok());
  EXPECT_EQ(*still_there, "candidate artifact bytes");

  Status again = store->PromoteFile(source, 1);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  std::remove(source.c_str());
}

// ------------------------------------------------------ loopback serving --

TEST(ShardServerTest, LoopbackBitwiseParityWithInProcessService) {
  NetFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("loopback_parity.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot, /*include_votes=*/true);

  ShardServer::Options options;
  options.num_workers = 2;
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  EXPECT_TRUE(client.Ping(1000).ok());

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  for (int round = 0; round < 3; ++round) {
    auto actual = client.Label(fx.corpus, rows, /*include_votes=*/true,
                               /*apply_class_balance=*/true);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    // NOT ONE BIT may differ across the network hop.
    EXPECT_EQ(actual->posteriors, expected.posteriors);
    EXPECT_EQ(actual->hard_labels, expected.hard_labels);
    ASSERT_EQ(actual->votes.num_rows(), expected.votes.num_rows());
    for (size_t i = 0; i < expected.votes.num_rows(); ++i) {
      for (size_t j = 0; j < expected.votes.num_lfs(); ++j) {
        EXPECT_EQ(actual->votes.At(i, j), expected.votes.At(i, j));
      }
    }
  }

  // Rollout observability over the wire: version (0 = plain file mode) and
  // the artifact's canonical checksum.
  auto stats = client.GetStats(1000);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->snapshot_version, 0u);
  EXPECT_EQ(stats->snapshot_checksum, snapshot.CanonicalChecksum());
  EXPECT_EQ(stats->requests_served, 3u);
  EXPECT_EQ(stats->candidates_served, 3u * fx.candidates.size());
  EXPECT_EQ(stats->cardinality, 2);

  // Client-side pool actually reused connections across the calls.
  EXPECT_GT(client.stats().pooled_reuses, 0u);
  EXPECT_TRUE(client.stats().healthy);
  std::remove(path.c_str());
}

TEST(ShardServerTest, QueueBackpressureIsTypedResourceExhausted) {
  NetFixture fx(32);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("backpressure.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  ShardServer::Options options;
  options.queue_capacity = 1;
  options.num_workers = 1;
  options.inject_delay_every_n = 1;  // Every request holds the worker...
  options.inject_delay_ms = 50;      // ...long enough to fill the queue.
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);

  constexpr int kCallers = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::atomic<int> other_count{0};
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  std::vector<std::thread> threads;
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&] {
      auto response = client.Label(fx.corpus, rows, false, true);
      if (response.ok()) {
        ok_count.fetch_add(1);
      } else if (response.status().code() == StatusCode::kResourceExhausted) {
        rejected_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(rejected_count.load(), 1);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_EQ(server->stats().queue_rejections,
            static_cast<uint64_t>(rejected_count.load()));
  // Backpressure is an ANSWER, not a transport failure: the endpoint stays
  // healthy and rejected callers' connections went back to the pool.
  EXPECT_TRUE(client.stats().healthy);
  EXPECT_EQ(client.stats().failures, 0u);
  std::remove(path.c_str());
}

TEST(ShardServerTest, SpentDeadlineFailsTypedWithoutDeadWork) {
  NetFixture fx(32);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("deadline.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  ShardServer::Options options;
  options.queue_capacity = 8;
  options.num_workers = 1;
  options.inject_delay_every_n = 1;
  options.inject_delay_ms = 300;  // The first job pins the only worker.
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);

  // Raw wire, so the client-side transport deadline (generous) and the
  // request's own budget (tiny) are decoupled: the SERVER must be the one
  // to fail the queued request once its budget is spent.
  auto occupant = Socket::Connect("127.0.0.1", server->port(),
                                  DeadlineAfterMs(2000));
  ASSERT_TRUE(occupant.ok()) << occupant.status().ToString();
  ASSERT_TRUE(SendFrame(*occupant,
                        EncodeLabelRequest(1, fx.corpus, rows, false, true, 0),
                        DeadlineAfterMs(2000))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  auto doomed = Socket::Connect("127.0.0.1", server->port(),
                                DeadlineAfterMs(2000));
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(SendFrame(*doomed,
                        EncodeLabelRequest(2, fx.corpus, rows, false, true,
                                           /*deadline_ms=*/50),
                        DeadlineAfterMs(2000))
                  .ok());
  auto reply = RecvFrame(*doomed, DeadlineAfterMs(5000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->request_id, 2u);
  Status status = DecodeErrorFrame(*reply);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server->stats().deadline_rejections, 1u);

  // The occupant request still completes (drain, not drop).
  auto first = RecvFrame(*occupant, DeadlineAfterMs(5000));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, FrameType::kLabelResponse);
  std::remove(path.c_str());
}

TEST(WireLabelRequestTest, PreEncodedBatchReframesWithFreshBudget) {
  // The client-side budget-leak fix: the EXPENSIVE payload (corpus +
  // candidates) is encoded once, while the cheap deadline framing happens
  // per attempt with the budget REMAINING at that instant. The regression
  // this pins: a retry/hedge that re-framed the original deadline_ms
  // verbatim would grant the server a fresh full budget after the client
  // already burned part of it queueing/backing off.
  NetFixture fx(6);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  const EncodedLabelBatch batch = EncodeLabelBatch(fx.corpus, rows);

  // Framing from the pre-encoded batch is byte-identical to the one-shot
  // encoder — the split cannot change what the server sees.
  EXPECT_EQ(EncodeFrame(EncodeLabelRequestFromBatch(9, batch, true, false,
                                                    /*deadline_ms=*/123)),
            EncodeFrame(EncodeLabelRequest(9, fx.corpus, rows, true, false,
                                           /*deadline_ms=*/123)));

  // Re-framing the SAME batch with a smaller remaining budget (what each
  // attempt computes at dispatch) reaches the server as the smaller value.
  auto early = DecodeFrame(
      EncodeFrame(EncodeLabelRequestFromBatch(9, batch, true, false, 30)));
  ASSERT_TRUE(early.ok());
  auto late = DecodeFrame(
      EncodeFrame(EncodeLabelRequestFromBatch(9, batch, true, false, 11)));
  ASSERT_TRUE(late.ok());
  auto wire_early = DecodeLabelRequest(*early);
  auto wire_late = DecodeLabelRequest(*late);
  ASSERT_TRUE(wire_early.ok());
  ASSERT_TRUE(wire_late.ok());
  EXPECT_EQ(wire_early->deadline_ms, 30u);
  EXPECT_EQ(wire_late->deadline_ms, 11u);
  EXPECT_LT(wire_late->deadline_ms, wire_early->deadline_ms);
  EXPECT_EQ(wire_late->candidates.size(), rows.size());
}

TEST(ShardServerTest, ExpiredBudgetCancelsComputeMidFlight) {
  // Cooperative cancellation end-to-end: the worker dequeues the job while
  // its budget is still live, the injected server.label delay outlives the
  // budget, and the replica's chunk-boundary token checks stop the LF
  // compute mid-flight — typed kDeadlineExceeded, counted as
  // expired_work_cancelled (NOT a pre-compute deadline_rejection).
  NetFixture fx(128);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("cancel_midflight.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  ShardServer::Options options;
  options.num_workers = 1;
  options.inject_delay_every_n = 1;
  options.inject_delay_ms = 80;  // Outlives the 30 ms budget below.
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);

  auto response = client.Label(fx.corpus, rows, false, true,
                               /*deadline_ms=*/30);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  // The client's socket deadline fires before the worker finishes
  // cancelling server-side; poll briefly for the counter.
  for (int i = 0; i < 100 && server->stats().expired_work_cancelled == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server->stats().expired_work_cancelled, 1u);

  // The counter is also served over the wire (rollout observability).
  auto wire_stats = client.GetStats(2000);
  ASSERT_TRUE(wire_stats.ok()) << wire_stats.status().ToString();
  EXPECT_GE(wire_stats->expired_work_cancelled, 1u);

  // The shard is NOT damaged: with the budget gone, the same request
  // (generous deadline) is served bit-exact against the in-process oracle.
  LabelResponse expected = fx.Expected(snapshot, /*include_votes=*/false);
  auto healthy = client.Label(fx.corpus, rows, false, true,
                              /*deadline_ms=*/10'000);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->posteriors, expected.posteriors);
  EXPECT_EQ(healthy->hard_labels, expected.hard_labels);
  std::remove(path.c_str());
}

TEST(ShardServerTest, OverloadRejectionsCarryRetryAfterHint) {
  // Every kResourceExhausted the server emits carries a non-zero
  // retry_after_ms hint priced off the queued backlog, surfaced through
  // the client's out-param and fed to its adaptive limiter.
  NetFixture fx(32);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("retry_after.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  ShardServer::Options options;
  options.queue_capacity = 1;
  options.num_workers = 1;
  options.inject_delay_every_n = 1;
  options.inject_delay_ms = 50;
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  // Big enough that the limiter never rejects locally — this test wants
  // SERVER rejections, with hints.
  client_options.adaptive_initial_limit = 32.0;
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);

  constexpr int kCallers = 8;
  std::atomic<int> rejected_with_hint{0};
  std::atomic<int> rejected_without_hint{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&] {
      bool failed_fast = false;
      uint64_t retry_after_ms = 0;
      auto response = client.Label(fx.corpus, rows, false, true, 0,
                                   &failed_fast, &retry_after_ms);
      if (!response.ok() &&
          response.status().code() == StatusCode::kResourceExhausted &&
          !failed_fast) {
        (retry_after_ms > 0 ? rejected_with_hint : rejected_without_hint)
            .fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GE(rejected_with_hint.load(), 1);
  EXPECT_EQ(rejected_without_hint.load(), 0);
  // The overload signals shrank the client's AIMD limit below its start.
  EXPECT_LT(client.stats().adaptive_limit, 32.0);
  std::remove(path.c_str());
}

TEST(RemoteClientTest, ConsecutiveTransportFailuresTripFailFast) {
  // A server that existed and died: bind a port, then shut down.
  NetFixture fx(8);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("dead_shard.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  auto server = ShardServer::Serve(path, fx.MakeLfs(), {});
  ASSERT_TRUE(server.ok());
  uint16_t dead_port = server->port();
  server->Shutdown();

  RemoteShardClient::Options options;
  options.port = dead_port;
  options.connect_timeout_ms = 200;
  options.unhealthy_threshold = 2;
  options.unhealthy_cooldown_ms = 60'000;  // Stay in cooldown for the test.
  RemoteShardClient client = RemoteShardClient::Create(options);

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  for (int i = 0; i < 2; ++i) {
    auto response = client.Label(fx.corpus, rows, false, true, 500);
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  }
  // Threshold reached: the next call fails FAST (no connect storm against a
  // dead shard) and says so in the counters.
  auto fast = client.Label(fx.corpus, rows, false, true, 500);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kUnavailable);
  RemoteShardClient::Stats stats = client.stats();
  EXPECT_FALSE(stats.healthy);
  EXPECT_GE(stats.fail_fast, 1u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.failures, 3u);
  std::remove(path.c_str());
}

TEST(RemoteClientTest, HedgedRetryWinsTheInjectedLatencyTail) {
  NetFixture fx(32);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("hedge.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot, /*include_votes=*/false);

  ShardServer::Options options;
  options.num_workers = 4;  // Hedge attempts must not queue behind losers.
  options.queue_capacity = 16;
  options.inject_delay_every_n = 2;  // Every 2nd request is tail latency.
  options.inject_delay_ms = 400;
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  client_options.enable_hedging = true;
  client_options.hedge_delay_ms = 50;
  RemoteShardClient client = RemoteShardClient::Create(client_options);

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  for (int round = 0; round < 4; ++round) {
    auto actual = client.Label(fx.corpus, rows, false, true, 5000);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    // The race is safe because both attempts are bit-identical.
    EXPECT_EQ(actual->posteriors, expected.posteriors);
  }
  RemoteShardClient::Stats stats = client.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.failures, 0u);
  // The injected every-2nd-request tail guarantees at least one slow first
  // attempt whose hedge completed first.
  EXPECT_GE(stats.hedged_attempts, 1u);
  EXPECT_GE(stats.hedged_wins, 1u);
  std::remove(path.c_str());
}

TEST(ShardServerTest, HotSwapServesNewVersionWithZeroFailedRequests) {
  NetFixture fx(48);
  ModelSnapshot v1 = fx.MakeSnapshot(fx.MakeLfs(), /*epochs=*/60);
  ModelSnapshot v2 = fx.MakeSnapshot(fx.MakeLfs(), /*epochs=*/90);
  ASSERT_NE(v1.CanonicalChecksum(), v2.CanonicalChecksum());
  LabelResponse expected_v1 = fx.Expected(v1, false);
  LabelResponse expected_v2 = fx.Expected(v2, false);

  std::string dir = FreshStoreDir("store_hotswap");
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Publish(1, SerializeSnapshot(v1)).ok());

  ShardServer::Options options;
  options.num_workers = 2;
  options.watch_interval_ms = 25;
  auto server = ShardServer::ServeFromStore(dir, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server->stats().snapshot_version, 1u);
  EXPECT_EQ(server->stats().snapshot_checksum, v1.CanonicalChecksum());

  // Continuous traffic across the swap: every response must be ok and must
  // be EXACTLY one of the two versions' outputs — never a blend, never an
  // error, never a hang.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&] {
      RemoteShardClient::Options client_options;
      client_options.port = server->port();
      RemoteShardClient client = RemoteShardClient::Create(client_options);
      std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
      while (!stop.load()) {
        auto response = client.Label(fx.corpus, rows, false, true, 5000);
        if (!response.ok() ||
            (response->posteriors != expected_v1.posteriors &&
             response->posteriors != expected_v2.posteriors)) {
          failures.fetch_add(1);
        } else {
          served.fetch_add(1);
        }
      }
    });
  }
  // Concurrent metrics scrapes during the swap: the version gauge reads
  // serving state under the registry lock while the watcher retires the old
  // generation — regression coverage for the state_mu/registry-lock
  // ordering (the swap must drop the old state outside state_mu).
  std::atomic<int> scrapes{0};
  traffic.emplace_back([&] {
    RemoteShardClient::Options client_options;
    client_options.port = server->port();
    client_options.request_timeout_ms = 5000;
    RemoteShardClient client = RemoteShardClient::Create(client_options);
    while (!stop.load()) {
      auto text = client.GetMetrics();
      if (!text.ok() ||
          text->find("snorkel_server_snapshot_version") == std::string::npos) {
        failures.fetch_add(1);
      } else {
        scrapes.fetch_add(1);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(store->Publish(2, SerializeSnapshot(v2)).ok());

  // The watcher observes version 2 and swaps without dropping traffic.
  bool swapped = false;
  for (int i = 0; i < 200 && !swapped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    swapped = server->stats().snapshot_version == 2;
  }
  ASSERT_TRUE(swapped) << "watcher never swapped to version 2";
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A corrupt later version must be rejected while the fabric keeps
  // serving version 2.
  ASSERT_TRUE(store->Publish(3, "not a snapshot at all").ok());
  bool rejected = false;
  for (int i = 0; i < 200 && !rejected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    rejected = server->stats().rejected_swaps >= 1;
  }
  EXPECT_TRUE(rejected) << "corrupt artifact was never rejected";
  EXPECT_EQ(server->stats().snapshot_version, 2u);

  stop.store(true);
  for (auto& th : traffic) th.join();
  EXPECT_EQ(failures.load(), 0) << "requests failed during the rollout";
  EXPECT_GT(served.load(), 0);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(server->stats().snapshot_swaps, 1u);
  EXPECT_EQ(server->stats().snapshot_checksum, v2.CanonicalChecksum());

  // Steady state after the swap serves v2's bits exactly.
  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  auto final_response = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_TRUE(final_response.ok());
  EXPECT_EQ(final_response->posteriors, expected_v2.posteriors);
  auto wire_stats = client.GetStats(1000);
  ASSERT_TRUE(wire_stats.ok());
  EXPECT_EQ(wire_stats->snapshot_version, 2u);
  EXPECT_EQ(wire_stats->snapshot_checksum, v2.CanonicalChecksum());
}

// ------------------------------------------------- remote router fabric --

struct TwoShardFleet {
  NetFixture fx;
  ModelSnapshot snapshot;
  std::string path;
  std::vector<ShardServer> servers;
  std::vector<std::pair<std::string, uint16_t>> endpoints;

  explicit TwoShardFleet(int num_docs = 120)
      : fx(num_docs), snapshot(fx.MakeSnapshot(fx.MakeLfs())) {
    path = TempPath("fleet_" + std::to_string(num_docs) + ".snk");
    EXPECT_TRUE(SaveSnapshot(snapshot, path).ok());
    for (int s = 0; s < 2; ++s) {
      ShardServer::Options options;
      options.num_workers = 2;
      auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      endpoints.emplace_back("127.0.0.1", server->port());
      servers.push_back(std::move(*server));
    }
  }
  ~TwoShardFleet() { std::remove(path.c_str()); }
};

TEST(RemoteRouterTest, BitwiseParityWithUnshardedUnderConcurrentCallers) {
  TwoShardFleet fleet(120);
  LabelResponse expected = fleet.fx.Expected(fleet.snapshot, true);

  auto router = RemoteShardRouter::Create(fleet.endpoints, {});
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  LabelRequest request;
  request.corpus = &fleet.fx.corpus;
  request.candidates = &fleet.fx.candidates;
  request.include_votes = true;
  auto actual = router->Label(request);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_FALSE(actual->is_partial);
  ASSERT_EQ(actual->posteriors.size(), expected.posteriors.size());
  EXPECT_EQ(actual->posteriors, expected.posteriors);
  EXPECT_EQ(actual->hard_labels, expected.hard_labels);
  ASSERT_EQ(actual->votes.num_rows(), expected.votes.num_rows());
  ASSERT_EQ(actual->votes.num_lfs(), expected.votes.num_lfs());
  for (size_t i = 0; i < expected.votes.num_rows(); ++i) {
    for (size_t j = 0; j < expected.votes.num_lfs(); ++j) {
      EXPECT_EQ(actual->votes.At(i, j), expected.votes.At(i, j))
          << "vote mismatch at (" << i << ", " << j << ")";
    }
  }

  // Concurrent callers over sub-batches: all bitwise.
  constexpr size_t kBatch = 30;
  std::vector<std::vector<Candidate>> batches;
  std::vector<std::vector<double>> expected_batches;
  auto unsharded = LabelService::Create(fleet.snapshot, fleet.fx.MakeLfs());
  ASSERT_TRUE(unsharded.ok());
  for (size_t b = 0; b < fleet.fx.candidates.size(); b += kBatch) {
    size_t e = std::min(b + kBatch, fleet.fx.candidates.size());
    batches.emplace_back(fleet.fx.candidates.begin() + b,
                         fleet.fx.candidates.begin() + e);
    LabelRequest batch_request;
    batch_request.corpus = &fleet.fx.corpus;
    batch_request.candidates = &batches.back();
    auto response = unsharded->Label(batch_request);
    ASSERT_TRUE(response.ok());
    expected_batches.push_back(response->posteriors);
  }
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t b = static_cast<size_t>(t); b < batches.size();
             b += kThreads) {
          LabelRequest batch_request;
          batch_request.corpus = &fleet.fx.corpus;
          batch_request.candidates = &batches[b];
          auto response = router->Label(batch_request);
          if (!response.ok() ||
              response->posteriors != expected_batches[b]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.num_requests,
            1u + static_cast<uint64_t>(kRounds) * batches.size());
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.degraded_requests, 0u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_TRUE(stats.per_shard[0].healthy);
  EXPECT_TRUE(stats.per_shard[1].healthy);
}

TEST(RemoteRouterTest, DeadShardFailsWholeTypedOrDegradesWhenOptedIn) {
  TwoShardFleet fleet(64);
  LabelResponse expected = fleet.fx.Expected(fleet.snapshot, false);

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 300;
  options.request_timeout_ms = 2000;
  // Single-owner placement: this test pins the UNREPLICATED failure
  // contract (replication >= 2 would transparently fail the sub-batch over
  // to the surviving endpoint — covered by its own tests below).
  options.replication = 1;
  auto router = RemoteShardRouter::Create(fleet.endpoints, options);
  ASSERT_TRUE(router.ok());

  // Kill shard 1. Its rows are exactly the candidates whose stable content
  // hash lands on it — placement the client can compute locally.
  constexpr size_t kDead = 1;
  fleet.servers[kDead].Shutdown();

  // Default policy: the WHOLE request fails, typed, naming the shard.
  LabelRequest request;
  request.corpus = &fleet.fx.corpus;
  request.candidates = &fleet.fx.candidates;
  auto whole = router->Label(request);
  ASSERT_FALSE(whole.ok());
  EXPECT_EQ(whole.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(whole.status().message().find("shard 1/2"), std::string::npos)
      << whole.status().ToString();

  // allow_partial: typed degraded service. Covered rows bitwise, uncovered
  // rows flagged — never silent partial data.
  request.allow_partial = true;
  auto partial = router->Label(request);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->is_partial);
  ASSERT_EQ(partial->posteriors.size(), fleet.fx.candidates.size());
  ASSERT_FALSE(partial->covered.empty());
  size_t covered_rows = 0;
  for (size_t i = 0; i < fleet.fx.candidates.size(); ++i) {
    bool on_dead_shard =
        CandidateShardKey(fleet.fx.candidates[i]) % 2 == kDead;
    EXPECT_EQ(partial->RowCovered(i), !on_dead_shard) << "row " << i;
    if (!on_dead_shard) {
      ++covered_rows;
      EXPECT_EQ(partial->posteriors[i], expected.posteriors[i])
          << "covered row " << i << " drifted";
      EXPECT_EQ(partial->hard_labels[i], expected.hard_labels[i]);
    } else {
      // Placeholders, not model output.
      EXPECT_EQ(partial->posteriors[i], 0.0);
      EXPECT_EQ(partial->hard_labels[i], kAbstain);
    }
  }
  EXPECT_GT(covered_rows, 0u);
  EXPECT_LT(covered_rows, fleet.fx.candidates.size());
  ASSERT_EQ(partial->shard_outcomes.size(), 2u);
  EXPECT_EQ(partial->shard_outcomes[0].shard, 0u);
  EXPECT_EQ(partial->shard_outcomes[0].code, StatusCode::kOk);
  EXPECT_EQ(partial->shard_outcomes[1].shard, kDead);
  EXPECT_EQ(partial->shard_outcomes[1].code, StatusCode::kUnavailable);

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.degraded_requests, 1u);

  // With EVERY shard dead, allow_partial still fails typed — zero coverage
  // is a failure wearing a success type.
  fleet.servers[0].Shutdown();
  auto none = router->Label(request);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(none.status().message().find("no shard survived"),
            std::string::npos)
      << none.status().ToString();
}

// ---------------------------------------------------- replica placement --

TEST(PlacementTest, PreferenceListsAreDeterministicValidAndPrimaryFirst) {
  constexpr size_t kEndpoints = 5;
  constexpr size_t kReplication = 3;
  ShardPlacement placement(kEndpoints, kReplication);
  ShardPlacement again(kEndpoints, kReplication);
  EXPECT_EQ(placement.replication(), kReplication);

  for (size_t shard = 0; shard < kEndpoints; ++shard) {
    const std::vector<uint32_t>& prefs = placement.Preferences(shard);
    ASSERT_EQ(prefs.size(), kReplication);
    // Element 0 is the primary — the historic single-owner placement.
    EXPECT_EQ(prefs[0], shard);
    // All entries are distinct, in-range endpoints.
    std::set<uint32_t> distinct(prefs.begin(), prefs.end());
    EXPECT_EQ(distinct.size(), prefs.size());
    for (uint32_t e : prefs) EXPECT_LT(e, kEndpoints);
    // Placement is a pure function of (endpoints, replication): every
    // router computes the identical lists with zero coordination.
    EXPECT_EQ(prefs, again.Preferences(shard));
  }

  // HRW fallbacks spread across the fleet instead of all piling onto
  // (s + 1) % n — at least two distinct first-fallback targets.
  ShardPlacement wide(8, 2);
  std::set<uint32_t> first_fallbacks;
  for (size_t shard = 0; shard < 8; ++shard) {
    first_fallbacks.insert(wide.Preferences(shard)[1]);
  }
  EXPECT_GE(first_fallbacks.size(), 2u);

  // Replication clamps to the fleet size; 1 degenerates to single-owner.
  EXPECT_EQ(ShardPlacement(3, 99).replication(), 3u);
  ShardPlacement solo(4, 1);
  for (size_t shard = 0; shard < 4; ++shard) {
    ASSERT_EQ(solo.Preferences(shard).size(), 1u);
    EXPECT_EQ(solo.Preferences(shard)[0], shard);
  }
}

TEST(PlacementTest, PrimaryAgreesWithPartitionerAcrossTiers) {
  NetFixture fx(32);
  for (size_t n : {2u, 3u, 5u}) {
    CandidatePartitioner partitioner(n);
    ShardPlacement placement(n, 2);
    for (const Candidate& candidate : fx.candidates) {
      const uint64_t key = CandidateShardKey(candidate);
      const size_t primary = ShardPlacement::PrimaryOf(key, n);
      // Both tiers and the replica layer agree on the primary: the shard
      // tier's modulo placement IS the preference list's head.
      EXPECT_EQ(primary, key % n);
      EXPECT_EQ(partitioner.ShardOf(candidate), primary);
      EXPECT_EQ(placement.Preferences(primary)[0], primary);
    }
  }
}

// ------------------------------------------- failover primitives (health) --

TEST(BackoffTest, DelaysAreSeededDeterministicBoundedAndGrow) {
  BackoffOptions options;  // base 10, x2, max 1000, jitter 0.5, seed 42.
  EXPECT_EQ(BackoffDelayMs(options, 1, 0), 0u);

  for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
    uint64_t unjittered = std::min<uint64_t>(
        static_cast<uint64_t>(10.0 * std::pow(2.0, attempt - 1)), 1000);
    uint64_t delay = BackoffDelayMs(options, 3, attempt);
    // Jitter scales by [1, 1.5]: never below the exponential floor, never
    // past 1.5x the (capped) base delay.
    EXPECT_GE(delay, unjittered) << "attempt " << attempt;
    EXPECT_LE(delay, unjittered + unjittered / 2) << "attempt " << attempt;
    // Pure function of (options, stream, attempt): reproducible.
    EXPECT_EQ(delay, BackoffDelayMs(options, 3, attempt));
  }

  // Distinct streams decorrelate (different shards never retry in
  // lockstep): the jittered sequences differ somewhere.
  bool streams_differ = false;
  for (uint32_t attempt = 1; attempt <= 8 && !streams_differ; ++attempt) {
    streams_differ =
        BackoffDelayMs(options, 1, attempt) != BackoffDelayMs(options, 2, attempt);
  }
  EXPECT_TRUE(streams_differ);

  // jitter 0 = the exact exponential schedule, capped.
  options.jitter = 0.0;
  EXPECT_EQ(BackoffDelayMs(options, 9, 1), 10u);
  EXPECT_EQ(BackoffDelayMs(options, 9, 2), 20u);
  EXPECT_EQ(BackoffDelayMs(options, 9, 3), 40u);
  EXPECT_EQ(BackoffDelayMs(options, 9, 20), 1000u);
}

TEST(RetryBudgetTest, TokenBucketRefillsCapsAndCountsExhaustion) {
  RetryBudget::Options options;
  options.initial = 2.0;
  options.max_tokens = 2.0;
  options.per_request_refill = 0.5;
  RetryBudget budget(options);

  EXPECT_TRUE(budget.TryConsume());
  EXPECT_TRUE(budget.TryConsume());
  // Dry: the retry is refused AND counted (the anti-storm valve engaging).
  EXPECT_FALSE(budget.TryConsume());
  EXPECT_EQ(budget.exhausted(), 1u);

  // Two first attempts deposit 2 * 0.5 = 1 token: one retry allowed again.
  budget.OnRequest();
  budget.OnRequest();
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
  EXPECT_EQ(budget.exhausted(), 2u);

  // Refill caps at max_tokens: a long quiet stretch buys at most 2 retries.
  for (int i = 0; i < 100; ++i) budget.OnRequest();
  EXPECT_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
}

TEST(CircuitBreakerTest, OpensProbesAndClosesDeterministically) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_ms = 40;
  options.cooldown_jitter = 0.0;  // Fixed cooldown: the test can sleep past it.
  CircuitBreaker breaker(options);

  // A success between failures resets the consecutive count.
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kAllow);
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // Threshold consecutive failures open it; while open every caller is
  // rejected without I/O.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kReject);
  EXPECT_GE(breaker.open_rejections(), 1u);

  // Cooldown expires: exactly ONE caller wins the probe slot, everyone
  // else keeps failing fast until the probe reports.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kReject);

  // Probe fails: re-open with a fresh cooldown.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kReject);

  // Next probe succeeds: closed, and traffic flows again.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kProbe);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kAllow);
}

TEST(AdaptiveLimiterTest, AimdGrowsOnSuccessAndShrinksOnOverload) {
  AdaptiveLimiter::Options options;
  options.initial_limit = 4.0;
  options.min_limit = 1.0;
  options.max_limit = 8.0;
  options.decrease_factor = 0.5;
  AdaptiveLimiter limiter(options);
  const auto soon = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(5);
  const auto later = std::chrono::steady_clock::now() +
                     std::chrono::seconds(5);

  // Fill every slot; the next acquisition times out at its own deadline
  // and is counted — the local kResourceExhausted the client surfaces.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(limiter.Acquire(later));
  EXPECT_EQ(limiter.in_flight(), 4u);
  EXPECT_FALSE(limiter.Acquire(soon));
  EXPECT_EQ(limiter.rejections(), 1u);

  // Additive increase: ~ +increase/limit per success, TCP-style.
  for (int i = 0; i < 4; ++i) limiter.ReleaseSuccess();
  EXPECT_GT(limiter.limit(), 4.0);
  EXPECT_LE(limiter.limit(), 8.0);

  // Multiplicative decrease on an overload signal.
  ASSERT_TRUE(limiter.Acquire(later));
  const double before = limiter.limit();
  limiter.ReleaseOverload(/*retry_after_ms=*/0);
  EXPECT_LT(limiter.limit(), before);
  EXPECT_GE(limiter.limit(), 1.0);

  // A blocked acquirer wakes when a slot frees (no deadline needed).
  while (limiter.in_flight() < static_cast<size_t>(limiter.limit())) {
    ASSERT_TRUE(limiter.Acquire(later));
  }
  std::thread blocked([&] { EXPECT_TRUE(limiter.Acquire(later)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  limiter.ReleaseSuccess();
  blocked.join();
}

TEST(AdaptiveLimiterTest, RetryAfterHintGatesNewAcquisitions) {
  AdaptiveLimiter::Options options;
  options.initial_limit = 4.0;
  AdaptiveLimiter limiter(options);
  const auto later = std::chrono::steady_clock::now() +
                     std::chrono::seconds(5);

  ASSERT_TRUE(limiter.Acquire(later));
  limiter.ReleaseOverload(/*retry_after_ms=*/60);

  // Inside the gate window an acquisition with a shorter deadline fails —
  // the server said "come back later", and the limiter enforces it.
  EXPECT_FALSE(limiter.Acquire(std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(5)));

  // A caller whose deadline outlives the gate waits it out and succeeds.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(limiter.Acquire(later));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_GE(waited, 40);
  limiter.ReleaseNeutral();
}

// ------------------------------------------- fault sites in the transport --

/// Disarms every fault site on scope exit: the registry is process-wide,
/// and a schedule leaking out of one test would poison the next.
struct FaultGuard {
  ~FaultGuard() { fault::DisarmAll(); }
};

TEST(SocketTest, ArmedFaultSitesInjectTypedTransportErrors) {
  FaultGuard guard;
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect("127.0.0.1", listener->port(), DeadlineAfterMs(2000));
  ASSERT_TRUE(client.ok());
  auto served = listener->Accept(2000);
  ASSERT_TRUE(served.ok());

  // Every send faults, but only once (max_hits auto-disarm).
  fault::Schedule send_fault;
  send_fault.kind = fault::Schedule::Kind::kFailNth;
  send_fault.n = 1;
  send_fault.max_hits = 1;
  ASSERT_TRUE(fault::Arm("net.send", send_fault).ok());
  Status broken = client->SendAll("hello", DeadlineAfterMs(2000));
  ASSERT_FALSE(broken.ok());
  // Same typed error a real mid-send break produces: downstream cannot
  // (and must not) tell an injected fault from a real one.
  EXPECT_EQ(broken.code(), StatusCode::kUnavailable);
  EXPECT_NE(broken.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(fault::SiteInjected("net.send"), 1u);

  // Auto-disarmed: the retry goes through and the bytes arrive intact.
  ASSERT_TRUE(client->SendAll("hello", DeadlineAfterMs(2000)).ok());
  char buffer[5];
  ASSERT_TRUE(
      served->RecvExact(buffer, sizeof(buffer), DeadlineAfterMs(2000)).ok());
  EXPECT_EQ(std::string(buffer, sizeof(buffer)), "hello");

  // Same discipline on the receive side.
  fault::Schedule recv_fault;
  recv_fault.kind = fault::Schedule::Kind::kFailNth;
  recv_fault.n = 1;
  recv_fault.max_hits = 1;
  ASSERT_TRUE(fault::Arm("net.recv", recv_fault).ok());
  ASSERT_TRUE(client->SendAll("world", DeadlineAfterMs(2000)).ok());
  Status injected = served->RecvExact(buffer, sizeof(buffer),
                                      DeadlineAfterMs(2000));
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault::SiteInjected("net.recv"), 1u);
  ASSERT_TRUE(
      served->RecvExact(buffer, sizeof(buffer), DeadlineAfterMs(2000)).ok());
  EXPECT_EQ(std::string(buffer, sizeof(buffer)), "world");
}

std::atomic<int> g_signals_caught{0};

void CountSignal(int) { g_signals_caught.fetch_add(1, std::memory_order_relaxed); }

TEST(SocketTest, TransferSurvivesSignalStormAndPeerDeathIsTypedNotFatal) {
  // SA_RESTART deliberately OFF: every poll/send/recv in flight when a
  // signal lands returns EINTR, which the socket layer must absorb without
  // losing bytes or surfacing a spurious transport error.
  struct sigaction storm_action;
  struct sigaction old_action;
  std::memset(&storm_action, 0, sizeof(storm_action));
  storm_action.sa_handler = CountSignal;
  ASSERT_EQ(sigaction(SIGUSR1, &storm_action, &old_action), 0);
  g_signals_caught.store(0);

  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect("127.0.0.1", listener->port(), DeadlineAfterMs(2000));
  ASSERT_TRUE(client.ok());
  auto served = listener->Accept(2000);
  ASSERT_TRUE(served.ok());

  // 8 MB — far past the socket buffers, so both sides block mid-transfer
  // (where EINTR actually bites) many times.
  const size_t kTotal = 8u << 20;
  std::string payload(kTotal, '\0');
  for (size_t i = 0; i < kTotal; ++i) {
    payload[i] = static_cast<char>((i * 131u) ^ (i >> 7));
  }

  std::string received(kTotal, '\0');
  std::atomic<bool> storm_stop{false};
  std::atomic<bool> recv_ok{false};
  std::thread receiver([&] {
    size_t got = 0;
    for (;;) {
      // Short deadlines on purpose: expiry must preserve the cursor, so
      // re-arming resumes mid-stream instead of discarding consumed bytes.
      Status status = served->RecvSome(received.data(), kTotal, &got,
                                       DeadlineAfterMs(250));
      if (status.ok()) {
        recv_ok.store(true);
        break;
      }
      if (status.code() != StatusCode::kDeadlineExceeded) break;
    }
    // Stay alive until the storm stops: pthread_kill against a finished
    // thread is undefined.
    while (!storm_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  pthread_t sender_handle = pthread_self();
  pthread_t receiver_handle = receiver.native_handle();
  std::thread storm([&] {
    while (!storm_stop.load()) {
      pthread_kill(sender_handle, SIGUSR1);
      pthread_kill(receiver_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  Status sent = client->SendAll(payload, DeadlineAfterMs(30'000));
  for (int i = 0; i < 3000 && !recv_ok.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  storm_stop.store(true);
  storm.join();
  receiver.join();

  ASSERT_TRUE(sent.ok()) << sent.ToString();
  ASSERT_TRUE(recv_ok.load());
  EXPECT_GT(g_signals_caught.load(), 0) << "the storm never landed a signal";
  // NOT ONE BIT lost or reordered across the interruptions.
  EXPECT_EQ(received, payload);

  // Peer death: the server side hangs up; the client must see TYPED errors
  // — kNotFound for the clean EOF, kUnavailable once the send-side breaks
  // (EPIPE suppressed per-send; the process surviving IS the assertion).
  served->Close();
  char byte;
  size_t got = 0;
  Status eof = client->RecvSome(&byte, 1, &got, DeadlineAfterMs(2000),
                                /*eof_ok=*/true);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kNotFound);

  const std::string chunk = payload.substr(0, 64 * 1024);
  Status dead = Status::OK();
  for (int i = 0; i < 200 && dead.ok(); ++i) {
    dead = client->SendAll(chunk, DeadlineAfterMs(2000));
  }
  ASSERT_FALSE(dead.ok()) << "send into a closed peer never failed";
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable);

  ASSERT_EQ(sigaction(SIGUSR1, &old_action, nullptr), 0);
}

// -------------------------------------------- fault control-plane payloads --

TEST(WireFaultTest, FaultCommandRoundTripsAndRejectsGarbage) {
  WireFaultCommand command;
  command.disarm_all = true;
  fault::Schedule prob;
  prob.kind = fault::Schedule::Kind::kFailProbability;
  prob.probability = 0.25;
  prob.seed = 7;
  prob.max_hits = 3;
  command.arm.emplace_back("net.send", prob);
  fault::Schedule delay;
  delay.kind = fault::Schedule::Kind::kDelayNth;
  delay.n = 2;
  delay.delay_ms = 400;
  delay.seed = 9;
  command.arm.emplace_back("server.label", delay);

  auto frame = DecodeFrame(EncodeFrame(EncodeFaultRequest(21, command)));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kFaultRequest);
  EXPECT_EQ(frame->request_id, 21u);
  auto decoded = DecodeFaultRequest(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->disarm_all);
  ASSERT_EQ(decoded->arm.size(), 2u);
  EXPECT_EQ(decoded->arm[0].first, "net.send");
  EXPECT_EQ(decoded->arm[0].second.kind,
            fault::Schedule::Kind::kFailProbability);
  EXPECT_EQ(decoded->arm[0].second.probability, 0.25);
  EXPECT_EQ(decoded->arm[0].second.seed, 7u);
  EXPECT_EQ(decoded->arm[0].second.max_hits, 3u);
  EXPECT_EQ(decoded->arm[1].first, "server.label");
  EXPECT_EQ(decoded->arm[1].second.kind, fault::Schedule::Kind::kDelayNth);
  EXPECT_EQ(decoded->arm[1].second.n, 2u);
  EXPECT_EQ(decoded->arm[1].second.delay_ms, 400u);

  // The ack is a bare correlated frame.
  auto ack = DecodeFrame(EncodeFrame(EncodeFaultResponse(21)));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, FrameType::kFaultResponse);
  EXPECT_EQ(ack->request_id, 21u);

  // Wrong frame type fails typed.
  Frame ping;
  ping.type = FrameType::kPing;
  EXPECT_FALSE(DecodeFaultRequest(ping).ok());

  // A truncated FLTI section fails typed, never reads past the payload.
  Frame torn = *frame;
  for (FrameSection& section : torn.sections) {
    if (section.tag == std::string(kSectionFaults, 4)) {
      section.payload.resize(section.payload.size() / 2);
    }
  }
  auto rejected = DecodeFaultRequest(torn);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kIOError);
}

TEST(WireStatsTest, FaultsInjectedRoundTripsAndOldPeerPayloadDecodesToZero) {
  WireServerStats stats;
  stats.snapshot_version = 4;
  stats.requests_served = 99;
  stats.faults_injected = 31337;
  stats.expired_work_cancelled = 17;
  stats.shed_total = 23;
  auto frame = DecodeFrame(EncodeFrame(EncodeStatsResponse(88, stats)));
  ASSERT_TRUE(frame.ok());
  auto actual = DecodeStatsResponse(*frame);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->faults_injected, 31337u);
  EXPECT_EQ(actual->requests_served, 99u);
  EXPECT_EQ(actual->expired_work_cancelled, 17u);
  EXPECT_EQ(actual->shed_total, 23u);

  // An OLD peer's SVST section stops before the appended counters. Four
  // generations: a PR-10 peer has everything; a PR-8/9 peer (two trailing
  // u64s shorter) lacks expired_work_cancelled / shed_total; a PR-7 peer
  // (four shorter) also lacks deadline_rejections / rejected_swaps; a
  // pre-faults peer (five shorter) has none of the appended fields. Every
  // truncation decodes, missing fields read 0, and every older field still
  // reads correctly.
  auto truncated = [&](size_t dropped_u64s) {
    Frame old_peer = *frame;
    for (FrameSection& section : old_peer.sections) {
      if (section.tag == std::string(kSectionServerStats, 4)) {
        ASSERT_GE(section.payload.size(), dropped_u64s * sizeof(uint64_t));
        section.payload.resize(section.payload.size() -
                               dropped_u64s * sizeof(uint64_t));
      }
    }
    auto compat = DecodeStatsResponse(old_peer);
    ASSERT_TRUE(compat.ok()) << compat.status().ToString();
    EXPECT_EQ(compat->snapshot_version, 4u);
    EXPECT_EQ(compat->requests_served, 99u);
    EXPECT_EQ(compat->expired_work_cancelled, 0u);
    EXPECT_EQ(compat->shed_total, 0u);
    EXPECT_EQ(compat->deadline_rejections, 0u);
    EXPECT_EQ(compat->rejected_swaps, 0u);
    EXPECT_EQ(compat->faults_injected, dropped_u64s >= 5 ? 0u : 31337u);
  };
  truncated(2);
  truncated(4);
  truncated(5);
}

// -------------------------------------------- trace + metrics wire compat --

TEST(WireTraceTest, TraceContextRoundTripsAndOldOrUntracedPeersReadZero) {
  NetFixture fx(6);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);

  obs::TraceContext trace;
  trace.trace_id = 0xdeadbeefcafeULL;
  trace.parent_span = 0x1234;
  auto traced = DecodeFrame(
      EncodeFrame(EncodeLabelRequest(7, fx.corpus, rows, true, true, 250,
                                     trace)));
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  auto wire = DecodeLabelRequest(*traced);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->trace.trace_id, 0xdeadbeefcafeULL);
  EXPECT_EQ(wire->trace.parent_span, 0x1234u);
  EXPECT_EQ(wire->deadline_ms, 250u);

  // An untraced (or old, pre-tracing) client writes NO TRAC section at
  // all, and the server decodes a zero context — not an error.
  auto untraced = DecodeFrame(
      EncodeFrame(EncodeLabelRequest(8, fx.corpus, rows, true, true, 0)));
  ASSERT_TRUE(untraced.ok());
  for (const FrameSection& section : untraced->sections) {
    EXPECT_NE(section.tag, std::string(kSectionTrace, 4));
  }
  auto plain = DecodeLabelRequest(*untraced);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->trace.valid());
  EXPECT_EQ(plain->trace.parent_span, 0u);

  // An OLD server treats TRAC as an unknown tag and skips it wholesale
  // (the skip-unknown rule): the rest of the traced frame must be
  // self-sufficient. Dropping TRAC loses only the trace identity.
  Frame old_server_view = *traced;
  old_server_view.sections.erase(
      std::remove_if(old_server_view.sections.begin(),
                     old_server_view.sections.end(),
                     [](const FrameSection& section) {
                       return section.tag == std::string(kSectionTrace, 4);
                     }),
      old_server_view.sections.end());
  auto skipped = DecodeLabelRequest(old_server_view);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_FALSE(skipped->trace.valid());
  EXPECT_EQ(skipped->candidates.size(), wire->candidates.size());
  EXPECT_EQ(skipped->deadline_ms, 250u);

  // A torn TRAC section is a typed error, never an OOB read.
  Frame torn = *traced;
  for (FrameSection& section : torn.sections) {
    if (section.tag == std::string(kSectionTrace, 4)) {
      section.payload.resize(4);
    }
  }
  auto rejected = DecodeLabelRequest(torn);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kIOError);
}

TEST(WireTraceTest, TraceRequestAndResponseRoundTripWire) {
  WireTraceRequest request;
  EXPECT_EQ(request.trace_id, 0u);  // Defaults: every span, draining.
  EXPECT_TRUE(request.drain);
  request.trace_id = 0xfeed;
  request.drain = false;
  auto frame = DecodeFrame(EncodeFrame(EncodeTraceRequest(31, request)));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kTraceRequest);
  auto decoded = DecodeTraceRequest(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, 0xfeedu);
  EXPECT_FALSE(decoded->drain);

  obs::SpanBatch batch;
  batch.process = "shard-9";
  obs::Span span;
  span.trace_id = 0xfeed;
  span.span_id = 2;
  span.parent_id = 1;
  span.name = "server.label";
  span.start_ns = 10;
  span.end_ns = 90;
  span.annotation = "rows=6";
  batch.spans.push_back(span);
  auto reply = DecodeFrame(EncodeFrame(EncodeTraceResponse(31, batch)));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kTraceResponse);
  auto spans = DecodeTraceResponse(*reply);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  EXPECT_EQ(spans->process, "shard-9");
  ASSERT_EQ(spans->spans.size(), 1u);
  EXPECT_EQ(spans->spans[0].name, "server.label");
  EXPECT_EQ(spans->spans[0].annotation, "rows=6");

  // A torn TSPN payload is a typed error.
  Frame torn = *reply;
  for (FrameSection& section : torn.sections) {
    if (section.tag == std::string(kSectionTraceSpans, 4)) {
      section.payload.resize(section.payload.size() / 2);
    }
  }
  EXPECT_FALSE(DecodeTraceResponse(torn).ok());

  // Wrong frame types fail typed.
  Frame ping;
  ping.type = FrameType::kPing;
  EXPECT_FALSE(DecodeTraceRequest(ping).ok());
  EXPECT_FALSE(DecodeTraceResponse(ping).ok());
}

TEST(WireMetricsTest, MetricsScrapeRoundTripsPrometheusTextVerbatim) {
  const std::string text =
      "# TYPE snorkel_server_requests_total counter\n"
      "snorkel_server_requests_total 12\n"
      "# TYPE snorkel_serve_latency_ms histogram\n"
      "snorkel_serve_latency_ms_bucket{le=\"+Inf\"} 12\n"
      "snorkel_serve_latency_ms_count 12\n";
  auto request = DecodeFrame(EncodeFrame(EncodeMetricsRequest(55)));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, FrameType::kMetricsRequest);
  EXPECT_EQ(request->request_id, 55u);

  auto reply = DecodeFrame(EncodeFrame(EncodeMetricsResponse(55, text)));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kMetricsResponse);
  auto decoded = DecodeMetricsResponse(*reply);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, text);  // Byte-exact: the payload IS the exposition.

  Frame ping;
  ping.type = FrameType::kPing;
  EXPECT_FALSE(DecodeMetricsResponse(ping).ok());
}

// ----------------------------------------- server-side fault control plane --

TEST(ShardServerTest, WireFaultControlInjectsCountsAndAutoDisarms) {
  FaultGuard guard;
  NetFixture fx(32);
  ModelSnapshot snapshot = fx.MakeSnapshot(fx.MakeLfs());
  std::string path = TempPath("fault_control.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot, /*include_votes=*/false);

  ShardServer::Options options;
  options.num_workers = 2;
  auto server = ShardServer::Serve(path, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);

  // Arm the server's labeling site over the wire: exactly one injected
  // failure, then auto-disarm.
  WireFaultCommand command;
  fault::Schedule once;
  once.kind = fault::Schedule::Kind::kFailNth;
  once.n = 1;
  once.max_hits = 1;
  command.arm.emplace_back("server.label", once);
  ASSERT_TRUE(client.ConfigureFaults(command, 2000).ok());

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  auto faulted = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(faulted.status().message().find("injected fault"),
            std::string::npos);
  // An injected error is an ANSWER (error frame over a live connection),
  // not a transport failure: the endpoint must stay healthy.
  EXPECT_TRUE(client.stats().healthy);

  // The counter crosses the wire in the stats RPC.
  auto wire_stats = client.GetStats(2000);
  ASSERT_TRUE(wire_stats.ok());
  EXPECT_GE(wire_stats->faults_injected, 1u);

  // max_hits spent: the schedule disarmed itself and service resumed,
  // bitwise.
  auto recovered = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->posteriors, expected.posteriors);

  // disarm_all over the wire is accepted too.
  WireFaultCommand off;
  off.disarm_all = true;
  EXPECT_TRUE(client.ConfigureFaults(off, 2000).ok());
  std::remove(path.c_str());
}

// ----------------------------------------------------- replicated failover --

TEST(RemoteRouterTest, DeadReplicaFailsOverBitwiseWithAttemptChains) {
  TwoShardFleet fleet(64);
  LabelResponse expected = fleet.fx.Expected(fleet.snapshot, false);

  RemoteShardRouter::Options options;  // replication defaults to 2.
  options.client.connect_timeout_ms = 300;
  options.client.unhealthy_cooldown_ms = 60'000;  // Stay open once tripped.
  options.request_timeout_ms = 10'000;
  auto router = RemoteShardRouter::Create(fleet.endpoints, options);
  ASSERT_TRUE(router.ok());

  // Kill endpoint 1. Shard 1's preference list is [1, 0], so every one of
  // its sub-batches fails over to endpoint 0 — same snapshot, same bits.
  fleet.servers[1].Shutdown();

  LabelRequest request;
  request.corpus = &fleet.fx.corpus;
  request.candidates = &fleet.fx.candidates;
  for (int round = 0; round < 6; ++round) {
    auto response = router->Label(request);
    ASSERT_TRUE(response.ok()) << "round " << round << ": "
                               << response.status().ToString();
    // Failover is TRANSPARENT: complete response, full coverage, and
    // bit-identical to the unsharded service.
    EXPECT_FALSE(response->is_partial);
    EXPECT_TRUE(response->covered.empty());
    EXPECT_EQ(response->posteriors, expected.posteriors);
    EXPECT_EQ(response->hard_labels, expected.hard_labels);

    // ...but not SILENT: the attempt chain names every endpoint tried.
    bool found_failover = false;
    for (const ShardOutcome& outcome : response->shard_outcomes) {
      if (outcome.shard != 1) continue;
      found_failover = true;
      EXPECT_EQ(outcome.code, StatusCode::kOk);
      ASSERT_GE(outcome.attempts.size(), 2u);
      EXPECT_EQ(outcome.attempts.front().endpoint, 1u);
      EXPECT_NE(outcome.attempts.front().code, StatusCode::kOk);
      EXPECT_EQ(outcome.attempts.back().endpoint, 0u);
      EXPECT_EQ(outcome.attempts.back().code, StatusCode::kOk);
    }
    EXPECT_TRUE(found_failover) << "round " << round;
  }

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.degraded_requests, 0u);
  EXPECT_GE(stats.failovers, 6u);
  EXPECT_EQ(stats.retry_budget_exhausted, 0u);
  // After unhealthy_threshold (3) dispatched failures the breaker opened:
  // later rounds failed over WITHOUT paying the connect timeout.
  EXPECT_GE(stats.breaker_open_rejections, 1u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_FALSE(stats.per_shard[1].healthy);
}

TEST(RemoteRouterTest, RetryBudgetExhaustionFailsTypedAndIsCounted) {
  TwoShardFleet fleet(64);
  LabelResponse expected = fleet.fx.Expected(fleet.snapshot, false);

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 300;
  // Keep the breaker out of the picture: every attempt dispatches, so
  // every failover NEEDS a token — and the bucket is bone dry.
  options.client.unhealthy_threshold = 100;
  options.request_timeout_ms = 5000;
  options.retry_budget.initial = 0.0;
  options.retry_budget.max_tokens = 0.0;
  options.retry_budget.per_request_refill = 0.0;
  auto router = RemoteShardRouter::Create(fleet.endpoints, options);
  ASSERT_TRUE(router.ok());
  fleet.servers[1].Shutdown();

  LabelRequest request;
  request.corpus = &fleet.fx.corpus;
  request.candidates = &fleet.fx.candidates;
  auto whole = router->Label(request);
  ASSERT_FALSE(whole.ok());
  EXPECT_EQ(whole.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(whole.status().message().find("shard 1/2"), std::string::npos)
      << whole.status().ToString();
  EXPECT_NE(whole.status().message().find("retry budget exhausted"),
            std::string::npos)
      << whole.status().ToString();

  // allow_partial still degrades instead of failing: covered rows bitwise,
  // and the failed outcome's chain shows ONE dispatched attempt (the
  // refused retry never ran).
  request.allow_partial = true;
  auto partial = router->Label(request);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->is_partial);
  for (size_t i = 0; i < fleet.fx.candidates.size(); ++i) {
    if (partial->RowCovered(i)) {
      EXPECT_EQ(partial->posteriors[i], expected.posteriors[i]);
    }
  }
  bool found_exhausted = false;
  for (const ShardOutcome& outcome : partial->shard_outcomes) {
    if (outcome.shard != 1) continue;
    found_exhausted = true;
    EXPECT_NE(outcome.code, StatusCode::kOk);
    EXPECT_EQ(outcome.attempts.size(), 1u);
    EXPECT_EQ(outcome.attempts[0].endpoint, 1u);
  }
  EXPECT_TRUE(found_exhausted);

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.degraded_requests, 1u);
  EXPECT_GE(stats.retry_budget_exhausted, 2u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.breaker_open_rejections, 0u);
}

TEST(RemoteRouterTest, BreakerOpenFailoverIsFreeWithZeroBudget) {
  TwoShardFleet fleet(64);
  LabelResponse expected = fleet.fx.Expected(fleet.snapshot, false);

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 300;
  options.client.unhealthy_threshold = 1;  // One failure opens the breaker.
  options.client.unhealthy_cooldown_ms = 60'000;
  options.request_timeout_ms = 5000;
  // ZERO retry budget: only fail-fast (undispatched) failovers can succeed.
  options.retry_budget.initial = 0.0;
  options.retry_budget.max_tokens = 0.0;
  options.retry_budget.per_request_refill = 0.0;
  auto router = RemoteShardRouter::Create(fleet.endpoints, options);
  ASSERT_TRUE(router.ok());
  fleet.servers[1].Shutdown();

  LabelRequest request;
  request.corpus = &fleet.fx.corpus;
  request.candidates = &fleet.fx.candidates;

  // Request 1 DISPATCHES to the dead endpoint (breaker still closed), so
  // the failover is a real retry — refused by the dry bucket.
  auto first = router->Label(request);
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.status().message().find("retry budget exhausted"),
            std::string::npos)
      << first.status().ToString();

  // From now on the open breaker rejects WITHOUT dispatching: failover is
  // free, needs no token, and the fleet answers every request completely —
  // the steady-outage invariant the chaos harness rests on.
  for (int round = 0; round < 3; ++round) {
    auto response = router->Label(request);
    ASSERT_TRUE(response.ok()) << "round " << round << ": "
                               << response.status().ToString();
    EXPECT_FALSE(response->is_partial);
    EXPECT_EQ(response->posteriors, expected.posteriors);
    EXPECT_EQ(response->hard_labels, expected.hard_labels);
  }

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_GE(stats.failovers, 3u);
  EXPECT_GE(stats.breaker_open_rejections, 3u);
  EXPECT_GE(stats.retry_budget_exhausted, 1u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_FALSE(stats.per_shard[1].healthy);
}

// ------------------------------------------- store crash consistency (S3) --

TEST(ShardServerTest, WatcherIgnoresTornRejectsCorruptAndPromotesNextGood) {
  FaultGuard guard;
  NetFixture fx(48);
  ModelSnapshot v1 = fx.MakeSnapshot(fx.MakeLfs(), /*epochs=*/60);
  ModelSnapshot v_new = fx.MakeSnapshot(fx.MakeLfs(), /*epochs=*/90);
  ASSERT_NE(v1.CanonicalChecksum(), v_new.CanonicalChecksum());
  LabelResponse expected_v1 = fx.Expected(v1, false);
  LabelResponse expected_new = fx.Expected(v_new, false);

  std::string dir = FreshStoreDir("store_crash");
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Publish(1, SerializeSnapshot(v1)).ok());

  ShardServer::Options options;
  options.num_workers = 2;
  options.watch_interval_ms = 25;
  auto server = ShardServer::ServeFromStore(dir, fx.MakeLfs(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RemoteShardClient::Options client_options;
  client_options.port = server->port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);

  // A TORN publish (writer crashed mid-temp-file) is not a version: the
  // watcher never even considers it — no rejection, no wedge, no swap.
  std::string torn_bytes = SerializeSnapshot(v_new);
  torn_bytes.resize(torn_bytes.size() / 2);
  ASSERT_TRUE(WriteFileBytes(dir + "/.publish-2-31337", torn_bytes).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(server->stats().snapshot_version, 1u);
  EXPECT_EQ(server->stats().rejected_swaps, 0u);
  auto during_torn = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_TRUE(during_torn.ok());
  EXPECT_EQ(during_torn->posteriors, expected_v1.posteriors);

  // A fully published but CORRUPT artifact is rejected; v1 keeps serving.
  ASSERT_TRUE(store->Publish(2, "definitely not a snapshot").ok());
  bool rejected = false;
  for (int i = 0; i < 200 && !rejected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    rejected = server->stats().rejected_swaps >= 1;
  }
  ASSERT_TRUE(rejected);
  EXPECT_EQ(server->stats().snapshot_version, 1u);

  // A GOOD artifact whose load I/O fails (injected once at store.load) is
  // also rejected — a crash mid-read must behave like a bad artifact, not
  // take the shard down.
  fault::Schedule load_fault;
  load_fault.kind = fault::Schedule::Kind::kFailNth;
  load_fault.n = 1;
  load_fault.max_hits = 1;
  ASSERT_TRUE(fault::Arm("store.load", load_fault).ok());
  ASSERT_TRUE(store->Publish(3, SerializeSnapshot(v_new)).ok());
  bool rejected_again = false;
  for (int i = 0; i < 200 && !rejected_again; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    rejected_again = server->stats().rejected_swaps >= 2;
  }
  ASSERT_TRUE(rejected_again);
  EXPECT_EQ(server->stats().snapshot_version, 1u);

  // The watcher is NOT wedged: the next good version promotes and serves
  // its exact bits.
  ASSERT_TRUE(store->Publish(4, SerializeSnapshot(v_new)).ok());
  bool swapped = false;
  for (int i = 0; i < 200 && !swapped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    swapped = server->stats().snapshot_version == 4;
  }
  ASSERT_TRUE(swapped) << "watcher never recovered to version 4";
  EXPECT_EQ(server->stats().snapshot_checksum, v_new.CanonicalChecksum());
  auto after = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->posteriors, expected_new.posteriors);
  EXPECT_EQ(after->hard_labels, expected_new.hard_labels);
}

}  // namespace
}  // namespace snorkel
