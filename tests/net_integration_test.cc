// Process-level integration tests for the networked shard fabric: spawn
// REAL shard_server processes (the tools/shard_server.cc binary), route to
// them over loopback TCP with RemoteShardRouter, and verify
//   - bitwise parity with an unsharded in-process LabelService under
//     concurrent callers,
//   - typed whole-request failure / typed partial degradation when a shard
//     process is killed mid-fleet,
//   - the full rollout path: snapshot_diff --promote publishes a new version
//     into a SnapshotStore, the serving process hot-swaps onto it with ZERO
//     failed requests, and the transition is observable over the stats RPC.
//
// The binaries' paths arrive via compile definitions (see CMakeLists.txt);
// the fixture's LF set must stay in lock-step with the CLI's built-in
// "cdr-demo" set, which the snapshot's fingerprints enforce.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "net/remote_client.h"
#include "net/remote_router.h"
#include "net/snapshot_store.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/snapshot.h"
#include "shard/partitioner.h"
#include "util/binary_io.h"

#ifndef SNORKEL_SHARD_SERVER_BIN
#define SNORKEL_SHARD_SERVER_BIN ""
#endif
#ifndef SNORKEL_SNAPSHOT_DIFF_BIN
#define SNORKEL_SNAPSHOT_DIFF_BIN ""
#endif

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Same corpus and LF set as tools/shard_server.cc's "cdr-demo" built-in.
struct ProcessFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit ProcessFixture(int num_docs = 96) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }

  ModelSnapshot MakeSnapshot(int epochs = 60) const {
    LabelingFunctionSet lfs = MakeLfs();
    auto matrix = LFApplier().Apply(lfs, corpus, candidates);
    EXPECT_TRUE(matrix.ok());
    GenerativeModelOptions options;
    options.epochs = epochs;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(*matrix).ok());
    auto snapshot =
        ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
    EXPECT_TRUE(snapshot.ok());
    return *snapshot;
  }

  LabelResponse Expected(const ModelSnapshot& snapshot) const {
    auto service = LabelService::Create(snapshot, MakeLfs());
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    LabelRequest request;
    request.corpus = &corpus;
    request.candidates = &candidates;
    auto response = service->Label(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return *response;
  }
};

/// One spawned shard_server process: fork/exec, port discovery via
/// --port-file, SIGTERM (graceful) or SIGKILL (crash injection) teardown.
class ServerProcess {
 public:
  ServerProcess() = default;
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;
  ~ServerProcess() { Kill(SIGKILL); }

  /// Spawns `shard_server <args...> --port-file <tmp>` and waits for the
  /// port file. Returns false (with a gtest failure) if the server never
  /// came up.
  bool Start(const std::vector<std::string>& args, const std::string& tag) {
    port_file_ = TempPath("port_" + tag + "_" + std::to_string(getpid()));
    std::remove(port_file_.c_str());
    std::vector<std::string> full = {SNORKEL_SHARD_SERVER_BIN};
    full.insert(full.end(), args.begin(), args.end());
    full.push_back("--port-file");
    full.push_back(port_file_);
    std::vector<char*> argv;
    argv.reserve(full.size() + 1);
    for (std::string& arg : full) argv.push_back(arg.data());
    argv.push_back(nullptr);

    pid_ = fork();
    if (pid_ == 0) {
      execv(argv[0], argv.data());
      _exit(127);  // exec failed.
    }
    if (pid_ < 0) {
      ADD_FAILURE() << "fork failed";
      return false;
    }
    // Port discovery: the server writes the bound port once listening.
    for (int i = 0; i < 500; ++i) {
      auto bytes = ReadFileBytes(port_file_);
      if (bytes.ok() && !bytes->empty() && bytes->back() == '\n') {
        port_ = static_cast<uint16_t>(std::atoi(bytes->c_str()));
        return port_ != 0;
      }
      // A dead child will never write the file; fail fast.
      int status = 0;
      if (waitpid(pid_, &status, WNOHANG) == pid_) {
        ADD_FAILURE() << "shard_server exited during startup, status "
                      << status;
        pid_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "shard_server never wrote its port file";
    return false;
  }

  uint16_t port() const { return port_; }

  void Kill(int sig) {
    if (pid_ <= 0) return;
    kill(pid_, sig);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    std::remove(port_file_.c_str());
  }

 private:
  pid_t pid_ = -1;
  uint16_t port_ = 0;
  std::string port_file_;
};

/// Runs a tool binary synchronously; returns its exit code (or -1).
int RunTool(const std::vector<std::string>& command) {
  std::vector<std::string> owned = command;
  std::vector<char*> argv;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = fork();
  if (pid == 0) {
    // Quiet the tool's report output; its exit code is the contract.
    std::freopen("/dev/null", "w", stdout);
    execv(argv[0], argv.data());
    _exit(127);
  }
  if (pid < 0) return -1;
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(NetIntegrationTest, TwoProcessFleetIsBitwiseIdenticalAndFailsTyped) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  ProcessFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("fleet_proc.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  ServerProcess shard0, shard1;
  ASSERT_TRUE(shard0.Start({"--snapshot", path, "--workers", "2"}, "s0"));
  ASSERT_TRUE(shard1.Start({"--snapshot", path, "--workers", "2"}, "s1"));

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 1000;
  options.request_timeout_ms = 10'000;
  // This test pins the UNREPLICATED contract (typed whole-request failure /
  // typed partial degradation); R=2 failover has its own test below.
  options.replication = 1;
  auto router = RemoteShardRouter::Create(
      {{"127.0.0.1", shard0.port()}, {"127.0.0.1", shard1.port()}}, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Concurrent callers against the two-process fleet: every response must
  // be bitwise what ONE in-process unsharded service produces.
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        LabelRequest request;
        request.corpus = &fx.corpus;
        request.candidates = &fx.candidates;
        auto response = router->Label(request);
        if (!response.ok() ||
            response->posteriors != expected.posteriors ||
            response->hard_labels != expected.hard_labels) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(router->stats().failed_requests, 0u);

  // Crash shard 1 (SIGKILL — no graceful drain). Default policy: the whole
  // request fails TYPED, naming the shard; never a hang, never garbage.
  shard1.Kill(SIGKILL);
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto whole = router->Label(request);
  ASSERT_FALSE(whole.ok());
  EXPECT_EQ(whole.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(whole.status().message().find("shard 1/2"), std::string::npos)
      << whole.status().ToString();

  // Opt-in partial degradation: surviving rows bitwise, dead rows flagged.
  request.allow_partial = true;
  auto partial = router->Label(request);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->is_partial);
  for (size_t i = 0; i < fx.candidates.size(); ++i) {
    bool dead = CandidateShardKey(fx.candidates[i]) % 2 == 1;
    EXPECT_EQ(partial->RowCovered(i), !dead);
    if (!dead) {
      EXPECT_EQ(partial->posteriors[i], expected.posteriors[i]);
    }
  }
  ASSERT_EQ(partial->shard_outcomes.size(), 2u);
  EXPECT_EQ(partial->shard_outcomes[1].code, StatusCode::kUnavailable);

  shard0.Kill(SIGTERM);
  std::remove(path.c_str());
}

TEST(NetIntegrationTest, SigkilledShardFailsOverBitwiseAtReplicationTwo) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  ProcessFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("fleet_failover.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  ServerProcess shard0, shard1;
  ASSERT_TRUE(shard0.Start({"--snapshot", path, "--workers", "2"}, "f0"));
  ASSERT_TRUE(shard1.Start({"--snapshot", path, "--workers", "2"}, "f1"));

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 1000;
  options.request_timeout_ms = 10'000;
  // Default replication = 2: every shard key's preference list includes
  // both endpoints, so ONE crashed process must cost zero failed requests.
  auto router = RemoteShardRouter::Create(
      {{"127.0.0.1", shard0.port()}, {"127.0.0.1", shard1.port()}}, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Crash shard 1 (SIGKILL — no drain). DEFAULT options, no allow_partial:
  // the router fails each dead sub-batch over to shard 0 and the response
  // stays complete and bitwise-identical to unsharded serving.
  shard1.Kill(SIGKILL);
  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  for (int round = 0; round < 3; ++round) {
    auto response = router->Label(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->is_partial);
    EXPECT_EQ(response->posteriors, expected.posteriors);
    EXPECT_EQ(response->hard_labels, expected.hard_labels);
    // The failover chain is visible even though the response is complete.
    bool failed_over = false;
    for (const ShardOutcome& outcome : response->shard_outcomes) {
      if (outcome.attempts.size() > 1) {
        failed_over = true;
        EXPECT_EQ(outcome.code, StatusCode::kOk);
        EXPECT_EQ(outcome.attempts.back().endpoint, 0u);
        EXPECT_EQ(outcome.attempts.back().code, StatusCode::kOk);
      }
    }
    EXPECT_TRUE(failed_over) << "round " << round;
  }

  RemoteRouterStats stats = router->stats();
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.degraded_requests, 0u);
  EXPECT_GE(stats.failovers, 3u);
  EXPECT_EQ(stats.retry_budget_exhausted, 0u);

  shard0.Kill(SIGTERM);
  std::remove(path.c_str());
}

TEST(NetIntegrationTest, PromoteGateRollsOutHotSwapWithZeroFailedRequests) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  ASSERT_NE(std::string(SNORKEL_SNAPSHOT_DIFF_BIN), "");
  ProcessFixture fx(64);
  ModelSnapshot v1 = fx.MakeSnapshot(/*epochs=*/60);
  ModelSnapshot v2 = fx.MakeSnapshot(/*epochs=*/90);
  LabelResponse expected_v1 = fx.Expected(v1);
  LabelResponse expected_v2 = fx.Expected(v2);

  // Wipe leftovers from previous runs: store versions are immutable, so a
  // stale artifact would poison Publish() and the version assertions.
  std::string dir = TempPath("proc_store");
  std::filesystem::remove_all(dir);
  auto store = SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Publish(1, SerializeSnapshot(v1)).ok());
  std::string candidate = TempPath("candidate_v2.snk");
  ASSERT_TRUE(SaveSnapshot(v2, candidate).ok());

  ServerProcess server;
  ASSERT_TRUE(server.Start(
      {"--store", dir, "--workers", "2", "--watch-interval-ms", "25"},
      "rollout"));

  RemoteShardClient::Options client_options;
  client_options.port = server.port();
  RemoteShardClient client = RemoteShardClient::Create(client_options);
  auto before = client.GetStats(2000);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->snapshot_version, 1u);
  EXPECT_EQ(before->snapshot_checksum, v1.CanonicalChecksum());

  // Traffic runs through the whole rollout; every response must be ok and
  // exactly one version's bits.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  std::thread traffic([&] {
    RemoteShardClient::Options opts;
    opts.port = server.port();
    RemoteShardClient c = RemoteShardClient::Create(opts);
    std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
    while (!stop.load()) {
      auto response = c.Label(fx.corpus, rows, false, true, 10'000);
      if (!response.ok() ||
          (response->posteriors != expected_v1.posteriors &&
           response->posteriors != expected_v2.posteriors)) {
        failures.fetch_add(1);
      } else {
        served.fetch_add(1);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // An over-drifted candidate is REFUSED by the gate (exit 2, nothing
  // published): the fail-over threshold is the promotion contract.
  EXPECT_EQ(RunTool({SNORKEL_SNAPSHOT_DIFF_BIN, store->PathFor(1), candidate,
                     "--fail-over", "0.0", "--promote", dir}),
            2);
  auto versions = store->ListVersions();
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint64_t>{1}));

  // Within the (generous) gate, promotion publishes version 2 atomically.
  EXPECT_EQ(RunTool({SNORKEL_SNAPSHOT_DIFF_BIN, store->PathFor(1), candidate,
                     "--fail-over", "1000", "--promote", dir}),
            0);

  // The serving process observes version 2 over its stats RPC — the
  // rollout is watchable from outside the process.
  bool swapped = false;
  for (int i = 0; i < 200 && !swapped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    auto stats = client.GetStats(2000);
    swapped = stats.ok() && stats->snapshot_version == 2;
  }
  ASSERT_TRUE(swapped) << "server never swapped to the promoted version";
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  traffic.join();
  EXPECT_EQ(failures.load(), 0) << "requests failed during the rollout";
  EXPECT_GT(served.load(), 0);

  auto after = client.GetStats(2000);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->snapshot_version, 2u);
  EXPECT_EQ(after->snapshot_checksum, v2.CanonicalChecksum());
  EXPECT_EQ(after->snapshot_swaps, 1u);

  // Steady state serves v2's exact bits.
  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  auto final_response = client.Label(fx.corpus, rows, false, true, 10'000);
  ASSERT_TRUE(final_response.ok()) << final_response.status().ToString();
  EXPECT_EQ(final_response->posteriors, expected_v2.posteriors);

  server.Kill(SIGTERM);
  std::remove(candidate.c_str());
}

/// Enables tracing for one test and restores the previous state (other
/// tests in this binary must not inherit a stray enable).
struct TracingGuard {
  bool was_enabled = obs::TracingEnabled();
  TracingGuard() { obs::SetTracingEnabled(true); }
  ~TracingGuard() { obs::SetTracingEnabled(false); }
};

TEST(NetIntegrationTest, TracedRequestStitchesAcrossProcesses) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  ProcessFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("fleet_trace.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());

  ServerProcess shard0, shard1;
  ASSERT_TRUE(shard0.Start({"--snapshot", path, "--workers", "2"}, "t0"));
  ASSERT_TRUE(shard1.Start({"--snapshot", path, "--workers", "2"}, "t1"));

  TracingGuard tracing;
  obs::SetProcessLabel("router");
  (void)obs::CollectSpans(0, /*drain=*/true);  // Clear earlier tests' spans.

  RemoteShardRouter::Options options;
  options.client.connect_timeout_ms = 1000;
  options.request_timeout_ms = 10'000;
  options.replication = 1;
  auto router = RemoteShardRouter::Create(
      {{"127.0.0.1", shard0.port()}, {"127.0.0.1", shard1.port()}}, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;
  auto response = router->Label(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The router's own ring holds the client half of the trace; the minted
  // trace id comes off the root span.
  obs::SpanBatch local;
  local.process = obs::ProcessLabel();
  local.spans = obs::CollectSpans(0, /*drain=*/true);
  uint64_t trace_id = 0;
  for (const obs::Span& span : local.spans) {
    if (span.name == "router.request") {
      EXPECT_EQ(span.parent_id, 0u);
      trace_id = span.trace_id;
    }
  }
  ASSERT_NE(trace_id, 0u) << "router minted no root span";
  auto local_has = [&](const char* name) {
    for (const obs::Span& span : local.spans) {
      if (span.name == name && span.trace_id == trace_id) return true;
    }
    return false;
  };
  EXPECT_TRUE(local_has("router.placement"));
  EXPECT_TRUE(local_has("router.attempt"));
  EXPECT_TRUE(local_has("client.send"));
  EXPECT_TRUE(local_has("client.recv"));

  // The server half arrives over the kTraceRequest RPC — one batch per
  // PROCESS, which is what makes the stitched trace genuinely multi-process.
  std::vector<obs::SpanBatch> batches = {local};
  for (uint16_t port : {shard0.port(), shard1.port()}) {
    RemoteShardClient::Options copts;
    copts.port = port;
    copts.request_timeout_ms = 5000;
    RemoteShardClient client = RemoteShardClient::Create(copts);
    WireTraceRequest drain;
    drain.trace_id = trace_id;
    auto batch = client.GetTraceSpans(drain);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->process, "shard-" + std::to_string(port));
    batches.push_back(std::move(*batch));
  }
  auto remote_count = [&](const char* name) {
    size_t count = 0;
    for (size_t b = 1; b < batches.size(); ++b) {
      for (const obs::Span& span : batches[b].spans) {
        if (span.name == name && span.trace_id == trace_id) ++count;
      }
    }
    return count;
  };
  // Both shards served a sub-batch of the one traced request, so every
  // server-side stage appears once per process: queue wait, the replica's
  // LF apply + model inference (the spans LabelService records), and the
  // decode/intern/encode frame stages around them.
  EXPECT_EQ(remote_count("server.queue_wait"), 2u);
  EXPECT_EQ(remote_count("server.label"), 2u);
  EXPECT_EQ(remote_count("service.lf_apply"), 2u);
  EXPECT_EQ(remote_count("service.inference"), 2u);
  EXPECT_EQ(remote_count("server.decode"), 2u);
  EXPECT_EQ(remote_count("server.encode"), 2u);

  // A second drain must come back empty: the RPC really drained the rings.
  {
    RemoteShardClient::Options copts;
    copts.port = shard0.port();
    copts.request_timeout_ms = 5000;
    RemoteShardClient client = RemoteShardClient::Create(copts);
    WireTraceRequest drain;
    drain.trace_id = trace_id;
    auto again = client.GetTraceSpans(drain);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->spans.empty());
  }

  // Stitch: every process's spans land in one Chrome trace JSON, keyed to
  // the shared trace id, with per-process naming metadata.
  std::string json = obs::ChromeTraceJson(batches, trace_id);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"router\""), std::string::npos);
  EXPECT_NE(json.find("shard-" + std::to_string(shard0.port())),
            std::string::npos);
  EXPECT_NE(json.find("\"server.queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"service.lf_apply\""), std::string::npos);
  EXPECT_NE(json.find("\"service.inference\""), std::string::npos);
  EXPECT_NE(json.find("\"router.request\""), std::string::npos);

  // The wire metrics surface agrees with the stats RPC: the same served
  // counters, now as Prometheus text from the unified registry.
  {
    RemoteShardClient::Options copts;
    copts.port = shard0.port();
    copts.request_timeout_ms = 5000;
    RemoteShardClient client = RemoteShardClient::Create(copts);
    auto stats = client.GetStats();
    ASSERT_TRUE(stats.ok());
    auto text = client.GetMetrics();
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text->find("snorkel_server_requests_total " +
                         std::to_string(stats->requests_served)),
              std::string::npos)
        << *text;
    EXPECT_NE(text->find("snorkel_serve_latency_ms_bucket"),
              std::string::npos);
    EXPECT_NE(text->find("snorkel_cache_columns_computed_total"),
              std::string::npos);
  }

  shard0.Kill(SIGTERM);
  shard1.Kill(SIGTERM);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snorkel
