#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <regex>
#include <set>
#include <thread>

#include "util/adam.h"
#include "util/bounded_queue.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace snorkel {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoryMethodsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailsThrough() {
  SNORKEL_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------ Math --

TEST(MathTest, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1.0) + Sigmoid(-1.0), 1.0, 1e-12);
}

TEST(MathTest, SigmoidNoOverflowAtExtremes) {
  EXPECT_TRUE(std::isfinite(Sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e6)));
}

TEST(MathTest, LogAddExp) {
  EXPECT_NEAR(LogAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAddExp(-1000.0, 0.0), 0.0, 1e-9);
}

TEST(MathTest, LogSumExpMatchesDirectForSmallValues) {
  std::vector<double> v = {0.1, 0.2, 0.3};
  double direct = std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-12);
}

TEST(MathTest, SoftmaxSumsToOneAndIsShiftInvariant) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1001.0, 1002.0, 1003.0};
  SoftmaxInPlace(&a);
  SoftmaxInPlace(&b);
  double sum = a[0] + a[1] + a[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  EXPECT_LT(a[0], a[1]);
  EXPECT_LT(a[1], a[2]);
}

TEST(MathTest, LogitInvertsSigmoid) {
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(Sigmoid(Logit(p)), p, 1e-9);
  }
}

TEST(MathTest, LogitClipsBoundaries) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
}

TEST(MathTest, SoftThreshold) {
  EXPECT_DOUBLE_EQ(SoftThreshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-0.5, 1.0), 0.0);
}

TEST(MathTest, MeanVarianceDotAxpyNorm) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(Variance(v), 5.0 / 3.0, 1e-12);
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {2.0, 5.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 2.0);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[0], 4.0);
  EXPECT_DOUBLE_EQ(b[1], 5.0);
  EXPECT_DOUBLE_EQ(Norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(MathTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

// ---------------------------------------------------------------- Random --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    size_t c = rng.Categorical(w);
    ASSERT_LT(c, 2u);
    ones += c == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::multiset<int> ms(v.begin(), v.end());
  EXPECT_EQ(ms, (std::multiset<int>{1, 2, 3, 4, 5}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  // The child stream should not be identical to a fresh parent-seeded one.
  Rng b(7);
  (void)b.Uniform();  // Advance once as Fork() did.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------- String --

TEST(StringTest, SplitBasic) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
}

TEST(StringTest, SplitEmptyInput) {
  auto pieces = Split("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(StringTest, SplitWhitespaceDiscardsEmpties) {
  auto pieces = SplitWhitespace("  hello   world \t x\n");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "hello");
  EXPECT_EQ(pieces[2], "x");
}

TEST(StringTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringTest, ToLowerAndTrimAndContains) {
  EXPECT_EQ(ToLower("AbC9!"), "abc9!");
  EXPECT_EQ(Trim("  x y \n"), "x y");
  EXPECT_TRUE(Contains("magnesium causes paralysis", "causes"));
  EXPECT_FALSE(Contains("abc", "z"));
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, Fnv1aIsStableAndDistinguishes) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ----------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

// ---------------------------------------------------------- BoundedQueue --

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  using PushResult = BoundedQueue<int>::PushResult;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.Push(std::move(i)), PushResult::kOk);
  }
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullWithoutConsuming) {
  BoundedQueue<std::unique_ptr<int>> queue(1);
  using PushResult = BoundedQueue<std::unique_ptr<int>>::PushResult;
  auto first = std::make_unique<int>(1);
  EXPECT_EQ(queue.TryPush(std::move(first)), PushResult::kOk);

  // kQueueFull — the typed backpressure rejection — must leave the item
  // with the caller, who still owns the associated work.
  auto second = std::make_unique<int>(2);
  EXPECT_EQ(queue.TryPush(std::move(second)), PushResult::kQueueFull);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);

  queue.Close();
  EXPECT_EQ(queue.TryPush(std::move(second)), PushResult::kClosed);
  ASSERT_NE(second, nullptr);
}

TEST(BoundedQueueTest, CloseUnblocksProducerAndDrainsConsumers) {
  BoundedQueue<int> queue(1);
  using PushResult = BoundedQueue<int>::PushResult;
  EXPECT_EQ(queue.Push(1), PushResult::kOk);

  // A producer blocked on the full queue must wake with kClosed.
  std::atomic<int> blocked_result{-1};
  std::thread producer([&] {
    int item = 2;
    blocked_result.store(static_cast<int>(queue.Push(std::move(item))));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_EQ(blocked_result.load(), static_cast<int>(PushResult::kClosed));

  // Items admitted before Close still drain; then Pop signals exit.
  auto drained = queue.Pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(*drained, 1);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesConsumersBlockedOnEmptyQueue) {
  // The shutdown path the ShardServer relies on: workers blocked in Pop()
  // on an EMPTY queue must wake with nullopt when the acceptor closes the
  // queue — no item ever arrives to nudge them.
  BoundedQueue<int> queue(4);
  constexpr int kWaiters = 3;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      auto item = queue.Pop();
      if (!item.has_value()) woken.fetch_add(1);
    });
  }
  // Give every waiter time to actually block inside Pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  queue.Close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
  EXPECT_TRUE(queue.closed());

  // Push after close is the typed kClosed, never a silent enqueue.
  using PushResult = BoundedQueue<int>::PushResult;
  int late = 9;
  EXPECT_EQ(queue.Push(std::move(late)), PushResult::kClosed);
  EXPECT_EQ(queue.TryPush(std::move(late)), PushResult::kClosed);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);
  using PushResult = BoundedQueue<int>::PushResult;

  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        ASSERT_EQ(queue.Push(std::move(item)), PushResult::kOk);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) seen[*item]++;
    });
  }
  for (auto& t : threads) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(BoundedQueueTest, CostBudgetBoundsAdmission) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  Queue queue(BoundedQueueOptions{/*capacity=*/8, /*cost_budget=*/10,
                                  /*sojourn_target_ms=*/0});
  std::vector<int> shed;

  // An empty queue admits even an over-budget item (otherwise a single
  // large request could never be served at all).
  int big = 1;
  EXPECT_EQ(queue.TryPush(std::move(big), /*cost=*/12, Queue::Lane::kBulk,
                          &shed),
            PushResult::kOk);
  EXPECT_EQ(queue.cost_used(), 12u);
  ASSERT_TRUE(queue.Pop().has_value());
  EXPECT_EQ(queue.cost_used(), 0u);

  // Within budget admits; the push that would exceed it is rejected typed,
  // and a BULK arrival never displaces anything.
  int a = 2, b = 3;
  EXPECT_EQ(queue.TryPush(std::move(a), 6, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  EXPECT_EQ(queue.TryPush(std::move(b), 6, Queue::Lane::kBulk, &shed),
            PushResult::kQueueFull);
  EXPECT_EQ(b, 3);  // Not consumed.
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(queue.cost_used(), 6u);
}

TEST(BoundedQueueTest, InteractiveDisplacesBulkOldestFirst) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  Queue queue(BoundedQueueOptions{8, /*cost_budget=*/10, 0});
  std::vector<int> shed;

  int bulk1 = 10, bulk2 = 11, interactive = 20;
  EXPECT_EQ(queue.TryPush(std::move(bulk1), 4, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  EXPECT_EQ(queue.TryPush(std::move(bulk2), 4, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  // 8 + 8 > 10: the interactive arrival displaces queued bulk work,
  // oldest first, until it fits — and only as much as needed.
  EXPECT_EQ(
      queue.TryPush(std::move(interactive), 8, Queue::Lane::kInteractive,
                    &shed),
      PushResult::kOk);
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[0], 10);
  EXPECT_EQ(shed[1], 11);
  // The interactive item is served (it is the only one left).
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 20);
}

TEST(BoundedQueueTest, NoVainSheddingWhenDisplacementCannotHelp) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  Queue queue(BoundedQueueOptions{8, /*cost_budget=*/10, 0});
  std::vector<int> shed;

  // Queue holds interactive cost 8 and bulk cost 1. A new interactive
  // arrival of cost 8 cannot fit even if ALL bulk is displaced
  // (8 + 8 > 10) — it must be rejected WITHOUT shedding the bulk item.
  int i1 = 1, b1 = 2, i2 = 3;
  EXPECT_EQ(queue.TryPush(std::move(i1), 8, Queue::Lane::kInteractive, &shed),
            PushResult::kOk);
  EXPECT_EQ(queue.TryPush(std::move(b1), 1, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  EXPECT_EQ(queue.TryPush(std::move(i2), 8, Queue::Lane::kInteractive, &shed),
            PushResult::kQueueFull);
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(queue.cost_used(), 9u);
  // Interactive never displaces interactive: same rejection with no bulk.
  ASSERT_TRUE(queue.Pop().has_value());  // bulk? no — interactive first.
}

TEST(BoundedQueueTest, InteractiveLaneServedBeforeBulk) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  Queue queue(BoundedQueueOptions{8, 0, 0});
  std::vector<int> shed;
  int bulk = 1, interactive = 2;
  EXPECT_EQ(queue.TryPush(std::move(bulk), 1, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  EXPECT_EQ(
      queue.TryPush(std::move(interactive), 1, Queue::Lane::kInteractive,
                    &shed),
      PushResult::kOk);
  auto first = queue.Pop();
  auto second = queue.Pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 2);  // Interactive jumps the earlier bulk item.
  EXPECT_EQ(*second, 1);
}

TEST(BoundedQueueTest, CoDelShedsStaleBulkOnCloseDrainButNeverInteractive) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  Queue queue(BoundedQueueOptions{8, 0, /*sojourn_target_ms=*/5});
  std::vector<int> shed;
  int bulk = 1, interactive = 2;
  EXPECT_EQ(queue.TryPush(std::move(bulk), 1, Queue::Lane::kBulk, &shed),
            PushResult::kOk);
  EXPECT_EQ(
      queue.TryPush(std::move(interactive), 1, Queue::Lane::kInteractive,
                    &shed),
      PushResult::kOk);
  // Both items age past 2× the sojourn target.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  // Interactive is served despite its age (its own deadline bounds it) —
  // CoDel only sheds bulk.
  auto popped = queue.Pop(&shed);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 2);
  EXPECT_TRUE(shed.empty());
  // Close-then-drain: the stale bulk item is handed back via `shed`, not
  // silently dropped, and the drained queue reports exit.
  queue.Close();
  EXPECT_EQ(queue.Pop(&shed), std::nullopt);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 1);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, RetryAfterEstimatePricesBacklogByCalibratedEwma) {
  using Queue = BoundedQueue<int>;
  Queue queue(BoundedQueueOptions{8, /*cost_budget=*/100, 0});
  // Empty queue: the hint is still >= 1 ms so rejections never carry 0.
  EXPECT_GE(queue.EstimateRetryAfterMs(), 1u);
  std::vector<int> shed;
  int item = 1;
  ASSERT_EQ(queue.TryPush(std::move(item), 10, Queue::Lane::kBulk, &shed),
            Queue::PushResult::kOk);
  // First calibration sample: 10 cost units took 50 ms => 5 ms/unit.
  queue.OnServiced(/*cost=*/10, /*elapsed_us=*/50'000);
  // Backlog of 10 units at 5 ms/unit = 50 ms; halved by 2-way parallelism.
  EXPECT_EQ(queue.EstimateRetryAfterMs(/*divisor=*/1), 50u);
  EXPECT_EQ(queue.EstimateRetryAfterMs(/*divisor=*/2), 25u);
}

TEST(BoundedQueueTest, ConcurrentCostedProducersNeverExceedBudget) {
  using Queue = BoundedQueue<int>;
  using PushResult = Queue::PushResult;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  constexpr uint64_t kCost = 3;
  constexpr uint64_t kBudget = 9;
  Queue queue(BoundedQueueOptions{/*capacity=*/64, kBudget, 0});

  std::atomic<bool> over_budget{false};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> shed;
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        // Bulk lane: rejected pushes retry, so every item is eventually
        // admitted exactly once and nothing is displaced.
        while (queue.TryPush(std::move(item), kCost, Queue::Lane::kBulk,
                             &shed) != PushResult::kOk) {
          std::this_thread::yield();
        }
        ASSERT_TRUE(shed.empty());
      }
    });
  }
  std::thread consumer([&] {
    while (auto item = queue.Pop()) {
      // The admitted cost may transiently hold ONE over-budget item (the
      // empty-queue admission rule) but never stacks two over-budget
      // admissions: with every item costing 3 against budget 9, used cost
      // must stay <= 9.
      if (queue.cost_used() > kBudget) over_budget.store(true);
      seen[*item]++;
    }
  });
  for (auto& t : producers) t.join();
  queue.Close();
  consumer.join();
  EXPECT_FALSE(over_budget.load());
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ------------------------------------------------------------ MappedFile --

TEST(MappedFileTest, MapsFileContentsReadOnly) {
  std::string path = ::testing::TempDir() + "/mapped_util.bin";
  const std::string payload("snorkel mapped bytes\0with nul", 29);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
              payload.size());
    std::fclose(f);
  }
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->view(), std::string_view(payload));
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(file->is_mapped());
#endif
  // Move keeps the view alive and empties the source.
  MappedFile moved = std::move(*file);
  EXPECT_EQ(moved.view(), std::string_view(payload));
  std::remove(path.c_str());
}

TEST(MappedFileTest, MappingOutlivesFileReplacementOnDisk) {
  // The hot-swap guarantee in miniature: a request pinned to the OLD
  // serving generation holds its MappedFile alive while the rollout
  // replaces (and even deletes) the artifact on disk. POSIX keeps the
  // mapped pages valid until the last mapping goes away, so the in-flight
  // request reads the exact old bytes to completion.
  std::string path = ::testing::TempDir() + "/swapped_artifact.bin";
  const std::string v1(1024, 'a');
  const std::string v2(2048, 'b');
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(v1.data(), 1, v1.size(), f), v1.size());
    std::fclose(f);
  }
  auto pinned = MappedFile::Open(path);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();

  // The "store" swaps versions: atomic-rename replacement, as
  // SnapshotStore::Publish does, then the old path even disappears.
  std::string temp = path + ".publish";
  {
    std::FILE* f = std::fopen(temp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(v2.data(), 1, v2.size(), f), v2.size());
    std::fclose(f);
  }
  ASSERT_EQ(std::rename(temp.c_str(), path.c_str()), 0);

  // The pinned mapping still sees v1 bit-for-bit...
  EXPECT_EQ(pinned->view(), std::string_view(v1));
  // ...while a fresh open sees v2.
  auto fresh = MappedFile::Open(path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->view(), std::string_view(v2));

  std::remove(path.c_str());
  EXPECT_EQ(pinned->view(), std::string_view(v1));
  EXPECT_EQ(pinned->size(), v1.size());
}

TEST(MappedFileTest, MissingFileIsNotFoundAndEmptyFileIsEmptyView) {
  auto missing = MappedFile::Open("/nonexistent/snorkel/file.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  std::string path = ::testing::TempDir() + "/empty_util.bin";
  std::fclose(std::fopen(path.c_str(), "wb"));
  auto empty = MappedFile::Open(path);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->size(), 0u);
  std::remove(path.c_str());
}

// -------------------------------------------------------- TablePrinter --

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Task", "F1"});
  table.AddRow({"Chem", "17.6"});
  table.AddRow({"Radiology", "72.0"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("Task"), std::string::npos);
  EXPECT_NE(out.find("Radiology | 72.0"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"x"});
  EXPECT_NO_FATAL_FAILURE(table.ToString());
}

TEST(TablePrinterTest, CellFormatters) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 1), "3.1");
  EXPECT_EQ(TablePrinter::Cell(static_cast<int64_t>(42)), "42");
}

// ------------------------------------------------------------------ Adam --

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 + (y + 1)^2.
  std::vector<double> params = {0.0, 0.0};
  AdamOptimizer adam(2, {.learning_rate = 0.1});
  for (int i = 0; i < 500; ++i) {
    std::vector<double> grads = {2.0 * (params[0] - 3.0),
                                 2.0 * (params[1] + 1.0)};
    adam.Step(&params, grads);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
  EXPECT_NEAR(params[1], -1.0, 1e-3);
}

TEST(AdamTest, ResetClearsState) {
  std::vector<double> params = {0.0};
  AdamOptimizer adam(1, {.learning_rate = 0.5});
  adam.Step(&params, {1.0});
  double after_one = params[0];
  adam.Reset();
  params[0] = 0.0;
  adam.Step(&params, {1.0});
  EXPECT_DOUBLE_EQ(params[0], after_one);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresNonNegativeTime) {
  WallTimer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ------------------------------------------------------ fault injection --

/// The registry is process-wide; every test leaves it clean.
struct FaultGuard {
  ~FaultGuard() { fault::DisarmAll(); }
};

TEST(FaultTest, DisarmedSiteIsFreeAndNeverFires) {
  FaultGuard guard;
  EXPECT_FALSE(fault::Armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::Point("never.armed"));
  }
  EXPECT_EQ(fault::SiteInjected("never.armed"), 0u);
}

TEST(FaultTest, FailNthFiresExactlyEveryNth) {
  FaultGuard guard;
  fault::Schedule schedule;
  schedule.kind = fault::Schedule::Kind::kFailNth;
  schedule.n = 3;
  ASSERT_TRUE(fault::Arm("t.nth", schedule).ok());
  EXPECT_TRUE(fault::Armed());
  int fired = 0;
  for (int hit = 1; hit <= 12; ++hit) {
    bool fail = fault::Point("t.nth");
    EXPECT_EQ(fail, hit % 3 == 0) << "hit " << hit;
    if (fail) ++fired;
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(fault::SiteInjected("t.nth"), 4u);
  EXPECT_TRUE(fault::Disarm("t.nth"));
  // Injected counts survive disarm; the schedule does not.
  EXPECT_EQ(fault::SiteInjected("t.nth"), 4u);
  EXPECT_FALSE(fault::Point("t.nth"));
}

TEST(FaultTest, ProbabilityScheduleIsSeededDeterministic) {
  FaultGuard guard;
  fault::Schedule schedule;
  schedule.kind = fault::Schedule::Kind::kFailProbability;
  schedule.probability = 0.3;
  schedule.seed = 7;
  auto run = [&]() -> std::string {
    EXPECT_TRUE(fault::Arm("t.prob", schedule).ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += fault::Point("t.prob") ? '1' : '0';
    }
    fault::Disarm("t.prob");
    return pattern;
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second) << "same seed must reproduce the same faults";
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST(FaultTest, MaxHitsAutoDisarmsAndKeepsCounts) {
  FaultGuard guard;
  fault::Schedule schedule;
  schedule.kind = fault::Schedule::Kind::kFailNth;
  schedule.n = 1;
  schedule.max_hits = 2;
  ASSERT_TRUE(fault::Arm("t.max", schedule).ok());
  EXPECT_TRUE(fault::Point("t.max"));
  EXPECT_TRUE(fault::Point("t.max"));
  // Auto-disarmed after 2 injections.
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Point("t.max"));
  EXPECT_EQ(fault::SiteInjected("t.max"), 2u);
}

TEST(FaultTest, DelayScheduleSleepsButDoesNotFail) {
  FaultGuard guard;
  fault::Schedule schedule;
  schedule.kind = fault::Schedule::Kind::kDelayNth;
  schedule.n = 1;
  schedule.delay_ms = 30;
  ASSERT_TRUE(fault::Arm("t.delay", schedule).ok());
  WallTimer timer;
  EXPECT_FALSE(fault::Point("t.delay"));  // Delays, never fails.
  EXPECT_GE(timer.ElapsedMillis(), 25.0);
  EXPECT_EQ(fault::SiteInjected("t.delay"), 1u);
}

TEST(FaultTest, ParseSpecRoundTripsAndRejectsMalformed) {
  auto nth = fault::ParseSpec("net.send=fail-nth:3");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth->first, "net.send");
  EXPECT_EQ(nth->second.kind, fault::Schedule::Kind::kFailNth);
  EXPECT_EQ(nth->second.n, 3u);

  auto prob = fault::ParseSpec("x=fail-prob:0.25:7");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->second.kind, fault::Schedule::Kind::kFailProbability);
  EXPECT_DOUBLE_EQ(prob->second.probability, 0.25);
  EXPECT_EQ(prob->second.seed, 7u);

  auto delay = fault::ParseSpec("y=delay-nth:2:400");
  ASSERT_TRUE(delay.ok());
  EXPECT_EQ(delay->second.kind, fault::Schedule::Kind::kDelayNth);
  EXPECT_EQ(delay->second.n, 2u);
  EXPECT_EQ(delay->second.delay_ms, 400u);

  auto dprob = fault::ParseSpec("z=delay-prob:0.1:50:9");
  ASSERT_TRUE(dprob.ok());
  EXPECT_EQ(dprob->second.kind, fault::Schedule::Kind::kDelayProbability);
  EXPECT_EQ(dprob->second.delay_ms, 50u);
  EXPECT_EQ(dprob->second.seed, 9u);

  // FormatSpec parses back to the same schedule.
  auto reparsed = fault::ParseSpec(fault::FormatSpec(dprob->first,
                                                     dprob->second));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->second.kind, dprob->second.kind);
  EXPECT_EQ(reparsed->second.delay_ms, dprob->second.delay_ms);

  EXPECT_FALSE(fault::ParseSpec("no-equals").ok());
  EXPECT_FALSE(fault::ParseSpec("=fail-nth:1").ok());
  EXPECT_FALSE(fault::ParseSpec("s=bogus-kind:1").ok());
  EXPECT_FALSE(fault::ParseSpec("s=fail-nth:0").ok());      // n >= 1.
  EXPECT_FALSE(fault::ParseSpec("s=fail-prob:1.5").ok());   // p in [0,1].
}

TEST(FaultTest, BoundedQueueAdmissionSiteInjectsTypedBackpressure) {
  FaultGuard guard;
  BoundedQueue<std::unique_ptr<int>> queue(8);
  using PushResult = BoundedQueue<std::unique_ptr<int>>::PushResult;
  fault::Schedule schedule;
  schedule.kind = fault::Schedule::Kind::kFailNth;
  schedule.n = 2;
  ASSERT_TRUE(fault::Arm("queue.admit", schedule).ok());
  auto one = std::make_unique<int>(1);
  EXPECT_EQ(queue.TryPush(std::move(one)), PushResult::kOk);
  auto two = std::make_unique<int>(2);
  // 2nd admission: injected kQueueFull — and the item is NOT consumed,
  // exactly like a genuinely full queue.
  EXPECT_EQ(queue.TryPush(std::move(two)), PushResult::kQueueFull);
  ASSERT_NE(two, nullptr);
  EXPECT_EQ(*two, 2);
  EXPECT_EQ(queue.TryPush(std::move(two)), PushResult::kOk);
  EXPECT_EQ(queue.size(), 2u);
}

// --------------------------------------------------------------- logging --

namespace {

// Runs `emit` with stderr redirected into a temp file and returns what was
// written (the log sink writes straight to stderr via fputs).
std::string CaptureStderr(const std::function<void()>& emit) {
  FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  std::fflush(stderr);
  int saved_fd = dup(2);
  EXPECT_GE(saved_fd, 0);
  EXPECT_GE(dup2(fileno(tmp), 2), 0);
  emit();
  std::fflush(stderr);
  dup2(saved_fd, 2);
  close(saved_fd);
  std::rewind(tmp);
  char buf[1024] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
  std::fclose(tmp);
  return std::string(buf, n);
}

}  // namespace

TEST(LoggingTest, LineCarriesTimestampTidAndLocation) {
  const std::string line = CaptureStderr(
      []() { SNORKEL_LOG(Warning) << "format probe " << 42; });
  // [2026-08-08 12:34:56.789 WARN <tid> util_test.cc:NN] format probe 42
  const std::regex shape(
      R"(^\[\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} WARN <\d+> )"
      R"(util_test\.cc:\d+\] format probe 42\n$)");
  EXPECT_TRUE(std::regex_match(line, shape)) << "unexpected format: " << line;
}

TEST(LoggingTest, TidIsStablePerThreadAndDiffersAcrossThreads) {
  const std::regex tid_re(R"( <(\d+)> )");
  auto logged_tid = [&](const std::string& line) {
    std::smatch m;
    EXPECT_TRUE(std::regex_search(line, m, tid_re)) << line;
    return m.size() > 1 ? m[1].str() : std::string();
  };
  const std::string first =
      logged_tid(CaptureStderr([]() { SNORKEL_LOG(Info) << "a"; }));
  const std::string second =
      logged_tid(CaptureStderr([]() { SNORKEL_LOG(Info) << "b"; }));
  EXPECT_EQ(first, second);
  std::string other;
  const std::string from_thread = logged_tid(CaptureStderr([&]() {
    std::thread t([]() { SNORKEL_LOG(Info) << "c"; });
    t.join();
  }));
  EXPECT_NE(from_thread, first);
}

TEST(LoggingTest, BelowMinLevelEmitsNothing) {
  const std::string line =
      CaptureStderr([]() { SNORKEL_LOG(Debug) << "invisible"; });
  EXPECT_TRUE(line.empty()) << "suppressed level leaked: " << line;
}

}  // namespace
}  // namespace snorkel
