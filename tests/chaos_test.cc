// Seeded chaos harness for the replicated shard fabric: a REAL 3-process
// fleet (tools/shard_server.cc binaries over loopback TCP) behind an R=2
// RemoteShardRouter, driven through a deterministic fault scenario —
// SIGKILL + same-port restart, client-side transport faults (util/fault.h
// sites in Socket::SendAll / RecvSome), and server-side injected failures
// and latency spikes armed over the wire (kFaultRequest / FLTI).
//
// The invariants, checked on EVERY request of every phase:
//   - a successful response is BITWISE-IDENTICAL to one unsharded
//     in-process LabelService answering the same request (never a blend,
//     never silent partial data);
//   - a failed response carries a TYPED retry-relevant status with a
//     message — never a hang, never garbage, never a crash;
//   - while at most R-1 = 1 endpoint is down and no injected fault is
//     armed, EVERY request succeeds (replicated failover's coverage
//     guarantee), steady-state outage included.
//
// The scenario is a pure function of SNORKEL_CHAOS_SEED (default 42): which
// shard dies, which server gets latency spikes, and the fault schedules'
// seeds all derive from it, so a failing seed replays exactly. CI runs a
// small fixed seed set (see ci.yml).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "lf/declarative.h"
#include "net/remote_client.h"
#include "net/remote_router.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"
#include "util/fault.h"
#include "util/random.h"

#ifndef SNORKEL_SHARD_SERVER_BIN
#define SNORKEL_SHARD_SERVER_BIN ""
#endif

namespace snorkel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

uint64_t ChaosSeed() {
  const char* env = std::getenv("SNORKEL_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 42;
  return std::strtoull(env, nullptr, 10);
}

/// Same corpus and LF set as tools/shard_server.cc's "cdr-demo" built-in
/// (the snapshot's fingerprints pin the pairing).
struct ChaosFixture {
  Corpus corpus;
  std::vector<Candidate> candidates;

  explicit ChaosFixture(int num_docs = 72) {
    for (int d = 0; d < num_docs; ++d) {
      Document doc;
      Sentence s;
      if (d % 2 == 0) {
        s.words = {"magnesium", "causes", "quadriplegia"};
      } else {
        s.words = {"aspirin", "treats", "headache"};
      }
      const std::string id = std::to_string(d);
      s.mentions = {Mention{0, 1, "chemical", "C" + id},
                    Mention{2, 3, "disease", "D" + id}};
      doc.sentences = {s};
      corpus.AddDocument(std::move(doc));
    }
    candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  }

  LabelingFunctionSet MakeLfs() const {
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }

  ModelSnapshot MakeSnapshot() const {
    LabelingFunctionSet lfs = MakeLfs();
    auto matrix = LFApplier().Apply(lfs, corpus, candidates);
    EXPECT_TRUE(matrix.ok());
    GenerativeModelOptions options;
    options.epochs = 60;
    GenerativeModel model(options);
    EXPECT_TRUE(model.Fit(*matrix).ok());
    auto snapshot =
        ModelSnapshot::Capture(model, lfs.Names(), lfs.Fingerprints());
    EXPECT_TRUE(snapshot.ok());
    return *snapshot;
  }

  LabelResponse Expected(const ModelSnapshot& snapshot) const {
    auto service = LabelService::Create(snapshot, MakeLfs());
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    LabelRequest request;
    request.corpus = &corpus;
    request.candidates = &candidates;
    auto response = service->Label(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return *response;
  }
};

/// One spawned shard_server process: fork/exec, port discovery via
/// --port-file, SIGKILL for crash injection, restart on the SAME port so the
/// router's endpoint list stays valid across the crash.
class ServerProcess {
 public:
  ServerProcess() = default;
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;
  ~ServerProcess() { Kill(SIGKILL); }

  bool Start(const std::string& snapshot_path, const std::string& tag,
             uint16_t port = 0) {
    port_file_ = TempPath("chaos_port_" + tag + "_" + std::to_string(getpid()));
    std::remove(port_file_.c_str());
    std::vector<std::string> full = {
        SNORKEL_SHARD_SERVER_BIN, "--snapshot", snapshot_path,
        "--workers",              "2",          "--port",
        std::to_string(port),     "--port-file", port_file_};
    std::vector<char*> argv;
    argv.reserve(full.size() + 1);
    for (std::string& arg : full) argv.push_back(arg.data());
    argv.push_back(nullptr);

    pid_ = fork();
    if (pid_ == 0) {
      // Quiet the server's stderr chatter; the port file is the contract.
      std::freopen("/dev/null", "w", stderr);
      execv(argv[0], argv.data());
      _exit(127);
    }
    if (pid_ < 0) {
      ADD_FAILURE() << "fork failed";
      return false;
    }
    for (int i = 0; i < 500; ++i) {
      auto bytes = ReadFileBytes(port_file_);
      if (bytes.ok() && !bytes->empty() && bytes->back() == '\n') {
        port_ = static_cast<uint16_t>(std::atoi(bytes->c_str()));
        return port_ != 0;
      }
      int status = 0;
      if (waitpid(pid_, &status, WNOHANG) == pid_) {
        ADD_FAILURE() << "shard_server exited during startup, status "
                      << status;
        pid_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "shard_server never wrote its port file";
    return false;
  }

  uint16_t port() const { return port_; }
  bool alive() const { return pid_ > 0; }

  void Kill(int sig) {
    if (pid_ <= 0) return;
    kill(pid_, sig);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    std::remove(port_file_.c_str());
  }

 private:
  pid_t pid_ = -1;
  uint16_t port_ = 0;
  std::string port_file_;
};

/// Disarms every client-process fault site on scope exit.
struct FaultGuard {
  ~FaultGuard() { fault::DisarmAll(); }
};

/// Typed, retry-relevant failure codes the fabric is allowed to surface to
/// a caller under chaos. Anything else (kInternal, kIOError, empty
/// messages) is a bug the harness must catch.
bool IsTypedChaosFailure(const Status& status) {
  return (status.code() == StatusCode::kUnavailable ||
          status.code() == StatusCode::kDeadlineExceeded ||
          status.code() == StatusCode::kResourceExhausted) &&
         !status.message().empty();
}

TEST(ChaosTest, SeededScenarioHoldsBitwiseOrTypedInvariantAcrossFaults) {
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  FaultGuard guard;
  const uint64_t seed = ChaosSeed();
  std::string seed_trace = "SNORKEL_CHAOS_SEED=";
  seed_trace += std::to_string(seed);
  SCOPED_TRACE(seed_trace);
  SplitMix64 rng(seed);

  ChaosFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("chaos_" + std::to_string(seed) + ".snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  constexpr size_t kFleet = 3;
  ServerProcess servers[kFleet];
  std::vector<std::pair<std::string, uint16_t>> endpoints;
  for (size_t s = 0; s < kFleet; ++s) {
    std::string tag = "s";
    tag += std::to_string(s);
    ASSERT_TRUE(servers[s].Start(path, tag));
    endpoints.emplace_back("127.0.0.1", servers[s].port());
  }

  RemoteShardRouter::Options options;  // replication = 2.
  options.client.connect_timeout_ms = 1000;
  options.client.unhealthy_cooldown_ms = 500;  // Recover between phases.
  options.request_timeout_ms = 10'000;
  auto router = RemoteShardRouter::Create(endpoints, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  LabelRequest request;
  request.corpus = &fx.corpus;
  request.candidates = &fx.candidates;

  // One round of traffic. `must_succeed` encodes the coverage guarantee:
  // <= R-1 replicas down and no injected faults armed means the fabric has
  // no excuse.
  int typed_failures = 0;
  auto round = [&](bool must_succeed, const char* phase, int index) {
    SCOPED_TRACE(std::string(phase) + " round " + std::to_string(index));
    auto response = router->Label(request);
    if (!response.ok()) {
      EXPECT_FALSE(must_succeed) << response.status().ToString();
      EXPECT_TRUE(IsTypedChaosFailure(response.status()))
          << response.status().ToString();
      ++typed_failures;
      return;
    }
    EXPECT_FALSE(response->is_partial);
    EXPECT_EQ(response->posteriors, expected.posteriors);
    EXPECT_EQ(response->hard_labels, expected.hard_labels);
  };

  // ---- Phase 1: healthy fleet. All bitwise, nothing degraded. ----
  for (int i = 0; i < 4; ++i) round(/*must_succeed=*/true, "healthy", i);
  EXPECT_EQ(router->stats().failovers, 0u);

  // ---- Phase 2: steady single-endpoint outage (SIGKILL, no drain). The
  // seed picks the victim; R=2 means EVERY key keeps >= 1 live replica, so
  // every request must still be answered completely and bitwise. ----
  const size_t victim = static_cast<size_t>(rng.Next() % kFleet);
  const uint16_t victim_port = servers[victim].port();
  servers[victim].Kill(SIGKILL);
  for (int i = 0; i < 8; ++i) round(/*must_succeed=*/true, "outage", i);
  EXPECT_GE(router->stats().failovers, 8u)
      << "an 8-round outage must have been survived BY failover";
  EXPECT_EQ(router->stats().failed_requests, 0u);

  // ---- Phase 3: the victim restarts on the SAME port; once its breaker
  // cooldown expires, a probe revives the endpoint. ----
  ASSERT_TRUE(servers[victim].Start(path, "revived", victim_port));
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  for (int i = 0; i < 4; ++i) round(/*must_succeed=*/true, "revived", i);

  // ---- Phase 4: transport + server chaos, seeded. Client-side send/recv
  // faults break exchanges mid-stream (bounded by max_hits); one seeded
  // server gets latency spikes and another injected labeling failures via
  // the wire control plane. Failures are ALLOWED now — but only typed ones,
  // and every success still has to be bitwise. ----
  const size_t slow = static_cast<size_t>(rng.Next() % kFleet);
  {
    RemoteShardClient::Options control;
    control.port = servers[slow].port();
    RemoteShardClient stub = RemoteShardClient::Create(control);
    WireFaultCommand command;
    fault::Schedule spike;
    spike.kind = fault::Schedule::Kind::kDelayNth;
    spike.n = 2;
    spike.delay_ms = 150;  // Latency spike, well under the request budget.
    spike.seed = rng.Next();
    spike.max_hits = 6;
    command.arm.emplace_back("server.label", spike);
    fault::Schedule refuse;
    refuse.kind = fault::Schedule::Kind::kFailNth;
    refuse.n = 3;
    refuse.seed = rng.Next();
    refuse.max_hits = 4;
    WireFaultCommand refuse_command;
    refuse_command.arm.emplace_back("server.label", refuse);
    const size_t flaky = (slow + 1 + rng.Next() % (kFleet - 1)) % kFleet;
    RemoteShardClient::Options flaky_control;
    flaky_control.port = servers[flaky].port();
    RemoteShardClient flaky_stub = RemoteShardClient::Create(flaky_control);
    ASSERT_TRUE(stub.ConfigureFaults(command, 2000).ok());
    ASSERT_TRUE(flaky_stub.ConfigureFaults(refuse_command, 2000).ok());
  }
  // Client-side transport faults go LAST: the control exchanges above run
  // through the same armed socket sites they would otherwise trip over.
  fault::Schedule send_fault;
  send_fault.kind = fault::Schedule::Kind::kFailProbability;
  send_fault.probability = 0.25;
  send_fault.seed = rng.Next();
  send_fault.max_hits = 5;
  ASSERT_TRUE(fault::Arm("net.send", send_fault).ok());
  fault::Schedule recv_fault;
  recv_fault.kind = fault::Schedule::Kind::kFailProbability;
  recv_fault.probability = 0.15;
  recv_fault.seed = rng.Next();
  recv_fault.max_hits = 3;
  ASSERT_TRUE(fault::Arm("net.recv", recv_fault).ok());
  for (int i = 0; i < 10; ++i) round(/*must_succeed=*/false, "chaos", i);

  // ---- Phase 5: faults spent/disarmed; the fleet must converge back to
  // clean bitwise service with zero help. ----
  fault::DisarmAll();
  for (size_t s = 0; s < kFleet; ++s) {
    RemoteShardClient::Options control;
    control.port = servers[s].port();
    RemoteShardClient stub = RemoteShardClient::Create(control);
    WireFaultCommand off;
    off.disarm_all = true;
    EXPECT_TRUE(stub.ConfigureFaults(off, 2000).ok());
  }
  // Past the longest jittered cooldown (500 ms * 1.5): every breaker that
  // opened under chaos now admits a probe, and the healthy fleet closes it.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  for (int i = 0; i < 4; ++i) round(/*must_succeed=*/true, "recovered", i);

  // The resilience counters saw the story the phases told.
  RemoteRouterStats stats = router->stats();
  EXPECT_GE(stats.failovers, 8u);
  EXPECT_EQ(stats.degraded_requests, 0u);
  EXPECT_EQ(static_cast<int>(stats.failed_requests), typed_failures);
  // Mid-run the victim's breaker opened (steady outage + fail-fast) unless
  // the scenario's faults all landed elsewhere — don't assert it, REPORT it:
  // the chaos run's value is the invariants above holding for every seed.
  for (size_t s = 0; s < kFleet; ++s) {
    ASSERT_TRUE(servers[s].alive()) << "server " << s << " died untouched";
  }
  std::remove(path.c_str());
}

TEST(ChaosTest, InjectedServerFaultsAreIndistinguishableFromRealOnes) {
  // A focused end-to-end check of the wire fault control plane against a
  // real PROCESS (the in-process variant lives in net_test.cc): arm one
  // injected failure remotely, watch it surface as the standard typed
  // error, watch the counter over the stats RPC, watch service resume.
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  FaultGuard guard;
  ChaosFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("chaos_control.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  ServerProcess server;
  ASSERT_TRUE(server.Start(path, "ctl"));
  RemoteShardClient::Options options;
  options.port = server.port();
  RemoteShardClient client = RemoteShardClient::Create(options);

  WireFaultCommand command;
  fault::Schedule once;
  once.kind = fault::Schedule::Kind::kFailNth;
  once.n = 1;
  once.max_hits = 1;
  command.arm.emplace_back("server.label", once);
  ASSERT_TRUE(client.ConfigureFaults(command, 2000).ok());

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  auto faulted = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);

  auto stats = client.GetStats(2000);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->faults_injected, 1u);

  auto recovered = client.Label(fx.corpus, rows, false, true, 5000);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->posteriors, expected.posteriors);
  EXPECT_EQ(recovered->hard_labels, expected.hard_labels);
  std::remove(path.c_str());
}

TEST(ChaosTest, SlowShardUnderSustainedLoadShedsTypedAndRecoversBitwise) {
  // Overload scenario: a REAL shard process made slow via the wire fault
  // control plane (every label sleeps far longer than the request budgets
  // allow), then hit with a sustained burst of deadline-bearing traffic.
  // The invariants: the shard NEVER wedges (every caller gets an answer
  // within its own budget-bounded wait), every failure is typed and
  // retry-relevant (deadline exceeded, overload shed, breaker fail-fast),
  // expired work is provably cancelled server-side, and once the fault is
  // disarmed the shard serves bit-identically to the in-process oracle.
  ASSERT_NE(std::string(SNORKEL_SHARD_SERVER_BIN), "");
  FaultGuard guard;
  ChaosFixture fx;
  ModelSnapshot snapshot = fx.MakeSnapshot();
  std::string path = TempPath("chaos_overload.snk");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  LabelResponse expected = fx.Expected(snapshot);

  ServerProcess server;
  ASSERT_TRUE(server.Start(path, "slow"));
  RemoteShardClient::Options options;
  options.port = server.port();
  RemoteShardClient client = RemoteShardClient::Create(options);

  // Every label call sleeps 100 ms — far past the 150 ms budgets below once
  // a queue forms behind the 2 workers.
  WireFaultCommand command;
  fault::Schedule slow;
  slow.kind = fault::Schedule::Kind::kDelayNth;
  slow.n = 1;
  slow.delay_ms = 100;
  slow.max_hits = 1000;
  command.arm.emplace_back("server.label", slow);
  ASSERT_TRUE(client.ConfigureFaults(command, 2000).ok());

  std::vector<CandidateRef> rows = MakeCandidateRefs(fx.candidates);
  constexpr int kCallers = 12;
  std::atomic<int> ok_count{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> untyped_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&] {
      auto response = client.Label(fx.corpus, rows, false, true,
                                   /*deadline_ms=*/150);
      if (response.ok()) {
        ok_count.fetch_add(1);
      } else if (IsTypedChaosFailure(response.status())) {
        typed_failures.fetch_add(1);
      } else {
        ADD_FAILURE() << "untyped overload failure: "
                      << response.status().ToString();
        untyped_failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  // 12 bursted jobs at 100 ms each over 2 workers cannot all meet a 150 ms
  // budget: overload MUST have surfaced, and only as typed failures.
  EXPECT_GE(typed_failures.load(), 1);
  EXPECT_EQ(untyped_failures.load(), 0);

  // Expired work was cooperatively cancelled server-side (the worker
  // dequeued within budget, the injected sleep outlived it, and the
  // replica's token checks stopped the compute) — visible over the wire.
  for (int i = 0; i < 100; ++i) {
    auto stats = client.GetStats(2000);
    if (stats.ok() && stats->expired_work_cancelled > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  auto overloaded_stats = client.GetStats(2000);
  ASSERT_TRUE(overloaded_stats.ok())
      << overloaded_stats.status().ToString();
  EXPECT_GE(overloaded_stats->expired_work_cancelled, 1u);

  // Disarm, wait out the client breaker's jittered cooldown, and the shard
  // must serve bit-identically — overload leaves no residue.
  WireFaultCommand off;
  off.disarm_all = true;
  ASSERT_TRUE(client.ConfigureFaults(off, 2000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(1800));
  auto recovered = client.Label(fx.corpus, rows, false, true, 10'000);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->posteriors, expected.posteriors);
  EXPECT_EQ(recovered->hard_labels, expected.hard_labels);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snorkel
