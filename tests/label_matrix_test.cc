#include "core/label_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/csr_kernels.h"
#include "core/majority_vote.h"

namespace snorkel {
namespace {

// A small 4x3 binary matrix used across tests:
//   row0: [+1, -1,  0]
//   row1: [+1,  0,  0]
//   row2: [ 0,  0,  0]
//   row3: [-1, -1, +1]
LabelMatrix SmallMatrix() {
  auto result = LabelMatrix::FromDense(
      {{1, -1, 0}, {1, 0, 0}, {0, 0, 0}, {-1, -1, 1}});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LabelMatrixTest, FromDenseBasicShape) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_rows(), 4u);
  EXPECT_EQ(m.num_lfs(), 3u);
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_EQ(m.NumNonAbstains(), 6u);
}

TEST(LabelMatrixTest, AtReturnsVotesAndAbstains) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.At(0, 0), 1);
  EXPECT_EQ(m.At(0, 1), -1);
  EXPECT_EQ(m.At(0, 2), kAbstain);
  EXPECT_EQ(m.At(2, 1), kAbstain);
  EXPECT_EQ(m.At(3, 2), 1);
}

TEST(LabelMatrixTest, FromDenseRejectsRaggedRows) {
  auto result = LabelMatrix::FromDense({{1, -1}, {1}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LabelMatrixTest, FromDenseRejectsInvalidBinaryLabel) {
  auto result = LabelMatrix::FromDense({{1, 2}});
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, FromDenseRejectsBadCardinality) {
  auto result = LabelMatrix::FromDense({{1}}, 1);
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, MulticlassLabelsValidated) {
  auto good = LabelMatrix::FromDense({{1, 3}, {2, 0}}, 3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->cardinality(), 3);
  auto bad = LabelMatrix::FromDense({{1, 4}}, 3);
  EXPECT_FALSE(bad.ok());
  auto negative = LabelMatrix::FromDense({{-1, 1}}, 3);
  EXPECT_FALSE(negative.ok());
}

TEST(LabelMatrixTest, FromTripletsMatchesDense) {
  auto from_triplets = LabelMatrix::FromTriplets(
      4, 3, {{0, 0, 1}, {0, 1, -1}, {1, 0, 1}, {3, 0, -1}, {3, 1, -1}, {3, 2, 1}});
  ASSERT_TRUE(from_triplets.ok());
  LabelMatrix dense = SmallMatrix();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(from_triplets->At(i, j), dense.At(i, j)) << i << "," << j;
    }
  }
}

TEST(LabelMatrixTest, FromTripletsRejectsOutOfRange) {
  EXPECT_FALSE(LabelMatrix::FromTriplets(2, 2, {{2, 0, 1}}).ok());
  EXPECT_FALSE(LabelMatrix::FromTriplets(2, 2, {{0, 2, 1}}).ok());
}

TEST(LabelMatrixTest, FromTripletsRejectsDuplicateVote) {
  auto result = LabelMatrix::FromTriplets(2, 2, {{0, 1, 1}, {0, 1, -1}});
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, FromTripletsSkipsExplicitAbstains) {
  auto result = LabelMatrix::FromTriplets(1, 1, {{0, 0, kAbstain}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumNonAbstains(), 0u);
}

TEST(LabelMatrixTest, LabelDensity) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.LabelDensity(), 6.0 / 4.0);
}

TEST(LabelMatrixTest, CoverageOverlapConflict) {
  LabelMatrix m = SmallMatrix();
  // LF0 votes on rows 0,1,3.
  EXPECT_DOUBLE_EQ(m.Coverage(0), 0.75);
  // LF0 overlaps (another LF voted) on rows 0 and 3.
  EXPECT_DOUBLE_EQ(m.Overlap(0), 0.5);
  // LF0 conflicts on row 0 (vs LF1) and row 3 (vs LF2).
  EXPECT_DOUBLE_EQ(m.Conflict(0), 0.5);
  // LF2 votes only on row 3 and conflicts with both other LFs there.
  EXPECT_DOUBLE_EQ(m.Coverage(2), 0.25);
  EXPECT_DOUBLE_EQ(m.Conflict(2), 0.25);
}

TEST(LabelMatrixTest, FractionCovered) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.FractionCovered(), 0.75);  // Row 2 is empty.
}

TEST(LabelMatrixTest, CountLabels) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.CountLabels(0, 1), 1);
  EXPECT_EQ(m.CountLabels(0, -1), 1);
  EXPECT_EQ(m.CountLabels(3, -1), 2);
  EXPECT_EQ(m.CountLabels(2, 1), 0);
}

TEST(LabelMatrixTest, PolarityCounts) {
  LabelMatrix m = SmallMatrix();
  auto [pos0, neg0] = m.PolarityCounts(0);
  EXPECT_EQ(pos0, 2);
  EXPECT_EQ(neg0, 1);
  auto [pos1, neg1] = m.PolarityCounts(1);
  EXPECT_EQ(pos1, 0);
  EXPECT_EQ(neg1, 2);
}

TEST(LabelMatrixTest, EmpiricalAccuracy) {
  LabelMatrix m = SmallMatrix();
  std::vector<Label> gold = {1, 1, -1, -1};
  // LF0: votes +1,+1,-1 on rows 0,1,3 -> all correct.
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(0, gold), 1.0);
  // LF1: votes -1 on row 0 (wrong), -1 on row 3 (right).
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(1, gold), 0.5);
  // LF2: votes +1 on row 3 (wrong).
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(2, gold), 0.0);
}

TEST(LabelMatrixTest, EmpiricalAccuracyOfSilentLfIsHalf) {
  auto m = LabelMatrix::FromDense({{0, 1}, {0, -1}});
  ASSERT_TRUE(m.ok());
  std::vector<Label> gold = {1, -1};
  EXPECT_DOUBLE_EQ(m->EmpiricalAccuracy(0, gold), 0.5);
}

TEST(LabelMatrixTest, SelectColumnsReindexes) {
  LabelMatrix m = SmallMatrix();
  LabelMatrix sub = m.SelectColumns({2, 0});
  EXPECT_EQ(sub.num_lfs(), 2u);
  EXPECT_EQ(sub.num_rows(), 4u);
  EXPECT_EQ(sub.At(3, 0), 1);   // Old LF2.
  EXPECT_EQ(sub.At(3, 1), -1);  // Old LF0.
  EXPECT_EQ(sub.At(0, 0), kAbstain);
  EXPECT_EQ(sub.At(0, 1), 1);
}

TEST(LabelMatrixTest, SelectRowsPreservesOrder) {
  LabelMatrix m = SmallMatrix();
  LabelMatrix sub = m.SelectRows({3, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.At(0, 2), 1);  // Old row 3.
  EXPECT_EQ(sub.At(1, 0), 1);  // Old row 0.
}

TEST(LabelMatrixTest, SummaryTableContainsNamesAndStats) {
  LabelMatrix m = SmallMatrix();
  std::vector<std::string> names = {"lf_causes", "lf_treats", "lf_kb"};
  std::vector<Label> gold = {1, 1, -1, -1};
  std::string table = m.SummaryTable(&names, &gold);
  EXPECT_NE(table.find("lf_causes"), std::string::npos);
  EXPECT_NE(table.find("Coverage"), std::string::npos);
  EXPECT_NE(table.find("Emp. Acc"), std::string::npos);
}

TEST(LabelMatrixTest, EmptyMatrixStats) {
  auto m = LabelMatrix::FromDense({});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->LabelDensity(), 0.0);
  EXPECT_DOUBLE_EQ(m->FractionCovered(), 0.0);
}

// ------------------------------------------------- CSR equivalence (fuzz) --
// The CSR layout must behave exactly like the dense matrix it was built
// from, on every accessor. Randomized matrices deliberately include empty
// rows and all-abstain columns.

struct DenseCase {
  std::vector<std::vector<Label>> dense;
  LabelMatrix matrix;
};

DenseCase RandomDenseCase(uint64_t seed, size_t m, size_t n,
                          double density) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<Label>> dense(m, std::vector<Label>(n, kAbstain));
  // Column n-1 stays all-abstain; rows divisible by 7 stay empty.
  for (size_t i = 0; i < m; ++i) {
    if (i % 7 == 0) continue;
    for (size_t j = 0; j + 1 < n; ++j) {
      if (unit(rng) < density) dense[i][j] = unit(rng) < 0.6 ? 1 : -1;
    }
  }
  auto matrix = LabelMatrix::FromDense(dense);
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  return DenseCase{std::move(dense), std::move(*matrix)};
}

TEST(LabelMatrixCsrEquivalenceTest, AtAndRowMatchDense) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    DenseCase c = RandomDenseCase(seed, 97, 11, 0.3);
    ASSERT_EQ(c.matrix.num_rows(), c.dense.size());
    for (size_t i = 0; i < c.dense.size(); ++i) {
      size_t nonabstain = 0;
      for (size_t j = 0; j < c.dense[i].size(); ++j) {
        EXPECT_EQ(c.matrix.At(i, j), c.dense[i][j]) << i << "," << j;
        if (c.dense[i][j] != kAbstain) ++nonabstain;
      }
      LabelMatrix::RowSpan row = c.matrix.row(i);
      EXPECT_EQ(row.size(), nonabstain);
      uint32_t prev_lf = 0;
      bool first = true;
      for (const auto& e : row) {
        EXPECT_EQ(e.label, c.dense[i][e.lf]);
        if (!first) {
          EXPECT_LT(prev_lf, e.lf) << "row not sorted by LF";
        }
        prev_lf = e.lf;
        first = false;
      }
    }
  }
}

TEST(LabelMatrixCsrEquivalenceTest, StatsMatchDenseReference) {
  for (uint64_t seed : {4u, 5u}) {
    DenseCase c = RandomDenseCase(seed, 83, 9, 0.35);
    size_t m = c.dense.size();
    size_t n = c.dense[0].size();
    std::vector<Label> gold(m);
    std::mt19937_64 rng(seed + 100);
    for (auto& g : gold) g = rng() % 2 == 0 ? 1 : -1;

    size_t nnz = 0;
    size_t covered_rows = 0;
    for (size_t i = 0; i < m; ++i) {
      size_t row_votes = 0;
      for (size_t j = 0; j < n; ++j) {
        if (c.dense[i][j] != kAbstain) ++row_votes;
      }
      nnz += row_votes;
      if (row_votes > 0) ++covered_rows;
      // CountLabels per row.
      for (Label y : {1, -1}) {
        int expect = 0;
        for (size_t j = 0; j < n; ++j) {
          if (c.dense[i][j] == y) ++expect;
        }
        EXPECT_EQ(c.matrix.CountLabels(i, y), expect);
      }
    }
    EXPECT_EQ(c.matrix.NumNonAbstains(), nnz);
    EXPECT_DOUBLE_EQ(c.matrix.LabelDensity(),
                     static_cast<double>(nnz) / static_cast<double>(m));
    EXPECT_DOUBLE_EQ(c.matrix.FractionCovered(),
                     static_cast<double>(covered_rows) /
                         static_cast<double>(m));

    for (size_t j = 0; j < n; ++j) {
      int64_t votes = 0;
      int64_t overlap = 0;
      int64_t conflict = 0;
      int64_t pos = 0;
      int64_t neg = 0;
      int64_t correct = 0;
      for (size_t i = 0; i < m; ++i) {
        if (c.dense[i][j] == kAbstain) continue;
        ++votes;
        if (c.dense[i][j] > 0) {
          ++pos;
        } else {
          ++neg;
        }
        if (c.dense[i][j] == gold[i]) ++correct;
        bool other_votes = false;
        bool other_disagrees = false;
        for (size_t k = 0; k < n; ++k) {
          if (k == j || c.dense[i][k] == kAbstain) continue;
          other_votes = true;
          if (c.dense[i][k] != c.dense[i][j]) other_disagrees = true;
        }
        if (other_votes) ++overlap;
        if (other_disagrees) ++conflict;
      }
      double dm = static_cast<double>(m);
      EXPECT_DOUBLE_EQ(c.matrix.Coverage(j), votes / dm) << "lf " << j;
      EXPECT_DOUBLE_EQ(c.matrix.Overlap(j), overlap / dm) << "lf " << j;
      EXPECT_DOUBLE_EQ(c.matrix.Conflict(j), conflict / dm) << "lf " << j;
      auto [got_pos, got_neg] = c.matrix.PolarityCounts(j);
      EXPECT_EQ(got_pos, pos);
      EXPECT_EQ(got_neg, neg);
      double expect_acc =
          votes == 0 ? 0.5
                     : static_cast<double>(correct) / static_cast<double>(votes);
      EXPECT_DOUBLE_EQ(c.matrix.EmpiricalAccuracy(j, gold), expect_acc);
    }
    // The all-abstain column reports neutral stats.
    EXPECT_DOUBLE_EQ(c.matrix.Coverage(n - 1), 0.0);
    EXPECT_DOUBLE_EQ(c.matrix.EmpiricalAccuracy(n - 1, gold), 0.5);
  }
}

TEST(LabelMatrixCsrEquivalenceTest, SelectRowsMatchesDense) {
  DenseCase c = RandomDenseCase(6, 41, 7, 0.4);
  std::vector<size_t> picks = {40, 0, 7, 7, 13, 2};  // Repeats allowed.
  LabelMatrix sub = c.matrix.SelectRows(picks);
  ASSERT_EQ(sub.num_rows(), picks.size());
  EXPECT_EQ(sub.num_lfs(), c.matrix.num_lfs());
  for (size_t i = 0; i < picks.size(); ++i) {
    for (size_t j = 0; j < c.dense[0].size(); ++j) {
      EXPECT_EQ(sub.At(i, j), c.dense[picks[i]][j]) << i << "," << j;
    }
  }
}

TEST(LabelMatrixCsrEquivalenceTest, SelectColumnsMatchesDense) {
  DenseCase c = RandomDenseCase(7, 53, 8, 0.4);
  std::vector<size_t> cols = {5, 0, 3, 7};  // Permuted; includes abstain col.
  LabelMatrix sub = c.matrix.SelectColumns(cols);
  ASSERT_EQ(sub.num_lfs(), cols.size());
  ASSERT_EQ(sub.num_rows(), c.matrix.num_rows());
  for (size_t i = 0; i < c.dense.size(); ++i) {
    for (size_t new_j = 0; new_j < cols.size(); ++new_j) {
      EXPECT_EQ(sub.At(i, new_j), c.dense[i][cols[new_j]]) << i << "," << new_j;
    }
    // Rows must stay sorted by (new) LF index after the permutation.
    uint32_t prev = 0;
    bool first = true;
    for (const auto& e : sub.row(i)) {
      if (!first) {
        EXPECT_LT(prev, e.lf);
      }
      prev = e.lf;
      first = false;
    }
  }
}

TEST(LabelMatrixCsrEquivalenceTest, KernelViewsMatchDense) {
  DenseCase c = RandomDenseCase(8, 65, 6, 0.45);
  size_t m = c.dense.size();
  size_t n = c.dense[0].size();
  CsrView csr = CsrView::FromMatrix(c.matrix);
  CscView csc = CscView::FromMatrix(c.matrix);
  std::vector<double> weights = {0.3, -1.2, 0.9, 2.0, -0.4, 1.1};
  std::vector<double> f(m, 0.0);
  WeightedRowSums(csr, weights.data(), 0.25, 0, m, f.data());
  std::vector<double> q(m, 0.0);
  SigmoidBatch(f.data(), q.data(), m);
  std::vector<double> col_acc(n, 0.0);
  ColumnSignedSums(csc, q.data(), 0, n, col_acc.data());
  for (size_t i = 0; i < m; ++i) {
    double expect = 0.25;
    for (size_t j = 0; j < n; ++j) {
      if (c.dense[i][j] != kAbstain) {
        expect += weights[j] * (c.dense[i][j] > 0 ? 1.0 : -1.0);
      }
    }
    EXPECT_NEAR(f[i], expect, 1e-12) << "row " << i;
    double sig = 1.0 / (1.0 + std::exp(-f[i]));
    EXPECT_NEAR(q[i], sig, 1e-12) << "row " << i;
  }
  for (size_t j = 0; j < n; ++j) {
    double expect = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (c.dense[i][j] != kAbstain) {
        expect += (c.dense[i][j] > 0 ? 1.0 : -1.0) * q[i];
      }
    }
    EXPECT_NEAR(col_acc[j], expect, 1e-9) << "lf " << j;
  }
}

// ----------------------------------------------------------- MajorityVote --

TEST(MajorityVoteTest, UnweightedVoteSumsLabels) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(0)), 0.0);
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(1)), 1.0);
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(3)), -1.0);
}

TEST(MajorityVoteTest, WeightedVoteUsesWeights) {
  LabelMatrix m = SmallMatrix();
  std::vector<double> w = {2.0, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(WeightedVote(m.row(0), w), 1.5);
  EXPECT_DOUBLE_EQ(WeightedVote(m.row(3), w), -2.4);
}

TEST(MajorityVoteTest, PredictionsWithTiesAbstain) {
  LabelMatrix m = SmallMatrix();
  auto preds = MajorityVotePredictions(m);
  EXPECT_EQ(preds[0], kAbstain);  // +1 vs -1 tie.
  EXPECT_EQ(preds[1], 1);
  EXPECT_EQ(preds[2], kAbstain);  // No votes.
  EXPECT_EQ(preds[3], -1);
}

TEST(MajorityVoteTest, WeightedPredictionsBreakTies) {
  LabelMatrix m = SmallMatrix();
  std::vector<double> w = {2.0, 0.5, 0.1};
  auto preds = WeightedMajorityVotePredictions(m, w);
  EXPECT_EQ(preds[0], 1);  // LF0 outweighs LF1.
  EXPECT_EQ(preds[3], -1);
}

TEST(MajorityVoteTest, UnweightedAverageProbs) {
  LabelMatrix m = SmallMatrix();
  auto probs = UnweightedAverageProbs(m);
  EXPECT_DOUBLE_EQ(probs[0], 0.5);        // 1 pos, 1 neg.
  EXPECT_DOUBLE_EQ(probs[1], 1.0);        // 1 pos.
  EXPECT_DOUBLE_EQ(probs[2], 0.5);        // All abstain -> prior.
  EXPECT_DOUBLE_EQ(probs[3], 1.0 / 3.0);  // 1 pos, 2 neg.
}

TEST(MajorityVoteTest, PluralityVoteMulticlass) {
  auto m = LabelMatrix::FromDense({{1, 1, 3}, {2, 3, 3}, {0, 0, 0}}, 3);
  ASSERT_TRUE(m.ok());
  auto preds = PluralityVotePredictions(*m);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 3);
  EXPECT_EQ(preds[2], kAbstain);
}

TEST(MajorityVoteTest, PluralityTieBreaksTowardSmallestLabel) {
  auto m = LabelMatrix::FromDense({{1, 2}}, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(PluralityVotePredictions(*m)[0], 1);
}

}  // namespace
}  // namespace snorkel
