#include "core/label_matrix.h"

#include <gtest/gtest.h>

#include "core/majority_vote.h"

namespace snorkel {
namespace {

// A small 4x3 binary matrix used across tests:
//   row0: [+1, -1,  0]
//   row1: [+1,  0,  0]
//   row2: [ 0,  0,  0]
//   row3: [-1, -1, +1]
LabelMatrix SmallMatrix() {
  auto result = LabelMatrix::FromDense(
      {{1, -1, 0}, {1, 0, 0}, {0, 0, 0}, {-1, -1, 1}});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LabelMatrixTest, FromDenseBasicShape) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_rows(), 4u);
  EXPECT_EQ(m.num_lfs(), 3u);
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_EQ(m.NumNonAbstains(), 6u);
}

TEST(LabelMatrixTest, AtReturnsVotesAndAbstains) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.At(0, 0), 1);
  EXPECT_EQ(m.At(0, 1), -1);
  EXPECT_EQ(m.At(0, 2), kAbstain);
  EXPECT_EQ(m.At(2, 1), kAbstain);
  EXPECT_EQ(m.At(3, 2), 1);
}

TEST(LabelMatrixTest, FromDenseRejectsRaggedRows) {
  auto result = LabelMatrix::FromDense({{1, -1}, {1}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LabelMatrixTest, FromDenseRejectsInvalidBinaryLabel) {
  auto result = LabelMatrix::FromDense({{1, 2}});
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, FromDenseRejectsBadCardinality) {
  auto result = LabelMatrix::FromDense({{1}}, 1);
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, MulticlassLabelsValidated) {
  auto good = LabelMatrix::FromDense({{1, 3}, {2, 0}}, 3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->cardinality(), 3);
  auto bad = LabelMatrix::FromDense({{1, 4}}, 3);
  EXPECT_FALSE(bad.ok());
  auto negative = LabelMatrix::FromDense({{-1, 1}}, 3);
  EXPECT_FALSE(negative.ok());
}

TEST(LabelMatrixTest, FromTripletsMatchesDense) {
  auto from_triplets = LabelMatrix::FromTriplets(
      4, 3, {{0, 0, 1}, {0, 1, -1}, {1, 0, 1}, {3, 0, -1}, {3, 1, -1}, {3, 2, 1}});
  ASSERT_TRUE(from_triplets.ok());
  LabelMatrix dense = SmallMatrix();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(from_triplets->At(i, j), dense.At(i, j)) << i << "," << j;
    }
  }
}

TEST(LabelMatrixTest, FromTripletsRejectsOutOfRange) {
  EXPECT_FALSE(LabelMatrix::FromTriplets(2, 2, {{2, 0, 1}}).ok());
  EXPECT_FALSE(LabelMatrix::FromTriplets(2, 2, {{0, 2, 1}}).ok());
}

TEST(LabelMatrixTest, FromTripletsRejectsDuplicateVote) {
  auto result = LabelMatrix::FromTriplets(2, 2, {{0, 1, 1}, {0, 1, -1}});
  EXPECT_FALSE(result.ok());
}

TEST(LabelMatrixTest, FromTripletsSkipsExplicitAbstains) {
  auto result = LabelMatrix::FromTriplets(1, 1, {{0, 0, kAbstain}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumNonAbstains(), 0u);
}

TEST(LabelMatrixTest, LabelDensity) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.LabelDensity(), 6.0 / 4.0);
}

TEST(LabelMatrixTest, CoverageOverlapConflict) {
  LabelMatrix m = SmallMatrix();
  // LF0 votes on rows 0,1,3.
  EXPECT_DOUBLE_EQ(m.Coverage(0), 0.75);
  // LF0 overlaps (another LF voted) on rows 0 and 3.
  EXPECT_DOUBLE_EQ(m.Overlap(0), 0.5);
  // LF0 conflicts on row 0 (vs LF1) and row 3 (vs LF2).
  EXPECT_DOUBLE_EQ(m.Conflict(0), 0.5);
  // LF2 votes only on row 3 and conflicts with both other LFs there.
  EXPECT_DOUBLE_EQ(m.Coverage(2), 0.25);
  EXPECT_DOUBLE_EQ(m.Conflict(2), 0.25);
}

TEST(LabelMatrixTest, FractionCovered) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.FractionCovered(), 0.75);  // Row 2 is empty.
}

TEST(LabelMatrixTest, CountLabels) {
  LabelMatrix m = SmallMatrix();
  EXPECT_EQ(m.CountLabels(0, 1), 1);
  EXPECT_EQ(m.CountLabels(0, -1), 1);
  EXPECT_EQ(m.CountLabels(3, -1), 2);
  EXPECT_EQ(m.CountLabels(2, 1), 0);
}

TEST(LabelMatrixTest, PolarityCounts) {
  LabelMatrix m = SmallMatrix();
  auto [pos0, neg0] = m.PolarityCounts(0);
  EXPECT_EQ(pos0, 2);
  EXPECT_EQ(neg0, 1);
  auto [pos1, neg1] = m.PolarityCounts(1);
  EXPECT_EQ(pos1, 0);
  EXPECT_EQ(neg1, 2);
}

TEST(LabelMatrixTest, EmpiricalAccuracy) {
  LabelMatrix m = SmallMatrix();
  std::vector<Label> gold = {1, 1, -1, -1};
  // LF0: votes +1,+1,-1 on rows 0,1,3 -> all correct.
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(0, gold), 1.0);
  // LF1: votes -1 on row 0 (wrong), -1 on row 3 (right).
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(1, gold), 0.5);
  // LF2: votes +1 on row 3 (wrong).
  EXPECT_DOUBLE_EQ(m.EmpiricalAccuracy(2, gold), 0.0);
}

TEST(LabelMatrixTest, EmpiricalAccuracyOfSilentLfIsHalf) {
  auto m = LabelMatrix::FromDense({{0, 1}, {0, -1}});
  ASSERT_TRUE(m.ok());
  std::vector<Label> gold = {1, -1};
  EXPECT_DOUBLE_EQ(m->EmpiricalAccuracy(0, gold), 0.5);
}

TEST(LabelMatrixTest, SelectColumnsReindexes) {
  LabelMatrix m = SmallMatrix();
  LabelMatrix sub = m.SelectColumns({2, 0});
  EXPECT_EQ(sub.num_lfs(), 2u);
  EXPECT_EQ(sub.num_rows(), 4u);
  EXPECT_EQ(sub.At(3, 0), 1);   // Old LF2.
  EXPECT_EQ(sub.At(3, 1), -1);  // Old LF0.
  EXPECT_EQ(sub.At(0, 0), kAbstain);
  EXPECT_EQ(sub.At(0, 1), 1);
}

TEST(LabelMatrixTest, SelectRowsPreservesOrder) {
  LabelMatrix m = SmallMatrix();
  LabelMatrix sub = m.SelectRows({3, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.At(0, 2), 1);  // Old row 3.
  EXPECT_EQ(sub.At(1, 0), 1);  // Old row 0.
}

TEST(LabelMatrixTest, SummaryTableContainsNamesAndStats) {
  LabelMatrix m = SmallMatrix();
  std::vector<std::string> names = {"lf_causes", "lf_treats", "lf_kb"};
  std::vector<Label> gold = {1, 1, -1, -1};
  std::string table = m.SummaryTable(&names, &gold);
  EXPECT_NE(table.find("lf_causes"), std::string::npos);
  EXPECT_NE(table.find("Coverage"), std::string::npos);
  EXPECT_NE(table.find("Emp. Acc"), std::string::npos);
}

TEST(LabelMatrixTest, EmptyMatrixStats) {
  auto m = LabelMatrix::FromDense({});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->LabelDensity(), 0.0);
  EXPECT_DOUBLE_EQ(m->FractionCovered(), 0.0);
}

// ----------------------------------------------------------- MajorityVote --

TEST(MajorityVoteTest, UnweightedVoteSumsLabels) {
  LabelMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(0)), 0.0);
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(1)), 1.0);
  EXPECT_DOUBLE_EQ(UnweightedVote(m.row(3)), -1.0);
}

TEST(MajorityVoteTest, WeightedVoteUsesWeights) {
  LabelMatrix m = SmallMatrix();
  std::vector<double> w = {2.0, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(WeightedVote(m.row(0), w), 1.5);
  EXPECT_DOUBLE_EQ(WeightedVote(m.row(3), w), -2.4);
}

TEST(MajorityVoteTest, PredictionsWithTiesAbstain) {
  LabelMatrix m = SmallMatrix();
  auto preds = MajorityVotePredictions(m);
  EXPECT_EQ(preds[0], kAbstain);  // +1 vs -1 tie.
  EXPECT_EQ(preds[1], 1);
  EXPECT_EQ(preds[2], kAbstain);  // No votes.
  EXPECT_EQ(preds[3], -1);
}

TEST(MajorityVoteTest, WeightedPredictionsBreakTies) {
  LabelMatrix m = SmallMatrix();
  std::vector<double> w = {2.0, 0.5, 0.1};
  auto preds = WeightedMajorityVotePredictions(m, w);
  EXPECT_EQ(preds[0], 1);  // LF0 outweighs LF1.
  EXPECT_EQ(preds[3], -1);
}

TEST(MajorityVoteTest, UnweightedAverageProbs) {
  LabelMatrix m = SmallMatrix();
  auto probs = UnweightedAverageProbs(m);
  EXPECT_DOUBLE_EQ(probs[0], 0.5);        // 1 pos, 1 neg.
  EXPECT_DOUBLE_EQ(probs[1], 1.0);        // 1 pos.
  EXPECT_DOUBLE_EQ(probs[2], 0.5);        // All abstain -> prior.
  EXPECT_DOUBLE_EQ(probs[3], 1.0 / 3.0);  // 1 pos, 2 neg.
}

TEST(MajorityVoteTest, PluralityVoteMulticlass) {
  auto m = LabelMatrix::FromDense({{1, 1, 3}, {2, 3, 3}, {0, 0, 0}}, 3);
  ASSERT_TRUE(m.ok());
  auto preds = PluralityVotePredictions(*m);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 3);
  EXPECT_EQ(preds[2], kAbstain);
}

TEST(MajorityVoteTest, PluralityTieBreaksTowardSmallestLabel) {
  auto m = LabelMatrix::FromDense({{1, 2}}, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(PluralityVotePredictions(*m)[0], 1);
}

}  // namespace
}  // namespace snorkel
