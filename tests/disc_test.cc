#include <gtest/gtest.h>

#include <cmath>

#include "disc/features.h"
#include "disc/linear_model.h"
#include "disc/mlp.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace snorkel {
namespace {

/// Linearly separable-ish synthetic features: class-dependent bag of
/// "words" over a tiny vocabulary.
struct DiscData {
  std::vector<FeatureVector> features;
  std::vector<Label> gold;
  std::vector<double> soft;  // Noisy probabilistic labels.
};

DiscData MakeDiscData(size_t n, double label_noise, uint64_t seed,
                      size_t num_buckets = 1 << 12) {
  Rng rng(seed);
  FeatureHasher hasher(num_buckets);
  const std::vector<std::string> pos_words = {"good", "great", "win"};
  const std::vector<std::string> neg_words = {"bad", "poor", "loss"};
  const std::vector<std::string> shared = {"the", "a", "it", "was"};
  DiscData data;
  for (size_t i = 0; i < n; ++i) {
    Label y = rng.Bernoulli(0.5) ? 1 : -1;
    std::vector<std::string> words;
    for (int w = 0; w < 6; ++w) {
      if (rng.Bernoulli(0.5)) {
        const auto& bank = y > 0 ? pos_words : neg_words;
        words.push_back(bank[static_cast<size_t>(rng.UniformInt(0, 2))]);
      } else {
        words.push_back(shared[static_cast<size_t>(rng.UniformInt(0, 3))]);
      }
    }
    data.features.push_back(HashBagOfWords(words, hasher, "bow"));
    data.gold.push_back(y);
    double target = y > 0 ? 0.9 : 0.1;
    // Noisy probabilistic label, as the generative model would emit.
    double soft = target + rng.Normal(0.0, label_noise);
    data.soft.push_back(std::min(1.0, std::max(0.0, soft)));
  }
  return data;
}

// ---------------------------------------------------------------- Features --

TEST(FeatureHasherTest, DeterministicWithinRange) {
  FeatureHasher hasher(1024);
  EXPECT_EQ(hasher.Index("foo"), hasher.Index("foo"));
  EXPECT_LT(hasher.Index("foo"), 1024u);
  EXPECT_NE(hasher.Index("foo"), hasher.Index("bar"));
}

TEST(FeatureHasherTest, AddFeatureAppends) {
  FeatureHasher hasher(64);
  FeatureVector v;
  hasher.AddFeature("a", 1.0f, &v);
  hasher.AddFeature("b", 2.0f, &v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries[1].second, 2.0f);
}

TEST(HashBagOfWordsTest, LowercasesAndPrefixes) {
  FeatureHasher hasher(1 << 10);
  auto a = HashBagOfWords({"Rain", "rain"}, hasher, "bow");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.entries[0].first, a.entries[1].first);
  // Different prefix must land elsewhere (namespacing).
  auto b = HashBagOfWords({"rain"}, hasher, "other");
  EXPECT_NE(a.entries[0].first, b.entries[0].first);
}

TEST(TextFeaturizerTest, ProducesNamespacedFeatures) {
  Corpus corpus;
  Document doc;
  Sentence s;
  s.words = {"magnesium", "causes", "quadriplegia", "often"};
  s.mentions = {Mention{0, 1, "chemical", "C_mg"},
                Mention{2, 3, "disease", "D_quad"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  ASSERT_EQ(candidates.size(), 1u);
  CandidateView view(&corpus, &candidates[0], 0);

  TextFeaturizer featurizer;
  FeatureVector fv = featurizer.Featurize(view);
  // At least: btw, btw_stem, span1, span2, type1, type2, order, dist, right.
  EXPECT_GE(fv.size(), 9u);
  for (const auto& [idx, val] : fv.entries) {
    EXPECT_LT(idx, featurizer.num_buckets());
    EXPECT_EQ(val, 1.0f);
  }
}

TEST(TextFeaturizerTest, DeterministicAcrossCalls) {
  Corpus corpus;
  Document doc;
  Sentence s;
  s.words = {"a", "causes", "b"};
  s.mentions = {Mention{0, 1, "chemical", "A"}, Mention{2, 3, "disease", "B"}};
  doc.sentences = {s};
  corpus.AddDocument(std::move(doc));
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  CandidateView view(&corpus, &candidates[0], 0);
  TextFeaturizer featurizer;
  auto f1 = featurizer.Featurize(view);
  auto f2 = featurizer.Featurize(view);
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1.entries[i].first, f2.entries[i].first);
  }
}

// ------------------------------------------------------ LogisticRegression --

TEST(LogisticRegressionTest, ValidatesInputs) {
  LogisticRegressionClassifier model;
  EXPECT_FALSE(model.Fit({}, 16, {}).ok());
  DiscData data = MakeDiscData(10, 0.0, 1);
  std::vector<double> bad_labels(10, 1.5);
  EXPECT_FALSE(model.Fit(data.features, 1 << 12, bad_labels).ok());
  std::vector<double> short_labels(5, 0.5);
  EXPECT_FALSE(model.Fit(data.features, 1 << 12, short_labels).ok());
}

TEST(LogisticRegressionTest, LearnsSeparableProblem) {
  DiscData data = MakeDiscData(2000, 0.0, 2);
  LogisticRegressionClassifier model;
  ASSERT_TRUE(model.Fit(data.features, 1 << 12, data.soft).ok());
  auto conf = ComputeBinaryConfusion(model.PredictLabels(data.features),
                                     data.gold);
  EXPECT_GT(conf.Accuracy(), 0.95);
}

TEST(LogisticRegressionTest, NoiseAwareTrainingToleratesSoftLabels) {
  // Noisy probabilistic labels should still yield a good classifier — the
  // §2.3 noise-aware loss argument.
  DiscData data = MakeDiscData(3000, 0.25, 3);
  LogisticRegressionClassifier model;
  ASSERT_TRUE(model.Fit(data.features, 1 << 12, data.soft).ok());
  auto conf = ComputeBinaryConfusion(model.PredictLabels(data.features),
                                     data.gold);
  EXPECT_GT(conf.Accuracy(), 0.9);
}

TEST(LogisticRegressionTest, FitHardMatchesSoftExtremes) {
  DiscData data = MakeDiscData(800, 0.0, 4);
  LogisticRegressionClassifier hard;
  ASSERT_TRUE(hard.FitHard(data.features, 1 << 12, data.gold).ok());
  auto conf = ComputeBinaryConfusion(hard.PredictLabels(data.features),
                                     data.gold);
  EXPECT_GT(conf.Accuracy(), 0.95);
}

TEST(LogisticRegressionTest, DevSelectionKeepsReasonableModel) {
  DiscData train = MakeDiscData(1500, 0.1, 5);
  DiscData dev = MakeDiscData(300, 0.0, 6);
  LogisticRegressionClassifier model;
  ASSERT_TRUE(model.Fit(train.features, 1 << 12, train.soft, &dev.features,
                        &dev.gold)
                  .ok());
  auto conf = ComputeBinaryConfusion(model.PredictLabels(dev.features),
                                     dev.gold);
  EXPECT_GT(conf.F1(), 0.9);
}

TEST(LogisticRegressionTest, ProbaAreCalibratedDirectionally) {
  DiscData data = MakeDiscData(1500, 0.0, 7);
  LogisticRegressionClassifier model;
  ASSERT_TRUE(model.Fit(data.features, 1 << 12, data.soft).ok());
  auto proba = model.PredictProba(data.features);
  double pos_mean = 0, neg_mean = 0;
  int pos = 0, neg = 0;
  for (size_t i = 0; i < proba.size(); ++i) {
    if (data.gold[i] > 0) {
      pos_mean += proba[i];
      ++pos;
    } else {
      neg_mean += proba[i];
      ++neg;
    }
  }
  EXPECT_GT(pos_mean / pos, 0.7);
  EXPECT_LT(neg_mean / neg, 0.3);
}

TEST(LogisticRegressionTest, DeterministicGivenSeed) {
  DiscData data = MakeDiscData(500, 0.1, 8);
  LogisticRegressionClassifier a;
  LogisticRegressionClassifier b;
  ASSERT_TRUE(a.Fit(data.features, 1 << 12, data.soft).ok());
  ASSERT_TRUE(b.Fit(data.features, 1 << 12, data.soft).ok());
  auto pa = a.PredictProba(data.features);
  auto pb = b.PredictProba(data.features);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

// -------------------------------------------------------- SoftmaxRegression --

std::vector<std::vector<double>> OneHot(const std::vector<Label>& labels,
                                        int k) {
  std::vector<std::vector<double>> soft(
      labels.size(), std::vector<double>(static_cast<size_t>(k), 0.0));
  for (size_t i = 0; i < labels.size(); ++i) {
    soft[i][static_cast<size_t>(labels[i]) - 1] = 1.0;
  }
  return soft;
}

struct MultiData {
  std::vector<FeatureVector> features;
  std::vector<Label> gold;
};

MultiData MakeMultiData(size_t n, int k, uint64_t seed) {
  Rng rng(seed);
  FeatureHasher hasher(1 << 12);
  MultiData data;
  for (size_t i = 0; i < n; ++i) {
    Label y = static_cast<Label>(rng.UniformInt(1, k));
    std::vector<std::string> words;
    for (int w = 0; w < 5; ++w) {
      if (rng.Bernoulli(0.6)) {
        words.push_back("sig" + std::to_string(y) + "_" +
                        std::to_string(rng.UniformInt(0, 3)));
      } else {
        words.push_back("shared" + std::to_string(rng.UniformInt(0, 5)));
      }
    }
    data.features.push_back(HashBagOfWords(words, hasher, "bow"));
    data.gold.push_back(y);
  }
  return data;
}

TEST(SoftmaxRegressionTest, ValidatesInputs) {
  SoftmaxRegressionClassifier model;
  EXPECT_FALSE(model.Fit({}, 16, {}, 3).ok());
  MultiData data = MakeMultiData(10, 3, 1);
  EXPECT_FALSE(model.Fit(data.features, 1 << 12, OneHot(data.gold, 3), 1).ok());
  auto wrong_k = OneHot(data.gold, 4);
  EXPECT_FALSE(model.Fit(data.features, 1 << 12, wrong_k, 3).ok());
}

TEST(SoftmaxRegressionTest, LearnsFiveClassProblem) {
  MultiData data = MakeMultiData(3000, 5, 2);
  SoftmaxRegressionClassifier model;
  ASSERT_TRUE(model.FitHard(data.features, 1 << 12, data.gold, 5).ok());
  EXPECT_GT(MulticlassAccuracy(model.PredictLabels(data.features), data.gold),
            0.9);
}

TEST(SoftmaxRegressionTest, SoftTargetsWork) {
  MultiData data = MakeMultiData(2000, 3, 3);
  // Smooth the one-hot targets (as a label model posterior would).
  auto soft = OneHot(data.gold, 3);
  for (auto& row : soft) {
    for (auto& p : row) p = 0.8 * p + 0.2 / 3.0;
  }
  SoftmaxRegressionClassifier model;
  ASSERT_TRUE(model.Fit(data.features, 1 << 12, soft, 3).ok());
  EXPECT_GT(MulticlassAccuracy(model.PredictLabels(data.features), data.gold),
            0.9);
}

TEST(SoftmaxRegressionTest, PosteriorsSumToOne) {
  MultiData data = MakeMultiData(200, 4, 4);
  SoftmaxRegressionClassifier model;
  ASSERT_TRUE(model.FitHard(data.features, 1 << 12, data.gold, 4).ok());
  for (const auto& row : model.PredictProba(data.features)) {
    double sum = 0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SoftmaxRegressionTest, HardLabelRangeChecked) {
  MultiData data = MakeMultiData(10, 3, 5);
  SoftmaxRegressionClassifier model;
  std::vector<Label> bad = data.gold;
  bad[0] = 7;
  EXPECT_FALSE(model.FitHard(data.features, 1 << 12, bad, 3).ok());
}

// -------------------------------------------------------------------- MLP --

TEST(MlpTest, ValidatesInputs) {
  MlpClassifier model;
  EXPECT_FALSE(model.Fit({}, 16, {}).ok());
}

TEST(MlpTest, LearnsLinearProblem) {
  DiscData data = MakeDiscData(2000, 0.1, 9);
  MlpClassifier model;
  ASSERT_TRUE(model.Fit(data.features, 1 << 12, data.soft).ok());
  auto conf = ComputeBinaryConfusion(model.PredictLabels(data.features),
                                     data.gold);
  EXPECT_GT(conf.Accuracy(), 0.9);
}

TEST(MlpTest, LearnsXorLikeConjunction) {
  // Label = +1 iff exactly one of two marker features fires: linearly
  // inseparable, learnable by the hidden layer.
  Rng rng(10);
  FeatureHasher hasher(1 << 8);
  std::vector<FeatureVector> features;
  std::vector<double> soft;
  std::vector<Label> gold;
  for (int i = 0; i < 4000; ++i) {
    bool a = rng.Bernoulli(0.5);
    bool b = rng.Bernoulli(0.5);
    FeatureVector fv;
    hasher.AddFeature("bias_always", 1.0f, &fv);
    if (a) hasher.AddFeature("marker_a", 1.0f, &fv);
    if (b) hasher.AddFeature("marker_b", 1.0f, &fv);
    Label y = (a != b) ? 1 : -1;
    features.push_back(std::move(fv));
    gold.push_back(y);
    soft.push_back(y > 0 ? 1.0 : 0.0);
  }
  MlpClassifier::Options options;
  options.hidden_units = 16;
  options.train.epochs = 60;
  options.train.learning_rate = 0.1;
  MlpClassifier model(options);
  ASSERT_TRUE(model.Fit(features, 1 << 8, soft).ok());
  auto conf = ComputeBinaryConfusion(model.PredictLabels(features), gold);
  EXPECT_GT(conf.Accuracy(), 0.95);
}

TEST(MlpTest, DeterministicGivenSeed) {
  DiscData data = MakeDiscData(400, 0.1, 11);
  MlpClassifier a;
  MlpClassifier b;
  ASSERT_TRUE(a.Fit(data.features, 1 << 12, data.soft).ok());
  ASSERT_TRUE(b.Fit(data.features, 1 << 12, data.soft).ok());
  auto pa = a.PredictProba(data.features);
  auto pb = b.PredictProba(data.features);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace snorkel
