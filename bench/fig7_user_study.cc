// Reproduces Figure 7 (user study): each simulated participant writes a
// small LF set for the Spouses task; Snorkel turns it into an end model.
// Baselines are models trained on hand-labeled sets of the size a
// participant could label in the same seven hours (~2500 labels). The paper
// finds the majority of participants match or beat the hand-label baselines.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "synth/user_study.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  UserStudyOptions options;
  options.corpus_scale = 0.3;
  auto pool = MakeUserStudyPool(options);
  if (!pool.ok()) {
    std::printf("pool generation failed\n");
    return 1;
  }
  RelationTask& task = pool->task;

  // Snorkel users: run the pipeline restricted to each user's LF columns.
  // The user's LFs live in a merged pool set, so swap it in as the task set.
  LabelingFunctionSet original = std::move(task.lfs);
  task.lfs = std::move(pool->pool);

  TablePrinter table({"Participant", "# LFs", "P", "R", "F1"});
  std::vector<double> user_f1;
  for (size_t u = 0; u < pool->user_lf_ranges.size(); ++u) {
    auto [begin, end] = pool->user_lf_ranges[u];
    PipelineOptions pipeline_options = bench::StandardPipelineOptions();
    pipeline_options.use_optimizer = false;  // Small per-user LF sets.
    pipeline_options.run_hand_baseline = false;
    pipeline_options.run_ds_baseline = false;
    pipeline_options.run_unweighted_baseline = false;
    for (size_t j = begin; j < end; ++j) {
      pipeline_options.lf_subset.push_back(j);
    }
    auto report = RunRelationPipeline(task, pipeline_options);
    double p = 0.0;
    double r = 0.0;
    double f1 = 0.0;
    if (report.ok()) {
      p = report->disc_test.Precision();
      r = report->disc_test.Recall();
      f1 = report->disc_test.F1();
    }
    user_f1.push_back(f1);
    table.AddRow({"user_" + std::to_string(u),
                  TablePrinter::Cell(static_cast<int64_t>(end - begin)),
                  TablePrinter::Cell(bench::Pct(p), 1),
                  TablePrinter::Cell(bench::Pct(r), 1),
                  TablePrinter::Cell(bench::Pct(f1), 1)});
  }

  // Hand-label baselines: disc models trained on 2500-label subsets
  // (7 hours at the crowd-worker rate of ~10 s/label).
  TextFeaturizer featurizer;
  std::vector<FeatureVector> features(task.candidates.size());
  for (size_t i = 0; i < task.candidates.size(); ++i) {
    CandidateView view(&task.corpus, &task.candidates[i], i);
    features[i] = featurizer.Featurize(view);
  }
  auto gather_feats = [&](const std::vector<size_t>& idx) {
    std::vector<FeatureVector> out;
    for (size_t i : idx) out.push_back(features[i]);
    return out;
  };
  std::vector<Label> test_gold;
  for (size_t i : task.test_idx) test_gold.push_back(task.gold[i]);
  auto test_feats = gather_feats(task.test_idx);

  Rng rng(99);
  std::vector<double> baseline_f1;
  TablePrinter baselines({"Baseline", "# labels", "P", "R", "F1"});
  for (int b = 0; b < 8; ++b) {
    size_t budget = std::min<size_t>(2500, task.train_idx.size());
    auto sample = rng.SampleWithoutReplacement(task.train_idx.size(), budget);
    std::vector<size_t> subset;
    std::vector<Label> labels;
    for (size_t s : sample) {
      subset.push_back(task.train_idx[s]);
      labels.push_back(task.gold[task.train_idx[s]]);
    }
    DiscModelOptions disc_options;
    disc_options.epochs = 15;
    disc_options.seed = 1000 + static_cast<uint64_t>(b);
    LogisticRegressionClassifier model(disc_options);
    if (!model.FitHard(gather_feats(subset), featurizer.num_buckets(), labels)
             .ok()) {
      continue;
    }
    auto conf = ComputeBinaryConfusion(model.PredictLabels(test_feats),
                                       test_gold);
    baseline_f1.push_back(conf.F1());
    baselines.AddRow({"hand_" + std::to_string(b),
                      TablePrinter::Cell(static_cast<int64_t>(budget)),
                      TablePrinter::Cell(bench::Pct(conf.Precision()), 1),
                      TablePrinter::Cell(bench::Pct(conf.Recall()), 1),
                      TablePrinter::Cell(bench::Pct(conf.F1()), 1)});
  }

  std::printf("Figure 7: simulated user study (Spouses)\n\n%s\n%s\n",
              table.ToString().c_str(), baselines.ToString().c_str());
  double mean_user = 0.0;
  for (double f : user_f1) mean_user += f;
  mean_user /= std::max<size_t>(user_f1.size(), 1);
  double mean_base = 0.0;
  for (double f : baseline_f1) mean_base += f;
  mean_base /= std::max<size_t>(baseline_f1.size(), 1);
  double best_base = baseline_f1.empty()
                         ? 0.0
                         : *std::max_element(baseline_f1.begin(),
                                             baseline_f1.end());
  size_t beating = 0;
  for (double f : user_f1) {
    if (f >= best_base) ++beating;
  }
  std::printf(
      "Mean Snorkel user F1: %.1f | mean hand-label baseline F1: %.1f | "
      "users matching/beating the best baseline: %zu/%zu\n"
      "(paper: mean user 30.4 F1 vs mean hand baseline 20.9 F1; majority of "
      "users matched or beat the hand baselines)\n",
      100 * mean_user, 100 * mean_base, beating, user_f1.size());
  return 0;
}
