// Reproduces Figure 6: the modeling advantage (learned GM vs majority vote)
// and the optimizer's bound Ã* on the CDR task as the number of labeling
// functions grows — simulating iterative development. Early, sparse stages
// should be MV; later, denser stages should switch to GM.

#include <cstdio>

#include "bench_util.h"
#include "core/advantage.h"
#include "core/generative_model.h"
#include "lf/applier.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  auto task = MakeCdrTask(42, 0.35);
  if (!task.ok()) {
    std::printf("task generation failed\n");
    return 1;
  }
  LFApplier applier;
  auto full = applier.Apply(task->lfs, task->corpus, task->candidates);
  if (!full.ok()) {
    std::printf("apply failed\n");
    return 1;
  }

  const double kGamma = 0.01;  // Advantage tolerance γ.
  TablePrinter table({"# LFs", "density", "GM Aw", "A~*", "Decision"});
  for (size_t n = 2; n <= task->lfs.size(); n += 3) {
    std::vector<size_t> prefix(n);
    for (size_t j = 0; j < n; ++j) prefix[j] = j;
    LabelMatrix matrix = full->SelectColumns(prefix);

    GenerativeModelOptions gen_options;
    gen_options.epochs = 120;
    gen_options.class_balance = task->PositiveFraction();
    GenerativeModel gen(gen_options);
    double advantage = 0.0;
    if (gen.Fit(matrix).ok()) {
      advantage = ModelingAdvantage(matrix, task->gold, gen.accuracy_weights());
    }
    double predicted = PredictedAdvantage(matrix);
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                  TablePrinter::Cell(matrix.LabelDensity(), 2),
                  TablePrinter::Cell(advantage, 4),
                  TablePrinter::Cell(predicted, 4),
                  predicted < kGamma ? "MV" : "GM"});
  }
  std::printf(
      "Figure 6: advantage vs number of CDR LFs (iterative development)\n"
      "Expected shape: the optimizer chooses MV during the earliest stages "
      "and GM once the LF set matures.\n\n%s\n",
      table.ToString().c_str());
  return 0;
}
