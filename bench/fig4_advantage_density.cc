// Reproduces Figure 4: modeling advantage vs the number of labeling
// functions (equivalently, label density) on the synthetic dataset of
// footnote 7 — m=1000 class-balanced points, independent LFs with 75%
// accuracy and 10% labeling propensity. Series: learned generative model
// advantage A_w, optimal advantage A* (planted weights), the optimizer's
// upper bound Ã*, and the low-density bound of Proposition 1.

#include <cstdio>

#include "core/advantage.h"
#include "core/generative_model.h"
#include "synth/synthetic_matrix.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  const size_t kNumLfs[] = {1, 2, 3, 5, 8, 12, 18, 27, 40, 60,
                            90, 135, 200, 300, 450, 675, 1000};
  TablePrinter table({"n LFs", "density", "GM Aw", "Optimal A*", "Optimizer A~*",
                      "LowDensity bound"});
  Rng acc_rng(77);
  for (size_t n : kNumLfs) {
    // "Average accuracy 75%" (footnote 7): accuracies spread around the
    // mean, otherwise the optimally-weighted vote is identical to MV.
    std::vector<SyntheticLfSpec> lfs;
    for (size_t j = 0; j < n; ++j) {
      lfs.push_back(SyntheticLfSpec{acc_rng.Uniform(0.6, 0.9), 0.1, -1, 1.0});
    }
    auto data = SyntheticMatrixGenerator::Generate({1000, 0.5, 1234 + n}, lfs);
    if (!data.ok()) continue;
    GenerativeModelOptions options;
    options.epochs = 150;
    GenerativeModel gen(options);
    double learned = 0.0;
    if (gen.Fit(data->matrix).ok()) {
      learned = ModelingAdvantage(data->matrix, data->gold,
                                  gen.accuracy_weights());
    }
    double optimal =
        ModelingAdvantage(data->matrix, data->gold, data->true_weights);
    double predicted = PredictedAdvantage(data->matrix);
    double bound = LowDensityBound(data->matrix.LabelDensity(), 0.75);
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                  TablePrinter::Cell(data->matrix.LabelDensity(), 2),
                  TablePrinter::Cell(learned, 4),
                  TablePrinter::Cell(optimal, 4),
                  TablePrinter::Cell(predicted, 4),
                  TablePrinter::Cell(bound, 4)});
  }
  std::printf(
      "Figure 4: modeling advantage vs number of LFs (m=1000, acc=75%%, "
      "propensity=10%%)\nExpected shape: advantage ~0 in the low-density "
      "regime, peaks in the mid-density regime, decays toward 0 in the "
      "high-density regime; A~* upper-bounds A*.\n\n%s\n",
      table.ToString().c_str());
  return 0;
}
