// Reproduces Table 2 (task statistics: #LFs, % positive, #docs, #candidates)
// and Table 7 (train/dev/test split sizes) for all six tasks.

#include <cstdio>

#include "bench_util.h"
#include "synth/crossmodal.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  TablePrinter table2({"Task", "# LFs", "% Pos.", "# Docs", "# Candidates"});
  TablePrinter table7({"Task", "# Train", "# Dev", "# Test"});

  for (auto& task : bench::MakeRelationTasks()) {
    if (!task.ok()) continue;
    table2.AddRow({task->name,
                   TablePrinter::Cell(static_cast<int64_t>(task->lfs.size())),
                   TablePrinter::Cell(bench::Pct(task->PositiveFraction()), 1),
                   TablePrinter::Cell(
                       static_cast<int64_t>(task->corpus.num_documents())),
                   TablePrinter::Cell(
                       static_cast<int64_t>(task->candidates.size()))});
    table7.AddRow({task->name,
                   TablePrinter::Cell(static_cast<int64_t>(task->train_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(task->dev_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(task->test_idx.size()))});
  }

  auto radiology = MakeRadiologyTask();
  if (radiology.ok()) {
    double pos = 0;
    for (Label y : radiology->gold) pos += y > 0 ? 1 : 0;
    table2.AddRow({"Radiology",
                   TablePrinter::Cell(static_cast<int64_t>(radiology->lfs.size())),
                   TablePrinter::Cell(100.0 * pos / radiology->gold.size(), 1),
                   TablePrinter::Cell(
                       static_cast<int64_t>(radiology->corpus.num_documents())),
                   TablePrinter::Cell(
                       static_cast<int64_t>(radiology->candidates.size()))});
    table7.AddRow({"Radiology",
                   TablePrinter::Cell(static_cast<int64_t>(radiology->train_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(radiology->dev_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(radiology->test_idx.size()))});
  }

  auto crowd = MakeCrowdTask();
  if (crowd.ok()) {
    table2.AddRow({"Crowd",
                   TablePrinter::Cell(
                       static_cast<int64_t>(crowd->worker_matrix.num_lfs())),
                   "-",
                   TablePrinter::Cell(static_cast<int64_t>(crowd->tweets.size())),
                   TablePrinter::Cell(static_cast<int64_t>(crowd->tweets.size()))});
    table7.AddRow({"Crowd",
                   TablePrinter::Cell(static_cast<int64_t>(crowd->train_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(crowd->dev_idx.size())),
                   TablePrinter::Cell(static_cast<int64_t>(crowd->test_idx.size()))});
  }

  std::printf("Table 2: task statistics (relation tasks at bench scale %.2f)\n"
              "(paper: Chem 16 LFs 4.1%% | EHR 24 LFs 36.8%% | CDR 33 LFs "
              "24.6%% | Spouses 11 LFs 8.3%% | Radiology 18 LFs 36%% | Crowd "
              "102 LFs)\n\n%s\n",
              snorkel::bench::kScale, table2.ToString().c_str());
  std::printf("Table 7: split sizes\n\n%s\n", table7.ToString().c_str());
  return 0;
}
