// Reproduces Table 5: the effect of the generative modeling stage on the end
// discriminative model, versus training on the unweighted average of LF
// outputs. Also reports the label-level quality (train-split Brier score)
// underlying the comparison.

#include <cstdio>

#include "bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  TablePrinter table({"Task", "Disc on Unweighted", "Disc on GM", "Lift",
                      "Unweighted Brier", "GM Brier"});
  for (auto& task : bench::MakeRelationTasks()) {
    if (!task.ok()) continue;
    auto report = RunRelationPipeline(*task, bench::StandardPipelineOptions());
    if (!report.ok()) continue;
    const auto& r = *report;
    table.AddRow(
        {r.task_name,
         TablePrinter::Cell(bench::Pct(r.disc_unweighted_test.F1()), 1),
         TablePrinter::Cell(bench::Pct(r.disc_test.F1()), 1),
         TablePrinter::Cell(
             bench::Pct(r.disc_test.F1() - r.disc_unweighted_test.F1()), 1),
         TablePrinter::Cell(r.unweighted_label_brier, 4),
         TablePrinter::Cell(r.gen_label_brier, 4)});
  }
  std::printf(
      "Table 5: discriminative model on generative labels vs unweighted LF "
      "average (F1)\n(paper lifts: Chem +5.5 | EHR +0.5 | CDR +3.3 | Spouses "
      "+1.4)\n\n%s\n",
      table.ToString().c_str());
  std::printf(
      "Note: the generative model's label quality advantage (lower Brier) is "
      "consistent across tasks; the end-model lift depends on the end model "
      "family — see EXPERIMENTS.md for discussion.\n");
  return 0;
}
