#ifndef SNORKEL_BENCH_BENCH_UTIL_H_
#define SNORKEL_BENCH_BENCH_UTIL_H_

// Shared configuration for the paper-reproduction benchmark binaries. Every
// binary runs with no arguments, prints the corresponding paper table /
// figure series, and finishes in seconds-to-a-minute on a laptop.

#include <cstdio>

#include "pipeline/pipeline.h"
#include "synth/relation_task.h"

namespace snorkel::bench {

/// Corpus scale used by the heavier pipeline benches.
inline constexpr double kScale = 0.5;

/// Pipeline configuration used across the table benches: Algorithm 1 decides
/// MV vs GM and the correlation set, exactly as a mature deployment would.
inline PipelineOptions StandardPipelineOptions() {
  PipelineOptions options;
  options.gen.epochs = 150;
  options.disc.epochs = 20;
  options.use_optimizer = true;
  options.optimizer.eta = 0.05;
  options.optimizer.structure.epochs = 25;
  options.optimizer.structure.sweep_epochs = 10;
  options.optimizer.structure.max_rows = 4000;
  return options;
}

/// The four relation-extraction tasks of §4.1.1, at bench scale.
inline std::vector<Result<RelationTask>> MakeRelationTasks(uint64_t seed = 42) {
  std::vector<Result<RelationTask>> tasks;
  tasks.push_back(MakeChemTask(seed, kScale));
  tasks.push_back(MakeEhrTask(seed, kScale * 0.5));  // EHR is the largest.
  tasks.push_back(MakeCdrTask(seed, kScale));
  tasks.push_back(MakeSpousesTask(seed, kScale));
  return tasks;
}

inline double Pct(double x) { return 100.0 * x; }

}  // namespace snorkel::bench

#endif  // SNORKEL_BENCH_BENCH_UTIL_H_
