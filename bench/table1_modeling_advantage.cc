// Reproduces Table 1: the empirical modeling advantage A_w of the learned
// generative model over majority vote, the optimizer's upper bound Ã*, the
// modeling strategy Algorithm 1 selects, and the label density d_Λ, for the
// five binary tasks (Radiology, CDR, Spouses, Chem, EHR).

#include <cstdio>

#include "bench_util.h"
#include "core/advantage.h"
#include "core/generative_model.h"
#include "core/optimizer.h"
#include "lf/applier.h"
#include "synth/crossmodal.h"
#include "util/table_printer.h"

namespace snorkel {
namespace {

struct Row {
  std::string name;
  LabelMatrix matrix;
  std::vector<Label> gold;
  double class_balance;
};

void Report(const std::vector<Row>& rows) {
  TablePrinter table({"Dataset", "Aw (%)", "A~* (%)", "Strategy", "d_L"});
  OptimizerOptions opt_options;
  opt_options.eta = 0.05;
  opt_options.structure.epochs = 20;
  opt_options.structure.sweep_epochs = 8;
  opt_options.structure.max_rows = 3000;
  for (const auto& row : rows) {
    GenerativeModelOptions gen_options;
    gen_options.class_balance = row.class_balance;
    GenerativeModel gen(gen_options);
    if (!gen.Fit(row.matrix).ok()) continue;
    double advantage =
        ModelingAdvantage(row.matrix, row.gold, gen.accuracy_weights());
    double predicted = PredictedAdvantage(row.matrix);
    ModelingStrategyOptimizer optimizer(opt_options);
    auto decision = optimizer.Choose(row.matrix);
    std::string strategy =
        decision.ok() ? ModelingStrategyToString(decision->strategy) : "?";
    table.AddRow({row.name, TablePrinter::Cell(bench::Pct(advantage), 1),
                  TablePrinter::Cell(bench::Pct(predicted), 1), strategy,
                  TablePrinter::Cell(row.matrix.LabelDensity(), 1)});
  }
  std::printf("Table 1: modeling advantage and optimizer decisions\n");
  std::printf("(paper: Radiology 7.0/12.4 GM 2.3 | CDR 4.9/7.9 GM 1.8 | "
              "Spouses 4.4/4.6 GM 1.4 | Chem 0.1/0.3 MV 1.2 | EHR 2.8/4.8 GM "
              "1.2)\n\n%s\n",
              table.ToString().c_str());
}

}  // namespace
}  // namespace snorkel

int main() {
  using namespace snorkel;
  std::vector<Row> rows;

  RadiologyOptions rad_options;
  rad_options.num_reports = 2000;
  auto radiology = MakeRadiologyTask(rad_options);
  if (radiology.ok()) {
    LFApplier applier;
    auto matrix =
        applier.Apply(radiology->lfs, radiology->corpus, radiology->candidates);
    if (matrix.ok()) {
      rows.push_back(Row{"Radiology", std::move(matrix).value(),
                         radiology->gold, 0.36});
    }
  }
  for (auto& task : bench::MakeRelationTasks()) {
    if (!task.ok()) continue;
    LFApplier applier;
    auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
    if (!matrix.ok()) continue;
    rows.push_back(Row{task->name, std::move(matrix).value(), task->gold,
                       task->PositiveFraction()});
  }
  Report(rows);
  return 0;
}
