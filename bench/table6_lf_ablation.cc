// Reproduces Table 6: labeling-function type ablation on the CDR task —
// text patterns, + distant supervision, + structure-based heuristics.

#include <cstdio>

#include "bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  auto task = MakeCdrTask(42, bench::kScale);
  if (!task.ok()) {
    std::printf("task generation failed\n");
    return 1;
  }

  // Cumulative LF groups in the paper's order.
  const char* kStages[] = {"Text Patterns", "+ Distant Supervision",
                           "+ Structure-based"};
  const char* kGroups[] = {"pattern", "distant", "structure"};

  TablePrinter table({"LF Type", "# LFs", "P", "R", "F1", "Lift"});
  double previous_f1 = 0.0;
  std::vector<size_t> subset;
  for (int stage = 0; stage < 3; ++stage) {
    for (size_t j = 0; j < task->lf_groups.size(); ++j) {
      if (task->lf_groups[j] == kGroups[stage]) subset.push_back(j);
    }
    PipelineOptions options = bench::StandardPipelineOptions();
    options.lf_subset = subset;
    options.run_hand_baseline = false;
    options.run_ds_baseline = false;
    options.run_unweighted_baseline = false;
    auto report = RunRelationPipeline(*task, options);
    if (!report.ok()) {
      std::printf("stage %d failed: %s\n", stage,
                  report.status().ToString().c_str());
      continue;
    }
    double f1 = report->disc_test.F1();
    table.AddRow({kStages[stage],
                  TablePrinter::Cell(static_cast<int64_t>(subset.size())),
                  TablePrinter::Cell(bench::Pct(report->disc_test.Precision()), 1),
                  TablePrinter::Cell(bench::Pct(report->disc_test.Recall()), 1),
                  TablePrinter::Cell(bench::Pct(f1), 1),
                  stage == 0 ? std::string("")
                             : TablePrinter::Cell(bench::Pct(f1 - previous_f1), 1)});
    previous_f1 = f1;
  }
  std::printf("Table 6: LF type ablation on CDR (end-model scores)\n"
              "(paper: Text Patterns 42.3 | +DS 44.3 (+2.0) | +Structure 45.3 "
              "(+1.0))\n\n%s\n",
              table.ToString().c_str());
  return 0;
}
