// Networked-fabric benchmark (PR 6): measures what the wire costs and what
// hedging buys, on loopback.
//
//   (1) in-process LabelService vs the SAME replica behind a loopback TCP
//       ShardServer driven through RemoteShardClient — the RPC tax
//       (framing + checksums + corpus slice + syscalls) at serving batch
//       sizes, and
//   (2) a 2-shard RemoteShardRouter over two loopback servers vs the single
//       loopback client — what cross-process fan-out adds, and
//   (3) a hedged-retry tail probe: a server that sleeps on every 2nd request
//       (inject_delay_every_n) gives a bimodal latency distribution; the
//       hedging client must pull p99 down to roughly the fast mode, and
//   (4) replicated failover: R=2 routing vs single-owner when healthy, and
//       throughput while one of two shards is dead — the outage run must
//       complete EVERY request (failover, not failure), and
//   (5) tracing overhead: the same 2-shard router workload with tracing off
//       vs on — off must cost ~nothing (one thread-local load per would-be
//       span) and on stays within a few percent (span recording is
//       thread-local until the per-request flush into the bounded ring), and
//   (6) overload goodput (PR 10): a deliberately capacity-constrained shard
//       (1 worker, every request sleeps an injected 2 ms, small cost budget)
//       under closed-loop load at 1x and 2x saturation — the 2x goodput
//       ratio is the headline overload-control number (shedding must not
//       collapse throughput), plus the shed / expired-work-cancelled
//       counters from the same run.
//
// CAVEAT: loopback numbers bound the PROTOCOL cost only. Real deployments
// add NIC latency, congestion, and cross-machine clock effects that
// loopback cannot see; treat the in-process vs loopback gap as a floor for
// the network tax, not an estimate of datacenter behaviour.
//
// Pass --json <path> to write the headline numbers (consumed by
// scripts/bench.sh into the "net" trajectory section).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "lf/applier.h"
#include "net/remote_client.h"
#include "net/remote_router.h"
#include "net/shard_server.h"
#include "obs/trace.h"
#include "pipeline/export_snapshot.h"
#include "serve/label_service.h"
#include "serve/snapshot.h"
#include "synth/relation_task.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snorkel;

  std::string json_path;
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--json") json_path = argv[a + 1];
  }

  auto task = MakeCdrTask(/*seed=*/42, /*scale=*/0.5);
  if (!task.ok()) {
    std::fprintf(stderr, "task generation failed: %s\n",
                 task.status().ToString().c_str());
    return 1;
  }
  ExportSnapshotOptions export_options;
  export_options.gen.epochs = 100;
  export_options.disc.epochs = 5;
  auto snapshot = TrainSnapshot(*task, export_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::string path = ::std::string("/tmp/net_loopback_bench_") +
                     std::to_string(getpid()) + ".snk";
  if (!SaveSnapshot(*snapshot, path).ok()) {
    std::fprintf(stderr, "cannot save snapshot\n");
    return 1;
  }
  std::printf("Task %s: %zu candidates, %zu LFs\n\n", task->name.c_str(),
              task->candidates.size(), task->lfs.size());

  constexpr size_t kBatchSize = 256;
  constexpr int kCallers = 4;
  constexpr int kRounds = 4;
  constexpr int kTrials = 4;  // Trial 0 is a discarded warmup.
  std::vector<std::vector<Candidate>> batches;
  for (size_t begin = 0; begin < task->candidates.size();
       begin += kBatchSize) {
    size_t end = std::min(begin + kBatchSize, task->candidates.size());
    batches.emplace_back(task->candidates.begin() + begin,
                         task->candidates.begin() + end);
  }
  size_t total_candidates = 0;
  for (const auto& b : batches) total_candidates += b.size();

  // One workload for every transport: kCallers threads striding the batch
  // list; `label` serves one batch, returning ok.
  auto run_callers =
      [&](const std::function<bool(const std::vector<Candidate>&)>& label)
      -> double {
    WallTimer wall;
    std::atomic<bool> failed{false};
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          for (size_t b = static_cast<size_t>(t); b < batches.size();
               b += static_cast<size_t>(kCallers)) {
            if (!label(batches[b])) failed.store(true);
          }
        }
      });
    }
    for (auto& th : callers) th.join();
    if (failed.load()) {
      std::fprintf(stderr, "net-bench serving failed\n");
      std::abort();
    }
    return static_cast<double>(total_candidates) * kRounds /
           wall.ElapsedSeconds();
  };

  // ---- (1) + (2): in-process vs loopback RPC vs 2-shard fleet,
  // interleaved best-of so machine noise cannot bias one config. ----
  double inprocess_cps = 0.0;
  double loopback_cps = 0.0;
  double router2_cps = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    {
      LabelService::Options options;
      options.num_threads = 1;
      auto service = LabelService::Create(*snapshot, task->lfs, options);
      if (!service.ok()) return 1;
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return service->Label(request).ok();
      });
      if (trial > 0) inprocess_cps = std::max(inprocess_cps, cps);
    }
    {
      ShardServer::Options options;
      options.num_workers = kCallers;
      options.queue_capacity = 64;
      options.service.num_threads = 1;
      auto server = ShardServer::Serve(path, task->lfs, options);
      if (!server.ok()) {
        std::fprintf(stderr, "serve failed: %s\n",
                     server.status().ToString().c_str());
        return 1;
      }
      RemoteShardClient::Options client_options;
      client_options.port = server->port();
      client_options.max_pooled_connections = kCallers;
      RemoteShardClient client = RemoteShardClient::Create(client_options);
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        return client
            .Label(task->corpus, MakeCandidateRefs(batch), false, true,
                   60'000)
            .ok();
      });
      if (trial > 0) loopback_cps = std::max(loopback_cps, cps);
      server->Shutdown();
    }
    {
      ShardServer::Options options;
      options.num_workers = 2;
      options.queue_capacity = 64;
      options.service.num_threads = 1;
      auto s0 = ShardServer::Serve(path, task->lfs, options);
      auto s1 = ShardServer::Serve(path, task->lfs, options);
      if (!s0.ok() || !s1.ok()) return 1;
      RemoteShardRouter::Options router_options;
      router_options.client.max_pooled_connections = kCallers;
      router_options.request_timeout_ms = 60'000;
      auto router = RemoteShardRouter::Create(
          {{"127.0.0.1", s0->port()}, {"127.0.0.1", s1->port()}},
          router_options);
      if (!router.ok()) return 1;
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return router->Label(request).ok();
      });
      if (trial > 0) router2_cps = std::max(router2_cps, cps);
      s0->Shutdown();
      s1->Shutdown();
    }
  }

  TablePrinter transports({"Transport", "cand/s (wall)", "Vs in-process"});
  transports.AddRow({"in-process LabelService",
                     TablePrinter::Cell(inprocess_cps, 0), "1.00"});
  transports.AddRow({"loopback RPC (1 shard)",
                     TablePrinter::Cell(loopback_cps, 0),
                     TablePrinter::Cell(loopback_cps / inprocess_cps, 2)});
  transports.AddRow({"loopback router (2 shards)",
                     TablePrinter::Cell(router2_cps, 0),
                     TablePrinter::Cell(router2_cps / inprocess_cps, 2)});
  std::printf("Loopback RPC tax (%d callers, batch=%zu, best of %d trials "
              "after warmup):\n%s",
              kCallers, kBatchSize, kTrials - 1,
              transports.ToString().c_str());
  std::printf("(loopback bounds protocol cost only — real networks add NIC "
              "latency and congestion on top)\n");

  // ---- (3) hedged-retry tail probe: every 2nd request sleeps
  // kInjectMs server-side, so sequential calls alternate fast/slow and the
  // no-hedge p99 sits at the slow mode. The hedging client launches a
  // second attempt after hedge_delay_ms; the hedge lands on the next
  // (fast) injection slot and wins, pulling p99 back down. ----
  constexpr uint64_t kInjectMs = 40;
  constexpr int kProbeCalls = 60;
  const std::vector<Candidate> probe(task->candidates.begin(),
                                     task->candidates.begin() + 64);
  const std::vector<CandidateRef> probe_rows = MakeCandidateRefs(probe);
  double p99_nohedge = 0.0;
  double p99_hedge = 0.0;
  double p50_nohedge = 0.0;
  double p50_hedge = 0.0;
  uint64_t hedged_wins = 0;
  for (bool hedge : {false, true}) {
    ShardServer::Options options;
    options.num_workers = 4;  // Hedges must not queue behind sleepers.
    options.queue_capacity = 64;
    options.service.num_threads = 1;
    options.inject_delay_every_n = 2;
    options.inject_delay_ms = kInjectMs;
    auto server = ShardServer::Serve(path, task->lfs, options);
    if (!server.ok()) return 1;
    RemoteShardClient::Options client_options;
    client_options.port = server->port();
    client_options.enable_hedging = hedge;
    client_options.hedge_delay_ms = 10;
    RemoteShardClient client = RemoteShardClient::Create(client_options);
    std::vector<double> latencies;
    latencies.reserve(kProbeCalls);
    for (int i = 0; i < kProbeCalls; ++i) {
      WallTimer call;
      if (!client.Label(task->corpus, probe_rows, false, true, 60'000).ok()) {
        std::fprintf(stderr, "tail probe failed\n");
        return 1;
      }
      latencies.push_back(call.ElapsedSeconds() * 1e3);
    }
    (hedge ? p99_hedge : p99_nohedge) = Percentile(latencies, 0.99);
    (hedge ? p50_hedge : p50_nohedge) = Percentile(latencies, 0.50);
    if (hedge) hedged_wins = client.stats().hedged_wins;
    server->Shutdown();
  }
  TablePrinter tail({"Client", "p50 ms", "p99 ms"});
  tail.AddRow({"no hedging", TablePrinter::Cell(p50_nohedge, 2),
               TablePrinter::Cell(p99_nohedge, 2)});
  tail.AddRow({"hedged (delay 10ms)", TablePrinter::Cell(p50_hedge, 2),
               TablePrinter::Cell(p99_hedge, 2)});
  std::printf("\nHedged-retry tail probe (every 2nd request +%llums "
              "server-side, %d calls, %llu hedged wins):\n%s",
              static_cast<unsigned long long>(kInjectMs), kProbeCalls,
              static_cast<unsigned long long>(hedged_wins),
              tail.ToString().c_str());

  // ---- (4) replicated failover (PR 7): what R-way replication costs when
  // the fleet is healthy, and what it buys when a shard dies. Three router
  // configs over the same 2-server fleet, interleaved best-of like (1)+(2):
  //   r1      — replication 1 (single-owner routing, the pre-PR-7 fabric),
  //   r2      — replication 2, both servers up (placement overhead only),
  //   outage  — replication 2 with server 1 SHUT DOWN before the workload:
  //             every shard-1 sub-batch must fail over to server 0, so
  //             throughput ~halves (one server does all the work) but ZERO
  //             requests fail. The long breaker cooldown keeps the dead
  //             endpoint rejected for the whole run, so steady-state
  //             failovers are free (no dispatch, no budget spend). ----
  double r1_cps = 0.0;
  double r2_cps = 0.0;
  double outage_cps = 0.0;
  uint64_t outage_failovers = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (int config = 0; config < 3; ++config) {
      ShardServer::Options options;
      options.num_workers = kCallers;
      options.queue_capacity = 64;
      options.service.num_threads = 1;
      auto s0 = ShardServer::Serve(path, task->lfs, options);
      auto s1 = ShardServer::Serve(path, task->lfs, options);
      if (!s0.ok() || !s1.ok()) return 1;
      RemoteShardRouter::Options router_options;
      router_options.client.max_pooled_connections = kCallers;
      // A dead loopback port refuses connections instantly, but keep the
      // connect budget small anyway so detection never dominates the run.
      router_options.client.connect_timeout_ms = 250;
      // Open after one failure and stay open past the end of the trial:
      // after detection every failover is a free breaker-open rejection.
      router_options.client.unhealthy_threshold = 1;
      router_options.client.unhealthy_cooldown_ms = 60'000;
      router_options.request_timeout_ms = 60'000;
      router_options.replication = (config == 0) ? 1 : 2;
      auto router = RemoteShardRouter::Create(
          {{"127.0.0.1", s0->port()}, {"127.0.0.1", s1->port()}},
          router_options);
      if (!router.ok()) return 1;
      if (config == 2) s1->Shutdown();  // One-shard outage under R=2.
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return router->Label(request).ok();
      });
      if (trial > 0) {
        if (config == 0) r1_cps = std::max(r1_cps, cps);
        if (config == 1) r2_cps = std::max(r2_cps, cps);
        if (config == 2 && cps > outage_cps) {
          outage_cps = cps;
          outage_failovers = router->stats().failovers;
        }
      }
      s0->Shutdown();
      if (config != 2) s1->Shutdown();
    }
  }

  TablePrinter failover({"Fleet", "cand/s (wall)", "Vs single-owner"});
  failover.AddRow({"R=1 single-owner (2 up)", TablePrinter::Cell(r1_cps, 0),
                   "1.00"});
  failover.AddRow({"R=2 replicated (2 up)", TablePrinter::Cell(r2_cps, 0),
                   TablePrinter::Cell(r2_cps / r1_cps, 2)});
  failover.AddRow({"R=2, one shard DOWN", TablePrinter::Cell(outage_cps, 0),
                   TablePrinter::Cell(outage_cps / r1_cps, 2)});
  std::printf("\nReplicated failover (%d callers, best of %d trials; outage "
              "run completed every request, %llu failovers):\n%s",
              kCallers, kTrials - 1,
              static_cast<unsigned long long>(outage_failovers),
              failover.ToString().c_str());
  std::printf("(under R=2 a single dead endpoint costs throughput, never "
              "answers — the surviving replica serves bit-identical "
              "posteriors)\n");

  // ---- (5) tracing overhead (PR 8): the (2) router workload, tracing off
  // vs on, interleaved best-of. Disabled tracing must be ~free — TraceSpan
  // construction reduces to a thread-local load and a branch — and enabled
  // tracing bounds what a debugging session costs a production fleet. ----
  double trace_off_cps = 0.0;
  double trace_on_cps = 0.0;
  uint64_t traced_spans = 0;
  obs::SetTracingEnabled(false);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (bool traced : {false, true}) {
      ShardServer::Options options;
      options.num_workers = 2;
      options.queue_capacity = 64;
      options.service.num_threads = 1;
      auto s0 = ShardServer::Serve(path, task->lfs, options);
      auto s1 = ShardServer::Serve(path, task->lfs, options);
      if (!s0.ok() || !s1.ok()) return 1;
      RemoteShardRouter::Options router_options;
      router_options.client.max_pooled_connections = kCallers;
      router_options.request_timeout_ms = 60'000;
      auto router = RemoteShardRouter::Create(
          {{"127.0.0.1", s0->port()}, {"127.0.0.1", s1->port()}},
          router_options);
      if (!router.ok()) return 1;
      obs::SetTracingEnabled(traced);
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return router->Label(request).ok();
      });
      obs::SetTracingEnabled(false);
      if (trial > 0) {
        if (traced) {
          trace_on_cps = std::max(trace_on_cps, cps);
        } else {
          trace_off_cps = std::max(trace_off_cps, cps);
        }
      }
      // Drain the local ring between configs so the off runs never pay for
      // leftovers and the span count reflects one traced run.
      traced_spans = obs::CollectSpans(0, /*drain=*/true).size();
      s0->Shutdown();
      s1->Shutdown();
    }
  }
  const double overhead_pct =
      trace_off_cps > 0.0
          ? (trace_off_cps - trace_on_cps) / trace_off_cps * 100.0
          : 0.0;
  TablePrinter tracing({"Tracing", "cand/s (wall)", "Vs off"});
  tracing.AddRow({"off", TablePrinter::Cell(trace_off_cps, 0), "1.00"});
  tracing.AddRow({"on (every request)", TablePrinter::Cell(trace_on_cps, 0),
                  TablePrinter::Cell(trace_on_cps / trace_off_cps, 2)});
  std::printf("\nTracing overhead (2-shard router, %d callers, best of %d "
              "trials; %.1f%% overhead traced, %llu router-side spans in "
              "the final traced run):\n%s",
              kCallers, kTrials - 1, overhead_pct,
              static_cast<unsigned long long>(traced_spans),
              tracing.ToString().c_str());

  // ---- (6) overload goodput (PR 10): one worker serving ~2 ms/request
  // (injected), cost budget sized for ~3 queued jobs. Closed-loop callers
  // at 1x (2 callers) then 2x (4 callers); rejected callers honor the
  // retry_after hint. The ratio is what overload control buys: excess load
  // turns into typed rejections, not goodput collapse. A tiny-deadline
  // burst at the end proves expired work is cancelled mid-service. ----
  double overload_1x_cps = 0.0;
  double overload_2x_cps = 0.0;
  uint64_t overload_shed = 0;
  uint64_t overload_cancelled = 0;
  uint64_t overload_rejections = 0;
  {
    ShardServer::Options options;
    options.num_workers = 1;
    options.queue_capacity = 8;
    options.queue_cost_budget =
        3 * probe_rows.size() * std::max<size_t>(1, task->lfs.size());
    options.interactive_rows = 16;  // The 64-row workload rides the bulk lane.
    options.sojourn_target_ms = 50;
    options.service.num_threads = 1;
    options.inject_delay_every_n = 1;
    options.inject_delay_ms = 2;
    auto server = ShardServer::Serve(path, task->lfs, options);
    if (!server.ok()) return 1;
    const std::vector<CandidateRef> interactive_rows(probe_rows.begin(),
                                                     probe_rows.begin() + 8);
    auto closed_loop = [&](int callers) -> double {
      RemoteShardClient::Options client_options;
      client_options.port = server->port();
      client_options.max_pooled_connections = static_cast<size_t>(callers);
      client_options.adaptive_initial_limit = 64.0;
      RemoteShardClient client = RemoteShardClient::Create(client_options);
      std::atomic<uint64_t> successes{0};
      WallTimer wall;
      const auto stop_at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(700);
      std::vector<std::thread> threads;
      for (int t = 0; t < callers; ++t) {
        threads.emplace_back([&] {
          while (std::chrono::steady_clock::now() < stop_at) {
            uint64_t retry_after_ms = 0;
            if (client
                    .Label(task->corpus, probe_rows, false, true, 1'000,
                           nullptr, &retry_after_ms)
                    .ok()) {
              successes.fetch_add(1);
            } else if (retry_after_ms > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(
                  std::min<uint64_t>(retry_after_ms, 50)));
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      return static_cast<double>(successes.load()) *
             static_cast<double>(probe_rows.size()) / wall.ElapsedSeconds();
    };
    overload_1x_cps = closed_loop(2);
    // During the 2x run an interactive trickle (8 rows, under the lane
    // split) arrives against a cost-full bulk queue — each such arrival
    // displaces the oldest queued bulk job (the shed counter moving is the
    // priority-lane contract, not an accident of timing).
    std::atomic<bool> trickle_stop{false};
    std::thread trickle([&] {
      RemoteShardClient::Options client_options;
      client_options.port = server->port();
      client_options.adaptive_initial_limit = 64.0;
      RemoteShardClient client = RemoteShardClient::Create(client_options);
      while (!trickle_stop.load()) {
        (void)client.Label(task->corpus, interactive_rows, false, true,
                           1'000);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    overload_2x_cps = closed_loop(4);
    trickle_stop.store(true);
    trickle.join();
    // Tiny-deadline burst: 4 concurrent callers with 6 ms budgets against a
    // ~2 ms/job queue — a budget that survives admission and dequeue still
    // dies inside the injected sleep, and the cancellation token stops the
    // compute mid-service.
    {
      RemoteShardClient::Options client_options;
      client_options.port = server->port();
      client_options.adaptive_initial_limit = 64.0;
      RemoteShardClient client = RemoteShardClient::Create(client_options);
      std::vector<std::thread> burst;
      for (int t = 0; t < 4; ++t) {
        burst.emplace_back([&] {
          for (int i = 0; i < 15; ++i) {
            (void)client.Label(task->corpus, probe_rows, false, true, 6);
          }
        });
      }
      for (auto& th : burst) th.join();
    }
    // The abandoned burst jobs drain at ~2 ms each; give them a moment so
    // the counters below reflect the whole run.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ShardServer::Stats stats = server->stats();
    overload_shed = stats.shed_total;
    overload_cancelled = stats.expired_work_cancelled;
    overload_rejections = stats.queue_rejections;
    server->Shutdown();
  }
  const double overload_ratio =
      overload_1x_cps > 0.0 ? overload_2x_cps / overload_1x_cps : 0.0;
  TablePrinter overload({"Load", "goodput cand/s", "Vs 1x"});
  overload.AddRow({"1x (2 closed-loop callers)",
                   TablePrinter::Cell(overload_1x_cps, 0), "1.00"});
  overload.AddRow({"2x (4 closed-loop callers)",
                   TablePrinter::Cell(overload_2x_cps, 0),
                   TablePrinter::Cell(overload_ratio, 2)});
  std::printf("\nOverload goodput (1 worker, +2ms injected per request, "
              "cost-budgeted queue; %llu queue rejections, %llu shed, "
              "%llu expired-work cancellations):\n%s",
              static_cast<unsigned long long>(overload_rejections),
              static_cast<unsigned long long>(overload_shed),
              static_cast<unsigned long long>(overload_cancelled),
              overload.ToString().c_str());
  std::printf("(goodput at 2x within a constant factor of capacity is the "
              "overload-control contract — excess load becomes typed "
              "rejections with retry hints, not collapse)\n");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"callers\": %d, \"batch\": %zu,\n"
        "  \"inprocess_cps\": %.1f, \"loopback_cps\": %.1f, "
        "\"router2_cps\": %.1f,\n"
        "  \"hedge\": {\"inject_ms\": %llu, \"calls\": %d, "
        "\"p50_nohedge_ms\": %.2f, \"p99_nohedge_ms\": %.2f, "
        "\"p50_hedge_ms\": %.2f, \"p99_hedge_ms\": %.2f, "
        "\"hedged_wins\": %llu},\n"
        "  \"failover\": {\"r1_cps\": %.1f, \"r2_cps\": %.1f, "
        "\"outage_cps\": %.1f, \"failovers\": %llu},\n"
        "  \"obs\": {\"trace_off_cps\": %.1f, \"trace_on_cps\": %.1f, "
        "\"overhead_pct\": %.2f, \"spans_per_run\": %llu},\n"
        "  \"overload\": {\"goodput_1x_cps\": %.1f, \"goodput_2x_cps\": %.1f, "
        "\"goodput_ratio_2x\": %.2f, \"queue_rejections\": %llu, "
        "\"shed\": %llu, \"expired_cancelled\": %llu}\n"
        "}\n",
        kCallers, kBatchSize, inprocess_cps, loopback_cps, router2_cps,
        static_cast<unsigned long long>(kInjectMs), kProbeCalls,
        p50_nohedge, p99_nohedge, p50_hedge, p99_hedge,
        static_cast<unsigned long long>(hedged_wins), r1_cps, r2_cps,
        outage_cps, static_cast<unsigned long long>(outage_failovers),
        trace_off_cps, trace_on_cps, overhead_pct,
        static_cast<unsigned long long>(traced_spans), overload_1x_cps,
        overload_2x_cps, overload_ratio,
        static_cast<unsigned long long>(overload_rejections),
        static_cast<unsigned long long>(overload_shed),
        static_cast<unsigned long long>(overload_cancelled));
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::remove(path.c_str());
  return 0;
}
