// Reproduces Table 3: precision / recall / F1 of the distant-supervision
// baseline, Snorkel's generative stage, Snorkel's discriminative stage, and
// the hand-supervision skyline on the four relation extraction tasks.

#include <cstdio>

#include "bench_util.h"
#include "util/table_printer.h"

int main() {
  using namespace snorkel;
  TablePrinter table({"Task", "DS P", "DS R", "DS F1", "Gen P", "Gen R",
                      "Gen F1", "Lift", "Disc P", "Disc R", "Disc F1", "Lift",
                      "Hand F1"});
  for (auto& task : bench::MakeRelationTasks()) {
    if (!task.ok()) continue;
    auto report = RunRelationPipeline(*task, bench::StandardPipelineOptions());
    if (!report.ok()) {
      std::printf("%s failed: %s\n", task->name.c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    const auto& r = *report;
    table.AddRow({r.task_name,
                  TablePrinter::Cell(bench::Pct(r.ds_test.Precision()), 1),
                  TablePrinter::Cell(bench::Pct(r.ds_test.Recall()), 1),
                  TablePrinter::Cell(bench::Pct(r.ds_test.F1()), 1),
                  TablePrinter::Cell(bench::Pct(r.gen_test.Precision()), 1),
                  TablePrinter::Cell(bench::Pct(r.gen_test.Recall()), 1),
                  TablePrinter::Cell(bench::Pct(r.gen_test.F1()), 1),
                  TablePrinter::Cell(
                      bench::Pct(r.gen_test.F1() - r.ds_test.F1()), 1),
                  TablePrinter::Cell(bench::Pct(r.disc_test.Precision()), 1),
                  TablePrinter::Cell(bench::Pct(r.disc_test.Recall()), 1),
                  TablePrinter::Cell(bench::Pct(r.disc_test.F1()), 1),
                  TablePrinter::Cell(
                      bench::Pct(r.disc_test.F1() - r.ds_test.F1()), 1),
                  TablePrinter::Cell(bench::Pct(r.hand_test.F1()), 1)});
  }
  std::printf(
      "Table 3: relation extraction (DS baseline vs Snorkel Gen vs Snorkel "
      "Disc vs hand supervision)\n"
      "(paper F1: Chem 17.6/33.8/54.1/- | EHR 72.2/74.9/81.4/- | CDR "
      "29.4/38.5/45.3/47.3 | Spouses 15.4/57.4/54.2/54.2)\n\n%s\n",
      table.ToString().c_str());
  std::printf(
      "Key shapes: the discriminative stage lifts recall over the generative "
      "stage (paper: +43%% avg); the generative stage is far more precise "
      "than raw distant supervision.\n");
  return 0;
}
