// Performance microbenchmarks (google-benchmark) for the §3.1-3.2 speed
// claims: the MV shortcut vs generative-model training (up to 1.8x per
// pipeline execution), the linear cost of correlations in the Gibbs
// sampler, structure-learning sweep cost, and LF application throughput.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/advantage.h"
#include "core/generative_model.h"
#include "core/majority_vote.h"
#include "core/structure_learner.h"
#include "lf/applier.h"
#include "synth/relation_task.h"
#include "synth/synthetic_matrix.h"

namespace snorkel {
namespace {

const SyntheticDataset& SharedMatrix() {
  static const SyntheticDataset* data = [] {
    auto result = SyntheticMatrixGenerator::GenerateIid(
        /*num_points=*/5000, /*num_lfs=*/50, /*accuracy=*/0.75,
        /*propensity=*/0.2, /*seed=*/11);
    return new SyntheticDataset(std::move(result).value());
  }();
  return *data;
}

/// §3.1: the majority-vote shortcut the optimizer can select.
void BM_MajorityVote(benchmark::State& state) {
  const auto& data = SharedMatrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MajorityVotePredictions(data.matrix));
  }
}
BENCHMARK(BM_MajorityVote);

/// §3.1: the generative model training the shortcut skips.
void BM_GenerativeModelFitExact(benchmark::State& state) {
  const auto& data = SharedMatrix();
  GenerativeModelOptions options;
  options.epochs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    GenerativeModel gen(options);
    benchmark::DoNotOptimize(gen.Fit(data.matrix).ok());
  }
}
BENCHMARK(BM_GenerativeModelFitExact)->Arg(50)->Arg(150);

/// §3.2: Gibbs-sampled training cost grows with the number of modeled
/// correlations (linear overhead per correlation).
void BM_GenerativeModelFitCorrelated(benchmark::State& state) {
  const auto& data = SharedMatrix();
  std::vector<CorrelationPair> correlations;
  for (int c = 0; c < state.range(0); ++c) {
    size_t j = static_cast<size_t>(c) % 49;
    correlations.push_back({j, j + 1});
  }
  GenerativeModelOptions options;
  options.epochs = 30;
  for (auto _ : state) {
    GenerativeModel gen(options);
    benchmark::DoNotOptimize(gen.Fit(data.matrix, correlations).ok());
  }
}
BENCHMARK(BM_GenerativeModelFitCorrelated)->Arg(0)->Arg(10)->Arg(40);

/// Same correlated fit at explicit worker-pool sizes. Fitted weights are
/// bitwise-identical across these arms (fixed shard grain + per-chain RNG
/// streams); the arms measure pure scaling.
void BM_GenerativeModelFitCorrelatedThreads(benchmark::State& state) {
  const auto& data = SharedMatrix();
  std::vector<CorrelationPair> correlations;
  for (int c = 0; c < 40; ++c) {
    size_t j = static_cast<size_t>(c) % 49;
    correlations.push_back({j, j + 1});
  }
  GenerativeModelOptions options;
  options.epochs = 30;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    GenerativeModel gen(options);
    benchmark::DoNotOptimize(gen.Fit(data.matrix, correlations).ok());
  }
}
BENCHMARK(BM_GenerativeModelFitCorrelatedThreads)->Arg(1)->Arg(2)->Arg(8);

/// Posterior inference p(y | Λ) over the full matrix — the serving hot path
/// behind LabelService.
void BM_PredictProba(benchmark::State& state) {
  const auto& data = SharedMatrix();
  static const GenerativeModel* model = [] {
    GenerativeModelOptions options;
    options.epochs = 50;
    auto* gen = new GenerativeModel(options);
    if (!gen->Fit(SharedMatrix().matrix).ok()) std::abort();
    return gen;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictProba(data.matrix));
  }
}
BENCHMARK(BM_PredictProba);

/// §3.2: one structure-learning pass (pseudolikelihood, exact gradients).
void BM_StructureLearning(benchmark::State& state) {
  const auto& data = SharedMatrix();
  StructureLearnerOptions options;
  options.epochs = 15;
  options.max_rows = static_cast<size_t>(state.range(0));
  StructureLearner learner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner.LearnStructure(data.matrix, 0.2).ok());
  }
}
BENCHMARK(BM_StructureLearning)->Arg(1000)->Arg(4000);

/// The optimizer's Ã* heuristic is a single cheap pass over Λ.
void BM_PredictedAdvantage(benchmark::State& state) {
  const auto& data = SharedMatrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PredictedAdvantage(data.matrix));
  }
}
BENCHMARK(BM_PredictedAdvantage);

/// Appendix C: LF application is embarrassingly parallel over candidates.
void BM_LfApplication(benchmark::State& state) {
  static const RelationTask* task = [] {
    auto result = MakeCdrTask(42, 0.25);
    return new RelationTask(std::move(result).value());
  }();
  LFApplier applier(
      LFApplier::Options{static_cast<size_t>(state.range(0)), 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        applier.Apply(task->lfs, task->corpus, task->candidates).ok());
  }
}
BENCHMARK(BM_LfApplication)->Arg(1)->Arg(2);

/// The interpreted baseline for BM_LfApplication (which, like production
/// serving, dispatches compilable LFs through lf/compiled/): same task, same
/// thread counts, per-row lambda execution only. The ratio between the two
/// is the compiled engine's speedup on the trajectory.
void BM_LfApplicationInterpreted(benchmark::State& state) {
  static const RelationTask* task = [] {
    auto result = MakeCdrTask(42, 0.25);
    return new RelationTask(std::move(result).value());
  }();
  LFApplier applier(
      LFApplier::Options{.num_threads = static_cast<size_t>(state.range(0)),
                         .cardinality = 2,
                         .use_compiled = false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        applier.Apply(task->lfs, task->corpus, task->candidates).ok());
  }
}
BENCHMARK(BM_LfApplicationInterpreted)->Arg(1)->Arg(2);

}  // namespace
}  // namespace snorkel

BENCHMARK_MAIN();
