// Reproduces Table 4 (cross-modal tasks): labeling functions vote on one
// modality (radiology report text; crowd workers), the discriminative model
// trains on another (image features; tweet text), and approaches the
// hand-supervised skyline.

#include <cstdio>

#include "core/dawid_skene.h"
#include "core/generative_model.h"
#include "disc/linear_model.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/crossmodal.h"
#include "util/table_printer.h"

namespace snorkel {
namespace {

template <typename T>
std::vector<T> Gather(const std::vector<T>& values,
                      const std::vector<size_t>& idx) {
  std::vector<T> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(values[i]);
  return out;
}

/// Radiology: report-text LFs -> generative model -> image classifier (AUC).
void RunRadiology(TablePrinter* table) {
  auto task = MakeRadiologyTask();
  if (!task.ok()) return;
  LFApplier applier;
  auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
  if (!matrix.ok()) return;

  GenerativeModelOptions gen_options;
  gen_options.class_balance = 0.36;
  GenerativeModel gen(gen_options);
  if (!gen.Fit(matrix->SelectRows(task->train_idx)).ok()) return;
  auto train_probs =
      gen.PredictProba(matrix->SelectRows(task->train_idx), false);

  auto train_images = Gather(task->image_features, task->train_idx);
  auto test_images = Gather(task->image_features, task->test_idx);
  auto test_gold = Gather(task->gold, task->test_idx);
  auto train_gold = Gather(task->gold, task->train_idx);

  DiscModelOptions disc_options;
  disc_options.epochs = 30;
  LogisticRegressionClassifier snorkel_disc(disc_options);
  if (!snorkel_disc.Fit(train_images, task->image_feature_dim, train_probs)
           .ok()) {
    return;
  }
  double snorkel_auc = RocAuc(snorkel_disc.PredictProba(test_images), test_gold);

  LogisticRegressionClassifier hand(disc_options);
  if (!hand.FitHard(train_images, task->image_feature_dim, train_gold).ok()) {
    return;
  }
  double hand_auc = RocAuc(hand.PredictProba(test_images), test_gold);
  table->AddRow({"Radiology (AUC)", TablePrinter::Cell(100 * snorkel_auc, 1),
                 TablePrinter::Cell(100 * hand_auc, 1)});
}

/// Crowd: one LF per worker -> Dawid-Skene label model -> tweet classifier.
void RunCrowd(TablePrinter* table) {
  auto task = MakeCrowdTask();
  if (!task.ok()) return;
  DawidSkeneModel label_model;
  if (!label_model.Fit(task->worker_matrix.SelectRows(task->train_idx)).ok()) {
    return;
  }
  auto train_posteriors =
      label_model.PredictProba(task->worker_matrix.SelectRows(task->train_idx));

  auto train_text = Gather(task->text_features, task->train_idx);
  auto test_text = Gather(task->text_features, task->test_idx);
  auto test_gold = Gather(task->gold, task->test_idx);
  auto train_gold = Gather(task->gold, task->train_idx);

  // Reorder posteriors into label order 1..K (ClassToLabel is identity+1 for
  // multi-class matrices).
  DiscModelOptions disc_options;
  disc_options.epochs = 40;
  SoftmaxRegressionClassifier snorkel_disc(disc_options);
  if (!snorkel_disc.Fit(train_text, task->num_buckets, train_posteriors,
                        task->cardinality)
           .ok()) {
    return;
  }
  double snorkel_acc =
      MulticlassAccuracy(snorkel_disc.PredictLabels(test_text), test_gold);

  SoftmaxRegressionClassifier hand(disc_options);
  if (!hand.FitHard(train_text, task->num_buckets, train_gold,
                    task->cardinality)
           .ok()) {
    return;
  }
  double hand_acc = MulticlassAccuracy(hand.PredictLabels(test_text), test_gold);
  table->AddRow({"Crowd (Acc)", TablePrinter::Cell(100 * snorkel_acc, 1),
                 TablePrinter::Cell(100 * hand_acc, 1)});
}

}  // namespace
}  // namespace snorkel

int main() {
  snorkel::TablePrinter table({"Task", "Snorkel (Disc.)", "Hand Supervision"});
  snorkel::RunRadiology(&table);
  snorkel::RunCrowd(&table);
  std::printf("Table 4: cross-modal tasks\n"
              "(paper: Radiology AUC 72.0 vs 76.2 | Crowd Acc 65.6 vs 68.8)\n\n"
              "%s\n",
              table.ToString().c_str());
  return 0;
}
