// Reproduces Figure 5: generative-model predictive performance (F1) and the
// number of learned correlations as a function of the correlation threshold
// ε, on three workloads: (left) a simulation where more than half the LFs
// are correlated, (middle) the CDR task, (right) the merged user-study LF
// pool for the Spouses task. The selected elbow point is marked.

#include <cstdio>

#include "bench_util.h"
#include "core/generative_model.h"
#include "core/structure_learner.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/synthetic_matrix.h"
#include "synth/user_study.h"
#include "util/table_printer.h"

namespace snorkel {
namespace {

void SweepPanel(const std::string& title, const LabelMatrix& matrix,
                const std::vector<Label>& gold, double class_balance) {
  std::vector<double> epsilons;
  for (double eps = 0.5; eps >= 0.02; eps -= 0.04) epsilons.push_back(eps);

  StructureLearnerOptions sl_options;
  sl_options.epochs = 25;
  sl_options.sweep_epochs = 10;
  sl_options.max_rows = 3000;
  StructureLearner learner(sl_options);
  auto sweep = learner.Sweep(matrix, epsilons);
  if (!sweep.ok()) {
    std::printf("%s: sweep failed\n", title.c_str());
    return;
  }
  size_t elbow = StructureLearner::SelectElbowIndex(*sweep);

  TablePrinter table({"epsilon", "# correlations", "GM F1", "elbow"});
  for (size_t i = 0; i < sweep->size(); ++i) {
    double eps = (*sweep)[i].epsilon;
    auto correlations = learner.LearnStructure(matrix, eps);
    double f1 = 0.0;
    if (correlations.ok()) {
      GenerativeModelOptions gen_options;
      gen_options.epochs = 120;
      gen_options.class_balance = class_balance;
      GenerativeModel gen(gen_options);
      if (gen.Fit(matrix, *correlations).ok()) {
        f1 = ScoreProbabilistic(gen.PredictProba(matrix), gold).F1();
      }
    }
    table.AddRow({TablePrinter::Cell(eps, 2),
                  TablePrinter::Cell(
                      static_cast<int64_t>((*sweep)[i].num_correlations)),
                  TablePrinter::Cell(bench::Pct(f1), 1),
                  i == elbow ? "<-- elbow" : ""});
  }
  std::printf("%s\n%s\n", title.c_str(), table.ToString().c_str());
}

}  // namespace
}  // namespace snorkel

int main() {
  using namespace snorkel;
  std::printf("Figure 5: performance and correlation count vs threshold ε\n"
              "Expected shape: correlation count explodes past the elbow; the "
              "elbow captures most of the F1 gain at a fraction of the "
              "cost.\n\n");

  // Left panel: simulated correlated LFs (more than half correlated).
  auto sim = SyntheticMatrixGenerator::GenerateClustered(
      /*num_points=*/2000, /*num_clusters=*/4, /*cluster_size=*/3,
      /*num_independent=*/8, /*accuracy=*/0.7, /*propensity=*/0.4,
      /*copy_prob=*/0.85, /*seed=*/7);
  if (sim.ok()) {
    SweepPanel("[Left] Simulated labeling functions", sim->matrix, sim->gold,
               0.5);
  }

  // Middle panel: the CDR task.
  auto cdr = MakeCdrTask(42, 0.35);
  if (cdr.ok()) {
    LFApplier applier;
    auto matrix = applier.Apply(cdr->lfs, cdr->corpus, cdr->candidates);
    if (matrix.ok()) {
      SweepPanel("[Middle] Chemical-Disease (CDR) labeling functions", *matrix,
                 cdr->gold, cdr->PositiveFraction());
    }
  }

  // Right panel: all user-study LFs merged (redundant across users).
  UserStudyOptions us_options;
  us_options.corpus_scale = 0.25;
  auto pool = MakeUserStudyPool(us_options);
  if (pool.ok()) {
    LFApplier applier;
    auto matrix =
        applier.Apply(pool->pool, pool->task.corpus, pool->task.candidates);
    if (matrix.ok()) {
      SweepPanel("[Right] All user-study labeling functions (Spouses)",
                 *matrix, pool->task.gold, pool->task.PositiveFraction());
    }
  }
  return 0;
}
