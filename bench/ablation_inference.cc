// Ablation benches for the design choices called out in DESIGN.md §5:
//  A1a: exact-gradient vs Gibbs-sampled training of the independent GM.
//  A1b: elbow-selected ε vs fixed ε for structure learning.
//  A1c: Dawid-Skene warm start vs cold start on unbalanced matrices.
//  A1d: the optimizer's MV shortcut speedup (the §3.1 "1.8x" claim).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/generative_model.h"
#include "core/majority_vote.h"
#include "core/structure_learner.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/synthetic_matrix.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace snorkel;

  // ---- A1a: exact vs Gibbs negative phase. ----
  {
    auto data = SyntheticMatrixGenerator::GenerateIid(4000, 10, 0.8, 0.3, 5);
    GenerativeModel exact;
    exact.Fit(data->matrix);
    GenerativeModelOptions gibbs_options;
    gibbs_options.force_gibbs = true;
    gibbs_options.num_chains = 64;
    GenerativeModel gibbs(gibbs_options);
    gibbs.Fit(data->matrix);
    double max_gap = 0.0;
    auto exact_acc = exact.EstimatedAccuracies();
    auto gibbs_acc = gibbs.EstimatedAccuracies();
    for (size_t j = 0; j < exact_acc.size(); ++j) {
      max_gap = std::max(max_gap, std::fabs(exact_acc[j] - gibbs_acc[j]));
    }
    auto exact_conf = ComputeBinaryConfusion(exact.PredictLabels(data->matrix),
                                             data->gold);
    auto gibbs_conf = ComputeBinaryConfusion(gibbs.PredictLabels(data->matrix),
                                             data->gold);
    std::printf("[A1a] exact vs Gibbs negative phase: max |acc gap| = %.3f, "
                "accuracy %.3f vs %.3f\n",
                max_gap, exact_conf.Accuracy(), gibbs_conf.Accuracy());
  }

  // ---- A1b: elbow ε vs fixed ε. ----
  {
    auto data = SyntheticMatrixGenerator::GenerateClustered(
        3000, 3, 3, 6, 0.72, 0.4, 0.85, 6);
    StructureLearner learner;
    std::vector<double> epsilons;
    for (double eps = 0.5; eps >= 0.02; eps -= 0.04) epsilons.push_back(eps);
    auto sweep = learner.Sweep(data->matrix, epsilons);
    size_t elbow = StructureLearner::SelectElbowIndex(*sweep);
    TablePrinter table({"policy", "epsilon", "# corr", "GM accuracy"});
    auto eval_at = [&](double eps, const char* name) {
      auto correlations = learner.LearnStructure(data->matrix, eps);
      GenerativeModel gen;
      gen.Fit(data->matrix, *correlations);
      auto conf = ComputeBinaryConfusion(gen.PredictLabels(data->matrix),
                                         data->gold);
      table.AddRow({name, TablePrinter::Cell(eps, 2),
                    TablePrinter::Cell(static_cast<int64_t>(correlations->size())),
                    TablePrinter::Cell(conf.Accuracy(), 3)});
    };
    eval_at(0.5, "fixed high");
    eval_at((*sweep)[elbow].epsilon, "elbow");
    eval_at(0.02, "fixed low");
    std::printf("\n[A1b] elbow vs fixed epsilon (planted clusters)\n%s",
                table.ToString().c_str());
  }

  // ---- A1c: warm start vs cold start on unbalanced matrices. ----
  {
    std::vector<SyntheticLfSpec> lfs(12, SyntheticLfSpec{0.8, 0.15, -1, 1.0});
    auto data = SyntheticMatrixGenerator::Generate({4000, 0.15, 7}, lfs);
    GenerativeModelOptions warm_options;
    warm_options.class_balance = 0.15;
    GenerativeModel warm(warm_options);
    warm.Fit(data->matrix);
    GenerativeModelOptions cold_options = warm_options;
    cold_options.em_warm_start_iters = 0;
    GenerativeModel cold(cold_options);
    cold.Fit(data->matrix);
    auto warm_conf = ComputeBinaryConfusion(warm.PredictLabels(data->matrix),
                                            data->gold);
    auto cold_conf = ComputeBinaryConfusion(cold.PredictLabels(data->matrix),
                                            data->gold);
    std::printf("\n[A1c] unbalanced data (15%% positive): warm-start F1 %.3f "
                "vs cold-start F1 %.3f\n",
                warm_conf.F1(), cold_conf.F1());
  }

  // ---- A1d: MV shortcut speedup per pipeline execution. ----
  {
    auto task = MakeChemTask(42, 0.35);  // The paper's MV-selected task.
    LFApplier applier;
    auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
    WallTimer timer;
    auto mv = UnweightedAverageProbs(*matrix);
    double mv_seconds = timer.ElapsedSeconds();
    timer.Restart();
    GenerativeModelOptions gen_options;
    gen_options.class_balance = task->PositiveFraction();
    GenerativeModel gen(gen_options);
    gen.Fit(*matrix);
    double gm_seconds = timer.ElapsedSeconds();
    std::printf("\n[A1d] label-modeling time on Chem: MV %.4fs vs GM %.4fs "
                "(speedup %.1fx; paper reports up to 1.8x per pipeline "
                "execution)\n",
                mv_seconds, gm_seconds,
                gm_seconds / std::max(mv_seconds, 1e-9));
  }
  return 0;
}
