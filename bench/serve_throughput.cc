// Label-serving benchmark for the serve/ subsystem: trains one relation
// task offline, exports a versioned snapshot, then measures
//   (1) batched serving throughput (candidates/sec, p50/p99 request latency)
//     through LabelService over fresh candidate batches, and
//   (2) the incremental-applier speedup for the §4.1 iterate loop: editing
//     1 of k LFs should re-label in roughly 1/k of the full Apply time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lf/applier.h"
#include "pipeline/export_snapshot.h"
#include "serve/incremental_applier.h"
#include "serve/label_service.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace snorkel;

  auto task = MakeCdrTask(/*seed=*/42, /*scale=*/bench::kScale);
  if (!task.ok()) {
    std::fprintf(stderr, "task generation failed: %s\n",
                 task.status().ToString().c_str());
    return 1;
  }
  std::printf("Task %s: %zu candidates, %zu LFs\n\n", task->name.c_str(),
              task->candidates.size(), task->lfs.size());

  // ---- Offline: train and export the servable snapshot. ----
  ExportSnapshotOptions export_options;
  export_options.gen.epochs = 100;
  export_options.disc.epochs = 5;
  WallTimer train_timer;
  auto snapshot = TrainSnapshot(*task, export_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::string wire = SerializeSnapshot(*snapshot);
  std::printf("Trained + captured snapshot in %.2fs (%zu bytes on the wire)\n",
              train_timer.ElapsedSeconds(), wire.size());

  // ---- Online: batched serving over fresh candidate batches. ----
  // Distinct batches get no column reuse (each is a new candidate set), so
  // serving runs through the plain sharded applier.
  LabelService::Options serve_options;
  serve_options.use_incremental_cache = false;
  auto service = LabelService::Create(*snapshot, task->lfs, serve_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  constexpr size_t kBatchSize = 512;
  constexpr int kRounds = 5;
  std::vector<std::vector<Candidate>> batches;
  for (size_t begin = 0; begin < task->candidates.size();
       begin += kBatchSize) {
    size_t end = std::min(begin + kBatchSize, task->candidates.size());
    batches.emplace_back(task->candidates.begin() + begin,
                         task->candidates.begin() + end);
  }
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& batch : batches) {
      LabelRequest request;
      request.corpus = &task->corpus;
      request.candidates = &batch;
      auto response = service->Label(request);
      if (!response.ok()) {
        std::fprintf(stderr, "serving failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
    }
  }
  ServiceStats stats = service->stats();
  TablePrinter serving({"Requests", "Candidates", "cand/s", "p50 ms",
                        "p99 ms", "max ms"});
  serving.AddRow({TablePrinter::Cell(static_cast<int64_t>(stats.num_requests)),
                  TablePrinter::Cell(static_cast<int64_t>(stats.num_candidates)),
                  TablePrinter::Cell(stats.throughput_cps, 0),
                  TablePrinter::Cell(stats.p50_latency_ms, 3),
                  TablePrinter::Cell(stats.p99_latency_ms, 3),
                  TablePrinter::Cell(stats.max_latency_ms, 3)});
  std::printf("\nBatched serving (batch=%zu, %d rounds):\n%s", kBatchSize,
              kRounds, serving.ToString().c_str());

  // ---- Iterate loop: edit 1 of k LFs, re-label with the column cache. ----
  const size_t k = task->lfs.size();
  IncrementalApplier applier(
      IncrementalApplier::Options{.num_threads = 0, .cardinality = 2});
  WallTimer full_timer;
  auto full = applier.Apply(task->lfs, task->corpus, task->candidates);
  double full_seconds = full_timer.ElapsedSeconds();
  if (!full.ok()) {
    std::fprintf(stderr, "apply failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Re-version one LF: same behaviour, new fingerprint, so exactly one
  // column recomputes (plus cache bookkeeping).
  double incremental_seconds = 0.0;
  constexpr int kEdits = 5;
  for (int edit = 0; edit < kEdits; ++edit) {
    LabelingFunctionSet edited;
    size_t target = static_cast<size_t>(edit) % k;
    for (size_t j = 0; j < k; ++j) {
      const LabelingFunction& lf = task->lfs.at(j);
      if (j == target) {
        edited.Add(LabelingFunction(
            lf.name(), "edit_" + std::to_string(edit),
            [&lf](const CandidateView& view) { return lf.Apply(view); }));
      } else {
        edited.Add(lf);
      }
    }
    WallTimer edit_timer;
    auto incremental =
        applier.Apply(edited, task->corpus, task->candidates);
    incremental_seconds += edit_timer.ElapsedSeconds();
    if (!incremental.ok()) {
      std::fprintf(stderr, "incremental apply failed: %s\n",
                   incremental.status().ToString().c_str());
      return 1;
    }
  }
  incremental_seconds /= kEdits;

  TablePrinter iterate({"Mode", "Wall-clock s", "Vs full", "Ideal 1/k"});
  iterate.AddRow({"Full apply (k columns)",
                  TablePrinter::Cell(full_seconds, 4), "1.00",
                  TablePrinter::Cell(1.0, 2)});
  iterate.AddRow({"Edit 1 LF (cached)",
                  TablePrinter::Cell(incremental_seconds, 4),
                  TablePrinter::Cell(incremental_seconds / full_seconds, 2),
                  TablePrinter::Cell(1.0 / static_cast<double>(k), 2)});
  std::printf("\nIncremental re-labeling, k = %zu LFs (mean of %d edits):\n%s",
              k, kEdits, iterate.ToString().c_str());
  std::printf("\ncache: %llu columns computed, %llu reused\n",
              static_cast<unsigned long long>(applier.stats().columns_computed),
              static_cast<unsigned long long>(applier.stats().columns_reused));
  return 0;
}
