// Label-serving benchmark for the serve/ subsystem: trains one relation
// task offline, exports a versioned snapshot, then measures
//   (1) batched serving throughput (candidates/sec, p50/p99 request latency)
//     through LabelService over fresh candidate batches,
//   (2) concurrent-caller throughput: N threads sharing one service — the
//     posterior path is lock-free, so callers overlap compute instead of
//     serializing on a service-wide mutex, and
//   (3) the incremental-applier speedup for the §4.1 iterate loop: editing
//     1 of k LFs should re-label in roughly 1/k of the full Apply time, and
//   (4) the sharded tier: ShardRouter (hash partition → bounded queues →
//     per-shard workers with burst fusion) vs. direct unsharded Label()
//     under the same bursty concurrent-caller workload, at 1/2/4 shards.
//
//   (5) the K-class (Crowd-shaped, §4.1.2) serving path: a 5-class,
//     102-worker Dawid-Skene snapshot served through LabelService and the
//     ShardRouter — the vector-posterior hot path (DAWD snapshot v2
//     section + batched row-softmax E-step kernel),
//
//   (6) alternating-set serving (A/B/A/B under 4 concurrent callers): the
//     multi-set column cache must hit every request after the first cycle
//     (the old single-set cache thrashed to zero reuse and serialized
//     callers behind an apply mutex), and
//
//   (7) append-only stream serving: requests are growing prefixes of one
//     candidate log; the cache extends cached columns by computing only
//     the appended tail rows, and
//
//   (8) compiled LF execution: the shared Aho-Corasick batch engine
//     (lf/compiled/) vs per-row interpreted lambdas on the same LF set —
//     bitwise-identical output, so the ratio is pure execution speedup.
//
// Pass --json <path> to also write the headline numbers as JSON (consumed
// by scripts/bench.sh for the benchmark trajectory).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/csr_kernels.h"
#include "lf/applier.h"
#include "lf/compiled/program.h"
#include "pipeline/export_snapshot.h"
#include "serve/incremental_applier.h"
#include "serve/label_service.h"
#include "shard/shard_router.h"
#include "synth/crossmodal.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace snorkel;

  std::string json_path;
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--json") json_path = argv[a + 1];
  }

  auto task = MakeCdrTask(/*seed=*/42, /*scale=*/bench::kScale);
  if (!task.ok()) {
    std::fprintf(stderr, "task generation failed: %s\n",
                 task.status().ToString().c_str());
    return 1;
  }
  std::printf("Task %s: %zu candidates, %zu LFs (posterior kernels: %s)\n\n",
              task->name.c_str(), task->candidates.size(), task->lfs.size(),
              CsrKernelIsa());

  // ---- Offline: train and export the servable snapshot. ----
  ExportSnapshotOptions export_options;
  export_options.gen.epochs = 100;
  export_options.disc.epochs = 5;
  WallTimer train_timer;
  auto snapshot = TrainSnapshot(*task, export_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::string wire = SerializeSnapshot(*snapshot);
  std::printf("Trained + captured snapshot in %.2fs (%zu bytes on the wire)\n",
              train_timer.ElapsedSeconds(), wire.size());

  // ---- Online: batched serving over fresh candidate batches. ----
  // Distinct batches get no column reuse (each is a new candidate set), so
  // serving runs through the plain sharded applier.
  LabelService::Options serve_options;
  serve_options.use_incremental_cache = false;
  auto service = LabelService::Create(*snapshot, task->lfs, serve_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  constexpr size_t kBatchSize = 512;
  constexpr int kRounds = 5;
  std::vector<std::vector<Candidate>> batches;
  for (size_t begin = 0; begin < task->candidates.size();
       begin += kBatchSize) {
    size_t end = std::min(begin + kBatchSize, task->candidates.size());
    batches.emplace_back(task->candidates.begin() + begin,
                         task->candidates.begin() + end);
  }
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& batch : batches) {
      LabelRequest request;
      request.corpus = &task->corpus;
      request.candidates = &batch;
      auto response = service->Label(request);
      if (!response.ok()) {
        std::fprintf(stderr, "serving failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
    }
  }
  ServiceStats stats = service->stats();
  TablePrinter serving({"Requests", "Candidates", "cand/s", "p50 ms",
                        "p99 ms", "max ms"});
  serving.AddRow({TablePrinter::Cell(static_cast<int64_t>(stats.num_requests)),
                  TablePrinter::Cell(static_cast<int64_t>(stats.num_candidates)),
                  TablePrinter::Cell(stats.throughput_cps, 0),
                  TablePrinter::Cell(stats.p50_latency_ms, 3),
                  TablePrinter::Cell(stats.p99_latency_ms, 3),
                  TablePrinter::Cell(stats.max_latency_ms, 3)});
  std::printf("\nBatched serving (batch=%zu, %d rounds):\n%s", kBatchSize,
              kRounds, serving.ToString().c_str());

  // ---- Concurrent callers sharing one service. Each caller applies LFs
  // serially (num_threads = 1) so the measurement isolates request overlap
  // — the narrow-critical-section win — from intra-request sharding. ----
  std::vector<std::pair<int, double>> concurrent_cps;
  for (int callers : {1, 2, 4}) {
    LabelService::Options cc_options;
    cc_options.use_incremental_cache = false;
    cc_options.num_threads = 1;
    auto cc_service = LabelService::Create(*snapshot, task->lfs, cc_options);
    if (!cc_service.ok()) {
      std::fprintf(stderr, "service creation failed: %s\n",
                   cc_service.status().ToString().c_str());
      return 1;
    }
    constexpr int kConcurrentRounds = 3;
    WallTimer cc_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(callers));
    for (int t = 0; t < callers; ++t) {
      threads.emplace_back([&, t] {
        // Callers stride over the batch list so each batch is served
        // exactly kConcurrentRounds times in total regardless of T.
        for (int round = 0; round < kConcurrentRounds; ++round) {
          for (size_t b = static_cast<size_t>(t); b < batches.size();
               b += static_cast<size_t>(callers)) {
            LabelRequest request;
            request.corpus = &task->corpus;
            request.candidates = &batches[b];
            auto response = cc_service->Label(request);
            if (!response.ok()) {
              std::fprintf(stderr, "concurrent serving failed: %s\n",
                           response.status().ToString().c_str());
              std::abort();
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    double wall = cc_timer.ElapsedSeconds();
    double served = static_cast<double>(cc_service->stats().num_candidates);
    concurrent_cps.emplace_back(callers, served / wall);
  }
  TablePrinter concurrent({"Callers", "cand/s (wall)", "Vs 1 caller"});
  for (auto& [callers, cps] : concurrent_cps) {
    concurrent.AddRow({TablePrinter::Cell(static_cast<int64_t>(callers)),
                       TablePrinter::Cell(cps, 0),
                       TablePrinter::Cell(cps / concurrent_cps[0].second, 2)});
  }
  std::printf("\nConcurrent callers (shared service, serial per-request "
              "apply):\n%s",
              concurrent.ToString().c_str());

  // ---- Sharded tier vs. direct unsharded serving, bursty concurrent
  // callers. Small requests make per-request fixed costs visible — exactly
  // the regime the per-shard queues pipeline and fuse away. Both paths use
  // identical serve options (cache off, serial per-request apply) so the
  // comparison isolates the tier itself. Trials are INTERLEAVED across
  // configs (unsharded, 1/2/4 shards, unsharded, ...) and each config takes
  // its best trial, so ambient machine noise cannot bias one whole config's
  // block of measurements. ----
  constexpr size_t kShardBatchSize = 128;
  constexpr int kShardCallers = 4;
  constexpr int kShardRounds = 6;
  // Trial 0 is a discarded warmup (page faults, allocator growth, branch
  // history); the remaining trials are recorded best-of.
  constexpr int kTrials = 6;
  std::vector<std::vector<Candidate>> small_batches;
  for (size_t begin = 0; begin < task->candidates.size();
       begin += kShardBatchSize) {
    size_t end = std::min(begin + kShardBatchSize, task->candidates.size());
    small_batches.emplace_back(task->candidates.begin() + begin,
                               task->candidates.begin() + end);
  }

  // One workload for every config: kShardCallers threads striding the batch
  // list for kShardRounds rounds; `label` maps a batch to a response.
  auto run_callers = [&](const std::function<bool(const std::vector<Candidate>&)>&
                             label) -> double {
    WallTimer wall;
    std::vector<std::thread> callers;
    std::atomic<bool> failed{false};
    size_t served = 0;
    for (int t = 0; t < kShardCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int round = 0; round < kShardRounds; ++round) {
          for (size_t b = static_cast<size_t>(t); b < small_batches.size();
               b += static_cast<size_t>(kShardCallers)) {
            if (!label(small_batches[b])) failed.store(true);
          }
        }
      });
    }
    for (auto& th : callers) th.join();
    if (failed.load()) {
      std::fprintf(stderr, "sharded-section serving failed\n");
      std::abort();
    }
    for (const auto& batch : small_batches) served += batch.size();
    return static_cast<double>(served) * kShardRounds / wall.ElapsedSeconds();
  };

  const std::vector<size_t> kShardCounts = {1, 2, 4};
  // Two unsharded baselines: the default service configuration (column
  // cache ON — concurrent callers serialize the whole LF application behind
  // the cache mutex, and alternating candidate sets thrash the cache), and
  // a hand-tuned one with the cache disabled (lock-free apply). The tier is
  // built to replace the former; the latter shows the residual cost of the
  // queue/merge indirection at equal per-candidate work.
  double unsharded_cps = 0.0;          // Default config (cached).
  double unsharded_nocache_cps = 0.0;  // Tuned (cache off).
  std::vector<std::pair<size_t, double>> sharded_cps;
  for (size_t shards : kShardCounts) sharded_cps.emplace_back(shards, 0.0);
  uint64_t last_fused = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Unsharded direct calls, default and tuned configs.
    for (bool cached : {true, false}) {
      LabelService::Options direct_options;
      direct_options.use_incremental_cache = cached;
      // Default config keeps num_threads = 0 (the process-wide shared
      // pool); the tuned config pins serial in-thread apply.
      direct_options.num_threads = cached ? 0 : 1;
      auto direct = LabelService::Create(*snapshot, task->lfs, direct_options);
      if (!direct.ok()) {
        std::fprintf(stderr, "service creation failed: %s\n",
                     direct.status().ToString().c_str());
        return 1;
      }
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return direct->Label(request).ok();
      });
      if (trial == 0) continue;  // Warmup.
      double& slot = cached ? unsharded_cps : unsharded_nocache_cps;
      slot = std::max(slot, cps);
    }

    // Router at each shard count.
    for (size_t c = 0; c < kShardCounts.size(); ++c) {
      ShardRouter::Options router_options;
      router_options.num_shards = kShardCounts[c];
      router_options.queue_capacity = 256;
      router_options.workers_per_shard = 1;
      router_options.max_fuse = 8;
      router_options.service.num_threads = 1;
      auto router = ShardRouter::Create(*snapshot, task->lfs, router_options);
      if (!router.ok()) {
        std::fprintf(stderr, "router creation failed: %s\n",
                     router.status().ToString().c_str());
        return 1;
      }
      double cps = run_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &batch;
        return router->Label(request).ok();
      });
      if (trial > 0 && cps > sharded_cps[c].second) {
        sharded_cps[c].second = cps;
        last_fused = router->stats().fused_jobs;
      }
      router->Shutdown();
    }
  }

  TablePrinter sharded({"Config", "cand/s (wall)", "Vs unsharded"});
  sharded.AddRow({"unsharded direct (default, cached)",
                  TablePrinter::Cell(unsharded_cps, 0), "1.00"});
  sharded.AddRow({"unsharded direct (cache off)",
                  TablePrinter::Cell(unsharded_nocache_cps, 0),
                  TablePrinter::Cell(unsharded_nocache_cps / unsharded_cps,
                                     2)});
  for (auto& [shards, cps] : sharded_cps) {
    sharded.AddRow({"router, " + std::to_string(shards) + " shard" +
                        (shards == 1 ? "" : "s"),
                    TablePrinter::Cell(cps, 0),
                    TablePrinter::Cell(cps / unsharded_cps, 2)});
  }
  std::printf("\nSharded tier (%d concurrent callers, batch=%zu, best of %d "
              "trials after warmup; last router fused %llu sub-batches):\n%s",
              kShardCallers, kShardBatchSize, kTrials - 1,
              static_cast<unsigned long long>(last_fused),
              sharded.ToString().c_str());

  // ---- K-class (Crowd-shaped) serving: 5 sentiment classes, one LF per
  // crowd worker (paper Table 2 shape: 505 items × 102 workers), served
  // from a DAWD snapshot through the vector-posterior path. Same
  // interleaved best-of methodology as the binary sharded section. ----
  CrowdServingOptions crowd_options;
  crowd_options.num_items = 505;
  crowd_options.num_workers = 102;
  auto crowd = MakeCrowdServingTask(crowd_options);
  if (!crowd.ok()) {
    std::fprintf(stderr, "crowd task generation failed: %s\n",
                 crowd.status().ToString().c_str());
    return 1;
  }
  WallTimer crowd_train_timer;
  auto crowd_snapshot = TrainKClassSnapshot(
      crowd->lfs, crowd->corpus, crowd->candidates, crowd->cardinality);
  if (!crowd_snapshot.ok()) {
    std::fprintf(stderr, "crowd training failed: %s\n",
                 crowd_snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCrowd task: %zu items, %zu workers, K = %d "
              "(Dawid-Skene fit + DAWD capture in %.2fs, %zu wire bytes)\n",
              crowd->candidates.size(), crowd->lfs.size(),
              crowd->cardinality, crowd_train_timer.ElapsedSeconds(),
              SerializeSnapshot(*crowd_snapshot).size());

  constexpr size_t kCrowdBatchSize = 128;
  constexpr int kCrowdCallers = 4;
  constexpr int kCrowdRounds = 6;
  constexpr int kCrowdTrials = 4;  // Trial 0 is a discarded warmup.
  std::vector<std::vector<Candidate>> crowd_batches;
  for (size_t begin = 0; begin < crowd->candidates.size();
       begin += kCrowdBatchSize) {
    size_t end = std::min(begin + kCrowdBatchSize, crowd->candidates.size());
    crowd_batches.emplace_back(crowd->candidates.begin() + begin,
                               crowd->candidates.begin() + end);
  }
  auto run_crowd_callers =
      [&](const std::function<bool(const std::vector<Candidate>&)>& label)
      -> double {
    WallTimer wall;
    std::vector<std::thread> callers;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kCrowdCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int round = 0; round < kCrowdRounds; ++round) {
          for (size_t b = static_cast<size_t>(t); b < crowd_batches.size();
               b += static_cast<size_t>(kCrowdCallers)) {
            if (!label(crowd_batches[b])) failed.store(true);
          }
        }
      });
    }
    for (auto& th : callers) th.join();
    if (failed.load()) {
      std::fprintf(stderr, "K-class serving failed\n");
      std::abort();
    }
    size_t served = 0;
    for (const auto& batch : crowd_batches) served += batch.size();
    return static_cast<double>(served) * kCrowdRounds /
           wall.ElapsedSeconds();
  };

  double kclass_unsharded_cps = 0.0;
  std::vector<std::pair<size_t, double>> kclass_sharded_cps;
  for (size_t shards : kShardCounts) kclass_sharded_cps.emplace_back(shards, 0.0);
  for (int trial = 0; trial < kCrowdTrials; ++trial) {
    {
      LabelService::Options direct_options;
      direct_options.use_incremental_cache = false;
      direct_options.num_threads = 1;
      auto direct =
          LabelService::Create(*crowd_snapshot, crowd->lfs, direct_options);
      if (!direct.ok()) {
        std::fprintf(stderr, "K-class service creation failed: %s\n",
                     direct.status().ToString().c_str());
        return 1;
      }
      double cps = run_crowd_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &crowd->corpus;
        request.candidates = &batch;
        return direct->Label(request).ok();
      });
      if (trial > 0) kclass_unsharded_cps = std::max(kclass_unsharded_cps, cps);
    }
    for (size_t c = 0; c < kShardCounts.size(); ++c) {
      ShardRouter::Options router_options;
      router_options.num_shards = kShardCounts[c];
      router_options.queue_capacity = 256;
      router_options.workers_per_shard = 1;
      router_options.max_fuse = 8;
      router_options.service.num_threads = 1;
      auto router =
          ShardRouter::Create(*crowd_snapshot, crowd->lfs, router_options);
      if (!router.ok()) {
        std::fprintf(stderr, "K-class router creation failed: %s\n",
                     router.status().ToString().c_str());
        return 1;
      }
      double cps = run_crowd_callers([&](const std::vector<Candidate>& batch) {
        LabelRequest request;
        request.corpus = &crowd->corpus;
        request.candidates = &batch;
        return router->Label(request).ok();
      });
      if (trial > 0) {
        kclass_sharded_cps[c].second =
            std::max(kclass_sharded_cps[c].second, cps);
      }
      router->Shutdown();
    }
  }

  TablePrinter kclass({"Config", "cand/s (wall)", "Vs unsharded"});
  kclass.AddRow({"unsharded direct",
                 TablePrinter::Cell(kclass_unsharded_cps, 0), "1.00"});
  for (auto& [shards, cps] : kclass_sharded_cps) {
    kclass.AddRow({"router, " + std::to_string(shards) + " shard" +
                       (shards == 1 ? "" : "s"),
                   TablePrinter::Cell(cps, 0),
                   TablePrinter::Cell(cps / kclass_unsharded_cps, 2)});
  }
  std::printf("\nK-class serving (K=%d, %d concurrent callers, batch=%zu, "
              "best of %d trials after warmup):\n%s",
              crowd->cardinality, kCrowdCallers, kCrowdBatchSize,
              kCrowdTrials - 1, kclass.ToString().c_str());

  // ---- Alternating sets (A/B/A/B), 4 concurrent callers sharing one
  // service. Two fixed 1024-candidate batches alternate; the multi-set
  // cache keeps BOTH sets resident, so every request after the first cycle
  // reuses all of its columns. Cache-off pays full LF application per
  // request. Interleaved best-of, like the sharded section. ----
  constexpr size_t kAltBatchSize = 1024;
  constexpr int kAltCallers = 4;
  constexpr int kAltRounds = 8;
  constexpr int kAltTrials = 4;  // Trial 0 is a discarded warmup.
  std::vector<Candidate> alt_a(task->candidates.begin(),
                               task->candidates.begin() + kAltBatchSize);
  std::vector<Candidate> alt_b(task->candidates.begin() + kAltBatchSize,
                               task->candidates.begin() + 2 * kAltBatchSize);
  auto run_alternating = [&](LabelService& alt_service) -> double {
    WallTimer wall;
    std::vector<std::thread> callers;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kAltCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int round = 0; round < kAltRounds; ++round) {
          for (const auto* batch : {&alt_a, &alt_b}) {
            LabelRequest request;
            request.corpus = &task->corpus;
            request.candidates = batch;
            if (!alt_service.Label(request).ok()) failed.store(true);
          }
        }
      });
    }
    for (auto& th : callers) th.join();
    if (failed.load()) {
      std::fprintf(stderr, "alternating-set serving failed\n");
      std::abort();
    }
    return static_cast<double>(2 * kAltBatchSize) * kAltRounds *
           kAltCallers / wall.ElapsedSeconds();
  };
  double alt_cached_cps = 0.0;
  double alt_nocache_cps = 0.0;
  for (int trial = 0; trial < kAltTrials; ++trial) {
    for (bool cached : {true, false}) {
      LabelService::Options alt_options;
      alt_options.use_incremental_cache = cached;
      // Equal threads for both configs (like the append-stream section):
      // the 4 callers provide the concurrency, so serial per-request apply
      // isolates the cache effect from intra-request parallelism.
      alt_options.num_threads = 1;
      auto alt_service =
          LabelService::Create(*snapshot, task->lfs, alt_options);
      if (!alt_service.ok()) {
        std::fprintf(stderr, "service creation failed: %s\n",
                     alt_service.status().ToString().c_str());
        return 1;
      }
      double cps = run_alternating(*alt_service);
      if (trial == 0) continue;  // Warmup.
      double& slot = cached ? alt_cached_cps : alt_nocache_cps;
      slot = std::max(slot, cps);
    }
  }
  // Column reuse on the SECOND A/B cycle, measured single-threaded on a
  // fresh service: cycle 1 computes both sets' columns, cycle 2 must reuse
  // them all (the acceptance bar for the multi-set cache).
  double second_cycle_reuse = 0.0;
  {
    auto reuse_service = LabelService::Create(*snapshot, task->lfs, {});
    if (!reuse_service.ok()) {
      std::fprintf(stderr, "service creation failed: %s\n",
                   reuse_service.status().ToString().c_str());
      return 1;
    }
    auto serve_cycle = [&] {
      for (const auto* batch : {&alt_a, &alt_b}) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = batch;
        if (!reuse_service->Label(request).ok()) std::abort();
      }
    };
    serve_cycle();
    ServiceStats after_first = reuse_service->stats();
    serve_cycle();
    ServiceStats after_second = reuse_service->stats();
    double reused = static_cast<double>(after_second.lf_columns_reused -
                                        after_first.lf_columns_reused);
    double computed = static_cast<double>(after_second.lf_columns_computed -
                                          after_first.lf_columns_computed);
    second_cycle_reuse =
        reused + computed > 0.0 ? reused / (reused + computed) : 0.0;
  }
  TablePrinter altset({"Config", "cand/s (wall)", "Vs cache-off"});
  altset.AddRow({"cached (multi-set)", TablePrinter::Cell(alt_cached_cps, 0),
                 TablePrinter::Cell(alt_cached_cps / alt_nocache_cps, 2)});
  altset.AddRow({"cache off", TablePrinter::Cell(alt_nocache_cps, 0), "1.00"});
  std::printf("\nAlternating sets A/B (%d concurrent callers, batch=%zu, "
              "best of %d trials after warmup; second-cycle column reuse "
              "%.1f%%):\n%s",
              kAltCallers, kAltBatchSize, kAltTrials - 1,
              100.0 * second_cycle_reuse, altset.ToString().c_str());

  // ---- Append-only candidate stream: each request is the full log so
  // far, grown by 256 candidates per step. The cache recognizes the cached
  // prefix by its fingerprint chain and computes only the tail rows;
  // cache-off re-applies every LF to every row each step. Fresh services
  // per trial so each trial serves a cold stream. ----
  constexpr size_t kStreamStart = 512;
  constexpr size_t kStreamStep = 256;
  constexpr int kStreamTrials = 4;  // Trial 0 is a discarded warmup.
  std::vector<std::vector<Candidate>> stream_prefixes;
  for (size_t rows = kStreamStart; rows <= task->candidates.size();
       rows += kStreamStep) {
    stream_prefixes.emplace_back(task->candidates.begin(),
                                 task->candidates.begin() + rows);
  }
  double stream_cached_s = 0.0;
  double stream_nocache_s = 0.0;
  uint64_t stream_appended_rows = 0;
  for (int trial = 0; trial < kStreamTrials; ++trial) {
    for (bool cached : {true, false}) {
      LabelService::Options stream_options;
      stream_options.use_incremental_cache = cached;
      // Both configs apply serially: a single-caller stream has no request
      // overlap, so equal threads isolate the cache effect (tail-only
      // computation) from intra-request parallelism.
      stream_options.num_threads = 1;
      auto stream_service =
          LabelService::Create(*snapshot, task->lfs, stream_options);
      if (!stream_service.ok()) {
        std::fprintf(stderr, "service creation failed: %s\n",
                     stream_service.status().ToString().c_str());
        return 1;
      }
      WallTimer stream_timer;
      for (const auto& prefix : stream_prefixes) {
        LabelRequest request;
        request.corpus = &task->corpus;
        request.candidates = &prefix;
        if (!stream_service->Label(request).ok()) {
          std::fprintf(stderr, "append-stream serving failed\n");
          return 1;
        }
      }
      double seconds = stream_timer.ElapsedSeconds();
      if (trial == 0) continue;  // Warmup.
      double& slot = cached ? stream_cached_s : stream_nocache_s;
      slot = slot == 0.0 ? seconds : std::min(slot, seconds);
      if (cached) {
        stream_appended_rows = stream_service->stats().cache_appended_rows;
      }
    }
  }
  TablePrinter stream({"Config", "Wall-clock s", "Vs cache-off"});
  stream.AddRow({"cached (extend tails)",
                 TablePrinter::Cell(stream_cached_s, 4),
                 TablePrinter::Cell(stream_cached_s / stream_nocache_s, 2)});
  stream.AddRow({"cache off (full reapply)",
                 TablePrinter::Cell(stream_nocache_s, 4), "1.00"});
  std::printf("\nAppend-only stream (%zu steps, %zu -> %zu rows, best of %d "
              "trials after warmup; %llu tail rows appended per cached "
              "run):\n%s",
              stream_prefixes.size(), kStreamStart,
              stream_prefixes.back().size(), kStreamTrials - 1,
              static_cast<unsigned long long>(stream_appended_rows),
              stream.ToString().c_str());

  // ---- Iterate loop: edit 1 of k LFs, re-label with the column cache. ----
  const size_t k = task->lfs.size();
  IncrementalApplier applier(
      IncrementalApplier::Options{.num_threads = 0, .cardinality = 2});
  WallTimer full_timer;
  auto full = applier.Apply(task->lfs, task->corpus, task->candidates);
  double full_seconds = full_timer.ElapsedSeconds();
  if (!full.ok()) {
    std::fprintf(stderr, "apply failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Re-version one LF: same behaviour, new fingerprint, so exactly one
  // column recomputes (plus cache bookkeeping).
  double incremental_seconds = 0.0;
  constexpr int kEdits = 5;
  for (int edit = 0; edit < kEdits; ++edit) {
    LabelingFunctionSet edited;
    size_t target = static_cast<size_t>(edit) % k;
    for (size_t j = 0; j < k; ++j) {
      const LabelingFunction& lf = task->lfs.at(j);
      if (j == target) {
        edited.Add(LabelingFunction(
            lf.name(), "edit_" + std::to_string(edit),
            [&lf](const CandidateView& view) { return lf.Apply(view); }));
      } else {
        edited.Add(lf);
      }
    }
    WallTimer edit_timer;
    auto incremental =
        applier.Apply(edited, task->corpus, task->candidates);
    incremental_seconds += edit_timer.ElapsedSeconds();
    if (!incremental.ok()) {
      std::fprintf(stderr, "incremental apply failed: %s\n",
                   incremental.status().ToString().c_str());
      return 1;
    }
  }
  incremental_seconds /= kEdits;

  TablePrinter iterate({"Mode", "Wall-clock s", "Vs full", "Ideal 1/k"});
  iterate.AddRow({"Full apply (k columns)",
                  TablePrinter::Cell(full_seconds, 4), "1.00",
                  TablePrinter::Cell(1.0, 2)});
  iterate.AddRow({"Edit 1 LF (cached)",
                  TablePrinter::Cell(incremental_seconds, 4),
                  TablePrinter::Cell(incremental_seconds / full_seconds, 2),
                  TablePrinter::Cell(1.0 / static_cast<double>(k), 2)});
  std::printf("\nIncremental re-labeling, k = %zu LFs (mean of %d edits):\n%s",
              k, kEdits, iterate.ToString().c_str());
  std::printf("\ncache: %llu columns computed, %llu reused\n",
              static_cast<unsigned long long>(applier.stats().columns_computed),
              static_cast<unsigned long long>(applier.stats().columns_reused));

  // ---- Compiled LF execution (lf/compiled/): the batch Aho-Corasick
  // engine vs per-row interpreted lambdas, same LF set, same candidates,
  // serial apply so the ratio isolates the engine. Output is bitwise
  // identical (pinned by tests/lf_compiled_test.cc); this measures only the
  // speed side of that contract. Best-of after a discarded warmup. ----
  auto lf_program = CompileLfSet(task->lfs);
  double compiled_cps = 0.0;
  double interpreted_cps = 0.0;
  constexpr int kLfTrials = 4;  // Trial 0 is a discarded warmup.
  for (int trial = 0; trial < kLfTrials; ++trial) {
    for (bool use_compiled : {true, false}) {
      LFApplier lf_applier({.num_threads = 1,
                            .cardinality = 2,
                            .use_compiled = use_compiled});
      WallTimer lf_timer;
      if (!lf_applier.Apply(task->lfs, task->corpus, task->candidates).ok()) {
        std::fprintf(stderr, "LF application failed\n");
        return 1;
      }
      double cps = static_cast<double>(task->candidates.size()) /
                   lf_timer.ElapsedSeconds();
      if (trial == 0) continue;  // Warmup.
      double& slot = use_compiled ? compiled_cps : interpreted_cps;
      slot = std::max(slot, cps);
    }
  }
  TablePrinter lfcompile({"Engine", "cand/s", "Vs interpreted"});
  lfcompile.AddRow({"compiled (shared AC scan)",
                    TablePrinter::Cell(compiled_cps, 0),
                    TablePrinter::Cell(compiled_cps / interpreted_cps, 2)});
  lfcompile.AddRow({"interpreted (per-row lambdas)",
                    TablePrinter::Cell(interpreted_cps, 0), "1.00"});
  std::printf("\nCompiled LF execution (%zu/%zu LFs compiled, serial apply, "
              "best of %d trials after warmup):\n%s",
              lf_program->num_compiled(), task->lfs.size(), kLfTrials - 1,
              lfcompile.ToString().c_str());

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"task\": {\"candidates\": %zu, \"lfs\": %zu},\n"
                 "  \"serving\": {\"throughput_cps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f},\n",
                 task->candidates.size(), task->lfs.size(),
                 stats.throughput_cps, stats.p50_latency_ms,
                 stats.p99_latency_ms);
    std::fprintf(out, "  \"concurrent_cps\": {");
    for (size_t i = 0; i < concurrent_cps.size(); ++i) {
      std::fprintf(out, "%s\"%d\": %.1f", i == 0 ? "" : ", ",
                   concurrent_cps[i].first, concurrent_cps[i].second);
    }
    double best_sharded = 0.0;
    for (auto& [shards, cps] : sharded_cps) {
      best_sharded = std::max(best_sharded, cps);
    }
    std::fprintf(out,
                 "},\n"
                 "  \"sharded\": {\"callers\": %d, \"batch\": %zu, "
                 "\"unsharded_cps\": %.1f, \"unsharded_nocache_cps\": %.1f, "
                 "\"best_sharded_cps\": %.1f, \"shards_cps\": {",
                 kShardCallers, kShardBatchSize, unsharded_cps,
                 unsharded_nocache_cps, best_sharded);
    for (size_t i = 0; i < sharded_cps.size(); ++i) {
      std::fprintf(out, "%s\"%zu\": %.1f", i == 0 ? "" : ", ",
                   sharded_cps[i].first, sharded_cps[i].second);
    }
    double best_kclass = 0.0;
    for (auto& [shards, cps] : kclass_sharded_cps) {
      best_kclass = std::max(best_kclass, cps);
    }
    std::fprintf(out,
                 "}},\n"
                 "  \"kclass\": {\"cardinality\": %d, \"items\": %zu, "
                 "\"workers\": %zu, \"callers\": %d, \"batch\": %zu, "
                 "\"unsharded_cps\": %.1f, \"best_sharded_cps\": %.1f, "
                 "\"shards_cps\": {",
                 crowd->cardinality, crowd->candidates.size(),
                 crowd->lfs.size(), kCrowdCallers, kCrowdBatchSize,
                 kclass_unsharded_cps, best_kclass);
    for (size_t i = 0; i < kclass_sharded_cps.size(); ++i) {
      std::fprintf(out, "%s\"%zu\": %.1f", i == 0 ? "" : ", ",
                   kclass_sharded_cps[i].first, kclass_sharded_cps[i].second);
    }
    std::fprintf(out,
                 "}},\n"
                 "  \"altset\": {\"callers\": %d, \"batch\": %zu, "
                 "\"cached_cps\": %.1f, \"nocache_cps\": %.1f, "
                 "\"second_cycle_reuse\": %.4f},\n",
                 kAltCallers, kAltBatchSize, alt_cached_cps, alt_nocache_cps,
                 second_cycle_reuse);
    std::fprintf(out,
                 "  \"appendstream\": {\"steps\": %zu, \"rows_final\": %zu, "
                 "\"cached_s\": %.4f, \"nocache_s\": %.4f, "
                 "\"speedup\": %.2f, \"appended_rows\": %llu},\n",
                 stream_prefixes.size(), stream_prefixes.back().size(),
                 stream_cached_s, stream_nocache_s,
                 stream_nocache_s / stream_cached_s,
                 static_cast<unsigned long long>(stream_appended_rows));
    std::fprintf(out,
                 "  \"lfcompile\": {\"compiled_lfs\": %zu, \"total_lfs\": %zu, "
                 "\"compiled_cps\": %.1f, \"interpreted_cps\": %.1f, "
                 "\"speedup\": %.2f},\n",
                 lf_program->num_compiled(), task->lfs.size(), compiled_cps,
                 interpreted_cps, compiled_cps / interpreted_cps);
    std::fprintf(out,
                 "  \"incremental\": {\"full_apply_s\": %.4f, "
                 "\"edit_one_lf_s\": %.4f, \"ratio\": %.3f, "
                 "\"ideal_ratio\": %.3f}\n}\n",
                 full_seconds, incremental_seconds,
                 incremental_seconds / full_seconds,
                 1.0 / static_cast<double>(k));
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
