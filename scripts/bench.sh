#!/usr/bin/env bash
# Benchmark trajectory: runs the perf microbenchmarks and the serving
# benchmark, then writes one machine-readable JSON file mapping benchmark
# name -> wall time / throughput, so future PRs can diff against the
# committed BENCH_*.json files and catch regressions.
#
# Usage: scripts/bench.sh [output.json]
#   BUILD_DIR=build         build directory (configured + built if missing)
#   BENCH_MIN_TIME=0.15     google-benchmark --benchmark_min_time seconds
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.15}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
      --target bench_serve_throughput bench_net_loopback > /dev/null
if ! cmake --build "${BUILD_DIR}" -j "$(nproc)" \
      --target bench_perf_microbench > /dev/null 2>&1; then
  echo "google-benchmark not available; perf_microbench skipped" >&2
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

MICRO_JSON="${TMP_DIR}/micro.json"
if [[ -x "${BUILD_DIR}/bench_perf_microbench" ]]; then
  # Benchmark >= 1.8 wants a unit suffix on min_time; older versions reject
  # it. Try the bare form first.
  "${BUILD_DIR}/bench_perf_microbench" \
      --benchmark_min_time="${MIN_TIME}" \
      --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
      > /dev/null 2>&1 ||
  "${BUILD_DIR}/bench_perf_microbench" \
      --benchmark_min_time="${MIN_TIME}s" \
      --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
      > /dev/null
fi

SERVE_JSON="${TMP_DIR}/serve.json"
"${BUILD_DIR}/bench_serve_throughput" --json "${SERVE_JSON}" > /dev/null

NET_JSON="${TMP_DIR}/net.json"
"${BUILD_DIR}/bench_net_loopback" --json "${NET_JSON}" > /dev/null

python3 - "$OUT" "$SERVE_JSON" "$MICRO_JSON" "$NET_JSON" << 'EOF'
import json
import sys

out_path, serve_path, micro_path, net_path = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4])

result = {"microbench_ms": {}, "serve": {}, "net": {}}

try:
    with open(micro_path) as f:
        micro = json.load(f)
    for bench in micro.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # google-benchmark reports real_time in the configured time_unit.
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        result["microbench_ms"][bench["name"]] = round(
            bench["real_time"] * scale, 4)
except FileNotFoundError:
    pass

with open(serve_path) as f:
    result["serve"] = json.load(f)

# The sharded-tier section (PR 3) must be present: regressions that silently
# drop it from the serving benchmark would otherwise go unnoticed in the
# trajectory diff.
sharded = result["serve"].get("sharded")
if not sharded:
    sys.exit("serve benchmark JSON is missing the 'sharded' section")
print(
    "sharded tier: unsharded {:.0f} cand/s vs best sharded {:.0f} cand/s "
    "({} callers)".format(
        sharded["unsharded_cps"], sharded["best_sharded_cps"],
        sharded["callers"]))

# The K-class (Crowd-shaped, PR 4) section likewise: the vector-posterior
# serving path must stay on the trajectory.
kclass = result["serve"].get("kclass")
if not kclass:
    sys.exit("serve benchmark JSON is missing the 'kclass' section")
print(
    "K-class tier: K={} x {} workers, unsharded {:.0f} cand/s vs best "
    "sharded {:.0f} cand/s".format(
        kclass["cardinality"], kclass["workers"], kclass["unsharded_cps"],
        kclass["best_sharded_cps"]))

# The multi-set cache sections (PR 5): alternating-set serving must show
# near-total column reuse from the second cycle on, and the append-only
# stream must be extending cached columns rather than recomputing.
altset = result["serve"].get("altset")
if not altset:
    sys.exit("serve benchmark JSON is missing the 'altset' section")
print(
    "alternating sets: cached {:.0f} vs cache-off {:.0f} cand/s "
    "({} callers, second-cycle reuse {:.0%})".format(
        altset["cached_cps"], altset["nocache_cps"], altset["callers"],
        altset["second_cycle_reuse"]))
# The compiled-LF section (PR 9): the Aho-Corasick batch engine must stay
# on the trajectory — a silent fall-back to interpreted execution would
# show up here as a ~1x "speedup".
lfcompile = result["serve"].get("lfcompile")
if not lfcompile:
    sys.exit("serve benchmark JSON is missing the 'lfcompile' section")
print(
    "compiled LFs: {}/{} compiled, {:.0f} vs interpreted {:.0f} cand/s "
    "({:.1f}x)".format(
        lfcompile["compiled_lfs"], lfcompile["total_lfs"],
        lfcompile["compiled_cps"], lfcompile["interpreted_cps"],
        lfcompile["speedup"]))

stream = result["serve"].get("appendstream")
if not stream:
    sys.exit("serve benchmark JSON is missing the 'appendstream' section")
print(
    "append-only stream: cached {:.3f}s vs cache-off {:.3f}s over {} steps "
    "({:.1f}x, {} tail rows appended)".format(
        stream["cached_s"], stream["nocache_s"], stream["steps"],
        stream["speedup"], stream["appended_rows"]))

# The networked-fabric section (PR 6): the loopback RPC tax and the hedged
# tail probe must stay on the trajectory. Loopback bounds protocol cost
# only — real networks add NIC latency and congestion on top, so these
# numbers are a floor for the wire tax, not a datacenter estimate.
with open(net_path) as f:
    result["net"] = json.load(f)
net = result["net"]
if "loopback_cps" not in net or "hedge" not in net:
    sys.exit("net benchmark JSON is missing the loopback/hedge sections")
print(
    "net fabric: in-process {:.0f} vs loopback {:.0f} cand/s ({} callers); "
    "tail probe p99 {:.1f} -> {:.1f} ms with hedging".format(
        net["inprocess_cps"], net["loopback_cps"], net["callers"],
        net["hedge"]["p99_nohedge_ms"], net["hedge"]["p99_hedge_ms"]))

# The replicated-failover section (PR 7): R-way placement must stay cheap
# when healthy and keep serving (at reduced throughput, zero failures)
# through a one-shard outage.
failover = net.get("failover")
if not failover:
    sys.exit("net benchmark JSON is missing the 'failover' section")
print(
    "failover: single-owner {:.0f} vs R=2 {:.0f} cand/s; one-shard outage "
    "{:.0f} cand/s with {} failovers and zero failed requests".format(
        failover["r1_cps"], failover["r2_cps"], failover["outage_cps"],
        failover["failovers"]))

# The observability section (PR 8): tracing must stay cheap. A missing
# section means the benchmark silently dropped the overhead probe; an
# off-path regression would hit every request in production, traced or not.
obs = net.get("obs")
if not obs:
    sys.exit("net benchmark JSON is missing the 'obs' section")
print(
    "observability: tracing off {:.0f} vs on {:.0f} cand/s "
    "({:.1f}% overhead when traced, {} spans per traced run)".format(
        obs["trace_off_cps"], obs["trace_on_cps"], obs["overhead_pct"],
        obs["spans_per_run"]))

# The overload-control section (PR 10): goodput at 2x saturating load must
# stay on the trajectory — a missing section means the benchmark silently
# dropped the saturation probe, and a collapsing ratio means shedding
# regressed into congestion collapse.
overload = net.get("overload")
if not overload:
    sys.exit("net benchmark JSON is missing the 'overload' section")
print(
    "overload: goodput 1x {:.0f} vs 2x {:.0f} cand/s (ratio {:.2f}); "
    "{} queue rejections, {} shed, {} expired-work cancellations".format(
        overload["goodput_1x_cps"], overload["goodput_2x_cps"],
        overload["goodput_ratio_2x"], overload["queue_rejections"],
        overload["shed"], overload["expired_cancelled"]))

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
