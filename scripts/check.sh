#!/usr/bin/env bash
# Tier-1 verification: configure, build (with -Wall -Wextra, already enforced
# by the CMakeLists), and run the full ctest suite. CI and local pre-commit
# both run exactly this script.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
