#ifndef SNORKEL_DISC_LINEAR_MODEL_H_
#define SNORKEL_DISC_LINEAR_MODEL_H_

#include <vector>

#include "core/types.h"
#include "disc/features.h"
#include "util/status.h"

namespace snorkel {

/// Shared hyper-parameters for the discriminative models. Mirrors the
/// paper's end-model training setup: Adam, minibatches, a small labeled dev
/// set for model selection (§4.1 "Discriminative Models").
struct DiscModelOptions {
  int epochs = 20;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  size_t batch_size = 64;
  uint64_t seed = 42;
};

/// Binary logistic regression over hashed sparse features, trained with the
/// noise-aware loss of §2.3:
///
///   θ̂ = argmin_θ (1/m) Σ_i E_{y~Ỹ_i}[ l(h_θ(x_i), y) ]
///
/// which for the logistic loss is cross-entropy against the *probabilistic*
/// label ỹ_i ∈ [0,1] rather than a hard 0/1 target. Training on hard labels
/// is the special case ỹ ∈ {0,1}.
class LogisticRegressionClassifier {
 public:
  explicit LogisticRegressionClassifier(DiscModelOptions options = {});

  /// Fits on features and probabilistic targets ỹ_i = P(y_i = +1). When
  /// `dev_features`/`dev_labels` are non-null, the epoch with the best dev
  /// F1 is kept (simple model selection on the small labeled dev set).
  Status Fit(const std::vector<FeatureVector>& features, size_t num_buckets,
             const std::vector<double>& soft_labels,
             const std::vector<FeatureVector>* dev_features = nullptr,
             const std::vector<Label>* dev_labels = nullptr);

  /// Convenience: trains on hard ±1 labels (hand-supervision baseline).
  Status FitHard(const std::vector<FeatureVector>& features,
                 size_t num_buckets, const std::vector<Label>& labels,
                 const std::vector<FeatureVector>* dev_features = nullptr,
                 const std::vector<Label>* dev_labels = nullptr);

  bool is_fit() const { return is_fit_; }

  /// P(y = +1 | x) for each feature vector.
  std::vector<double> PredictProba(
      const std::vector<FeatureVector>& features) const;

  /// Hard ±1 predictions at threshold 0.5.
  std::vector<Label> PredictLabels(
      const std::vector<FeatureVector>& features) const;

  double Score(const FeatureVector& features) const;

  /// Learned per-bucket weights (size = num_buckets after Fit/Restore).
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Restores a fitted classifier from serialized weights (the snapshot
  /// hook, serve/snapshot.h). `weights.size()` must equal the feature
  /// hasher's bucket count used at training time.
  Status Restore(std::vector<double> weights, double bias);

 private:
  DiscModelOptions options_;
  bool is_fit_ = false;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Multinomial (softmax) regression trained against full posterior vectors,
/// the multi-class noise-aware loss used for the 5-class Crowd task: the
/// target for row i is the label-model posterior q_i over classes, and the
/// loss is cross-entropy -Σ_c q_ic log p_ic.
class SoftmaxRegressionClassifier {
 public:
  explicit SoftmaxRegressionClassifier(DiscModelOptions options = {});

  /// `soft_labels[i]` is a distribution over `cardinality` classes.
  Status Fit(const std::vector<FeatureVector>& features, size_t num_buckets,
             const std::vector<std::vector<double>>& soft_labels,
             int cardinality);

  /// Convenience: hard labels in {1..K} become one-hot targets.
  Status FitHard(const std::vector<FeatureVector>& features,
                 size_t num_buckets, const std::vector<Label>& labels,
                 int cardinality);

  bool is_fit() const { return is_fit_; }
  int cardinality() const { return cardinality_; }

  /// Class posteriors, ordered class 1..K.
  std::vector<std::vector<double>> PredictProba(
      const std::vector<FeatureVector>& features) const;

  /// MAP labels in {1..K}.
  std::vector<Label> PredictLabels(
      const std::vector<FeatureVector>& features) const;

 private:
  DiscModelOptions options_;
  bool is_fit_ = false;
  int cardinality_ = 0;
  size_t num_buckets_ = 0;
  // weights_[c * num_buckets_ + f]; biases_[c].
  std::vector<double> weights_;
  std::vector<double> biases_;
};

}  // namespace snorkel

#endif  // SNORKEL_DISC_LINEAR_MODEL_H_
