#include "disc/features.h"

#include <algorithm>

#include "text/stemmer.h"
#include "util/string_util.h"

namespace snorkel {

FeatureVector HashBagOfWords(const std::vector<std::string>& words,
                             const FeatureHasher& hasher,
                             std::string_view prefix) {
  FeatureVector out;
  std::string buffer;
  for (const auto& word : words) {
    buffer.assign(prefix);
    buffer += ':';
    buffer += ToLower(word);
    hasher.AddFeature(buffer, 1.0f, &out);
  }
  return out;
}

FeatureVector TextFeaturizer::Featurize(const CandidateView& view) const {
  FeatureVector out;
  std::string buffer;
  auto add = [&](std::string_view ns, const std::string& value) {
    buffer.assign(ns);
    buffer += ':';
    buffer += value;
    hasher_.AddFeature(buffer, 1.0f, &out);
  };

  // Between-span unigrams (raw and stemmed) and bigrams.
  std::vector<std::string> between = view.WordsBetween();
  for (size_t i = 0; i < between.size(); ++i) {
    std::string lower = ToLower(between[i]);
    add("btw", lower);
    add("btw_stem", Stemmer::Stem(lower));
    if (options_.use_bigrams && i + 1 < between.size()) {
      add("btw_bi", lower + "_" + ToLower(between[i + 1]));
    }
  }

  // Context windows.
  for (const auto& word : view.WordsLeftOfFirst(options_.context_window)) {
    add("left", ToLower(word));
  }
  for (const auto& word : view.WordsRightOfSecond(options_.context_window)) {
    add("right", ToLower(word));
  }

  // Whole-sentence unigrams: the discriminative model reads the entire
  // context (the paper's LSTM consumes the full sentence), which is what
  // lets it pick up signal the labeling functions never look at. Words
  // inside the entity spans are skipped for the same no-memorization reason
  // as above.
  const Span& s1 = view.candidate().span1;
  const Span& s2 = view.candidate().span2;
  const auto& sentence_words = view.sentence().words;
  for (size_t w = 0; w < sentence_words.size(); ++w) {
    bool in_span = (w >= s1.word_start && w < s1.word_end) ||
                   (w >= s2.word_start && w < s2.word_end);
    if (in_span) continue;
    add("sent", ToLower(sentence_words[w]));
  }

  // Entity types and span order. Span surface forms are deliberately NOT
  // features: memorizing entity-pair identities would smuggle the training
  // split's relation list across to test (the model should generalize to
  // unseen pairs, as the paper's end models must).
  add("type1", view.candidate().span1.entity_type);
  add("type2", view.candidate().span2.entity_type);
  add("order", view.Span1First() ? "forward" : "reverse");

  // Bucketed token distance.
  size_t distance = view.TokenDistance();
  std::string bucket = distance == 0   ? "0"
                       : distance <= 2 ? "1-2"
                       : distance <= 5 ? "3-5"
                       : distance <= 10 ? "6-10"
                                        : "10+";
  add("dist", bucket);
  return out;
}

}  // namespace snorkel
