#ifndef SNORKEL_DISC_MLP_H_
#define SNORKEL_DISC_MLP_H_

#include <vector>

#include "core/types.h"
#include "disc/features.h"
#include "disc/linear_model.h"
#include "util/status.h"

namespace snorkel {

/// A one-hidden-layer ReLU network over hashed sparse features with a
/// sigmoid output, trained with the noise-aware binary loss (§2.3). This is
/// the nonlinear end model stand-in for the paper's LSTM (DESIGN.md
/// substitutions): unlike LogisticRegressionClassifier it can pick up
/// feature conjunctions, which matters for the cross-modal tasks where the
/// signal is distributed.
class MlpClassifier {
 public:
  struct Options {
    size_t hidden_units = 32;
    DiscModelOptions train;
  };

  explicit MlpClassifier(Options options);
  MlpClassifier() : MlpClassifier(Options{}) {}

  /// Fits on probabilistic targets ỹ_i = P(y_i = +1).
  Status Fit(const std::vector<FeatureVector>& features, size_t num_buckets,
             const std::vector<double>& soft_labels);

  /// Trains on hard ±1 labels.
  Status FitHard(const std::vector<FeatureVector>& features,
                 size_t num_buckets, const std::vector<Label>& labels);

  bool is_fit() const { return is_fit_; }

  std::vector<double> PredictProba(
      const std::vector<FeatureVector>& features) const;
  std::vector<Label> PredictLabels(
      const std::vector<FeatureVector>& features) const;

 private:
  double Forward(const FeatureVector& x, std::vector<double>* hidden) const;

  Options options_;
  bool is_fit_ = false;
  size_t num_buckets_ = 0;
  // w1_[h * num_buckets_ + f], b1_[h], w2_[h], b2_.
  std::vector<float> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace snorkel

#endif  // SNORKEL_DISC_MLP_H_
