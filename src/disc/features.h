#ifndef SNORKEL_DISC_FEATURES_H_
#define SNORKEL_DISC_FEATURES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/candidate.h"
#include "util/hash.h"

namespace snorkel {

/// A sparse feature vector: (hashed index, value) pairs. Indices may repeat;
/// consumers accumulate.
struct FeatureVector {
  std::vector<std::pair<uint32_t, float>> entries;

  void Add(uint32_t index, float value) { entries.push_back({index, value}); }
  size_t size() const { return entries.size(); }
};

/// Deterministic feature hasher (hashing trick): maps string feature names
/// into a fixed index space so train and inference agree without a vocab.
class FeatureHasher {
 public:
  explicit FeatureHasher(size_t num_buckets = 1 << 18)
      : num_buckets_(num_buckets) {}

  size_t num_buckets() const { return num_buckets_; }

  uint32_t Index(std::string_view feature) const {
    return static_cast<uint32_t>(Fnv1a64(feature) % num_buckets_);
  }

  /// Adds one hashed feature with the given value.
  void AddFeature(std::string_view feature, float value,
                  FeatureVector* out) const {
    out->Add(Index(feature), value);
  }

 private:
  size_t num_buckets_;
};

/// Hashes a bag of words with a namespace prefix ("bow:word").
FeatureVector HashBagOfWords(const std::vector<std::string>& words,
                             const FeatureHasher& hasher,
                             std::string_view prefix);

/// Extracts hashed n-gram features from a relation candidate: unigrams and
/// bigrams between the spans, context windows, span texts, entity types, and
/// a bucketed token distance. This is the feature layer for the relation
/// extraction end models — the CPU substitute for the paper's learned LSTM
/// representations (§4.1; see DESIGN.md substitutions). Critically, it
/// includes words the labeling functions never look at, which is what lets
/// the discriminative model generalize beyond the LFs (Example 2.5).
class TextFeaturizer {
 public:
  struct Options {
    size_t num_buckets = 1 << 18;
    size_t context_window = 3;
    bool use_bigrams = true;
  };

  explicit TextFeaturizer(Options options)
      : options_(options), hasher_(options.num_buckets) {}
  TextFeaturizer() : TextFeaturizer(Options{}) {}

  size_t num_buckets() const { return options_.num_buckets; }

  FeatureVector Featurize(const CandidateView& view) const;

 private:
  Options options_;
  FeatureHasher hasher_;
};

}  // namespace snorkel

#endif  // SNORKEL_DISC_FEATURES_H_
