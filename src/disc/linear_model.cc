#include "disc/linear_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "eval/metrics.h"
#include "util/math_util.h"
#include "util/random.h"

namespace snorkel {

namespace {

/// Per-coordinate AdaGrad state touched sparsely — dense Adam over the full
/// hashed weight space would dominate training time.
struct AdaGrad {
  explicit AdaGrad(size_t dim) : g2(dim, 0.0) {}

  double Step(size_t i, double grad, double lr) {
    g2[i] += grad * grad;
    return -lr * grad / (std::sqrt(g2[i]) + 1e-8);
  }

  std::vector<double> g2;
};

}  // namespace

LogisticRegressionClassifier::LogisticRegressionClassifier(
    DiscModelOptions options)
    : options_(options) {}

Status LogisticRegressionClassifier::Restore(std::vector<double> weights,
                                             double bias) {
  if (weights.empty()) {
    return Status::InvalidArgument("cannot restore a zero-bucket classifier");
  }
  weights_ = std::move(weights);
  bias_ = bias;
  is_fit_ = true;
  return Status::OK();
}

Status LogisticRegressionClassifier::Fit(
    const std::vector<FeatureVector>& features, size_t num_buckets,
    const std::vector<double>& soft_labels,
    const std::vector<FeatureVector>* dev_features,
    const std::vector<Label>* dev_labels) {
  if (features.size() != soft_labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  for (double y : soft_labels) {
    if (y < 0.0 || y > 1.0) {
      return Status::InvalidArgument("soft labels must lie in [0, 1]");
    }
  }
  if ((dev_features == nullptr) != (dev_labels == nullptr)) {
    return Status::InvalidArgument("dev features and labels must come together");
  }

  weights_.assign(num_buckets, 0.0);
  bias_ = 0.0;
  AdaGrad state(num_buckets + 1);  // Last slot: bias.
  Rng rng(options_.seed);

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double best_dev_f1 = -1.0;
  std::vector<double> best_weights;
  double best_bias = 0.0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      double p = Sigmoid(Score(features[i]));
      double g = p - soft_labels[i];  // dLoss/dLogit.
      for (const auto& [f, v] : features[i].entries) {
        weights_[f] += state.Step(f, g * v, options_.learning_rate);
      }
      bias_ += state.Step(num_buckets, g, options_.learning_rate);
    }
    // L2 as per-epoch weight decay (cheap dense pass).
    if (options_.l2 > 0.0) {
      double decay = 1.0 - options_.learning_rate * options_.l2;
      for (double& w : weights_) w *= decay;
    }
    if (dev_features != nullptr) {
      is_fit_ = true;
      auto conf = ComputeBinaryConfusion(PredictLabels(*dev_features),
                                         *dev_labels);
      if (conf.F1() > best_dev_f1) {
        best_dev_f1 = conf.F1();
        best_weights = weights_;
        best_bias = bias_;
      }
    }
  }
  if (dev_features != nullptr && !best_weights.empty()) {
    weights_ = std::move(best_weights);
    bias_ = best_bias;
  }
  is_fit_ = true;
  return Status::OK();
}

Status LogisticRegressionClassifier::FitHard(
    const std::vector<FeatureVector>& features, size_t num_buckets,
    const std::vector<Label>& labels,
    const std::vector<FeatureVector>* dev_features,
    const std::vector<Label>* dev_labels) {
  std::vector<double> soft(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    soft[i] = labels[i] > 0 ? 1.0 : 0.0;
  }
  return Fit(features, num_buckets, soft, dev_features, dev_labels);
}

double LogisticRegressionClassifier::Score(const FeatureVector& features) const {
  double z = bias_;
  for (const auto& [f, v] : features.entries) {
    assert(f < weights_.size());
    z += weights_[f] * v;
  }
  return z;
}

std::vector<double> LogisticRegressionClassifier::PredictProba(
    const std::vector<FeatureVector>& features) const {
  assert(is_fit_);
  std::vector<double> out(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    out[i] = Sigmoid(Score(features[i]));
  }
  return out;
}

std::vector<Label> LogisticRegressionClassifier::PredictLabels(
    const std::vector<FeatureVector>& features) const {
  auto proba = PredictProba(features);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] > 0.5 ? 1 : -1;
  return out;
}

// --------------------------------------------------------------- Softmax --

SoftmaxRegressionClassifier::SoftmaxRegressionClassifier(
    DiscModelOptions options)
    : options_(options) {}

Status SoftmaxRegressionClassifier::Fit(
    const std::vector<FeatureVector>& features, size_t num_buckets,
    const std::vector<std::vector<double>>& soft_labels, int cardinality) {
  if (features.size() != soft_labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  size_t k = static_cast<size_t>(cardinality);
  for (const auto& q : soft_labels) {
    if (q.size() != k) {
      return Status::InvalidArgument("soft label with wrong cardinality");
    }
  }

  cardinality_ = cardinality;
  num_buckets_ = num_buckets;
  weights_.assign(k * num_buckets, 0.0);
  biases_.assign(k, 0.0);
  AdaGrad state(k * (num_buckets + 1));
  Rng rng(options_.seed);

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> logits(k);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      for (size_t c = 0; c < k; ++c) {
        double z = biases_[c];
        for (const auto& [f, v] : features[i].entries) {
          z += weights_[c * num_buckets_ + f] * v;
        }
        logits[c] = z;
      }
      SoftmaxInPlace(&logits);
      for (size_t c = 0; c < k; ++c) {
        double g = logits[c] - soft_labels[i][c];
        for (const auto& [f, v] : features[i].entries) {
          size_t idx = c * num_buckets_ + f;
          weights_[idx] += state.Step(idx, g * v, options_.learning_rate);
        }
        biases_[c] +=
            state.Step(k * num_buckets_ + c, g, options_.learning_rate);
      }
    }
    if (options_.l2 > 0.0) {
      double decay = 1.0 - options_.learning_rate * options_.l2;
      for (double& w : weights_) w *= decay;
    }
  }
  is_fit_ = true;
  return Status::OK();
}

Status SoftmaxRegressionClassifier::FitHard(
    const std::vector<FeatureVector>& features, size_t num_buckets,
    const std::vector<Label>& labels, int cardinality) {
  std::vector<std::vector<double>> soft(
      labels.size(), std::vector<double>(static_cast<size_t>(cardinality), 0.0));
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 1 || labels[i] > cardinality) {
      return Status::InvalidArgument("hard label out of range");
    }
    soft[i][static_cast<size_t>(labels[i]) - 1] = 1.0;
  }
  return Fit(features, num_buckets, soft, cardinality);
}

std::vector<std::vector<double>> SoftmaxRegressionClassifier::PredictProba(
    const std::vector<FeatureVector>& features) const {
  assert(is_fit_);
  size_t k = static_cast<size_t>(cardinality_);
  std::vector<std::vector<double>> out(features.size(),
                                       std::vector<double>(k, 0.0));
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t c = 0; c < k; ++c) {
      double z = biases_[c];
      for (const auto& [f, v] : features[i].entries) {
        z += weights_[c * num_buckets_ + f] * v;
      }
      out[i][c] = z;
    }
    SoftmaxInPlace(&out[i]);
  }
  return out;
}

std::vector<Label> SoftmaxRegressionClassifier::PredictLabels(
    const std::vector<FeatureVector>& features) const {
  auto proba = PredictProba(features);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < proba[i].size(); ++c) {
      if (proba[i][c] > proba[i][best]) best = c;
    }
    out[i] = static_cast<Label>(best) + 1;
  }
  return out;
}

}  // namespace snorkel
