#include "disc/mlp.h"

#include <cassert>
#include <cmath>

#include "util/math_util.h"
#include "util/random.h"

namespace snorkel {

MlpClassifier::MlpClassifier(Options options) : options_(options) {}

double MlpClassifier::Forward(const FeatureVector& x,
                              std::vector<double>* hidden) const {
  size_t h_units = options_.hidden_units;
  hidden->assign(h_units, 0.0);
  for (size_t h = 0; h < h_units; ++h) (*hidden)[h] = b1_[h];
  for (const auto& [f, v] : x.entries) {
    const float* col = &w1_[static_cast<size_t>(f) * h_units];
    for (size_t h = 0; h < h_units; ++h) {
      (*hidden)[h] += static_cast<double>(col[h]) * v;
    }
  }
  double z = b2_;
  for (size_t h = 0; h < h_units; ++h) {
    if ((*hidden)[h] < 0.0) (*hidden)[h] = 0.0;  // ReLU.
    z += w2_[h] * (*hidden)[h];
  }
  return z;
}

Status MlpClassifier::Fit(const std::vector<FeatureVector>& features,
                          size_t num_buckets,
                          const std::vector<double>& soft_labels) {
  if (features.size() != soft_labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  for (double y : soft_labels) {
    if (y < 0.0 || y > 1.0) {
      return Status::InvalidArgument("soft labels must lie in [0, 1]");
    }
  }

  size_t h_units = options_.hidden_units;
  num_buckets_ = num_buckets;
  Rng rng(options_.train.seed);

  // He-style initialization for the ReLU layer; zero output layer.
  w1_.assign(num_buckets * h_units, 0.0f);
  double scale = std::sqrt(2.0 / static_cast<double>(h_units));
  for (auto& w : w1_) w = static_cast<float>(rng.Normal(0.0, scale * 0.1));
  b1_.assign(h_units, 0.01);
  w2_.assign(h_units, 0.0);
  for (auto& w : w2_) w = rng.Normal(0.0, scale);
  b2_ = 0.0;

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> hidden(h_units);
  double lr = options_.train.learning_rate;

  for (int epoch = 0; epoch < options_.train.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Simple 1/sqrt(t) decay keeps the sparse updates stable.
    double step = lr / std::sqrt(1.0 + static_cast<double>(epoch));
    for (size_t i : order) {
      double z = Forward(features[i], &hidden);
      double p = Sigmoid(z);
      double g_out = p - soft_labels[i];  // dLoss/dz.

      // Output layer.
      for (size_t h = 0; h < h_units; ++h) {
        double g_w2 = g_out * hidden[h];
        double g_h = g_out * w2_[h];
        w2_[h] -= step * g_w2;
        if (hidden[h] > 0.0) {  // ReLU gate.
          b1_[h] -= step * g_h;
          for (const auto& [f, v] : features[i].entries) {
            w1_[static_cast<size_t>(f) * h_units + h] -=
                static_cast<float>(step * g_h * v);
          }
        }
      }
      b2_ -= step * g_out;
    }
    if (options_.train.l2 > 0.0) {
      double decay = 1.0 - step * options_.train.l2;
      for (auto& w : w2_) w *= decay;
    }
  }
  is_fit_ = true;
  return Status::OK();
}

Status MlpClassifier::FitHard(const std::vector<FeatureVector>& features,
                              size_t num_buckets,
                              const std::vector<Label>& labels) {
  std::vector<double> soft(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    soft[i] = labels[i] > 0 ? 1.0 : 0.0;
  }
  return Fit(features, num_buckets, soft);
}

std::vector<double> MlpClassifier::PredictProba(
    const std::vector<FeatureVector>& features) const {
  assert(is_fit_);
  std::vector<double> out(features.size());
  std::vector<double> hidden;
  for (size_t i = 0; i < features.size(); ++i) {
    out[i] = Sigmoid(Forward(features[i], &hidden));
  }
  return out;
}

std::vector<Label> MlpClassifier::PredictLabels(
    const std::vector<FeatureVector>& features) const {
  auto proba = PredictProba(features);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] > 0.5 ? 1 : -1;
  return out;
}

}  // namespace snorkel
