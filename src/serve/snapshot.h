#ifndef SNORKEL_SERVE_SNAPSHOT_H_
#define SNORKEL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/generative_model.h"
#include "core/types.h"
#include "disc/linear_model.h"
#include "util/status.h"

namespace snorkel {

/// On-disk snapshot format version this build writes and reads. Loading a
/// file with any other version fails with FailedPrecondition — version gates
/// are checked before a single payload byte is decoded.
inline constexpr uint32_t kSnapshotVersion = 1;

/// File layout: magic "SNKS" | version u32 | payload_size u64 | payload |
/// fnv1a64(payload). The checksum makes truncation and bit corruption a
/// detected IOError instead of silently-wrong posteriors.
inline constexpr char kSnapshotMagic[4] = {'S', 'N', 'K', 'S'};

/// Everything needed to serve labels without re-running the Figure 2 loop:
/// the fitted generative label model (weights + learned correlation
/// structure + class balance), the labeling-function metadata it was fit
/// over, and optionally the noise-aware discriminative model with its
/// feature-space size. LF *code* cannot be serialized — callers re-supply
/// the LabelingFunctionSet at load time and the service validates it against
/// the stored names/fingerprints (LabelService::Create).
struct ModelSnapshot {
  // ---- LF-set metadata (identity of the Λ columns). ----
  std::vector<std::string> lf_names;
  std::vector<uint64_t> lf_fingerprints;
  int32_t cardinality = 2;

  // ---- Generative label model. ----
  double class_balance = 0.5;
  std::vector<double> acc_weights;
  std::vector<double> lab_weights;
  std::vector<double> corr_weights;
  std::vector<CorrelationPair> correlations;

  // ---- Discriminative model (optional). ----
  bool has_disc_model = false;
  uint64_t feature_buckets = 0;
  std::vector<double> disc_weights;
  double disc_bias = 0.0;

  /// Captures a fitted generative model plus the LF metadata it was trained
  /// over. `lf_names`/`lf_fingerprints` must align with the model's columns.
  static Result<ModelSnapshot> Capture(
      const GenerativeModel& model, std::vector<std::string> lf_names,
      std::vector<uint64_t> lf_fingerprints);

  /// Attaches a fitted discriminative model (feature_buckets = the hasher's
  /// bucket count, required to rebuild an index-compatible featurizer).
  Status AttachDiscModel(const LogisticRegressionClassifier& disc,
                         uint64_t feature_buckets);

  /// Rebuilds the generative model; posteriors match the captured model
  /// bitwise. `options` seeds everything except the restored weights and
  /// class balance.
  Result<GenerativeModel> RestoreGenerativeModel(
      GenerativeModelOptions options = {}) const;

  /// Rebuilds the discriminative model (FailedPrecondition when the
  /// snapshot carries none).
  Result<LogisticRegressionClassifier> RestoreDiscModel(
      DiscModelOptions options = {}) const;

  size_t num_lfs() const { return lf_names.size(); }
};

/// Encodes a snapshot to the versioned checksummed wire format.
std::string SerializeSnapshot(const ModelSnapshot& snapshot);

/// Decodes a snapshot; rejects bad magic (InvalidArgument), unknown versions
/// (FailedPrecondition), and truncation / checksum mismatch (IOError).
Result<ModelSnapshot> DeserializeSnapshot(std::string_view data);

/// Serialize-to-file / load-from-file conveniences.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);
Result<ModelSnapshot> LoadSnapshot(const std::string& path);

/// How LoadSnapshotMapped actually got the bytes.
struct SnapshotLoadInfo {
  /// True when the file was decoded from an mmap'd view (the artifact bytes
  /// are page-cache shared across every process that maps the same file);
  /// false when the read-copy fallback ran.
  bool used_mmap = false;
  size_t file_bytes = 0;
};

/// LoadSnapshot via an mmap'd view of the file instead of a heap read-copy:
/// the decode runs directly over the mapped pages, so no file-sized
/// intermediate buffer is materialized and all serving replicas in a process
/// tree share one page-cache copy of the weight payload (cold-start for the
/// Nth replica is page faults, not a full read). Checksum, version-gate, and
/// truncation validation are identical to LoadSnapshot — corruption on the
/// mapped path is the same detected IOError. Falls back to a read-copy on
/// platforms (or filesystems) without mmap; `info` (optional) reports which
/// path ran.
Result<ModelSnapshot> LoadSnapshotMapped(const std::string& path,
                                         SnapshotLoadInfo* info = nullptr);

}  // namespace snorkel

#endif  // SNORKEL_SERVE_SNAPSHOT_H_
