#ifndef SNORKEL_SERVE_SNAPSHOT_H_
#define SNORKEL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dawid_skene.h"
#include "core/generative_model.h"
#include "core/types.h"
#include "disc/linear_model.h"
#include "util/status.h"

namespace snorkel {

class CompiledLfProgram;

/// On-disk snapshot format version this build writes. Version 2 is a
/// SECTIONED format (see below); version-1 files remain loadable through a
/// compat path. Versions above kSnapshotVersion fail with
/// FailedPrecondition before a single payload byte is decoded.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotVersionV1 = 1;

inline constexpr char kSnapshotMagic[4] = {'S', 'N', 'K', 'S'};

/// Version-2 file layout:
///
///   magic "SNKS" | u32 version=2 | u32 section_count |
///   section_count × ( tag[4] | u64 payload_size | payload
///                     | u64 fnv1a64(payload) )
///
/// Every section is named, length-prefixed, and individually checksummed,
/// with SKIP-UNKNOWN semantics: a reader that does not recognize a tag
/// verifies its checksum and skips it (counted in
/// ModelSnapshot::skipped_sections), so old binaries read
/// forward-compatible files written by newer ones. Known sections tolerate
/// TRAILING payload bytes for the same reason (a newer writer may append
/// fields). Corruption or truncation anywhere — in a known or unknown
/// section — is a typed IOError naming the section, never UB.
inline constexpr char kSectionLfMetadata[4] = {'L', 'F', 'M', 'D'};
inline constexpr char kSectionGenModel[4] = {'G', 'E', 'N', 'M'};
inline constexpr char kSectionDawidSkene[4] = {'D', 'A', 'W', 'D'};
inline constexpr char kSectionDiscModel[4] = {'D', 'I', 'S', 'C'};
inline constexpr char kSectionCompiledLf[4] = {'L', 'F', 'C', 'P'};

/// Everything needed to serve labels without re-running the Figure 2 loop:
/// the LF metadata identifying Λ's columns (LFMD, always present), then one
/// label model — the binary generative model (GENM) and/or the K-class
/// Dawid-Skene model (DAWD) — and optionally the noise-aware discriminative
/// model (DISC). LF *code* cannot be serialized — callers re-supply the
/// LabelingFunctionSet at load time and the service validates it against
/// the stored names/fingerprints (LabelService::Create).
struct ModelSnapshot {
  // ---- LFMD: identity of the Λ columns. ----
  std::vector<std::string> lf_names;
  std::vector<uint64_t> lf_fingerprints;
  int32_t cardinality = 2;

  // ---- GENM: binary generative label model. ----
  bool has_gen_model = false;
  double class_balance = 0.5;
  std::vector<double> acc_weights;
  std::vector<double> lab_weights;
  std::vector<double> corr_weights;
  std::vector<CorrelationPair> correlations;

  // ---- DAWD: K-class Dawid-Skene label model. ----
  bool has_ds_model = false;
  /// Class priors, length = cardinality.
  std::vector<double> ds_class_priors;
  /// Confusion matrices flattened row-major [j][c][c'] (true class c,
  /// emitted class c'), length = num_lfs · cardinality².
  std::vector<double> ds_confusions;

  // ---- DISC: discriminative model (optional). ----
  bool has_disc_model = false;
  uint64_t feature_buckets = 0;
  std::vector<double> disc_weights;
  double disc_bias = 0.0;

  // ---- LFCP: compiled LF execution artifact (optional). ----
  /// Pre-lowered automata for the declarative LF families
  /// (lf/compiled/program.h), validated against the LFMD fingerprints on
  /// load so a stale program can never be dispatched against a different
  /// LF set. Old readers skip the section (checksum-verified) and keep
  /// serving interpreted; a snapshot without it serves interpreted too.
  std::shared_ptr<const CompiledLfProgram> compiled_lfs;

  /// Unknown sections skipped (checksum-verified) during the last
  /// deserialization of this snapshot; 0 for captured snapshots.
  uint32_t skipped_sections = 0;

  /// Rollout identity of the ARTIFACT this snapshot came from, not part of
  /// the wire payload: the store version a SnapshotStore loaded it at
  /// (0 = not store-managed — captured in memory or loaded from a bare
  /// file). Services surface it in their stats so a fleet-wide snapshot
  /// rollout is observable per shard.
  uint64_t artifact_version = 0;

  /// Content identity of this snapshot: FNV-1a64 over its canonical v2
  /// serialization. Stable across processes and load paths (a v1 file and
  /// the v2 re-encode of the same model agree), so two shards report equal
  /// checksums exactly when they serve the same model bytes.
  uint64_t CanonicalChecksum() const;

  /// Captures a fitted binary generative model plus the LF metadata it was
  /// trained over. `lf_names`/`lf_fingerprints` must align with the model's
  /// columns.
  static Result<ModelSnapshot> Capture(
      const GenerativeModel& model, std::vector<std::string> lf_names,
      std::vector<uint64_t> lf_fingerprints);

  /// Captures a fitted Dawid-Skene model (any cardinality) — the K-class
  /// Crowd-task serving artifact. The snapshot's cardinality is the
  /// model's.
  static Result<ModelSnapshot> CaptureDawidSkene(
      const DawidSkeneModel& model, std::vector<std::string> lf_names,
      std::vector<uint64_t> lf_fingerprints);

  /// Attaches a fitted discriminative model (feature_buckets = the hasher's
  /// bucket count, required to rebuild an index-compatible featurizer).
  Status AttachDiscModel(const LogisticRegressionClassifier& disc,
                         uint64_t feature_buckets);

  /// Rebuilds the generative model (FailedPrecondition when the snapshot
  /// carries none); posteriors match the captured model bitwise. `options`
  /// seeds everything except the restored weights and class balance.
  Result<GenerativeModel> RestoreGenerativeModel(
      GenerativeModelOptions options = {}) const;

  /// Rebuilds the Dawid-Skene model (FailedPrecondition when the snapshot
  /// carries none); posteriors match the captured model bitwise.
  Result<DawidSkeneModel> RestoreDawidSkeneModel(
      DawidSkeneOptions options = {}) const;

  /// Rebuilds the discriminative model (FailedPrecondition when the
  /// snapshot carries none).
  Result<LogisticRegressionClassifier> RestoreDiscModel(
      DiscModelOptions options = {}) const;

  size_t num_lfs() const { return lf_names.size(); }
};

/// Encodes a snapshot to the version-2 sectioned wire format.
std::string SerializeSnapshot(const ModelSnapshot& snapshot);

/// Legacy version-1 writer, kept for downgrade paths and the committed
/// format-evolution fixtures. V1 has no sections, so it cannot express a
/// Dawid-Skene model (InvalidArgument) and requires a generative model
/// (v1's payload unconditionally carries one). An attached compiled-LF
/// program is silently omitted (unlike model weights it is derivable: the
/// appliers recompile it from the live LF set on first use).
Result<std::string> SerializeSnapshotV1(const ModelSnapshot& snapshot);

/// Decodes a version-1 or version-2 snapshot; rejects bad magic
/// (InvalidArgument), versions above kSnapshotVersion (FailedPrecondition),
/// and truncation / per-section checksum mismatch (IOError). Unknown v2
/// sections are skipped, not errors.
Result<ModelSnapshot> DeserializeSnapshot(std::string_view data);

/// One section's framing as it appears in a v2 file, for tooling
/// (tools/snapshot_diff) and tests.
struct SnapshotSectionInfo {
  std::string tag;        // 4 bytes.
  uint64_t payload_size = 0;
  uint64_t checksum = 0;  // As recorded in the file.
  bool checksum_ok = false;
  bool known = false;     // Tag recognized by this build.
};

/// Walks a v2 file's section table without decoding payloads (checksums
/// are still verified and reported). V1 files are a FailedPrecondition
/// (unsectioned); framing-level truncation is an IOError.
Result<std::vector<SnapshotSectionInfo>> ListSnapshotSections(
    std::string_view data);

/// Serialize-to-file / load-from-file conveniences.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);
Result<ModelSnapshot> LoadSnapshot(const std::string& path);

/// How LoadSnapshotMapped actually got the bytes.
struct SnapshotLoadInfo {
  /// True when the file was decoded from an mmap'd view (the artifact bytes
  /// are page-cache shared across every process that maps the same file);
  /// false when the read-copy fallback ran.
  bool used_mmap = false;
  size_t file_bytes = 0;
};

/// LoadSnapshot via an mmap'd view of the file instead of a heap read-copy:
/// the decode runs directly over the mapped pages, so no file-sized
/// intermediate buffer is materialized and all serving replicas in a process
/// tree share one page-cache copy of the weight payload (cold-start for the
/// Nth replica is page faults, not a full read). Checksum, version-gate, and
/// truncation validation are identical to LoadSnapshot — corruption on the
/// mapped path is the same detected IOError. Falls back to a read-copy on
/// platforms (or filesystems) without mmap; `info` (optional) reports which
/// path ran.
Result<ModelSnapshot> LoadSnapshotMapped(const std::string& path,
                                         SnapshotLoadInfo* info = nullptr);

}  // namespace snorkel

#endif  // SNORKEL_SERVE_SNAPSHOT_H_
