#include "serve/snapshot.h"

#include <algorithm>
#include <cstring>

#include "util/binary_io.h"
#include "util/hash.h"
#include "util/mmap_file.h"

namespace snorkel {

Result<ModelSnapshot> ModelSnapshot::Capture(
    const GenerativeModel& model, std::vector<std::string> lf_names,
    std::vector<uint64_t> lf_fingerprints) {
  if (!model.is_fit()) {
    return Status::FailedPrecondition("cannot snapshot an unfit model");
  }
  if (lf_names.size() != model.num_lfs() ||
      lf_fingerprints.size() != model.num_lfs()) {
    return Status::InvalidArgument(
        "LF metadata does not align with the model's columns");
  }
  ModelSnapshot snapshot;
  snapshot.lf_names = std::move(lf_names);
  snapshot.lf_fingerprints = std::move(lf_fingerprints);
  snapshot.class_balance = model.class_balance();
  snapshot.acc_weights = model.accuracy_weights();
  snapshot.lab_weights = model.propensity_weights();
  snapshot.corr_weights = model.correlation_weights();
  snapshot.correlations = model.correlations();
  return snapshot;
}

Status ModelSnapshot::AttachDiscModel(const LogisticRegressionClassifier& disc,
                                      uint64_t feature_buckets) {
  if (!disc.is_fit()) {
    return Status::FailedPrecondition("cannot snapshot an unfit classifier");
  }
  if (disc.weights().size() != feature_buckets) {
    return Status::InvalidArgument(
        "classifier weight count does not match feature_buckets");
  }
  has_disc_model = true;
  this->feature_buckets = feature_buckets;
  disc_weights = disc.weights();
  disc_bias = disc.bias();
  return Status::OK();
}

Result<GenerativeModel> ModelSnapshot::RestoreGenerativeModel(
    GenerativeModelOptions options) const {
  options.class_balance = class_balance;
  GenerativeModel model(options);
  Status status = model.RestoreWeights(lf_names.size(), acc_weights,
                                       lab_weights, corr_weights, correlations);
  if (!status.ok()) return status;
  return model;
}

Result<LogisticRegressionClassifier> ModelSnapshot::RestoreDiscModel(
    DiscModelOptions options) const {
  if (!has_disc_model) {
    return Status::FailedPrecondition("snapshot carries no disc model");
  }
  LogisticRegressionClassifier disc(options);
  Status status = disc.Restore(disc_weights, disc_bias);
  if (!status.ok()) return status;
  return disc;
}

std::string SerializeSnapshot(const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  payload.WriteStringVector(snapshot.lf_names);
  payload.WriteU64Vector(snapshot.lf_fingerprints);
  payload.WriteI32(snapshot.cardinality);
  payload.WriteF64(snapshot.class_balance);
  payload.WriteF64Vector(snapshot.acc_weights);
  payload.WriteF64Vector(snapshot.lab_weights);
  payload.WriteF64Vector(snapshot.corr_weights);
  payload.WriteU64(snapshot.correlations.size());
  for (const CorrelationPair& pair : snapshot.correlations) {
    payload.WriteU64(pair.j);
    payload.WriteU64(pair.k);
  }
  payload.WriteU32(snapshot.has_disc_model ? 1 : 0);
  if (snapshot.has_disc_model) {
    payload.WriteU64(snapshot.feature_buckets);
    payload.WriteF64Vector(snapshot.disc_weights);
    payload.WriteF64(snapshot.disc_bias);
  }

  std::string buffer(kSnapshotMagic, sizeof(kSnapshotMagic));
  BinaryWriter header;
  header.WriteU32(kSnapshotVersion);
  header.WriteU64(payload.buffer().size());
  buffer += header.buffer();
  buffer += payload.buffer();
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1a64(payload.buffer()));
  buffer += checksum.buffer();
  return buffer;
}

Result<ModelSnapshot> DeserializeSnapshot(std::string_view data) {
  if (data.size() < sizeof(kSnapshotMagic) + sizeof(uint32_t) +
                        sizeof(uint64_t) + sizeof(uint64_t)) {
    return Status::IOError("snapshot file shorter than its header");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("bad snapshot magic; not a snapshot file");
  }
  BinaryReader header(data.substr(sizeof(kSnapshotMagic)));
  uint32_t version = header.ReadU32();
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  uint64_t payload_size = header.ReadU64();
  size_t payload_begin = sizeof(kSnapshotMagic) + header.position();
  if (payload_size + sizeof(uint64_t) > data.size() - payload_begin) {
    return Status::IOError("snapshot truncated: payload extends past EOF");
  }
  std::string_view payload = data.substr(payload_begin, payload_size);
  BinaryReader trailer(data.substr(payload_begin + payload_size));
  uint64_t expected_checksum = trailer.ReadU64();
  if (Fnv1a64(payload) != expected_checksum) {
    return Status::IOError("snapshot checksum mismatch: payload corrupted");
  }

  BinaryReader reader(payload);
  ModelSnapshot snapshot;
  snapshot.lf_names = reader.ReadStringVector();
  snapshot.lf_fingerprints = reader.ReadU64Vector();
  snapshot.cardinality = reader.ReadI32();
  snapshot.class_balance = reader.ReadF64();
  snapshot.acc_weights = reader.ReadF64Vector();
  snapshot.lab_weights = reader.ReadF64Vector();
  snapshot.corr_weights = reader.ReadF64Vector();
  uint64_t num_corr = reader.ReadU64();
  if (reader.ok() && num_corr > snapshot.lf_names.size() *
                                    std::max<uint64_t>(
                                        snapshot.lf_names.size(), 1)) {
    return Status::IOError("snapshot correlation count implausibly large");
  }
  snapshot.correlations.reserve(reader.ok() ? num_corr : 0);
  for (uint64_t i = 0; reader.ok() && i < num_corr; ++i) {
    CorrelationPair pair;
    pair.j = reader.ReadU64();
    pair.k = reader.ReadU64();
    snapshot.correlations.push_back(pair);
  }
  snapshot.has_disc_model = reader.ReadU32() != 0;
  if (snapshot.has_disc_model) {
    snapshot.feature_buckets = reader.ReadU64();
    snapshot.disc_weights = reader.ReadF64Vector();
    snapshot.disc_bias = reader.ReadF64();
  }
  if (!reader.ok()) return reader.status();

  // Structural validation so a loaded snapshot can never restore into an
  // inconsistent model.
  if (snapshot.lf_names.size() != snapshot.lf_fingerprints.size() ||
      snapshot.acc_weights.size() != snapshot.lf_names.size() ||
      snapshot.lab_weights.size() != snapshot.lf_names.size() ||
      snapshot.corr_weights.size() != snapshot.correlations.size()) {
    return Status::IOError("snapshot sections disagree on LF count");
  }
  if (snapshot.has_disc_model &&
      snapshot.disc_weights.size() != snapshot.feature_buckets) {
    return Status::IOError("snapshot disc weights disagree on bucket count");
  }
  return snapshot;
}

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  return WriteFileBytes(path, SerializeSnapshot(snapshot));
}

Result<ModelSnapshot> LoadSnapshot(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeSnapshot(*bytes);
}

Result<ModelSnapshot> LoadSnapshotMapped(const std::string& path,
                                         SnapshotLoadInfo* info) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  if (info != nullptr) {
    info->used_mmap = file->is_mapped();
    info->file_bytes = file->size();
  }
  // Decode (and checksum-validate) straight off the mapped pages; the
  // mapping is released when `file` goes out of scope, after the snapshot's
  // owned vectors have been populated.
  return DeserializeSnapshot(file->view());
}

}  // namespace snorkel
