#include "serve/snapshot.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "lf/compiled/program.h"
#include "util/binary_io.h"
#include "util/hash.h"
#include "util/mmap_file.h"

namespace snorkel {

namespace {

bool TagIs(const char* tag, const char expected[4]) {
  return std::memcmp(tag, expected, 4) == 0;
}

bool KnownTag(const char* tag) {
  return TagIs(tag, kSectionLfMetadata) || TagIs(tag, kSectionGenModel) ||
         TagIs(tag, kSectionDawidSkene) || TagIs(tag, kSectionDiscModel) ||
         TagIs(tag, kSectionCompiledLf);
}

/// Frames one section: tag | u64 payload_size | payload | u64 checksum.
void AppendSection(std::string* buffer, const char tag[4],
                   const std::string& payload) {
  buffer->append(tag, 4);
  BinaryWriter framing;
  framing.WriteU64(payload.size());
  *buffer += framing.buffer();
  *buffer += payload;
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1a64(payload));
  *buffer += checksum.buffer();
}

/// Structural validation shared by the v1 and v2 readers, so a loaded
/// snapshot can never restore into an inconsistent model.
Status ValidateSnapshot(const ModelSnapshot& snapshot) {
  size_t n = snapshot.lf_names.size();
  if (snapshot.lf_fingerprints.size() != n) {
    return Status::IOError("snapshot sections disagree on LF count");
  }
  if (snapshot.cardinality < 2) {
    return Status::IOError("snapshot cardinality must be >= 2");
  }
  if (snapshot.has_gen_model &&
      (snapshot.acc_weights.size() != n || snapshot.lab_weights.size() != n ||
       snapshot.corr_weights.size() != snapshot.correlations.size())) {
    return Status::IOError("snapshot sections disagree on LF count");
  }
  if (snapshot.has_ds_model) {
    size_t k = static_cast<size_t>(snapshot.cardinality);
    if (snapshot.ds_class_priors.size() != k ||
        snapshot.ds_confusions.size() != n * k * k) {
      return Status::IOError(
          "snapshot DAWD section disagrees on cardinality or LF count");
    }
  }
  if (snapshot.has_disc_model &&
      snapshot.disc_weights.size() != snapshot.feature_buckets) {
    return Status::IOError("snapshot disc weights disagree on bucket count");
  }
  if (snapshot.compiled_lfs != nullptr) {
    // A compiled program dispatched against a different LF set would vote
    // the wrong columns, so LFCP must align with LFMD exactly: same column
    // count, and every compiled entry pinned to the fingerprint LFMD
    // records for its column. (Section order is not guaranteed, so this
    // cross-check cannot run inside the section decoder.)
    if (snapshot.compiled_lfs->num_lfs != n) {
      return Status::IOError(
          "snapshot LFCP section disagrees with LFMD on LF count");
    }
    for (const CompiledLfEntry& entry : snapshot.compiled_lfs->entries) {
      if (entry.lf_index >= n ||
          snapshot.lf_fingerprints[entry.lf_index] != entry.fingerprint) {
        return Status::IOError(
            "snapshot LFCP entry fingerprint does not match its LFMD column");
      }
    }
  }
  return Status::OK();
}

// ---- Section payload encoders (v2). ----

std::string EncodeLfMetadata(const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  payload.WriteStringVector(snapshot.lf_names);
  payload.WriteU64Vector(snapshot.lf_fingerprints);
  payload.WriteI32(snapshot.cardinality);
  return payload.TakeBuffer();
}

std::string EncodeGenModel(const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  payload.WriteF64(snapshot.class_balance);
  payload.WriteF64Vector(snapshot.acc_weights);
  payload.WriteF64Vector(snapshot.lab_weights);
  payload.WriteF64Vector(snapshot.corr_weights);
  payload.WriteU64(snapshot.correlations.size());
  for (const CorrelationPair& pair : snapshot.correlations) {
    payload.WriteU64(pair.j);
    payload.WriteU64(pair.k);
  }
  return payload.TakeBuffer();
}

std::string EncodeDawidSkene(const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  payload.WriteI32(snapshot.cardinality);
  payload.WriteU64(snapshot.lf_names.size());
  payload.WriteF64Vector(snapshot.ds_class_priors);
  payload.WriteF64Vector(snapshot.ds_confusions);
  return payload.TakeBuffer();
}

std::string EncodeDiscModel(const ModelSnapshot& snapshot) {
  BinaryWriter payload;
  payload.WriteU64(snapshot.feature_buckets);
  payload.WriteF64Vector(snapshot.disc_weights);
  payload.WriteF64(snapshot.disc_bias);
  return payload.TakeBuffer();
}

// ---- Field decoders, shared by the v1 record and the v2 sections (one
// concatenates them over a single reader; the other frames each group in
// its own section). Known v2 sections tolerate TRAILING payload bytes (a
// newer writer may append fields within a section), but a short read is
// corrupt framing — the caller turns it into a typed IOError naming the
// section. ----

Status DecodeLfMetadataFields(BinaryReader& reader, ModelSnapshot* snapshot) {
  snapshot->lf_names = reader.ReadStringVector();
  snapshot->lf_fingerprints = reader.ReadU64Vector();
  snapshot->cardinality = reader.ReadI32();
  return reader.status();
}

Status DecodeGenModelFields(BinaryReader& reader, ModelSnapshot* snapshot) {
  snapshot->class_balance = reader.ReadF64();
  snapshot->acc_weights = reader.ReadF64Vector();
  snapshot->lab_weights = reader.ReadF64Vector();
  snapshot->corr_weights = reader.ReadF64Vector();
  uint64_t num_corr = reader.ReadU64();
  if (reader.ok() &&
      num_corr > snapshot->acc_weights.size() *
                     std::max<uint64_t>(snapshot->acc_weights.size(), 1)) {
    return Status::IOError("snapshot correlation count implausibly large");
  }
  snapshot->correlations.clear();
  snapshot->correlations.reserve(reader.ok() ? num_corr : 0);
  for (uint64_t i = 0; reader.ok() && i < num_corr; ++i) {
    CorrelationPair pair;
    pair.j = reader.ReadU64();
    pair.k = reader.ReadU64();
    snapshot->correlations.push_back(pair);
  }
  if (!reader.ok()) return reader.status();
  snapshot->has_gen_model = true;
  return Status::OK();
}

Status DecodeDawidSkene(std::string_view payload, ModelSnapshot* snapshot) {
  BinaryReader reader(payload);
  int32_t cardinality = reader.ReadI32();
  uint64_t num_lfs = reader.ReadU64();
  snapshot->ds_class_priors = reader.ReadF64Vector();
  snapshot->ds_confusions = reader.ReadF64Vector();
  if (!reader.ok()) return reader.status();
  // The section's self-declared shape must agree with what it carries; the
  // cross-check against LFMD happens in ValidateSnapshot (section order is
  // not guaranteed).
  if (cardinality < 2 ||
      snapshot->ds_class_priors.size() != static_cast<size_t>(cardinality) ||
      snapshot->ds_confusions.size() !=
          num_lfs * static_cast<uint64_t>(cardinality) *
              static_cast<uint64_t>(cardinality)) {
    return Status::IOError("DAWD section shape is inconsistent");
  }
  snapshot->has_ds_model = true;
  return Status::OK();
}

Status DecodeDiscModelFields(BinaryReader& reader, ModelSnapshot* snapshot) {
  snapshot->feature_buckets = reader.ReadU64();
  snapshot->disc_weights = reader.ReadF64Vector();
  snapshot->disc_bias = reader.ReadF64();
  if (!reader.ok()) return reader.status();
  snapshot->has_disc_model = true;
  return Status::OK();
}

/// The pre-sections v1 payload: one concatenated record of the same field
/// groups the v2 sections frame individually, under one whole-payload
/// checksum; the generative model is always present.
Result<ModelSnapshot> DeserializeV1(std::string_view data,
                                    size_t header_end) {
  BinaryReader header(data.substr(header_end));
  uint64_t payload_size = header.ReadU64();
  size_t payload_begin = header_end + header.position();
  // Overflow-safe bounds: never form payload_size + checksum_size, which a
  // corrupt near-2^64 length would wrap.
  size_t remaining = header.ok() ? data.size() - payload_begin : 0;
  if (!header.ok() || remaining < sizeof(uint64_t) ||
      payload_size > remaining - sizeof(uint64_t)) {
    return Status::IOError("snapshot truncated: payload extends past EOF");
  }
  std::string_view payload = data.substr(payload_begin, payload_size);
  BinaryReader trailer(data.substr(payload_begin + payload_size));
  uint64_t expected_checksum = trailer.ReadU64();
  if (Fnv1a64(payload) != expected_checksum) {
    return Status::IOError("snapshot checksum mismatch: payload corrupted");
  }

  BinaryReader reader(payload);
  ModelSnapshot snapshot;
  Status decoded = DecodeLfMetadataFields(reader, &snapshot);
  if (decoded.ok()) decoded = DecodeGenModelFields(reader, &snapshot);
  if (!decoded.ok()) return decoded;
  if (reader.ReadU32() != 0) {
    decoded = DecodeDiscModelFields(reader, &snapshot);
    if (!decoded.ok()) return decoded;
  }
  if (!reader.ok()) return reader.status();
  Status valid = ValidateSnapshot(snapshot);
  if (!valid.ok()) return valid;
  return snapshot;
}

/// Walks the v2 section frames after the file header: validates framing
/// with overflow-safe bounds checks, computes each section's checksum, and
/// hands (tag, payload, recorded checksum, checksum_ok) to `fn` in file
/// order. A non-OK status from `fn` stops the walk and propagates. The
/// ONLY v2 framing loop — the loader and the section lister both consume
/// it, so they can never disagree about a file's structure.
Status WalkV2Sections(
    std::string_view data, size_t pos, uint32_t section_count,
    const std::function<Status(const char* tag, std::string_view payload,
                               uint64_t recorded_checksum, bool checksum_ok)>&
        fn) {
  for (uint32_t s = 0; s < section_count; ++s) {
    if (data.size() - pos < 4 + sizeof(uint64_t)) {
      return Status::IOError("snapshot truncated in a section header");
    }
    const char* tag = data.data() + pos;
    BinaryReader framing(data.substr(pos + 4));
    uint64_t payload_size = framing.ReadU64();
    pos += 4 + sizeof(uint64_t);
    // Overflow-safe: payload_size + checksum_size could wrap for corrupt
    // near-2^64 lengths, so compare against the remainder instead.
    size_t remaining = data.size() - pos;
    if (remaining < sizeof(uint64_t) ||
        payload_size > remaining - sizeof(uint64_t)) {
      return Status::IOError("snapshot truncated: section '" +
                             std::string(tag, 4) + "' extends past EOF");
    }
    std::string_view payload = data.substr(pos, payload_size);
    BinaryReader trailer(data.substr(pos + payload_size));
    uint64_t recorded_checksum = trailer.ReadU64();
    pos += payload_size + sizeof(uint64_t);
    Status handled = fn(tag, payload, recorded_checksum,
                        Fnv1a64(payload) == recorded_checksum);
    if (!handled.ok()) return handled;
  }
  if (pos != data.size()) {
    return Status::IOError("snapshot has trailing bytes after its sections");
  }
  return Status::OK();
}

/// The sectioned v2 payload: named, length-prefixed, individually
/// checksummed sections with skip-unknown semantics.
Result<ModelSnapshot> DeserializeV2(std::string_view data,
                                    size_t header_end) {
  BinaryReader header(data.substr(header_end));
  uint32_t section_count = header.ReadU32();
  if (!header.ok()) {
    return Status::IOError("snapshot truncated in the section table");
  }

  ModelSnapshot snapshot;
  bool have_lf_metadata = false;
  Status walked = WalkV2Sections(
      data, header_end + header.position(), section_count,
      [&](const char* tag, std::string_view payload,
          uint64_t /*recorded_checksum*/, bool checksum_ok) -> Status {
        std::string tag_str(tag, 4);
        if (!checksum_ok) {
          return Status::IOError("snapshot section '" + tag_str +
                                 "' checksum mismatch: payload corrupted");
        }
        Status decoded = Status::OK();
        BinaryReader reader(payload);
        if (TagIs(tag, kSectionLfMetadata)) {
          decoded = DecodeLfMetadataFields(reader, &snapshot);
          have_lf_metadata = decoded.ok();
        } else if (TagIs(tag, kSectionGenModel)) {
          decoded = DecodeGenModelFields(reader, &snapshot);
        } else if (TagIs(tag, kSectionDawidSkene)) {
          decoded = DecodeDawidSkene(payload, &snapshot);
        } else if (TagIs(tag, kSectionDiscModel)) {
          decoded = DecodeDiscModelFields(reader, &snapshot);
        } else if (TagIs(tag, kSectionCompiledLf)) {
          auto program = CompiledLfProgram::Decode(payload);
          if (program.ok()) {
            snapshot.compiled_lfs = *program;
          } else {
            decoded = program.status();
          }
        } else {
          // Skip-unknown: a newer writer added a section this build does
          // not know. Its checksum was verified above; its meaning is
          // ignored.
          ++snapshot.skipped_sections;
        }
        if (!decoded.ok()) {
          return Status::IOError("snapshot section '" + tag_str +
                                 "' is corrupt: " + decoded.message());
        }
        return Status::OK();
      });
  if (!walked.ok()) return walked;
  if (!have_lf_metadata) {
    return Status::IOError("snapshot is missing the LFMD section");
  }
  Status valid = ValidateSnapshot(snapshot);
  if (!valid.ok()) return valid;
  return snapshot;
}

}  // namespace

Result<ModelSnapshot> ModelSnapshot::Capture(
    const GenerativeModel& model, std::vector<std::string> lf_names,
    std::vector<uint64_t> lf_fingerprints) {
  if (!model.is_fit()) {
    return Status::FailedPrecondition("cannot snapshot an unfit model");
  }
  if (lf_names.size() != model.num_lfs() ||
      lf_fingerprints.size() != model.num_lfs()) {
    return Status::InvalidArgument(
        "LF metadata does not align with the model's columns");
  }
  ModelSnapshot snapshot;
  snapshot.lf_names = std::move(lf_names);
  snapshot.lf_fingerprints = std::move(lf_fingerprints);
  snapshot.has_gen_model = true;
  snapshot.class_balance = model.class_balance();
  snapshot.acc_weights = model.accuracy_weights();
  snapshot.lab_weights = model.propensity_weights();
  snapshot.corr_weights = model.correlation_weights();
  snapshot.correlations = model.correlations();
  return snapshot;
}

Result<ModelSnapshot> ModelSnapshot::CaptureDawidSkene(
    const DawidSkeneModel& model, std::vector<std::string> lf_names,
    std::vector<uint64_t> lf_fingerprints) {
  if (!model.is_fit()) {
    return Status::FailedPrecondition("cannot snapshot an unfit model");
  }
  if (lf_names.size() != model.num_lfs() ||
      lf_fingerprints.size() != model.num_lfs()) {
    return Status::InvalidArgument(
        "LF metadata does not align with the model's columns");
  }
  ModelSnapshot snapshot;
  snapshot.lf_names = std::move(lf_names);
  snapshot.lf_fingerprints = std::move(lf_fingerprints);
  snapshot.cardinality = model.cardinality();
  snapshot.has_ds_model = true;
  snapshot.ds_class_priors = model.class_priors();
  snapshot.ds_confusions = model.FlatConfusions();
  return snapshot;
}

Status ModelSnapshot::AttachDiscModel(const LogisticRegressionClassifier& disc,
                                      uint64_t feature_buckets) {
  if (!disc.is_fit()) {
    return Status::FailedPrecondition("cannot snapshot an unfit classifier");
  }
  if (disc.weights().size() != feature_buckets) {
    return Status::InvalidArgument(
        "classifier weight count does not match feature_buckets");
  }
  has_disc_model = true;
  this->feature_buckets = feature_buckets;
  disc_weights = disc.weights();
  disc_bias = disc.bias();
  return Status::OK();
}

Result<GenerativeModel> ModelSnapshot::RestoreGenerativeModel(
    GenerativeModelOptions options) const {
  if (!has_gen_model) {
    return Status::FailedPrecondition(
        "snapshot carries no generative model (GENM section)");
  }
  options.class_balance = class_balance;
  GenerativeModel model(options);
  Status status = model.RestoreWeights(lf_names.size(), acc_weights,
                                       lab_weights, corr_weights, correlations);
  if (!status.ok()) return status;
  return model;
}

Result<DawidSkeneModel> ModelSnapshot::RestoreDawidSkeneModel(
    DawidSkeneOptions options) const {
  if (!has_ds_model) {
    return Status::FailedPrecondition(
        "snapshot carries no Dawid-Skene model (DAWD section)");
  }
  DawidSkeneModel model(options);
  Status status = model.Restore(cardinality, lf_names.size(), ds_class_priors,
                                ds_confusions);
  if (!status.ok()) return status;
  return model;
}

Result<LogisticRegressionClassifier> ModelSnapshot::RestoreDiscModel(
    DiscModelOptions options) const {
  if (!has_disc_model) {
    return Status::FailedPrecondition("snapshot carries no disc model");
  }
  LogisticRegressionClassifier disc(options);
  Status status = disc.Restore(disc_weights, disc_bias);
  if (!status.ok()) return status;
  return disc;
}

uint64_t ModelSnapshot::CanonicalChecksum() const {
  return Fnv1a64(SerializeSnapshot(*this));
}

std::string SerializeSnapshot(const ModelSnapshot& snapshot) {
  std::string buffer(kSnapshotMagic, sizeof(kSnapshotMagic));
  uint32_t section_count = 1 + (snapshot.has_gen_model ? 1 : 0) +
                           (snapshot.has_ds_model ? 1 : 0) +
                           (snapshot.has_disc_model ? 1 : 0) +
                           (snapshot.compiled_lfs != nullptr ? 1 : 0);
  BinaryWriter header;
  header.WriteU32(kSnapshotVersion);
  header.WriteU32(section_count);
  buffer += header.buffer();
  AppendSection(&buffer, kSectionLfMetadata, EncodeLfMetadata(snapshot));
  if (snapshot.has_gen_model) {
    AppendSection(&buffer, kSectionGenModel, EncodeGenModel(snapshot));
  }
  if (snapshot.has_ds_model) {
    AppendSection(&buffer, kSectionDawidSkene, EncodeDawidSkene(snapshot));
  }
  if (snapshot.has_disc_model) {
    AppendSection(&buffer, kSectionDiscModel, EncodeDiscModel(snapshot));
  }
  if (snapshot.compiled_lfs != nullptr) {
    AppendSection(&buffer, kSectionCompiledLf, snapshot.compiled_lfs->Encode());
  }
  return buffer;
}

Result<std::string> SerializeSnapshotV1(const ModelSnapshot& snapshot) {
  if (snapshot.has_ds_model) {
    return Status::InvalidArgument(
        "version-1 snapshots cannot express a Dawid-Skene (DAWD) section");
  }
  if (!snapshot.has_gen_model) {
    return Status::InvalidArgument(
        "version-1 snapshots require a generative model");
  }
  BinaryWriter payload;
  payload.WriteStringVector(snapshot.lf_names);
  payload.WriteU64Vector(snapshot.lf_fingerprints);
  payload.WriteI32(snapshot.cardinality);
  payload.WriteF64(snapshot.class_balance);
  payload.WriteF64Vector(snapshot.acc_weights);
  payload.WriteF64Vector(snapshot.lab_weights);
  payload.WriteF64Vector(snapshot.corr_weights);
  payload.WriteU64(snapshot.correlations.size());
  for (const CorrelationPair& pair : snapshot.correlations) {
    payload.WriteU64(pair.j);
    payload.WriteU64(pair.k);
  }
  payload.WriteU32(snapshot.has_disc_model ? 1 : 0);
  if (snapshot.has_disc_model) {
    payload.WriteU64(snapshot.feature_buckets);
    payload.WriteF64Vector(snapshot.disc_weights);
    payload.WriteF64(snapshot.disc_bias);
  }

  std::string buffer(kSnapshotMagic, sizeof(kSnapshotMagic));
  BinaryWriter header;
  header.WriteU32(kSnapshotVersionV1);
  header.WriteU64(payload.buffer().size());
  buffer += header.buffer();
  buffer += payload.buffer();
  BinaryWriter checksum;
  checksum.WriteU64(Fnv1a64(payload.buffer()));
  buffer += checksum.buffer();
  return buffer;
}

Result<ModelSnapshot> DeserializeSnapshot(std::string_view data) {
  if (data.size() < sizeof(kSnapshotMagic) + sizeof(uint32_t)) {
    return Status::IOError("snapshot file shorter than its header");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("bad snapshot magic; not a snapshot file");
  }
  BinaryReader header(data.substr(sizeof(kSnapshotMagic)));
  uint32_t version = header.ReadU32();
  size_t header_end = sizeof(kSnapshotMagic) + header.position();
  if (version == kSnapshotVersionV1) {
    return DeserializeV1(data, header_end);
  }
  if (version == kSnapshotVersion) {
    return DeserializeV2(data, header_end);
  }
  return Status::FailedPrecondition(
      "unsupported snapshot version " + std::to_string(version) +
      " (this build reads versions up to " + std::to_string(kSnapshotVersion) +
      ")");
}

Result<std::vector<SnapshotSectionInfo>> ListSnapshotSections(
    std::string_view data) {
  if (data.size() < sizeof(kSnapshotMagic) + 2 * sizeof(uint32_t)) {
    return Status::IOError("snapshot file shorter than its header");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("bad snapshot magic; not a snapshot file");
  }
  BinaryReader header(data.substr(sizeof(kSnapshotMagic)));
  uint32_t version = header.ReadU32();
  if (version == kSnapshotVersionV1) {
    return Status::FailedPrecondition(
        "version-1 snapshots are unsectioned; load them instead");
  }
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition("unsupported snapshot version " +
                                      std::to_string(version));
  }
  uint32_t section_count = header.ReadU32();
  std::vector<SnapshotSectionInfo> sections;
  sections.reserve(section_count);
  Status walked = WalkV2Sections(
      data, sizeof(kSnapshotMagic) + header.position(), section_count,
      [&](const char* tag, std::string_view payload,
          uint64_t recorded_checksum, bool checksum_ok) -> Status {
        SnapshotSectionInfo info;
        info.tag = std::string(tag, 4);
        info.known = KnownTag(tag);
        info.payload_size = payload.size();
        info.checksum = recorded_checksum;
        info.checksum_ok = checksum_ok;
        sections.push_back(std::move(info));
        return Status::OK();
      });
  if (!walked.ok()) return walked;
  return sections;
}

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  return WriteFileBytes(path, SerializeSnapshot(snapshot));
}

Result<ModelSnapshot> LoadSnapshot(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeSnapshot(*bytes);
}

Result<ModelSnapshot> LoadSnapshotMapped(const std::string& path,
                                         SnapshotLoadInfo* info) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  if (info != nullptr) {
    info->used_mmap = file->is_mapped();
    info->file_bytes = file->size();
  }
  // Decode (and checksum-validate) straight off the mapped pages; the
  // mapping is released when `file` goes out of scope, after the snapshot's
  // owned vectors have been populated.
  return DeserializeSnapshot(file->view());
}

}  // namespace snorkel
