#ifndef SNORKEL_SERVE_INCREMENTAL_APPLIER_H_
#define SNORKEL_SERVE_INCREMENTAL_APPLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/label_matrix.h"
#include "data/candidate.h"
#include "lf/applier.h"
#include "lf/labeling_function.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace snorkel {

/// Content fingerprint of a candidate set, in a form that supports
/// append-only extension. `chain` is the running hash after folding in every
/// row (content + the index the row's CandidateView reports) into a salted
/// seed; `digest` seals the chain with the row count and is the cache key.
/// Two sets with equal digests are assumed to denote the same rows, in the
/// same order, with the same reported indices, under the same salt. Because
/// `chain` does not bake in the length, a set that extends another by
/// appending rows passes through the shorter set's chain value — which is
/// what lets a cache recognize "the same log, grown".
///
/// The hash covers the candidates' span coordinates and entity strings, NOT
/// the corpus text the LFs read — the applier salts the chain with the
/// corpus's identity (its address) so same-shaped candidate sets from
/// different corpora cannot collide. Mutating a corpus in place (or tearing
/// one down and allocating another at the same address) is invisible to the
/// fingerprint: call InvalidateAll() after either.
struct SetFingerprint {
  uint64_t digest = 0;
  uint64_t chain = 0;
  uint64_t count = 0;
};

/// Incremental fingerprint builder: feed rows in order, read the chain at
/// any prefix, seal with Finish(). The applier uses the intermediate chain
/// values to detect that a request's prefix matches an already-cached set.
class CandidateFingerprinter {
 public:
  /// `salt` scopes the fingerprint (the applier passes the corpus
  /// identity); 0 yields the bare content fingerprint.
  explicit CandidateFingerprinter(uint64_t salt = 0);

  /// Folds one row into the chain: the candidate's span content plus the
  /// index its CandidateView will report.
  void Add(const Candidate& candidate, size_t index);

  uint64_t chain() const { return chain_; }
  uint64_t count() const { return count_; }

  /// Seals (chain, count) into the set digest.
  SetFingerprint Finish() const;

 private:
  uint64_t chain_ = 0;
  uint64_t count_ = 0;
};

/// Fingerprints `candidates` as served by the owned-request path (row i
/// reports index i).
SetFingerprint FingerprintCandidates(const std::vector<Candidate>& candidates,
                                     uint64_t salt = 0);

/// Fingerprints a borrowed ref batch (row i reports rows[i].index) — the
/// sharded tier's zero-copy fan-out shape.
SetFingerprint FingerprintCandidateRefs(const std::vector<CandidateRef>& rows,
                                        uint64_t salt = 0);

/// A concurrent, multi-candidate-set LF-column cache for the rapid iteration
/// loop of §4.1 and for repeat serving traffic: label columns are memoized
/// per (LF fingerprint, candidate-set fingerprint) pair, organized as
/// per-set column maps under an LRU over sets with a byte budget. An edit to
/// one LF recomputes only that column; alternating request batches (A/B/A/B)
/// each keep their own columns and hit every time; and a set that extends a
/// cached one by appending rows (the "candidates arrive in a growing log"
/// shape) reuses the cached prefix and computes only the tail rows.
///
/// Thread-safe, read-mostly: cache hits take shared locks and per-entry
/// atomics only — no exclusive lock anywhere on the hit path. Concurrent
/// misses for DIFFERENT columns compute in parallel (each caller claims the
/// columns it will compute); duplicate misses for the SAME (LF, set) key
/// collapse onto one computation — losers wait on the winner's result
/// instead of recomputing. Eviction can race in-flight readers safely:
/// entries are shared_ptr-held and an Apply pins its set for its duration,
/// so the byte budget is soft by at most the pinned sets' size.
class IncrementalApplier {
 public:
  struct Options {
    /// Worker threads for miss computation; 0 = the process-wide shared
    /// pool, 1 = serial, n > 1 = a dedicated pool owned by this applier.
    size_t num_threads = 0;
    /// Cardinality of the resulting matrix (2 = binary ±1).
    int cardinality = 2;
    /// Byte budget over all cached label columns, across candidate sets.
    /// Least-recently-used sets are evicted beyond it; sets pinned by
    /// in-flight Apply calls are never evicted, so the budget is soft by
    /// the pinned working set.
    size_t max_cached_bytes = 64ull << 20;
    /// Compute cache-miss columns of compilable LFs through the batch
    /// engine (lf/compiled/) instead of interpreting per row. Bitwise
    /// identical output, so cached columns stay interchangeable between the
    /// two paths.
    bool use_compiled = true;
    /// Pre-built program (e.g. from a snapshot's LFCP section); see
    /// LFApplier::Options::compiled_program.
    std::shared_ptr<const CompiledLfProgram> compiled_program = nullptr;
  };

  struct Stats {
    /// Columns answered from cache vs recomputed, cumulative. A column
    /// extended from a cached prefix counts as computed (its tail ran).
    uint64_t columns_reused = 0;
    uint64_t columns_computed = 0;
    /// Apply calls whose candidate set was already cached vs not.
    uint64_t set_hits = 0;
    uint64_t set_misses = 0;
    /// Label bytes currently resident across all cached sets.
    uint64_t bytes_cached = 0;
    /// Rows computed as appended tails of a cached prefix (summed per
    /// column): the work the append-only extension did NOT save is
    /// columns_computed-sized; the work it did save is the prefix rows.
    uint64_t appended_rows = 0;
    /// Sets dropped by the byte-budget LRU.
    uint64_t evicted_sets = 0;
  };

  explicit IncrementalApplier(Options options);
  IncrementalApplier() : IncrementalApplier(Options{}) {}

  // Out-of-line: State is an incomplete type here.
  IncrementalApplier(IncrementalApplier&&) noexcept;
  IncrementalApplier& operator=(IncrementalApplier&&) noexcept;
  ~IncrementalApplier();

  /// Produces Λ for (lfs, candidates), reusing cached columns when both the
  /// LF fingerprint and the candidate-set fingerprint match. Same semantics
  /// as LFApplier::Apply: an out-of-range vote surfaces as InvalidArgument
  /// and the offending column is never cached. Safe to call from any number
  /// of threads concurrently.
  ///
  /// `cancel` (optional) is checked at row chunk boundaries of the miss
  /// computation; an expired token abandons the claimed columns (failed off
  /// the map, never poisoning the cache — identical to the InvalidArgument
  /// path) and returns kDeadlineExceeded. Pure cache hits never consult it.
  Result<LabelMatrix> Apply(const LabelingFunctionSet& lfs,
                            const Corpus& corpus,
                            const std::vector<Candidate>& candidates,
                            const CancelToken* cancel = nullptr);

  /// Same, over borrowed index-preserving rows (the sharded tier's fan-out
  /// form). An identity ref view of a vector fingerprints identically to
  /// the owned form, so the two paths share cached columns.
  Result<LabelMatrix> ApplyRefs(const LabelingFunctionSet& lfs,
                                const Corpus& corpus,
                                const std::vector<CandidateRef>& rows,
                                const CancelToken* cancel = nullptr);

  /// Drops every cached set (e.g. after mutating the corpus in place, which
  /// the candidate fingerprint cannot observe). In-flight Apply calls
  /// finish against their pinned entries and publish into them harmlessly.
  void InvalidateAll();

  /// Drops the cached column for one LF fingerprint from every set (no-op
  /// when absent).
  void Invalidate(uint64_t fingerprint);

  /// Consistent snapshot of the cumulative counters (atomics; never blocks
  /// behind a miss computation).
  Stats stats() const;

  /// Total cached columns across all sets / currently cached sets.
  size_t cached_columns() const;
  size_t cached_sets() const;

 private:
  struct State;

  /// One request's rows in either form; row i is (candidate(i), index(i)).
  struct RowSource {
    const Candidate* owned = nullptr;      // index(i) == i
    const CandidateRef* refs = nullptr;    // index(i) == refs[i].index
    size_t size = 0;

    const Candidate& candidate(size_t i) const {
      return owned != nullptr ? owned[i] : *refs[i].candidate;
    }
    size_t index(size_t i) const {
      return owned != nullptr ? i : refs[i].index;
    }
  };

  Result<LabelMatrix> ApplyInternal(const LabelingFunctionSet& lfs,
                                    const Corpus& corpus, RowSource rows,
                                    const CancelToken* cancel);

  std::unique_ptr<State> state_;
};

}  // namespace snorkel

#endif  // SNORKEL_SERVE_INCREMENTAL_APPLIER_H_
