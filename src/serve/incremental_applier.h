#ifndef SNORKEL_SERVE_INCREMENTAL_APPLIER_H_
#define SNORKEL_SERVE_INCREMENTAL_APPLIER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/label_matrix.h"
#include "data/candidate.h"
#include "lf/labeling_function.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace snorkel {

/// An LF-application cache for the rapid iteration loop of §4.1: users edit
/// ONE labeling function at a time, yet a plain LFApplier re-runs all |LFs|
/// functions over all n candidates. This applier memoizes each LF's dense
/// label column keyed by (LF fingerprint, candidate-set fingerprint), so an
/// edit to one LF re-computes only that column — O(n) instead of O(|LFs|·n)
/// per iteration — while any change to the candidate set invalidates
/// everything. Misses are recomputed over the thread pool with the same
/// contiguous-range sharding as LFApplier.
///
/// Not thread-safe: one applier per serving thread / session (the service
/// layer serializes access; see label_service.cc).
class IncrementalApplier {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency, 1 = serial.
    size_t num_threads = 0;
    /// Cardinality of the resulting matrix (2 = binary ±1).
    int cardinality = 2;
    /// Upper bound on cached columns; oldest-unused columns are evicted
    /// beyond it (a serving process should not grow without bound as LFs
    /// are iterated on).
    size_t max_cached_columns = 1024;
  };

  struct Stats {
    /// Columns answered from cache vs recomputed, cumulative.
    uint64_t columns_reused = 0;
    uint64_t columns_computed = 0;
    /// Full invalidations due to a changed candidate set.
    uint64_t candidate_set_changes = 0;
  };

  explicit IncrementalApplier(Options options);
  IncrementalApplier() : IncrementalApplier(Options{}) {}

  /// Produces Λ for (lfs, candidates), reusing cached columns when both the
  /// LF fingerprint and the candidate set match the cached entry. Same
  /// semantics as LFApplier::Apply: an out-of-range vote surfaces as
  /// InvalidArgument and the offending column is not cached.
  Result<LabelMatrix> Apply(const LabelingFunctionSet& lfs,
                            const Corpus& corpus,
                            const std::vector<Candidate>& candidates);

  /// Drops every cached column (e.g. after mutating the corpus in place,
  /// which the candidate fingerprint cannot observe).
  void InvalidateAll();

  /// Drops the cached column for one LF fingerprint (no-op when absent).
  void Invalidate(uint64_t fingerprint);

  const Stats& stats() const { return stats_; }
  size_t cached_columns() const { return cache_.size(); }

 private:
  struct CachedColumn {
    std::vector<Label> labels;  // Dense, length = num candidates.
    uint64_t last_used = 0;     // For LRU eviction.
  };

  void EvictIfNeeded();

  Options options_;
  Stats stats_;
  /// Fingerprint of the candidate set the cache is valid for.
  uint64_t candidate_fingerprint_ = 0;
  size_t candidate_count_ = 0;
  uint64_t use_counter_ = 0;
  std::unordered_map<uint64_t, CachedColumn> cache_;
  /// Lazily created, persistent across Apply calls (serving amortizes
  /// thread start-up, unlike the per-call pool in LFApplier).
  std::unique_ptr<ThreadPool> pool_;
};

/// Content fingerprint of a candidate set: hashes every span's coordinates.
/// Two candidate vectors with equal fingerprints are assumed to denote the
/// same rows in the same order.
uint64_t FingerprintCandidates(const std::vector<Candidate>& candidates);

}  // namespace snorkel

#endif  // SNORKEL_SERVE_INCREMENTAL_APPLIER_H_
