#include "serve/incremental_applier.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>
#include <tuple>
#include <unordered_set>

#include "util/hash.h"

namespace snorkel {

namespace {

uint64_t HashSpan(uint64_t h, const Span& span) {
  h = HashCombine(h, (static_cast<uint64_t>(span.doc) << 32) | span.sentence);
  h = HashCombine(
      h, (static_cast<uint64_t>(span.word_start) << 32) | span.word_end);
  h = HashCombine(h, Fnv1a64(span.entity_type));
  h = HashCombine(h, Fnv1a64(span.canonical_id));
  return h;
}

}  // namespace

uint64_t FingerprintCandidates(const std::vector<Candidate>& candidates) {
  uint64_t h = Fnv1a64("candidates");
  h = HashCombine(h, candidates.size());
  for (const Candidate& c : candidates) {
    h = HashSpan(h, c.span1);
    h = HashSpan(h, c.span2);
  }
  return h;
}

IncrementalApplier::IncrementalApplier(Options options) : options_(options) {}

void IncrementalApplier::InvalidateAll() {
  cache_.clear();
  candidate_fingerprint_ = 0;
  candidate_count_ = 0;
}

void IncrementalApplier::Invalidate(uint64_t fingerprint) {
  cache_.erase(fingerprint);
}

Result<LabelMatrix> IncrementalApplier::Apply(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<Candidate>& candidates) {
  size_t m = candidates.size();
  size_t n = lfs.size();
  ++use_counter_;

  // A different candidate set invalidates every cached column: the cache key
  // is (LF fingerprint, candidate-set fingerprint) with the second component
  // held globally.
  uint64_t cand_fp = FingerprintCandidates(candidates);
  if (cand_fp != candidate_fingerprint_ || m != candidate_count_) {
    if (!cache_.empty()) ++stats_.candidate_set_changes;
    cache_.clear();
    candidate_fingerprint_ = cand_fp;
    candidate_count_ = m;
  }

  // Partition columns into cache hits and misses. Duplicate fingerprints in
  // one LF set share a single computed column.
  std::vector<size_t> miss;
  std::unordered_set<uint64_t> scheduled;
  for (size_t j = 0; j < n; ++j) {
    uint64_t fp = lfs.at(j).fingerprint();
    auto it = cache_.find(fp);
    if (it != cache_.end()) {
      it->second.last_used = use_counter_;
      ++stats_.columns_reused;
    } else if (scheduled.insert(fp).second) {
      miss.push_back(j);
    }
  }

  // Recompute missing columns, sharded over candidates like LFApplier. An
  // out-of-range vote is recorded (first one wins) and fails the whole call
  // without polluting the cache.
  std::vector<std::vector<Label>> fresh(miss.size(),
                                        std::vector<Label>(m, kAbstain));
  std::atomic<bool> has_error{false};
  std::atomic<size_t> error_col{0};
  std::atomic<Label> error_label{0};
  auto label_one = [&](size_t i) {
    CandidateView view(&corpus, &candidates[i], i);
    for (size_t c = 0; c < miss.size(); ++c) {
      Label label = lfs.at(miss[c]).Apply(view);
      if (!LabelValidFor(label, options_.cardinality)) {
        bool expected = false;
        if (has_error.compare_exchange_strong(expected, true)) {
          error_col.store(miss[c]);
          error_label.store(label);
        }
        return;
      }
      fresh[c][i] = label;
    }
  };
  if (!miss.empty()) {
    if (options_.num_threads == 1 || m < 64) {
      for (size_t i = 0; i < m; ++i) label_one(i);
    } else {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<ThreadPool>(options_.num_threads);
      }
      pool_->ParallelFor(0, m, label_one);
    }
    stats_.columns_computed += miss.size();
  }
  if (has_error.load()) {
    return Status::InvalidArgument(
        "LF '" + lfs.at(error_col.load()).name() + "' voted " +
        std::to_string(error_label.load()) + ", invalid for cardinality " +
        std::to_string(options_.cardinality));
  }

  // Commit fresh columns, then assemble Λ from the (now stable) cache.
  for (size_t c = 0; c < miss.size(); ++c) {
    CachedColumn column;
    column.labels = std::move(fresh[c]);
    column.last_used = use_counter_;
    cache_[lfs.at(miss[c]).fingerprint()] = std::move(column);
  }
  EvictIfNeeded();

  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  for (size_t j = 0; j < n; ++j) {
    auto it = cache_.find(lfs.at(j).fingerprint());
    if (it == cache_.end()) {
      // Evicted between commit and assembly only if max_cached_columns < n;
      // treat as an explicit misconfiguration rather than recomputing.
      return Status::FailedPrecondition(
          "max_cached_columns smaller than the LF set; raise the cap");
    }
    const std::vector<Label>& column = it->second.labels;
    for (size_t i = 0; i < m; ++i) {
      if (column[i] != kAbstain) triplets.emplace_back(i, j, column[i]);
    }
  }
  return LabelMatrix::FromTriplets(m, n, triplets, options_.cardinality);
}

void IncrementalApplier::EvictIfNeeded() {
  while (cache_.size() > options_.max_cached_columns) {
    auto victim = cache_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      // Never evict columns touched by the in-flight Apply.
      if (it->second.last_used == use_counter_) continue;
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == cache_.end()) break;  // Everything is current.
    cache_.erase(victim);
  }
}

}  // namespace snorkel
