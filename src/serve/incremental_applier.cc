#include "serve/incremental_applier.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "lf/compiled/engine.h"
#include "lf/compiled/program.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace snorkel {

namespace {

uint64_t HashSpan(uint64_t h, const Span& span) {
  h = HashCombine(h, (static_cast<uint64_t>(span.doc) << 32) | span.sentence);
  h = HashCombine(
      h, (static_cast<uint64_t>(span.word_start) << 32) | span.word_end);
  h = HashCombine(h, Fnv1a64(span.entity_type));
  h = HashCombine(h, Fnv1a64(span.canonical_id));
  return h;
}

}  // namespace

CandidateFingerprinter::CandidateFingerprinter(uint64_t salt)
    : chain_(HashCombine(Fnv1a64("candidates"), salt)) {}

void CandidateFingerprinter::Add(const Candidate& candidate, size_t index) {
  chain_ = HashCombine(chain_, index);
  chain_ = HashSpan(chain_, candidate.span1);
  chain_ = HashSpan(chain_, candidate.span2);
  ++count_;
}

SetFingerprint CandidateFingerprinter::Finish() const {
  return SetFingerprint{HashCombine(chain_, count_), chain_, count_};
}

SetFingerprint FingerprintCandidates(const std::vector<Candidate>& candidates,
                                     uint64_t salt) {
  CandidateFingerprinter fp(salt);
  for (size_t i = 0; i < candidates.size(); ++i) fp.Add(candidates[i], i);
  return fp.Finish();
}

SetFingerprint FingerprintCandidateRefs(const std::vector<CandidateRef>& rows,
                                        uint64_t salt) {
  CandidateFingerprinter fp(salt);
  for (const CandidateRef& row : rows) fp.Add(*row.candidate, row.index);
  return fp.Finish();
}

// --------------------------------------------------------------- internals --

namespace {

enum class ColumnState : uint8_t {
  kComputing,  // Claimed by exactly one Apply call; losers wait.
  kReady,      // `labels` is published and immutable.
  kFailed,     // `error` is published; the column is off the map already.
};

/// One memoized LF column for one candidate set. The claiming thread fills
/// `labels` (or `error`) and then publishes via `state` with release order;
/// readers acquire-load `state` before touching either field, so no lock is
/// needed after publication.
struct Column {
  std::atomic<ColumnState> state{ColumnState::kComputing};
  std::vector<Label> labels;
  Status error = Status::OK();
};

/// All cached columns for one candidate set. Entries are immutable in shape
/// once created (columns only ever gain rows-complete columns); append
/// extension creates a NEW entry for the longer set rather than mutating
/// this one, so readers never see a column grow under them.
struct SetEntry {
  SetFingerprint fp;
  /// LRU clock value of the most recent Apply touching this set.
  std::atomic<uint64_t> last_used{0};
  /// In-flight Apply calls currently using this entry; eviction skips
  /// pinned entries, which is what makes eviction safe to race readers.
  std::atomic<int> pins{0};
  /// Published label bytes in this entry (only grows while pinned).
  std::atomic<uint64_t> bytes{0};

  /// Guards the column map's STRUCTURE only (find/insert/erase); column
  /// contents are published through Column::state.
  std::shared_mutex columns_mu;
  std::unordered_map<uint64_t, std::shared_ptr<Column>> columns;

  /// Wakes Apply calls that lost a claim race and wait for the winner.
  std::mutex wait_mu;
  std::condition_variable wait_cv;
};

}  // namespace

struct IncrementalApplier::State {
  Options options;

  /// Guards the set map's structure; hits take it shared.
  mutable std::shared_mutex sets_mu;
  std::unordered_map<uint64_t, std::shared_ptr<SetEntry>> sets;

  /// LRU clock, bumped once per Apply.
  std::atomic<uint64_t> tick{0};

  // Cumulative counters (relaxed; stats() is a snapshot, not a barrier).
  std::atomic<uint64_t> columns_reused{0};
  std::atomic<uint64_t> columns_computed{0};
  std::atomic<uint64_t> set_hits{0};
  std::atomic<uint64_t> set_misses{0};
  std::atomic<uint64_t> appended_rows{0};
  std::atomic<uint64_t> evicted_sets{0};

  /// Dedicated pool per the shared applier threading convention
  /// (util/thread_pool.h): null unless num_threads > 1.
  std::unique_ptr<ThreadPool> pool;

  /// Registry callback tokens for the cache counters. The callbacks
  /// capture `this`; UnregisterCallback in ~State is the lifetime barrier
  /// (callbacks run under the registry lock). State sits behind a
  /// unique_ptr, so its address is stable across applier moves.
  std::vector<uint64_t> metric_tokens;

  explicit State(Options opts)
      : options(opts), pool(MakeDedicatedPool(opts.num_threads)) {
    auto& registry = obs::MetricsRegistry::Default();
    auto expose = [&](const char* name, std::atomic<uint64_t>* counter) {
      metric_tokens.push_back(registry.RegisterCallback(
          name, obs::MetricType::kCounter, [counter]() {
            return static_cast<double>(
                counter->load(std::memory_order_relaxed));
          }));
    };
    expose("snorkel_cache_columns_reused_total", &columns_reused);
    expose("snorkel_cache_columns_computed_total", &columns_computed);
    expose("snorkel_cache_set_hits_total", &set_hits);
    expose("snorkel_cache_set_misses_total", &set_misses);
    expose("snorkel_cache_appended_rows_total", &appended_rows);
    expose("snorkel_cache_evicted_sets_total", &evicted_sets);
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_cache_bytes", obs::MetricType::kGauge, [this]() {
          std::shared_lock<std::shared_mutex> lock(sets_mu);
          uint64_t total = 0;
          for (const auto& [digest, entry] : sets) {
            total += entry->bytes.load(std::memory_order_relaxed);
          }
          return static_cast<double>(total);
        }));
  }

  ~State() {
    auto& registry = obs::MetricsRegistry::Default();
    for (uint64_t token : metric_tokens) registry.UnregisterCallback(token);
  }

  void ParallelRows(size_t begin, size_t end,
                    const std::function<void(size_t)>& fn) {
    ParallelApplyRows(pool.get(), options.num_threads, begin, end, fn);
  }

  /// Set when an eviction pass left the cache over budget because every
  /// eviction candidate was pinned: the pass could not finish, so the next
  /// pin release retries it. Without this handoff a final burst of
  /// concurrent Applys (each pinning its own set, each eviction pass
  /// skipping the others' pinned sets) would leave a quiescent cache
  /// permanently over budget — nothing inserts again, so nothing evicts.
  std::atomic<bool> evict_pending{false};

  /// Evicts least-recently-used, unpinned sets until the cached bytes fit
  /// the budget (or only pinned sets remain — then the last unpinner
  /// retries via evict_pending). Exclusive over sets_mu; the hit path only
  /// calls this when a deferred pass is actually pending.
  void EvictOverBudget() {
    std::unique_lock<std::shared_mutex> lock(sets_mu);
    uint64_t total = 0;
    for (const auto& [digest, entry] : sets) {
      total += entry->bytes.load(std::memory_order_relaxed);
    }
    while (total > options.max_cached_bytes) {
      auto victim = sets.end();
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (auto it = sets.begin(); it != sets.end(); ++it) {
        if (it->second->pins.load(std::memory_order_relaxed) > 0) continue;
        uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
        if (used < oldest) {
          oldest = used;
          victim = it;
        }
      }
      if (victim == sets.end()) break;  // Everything left is pinned.
      total -= victim->second->bytes.load(std::memory_order_relaxed);
      sets.erase(victim);
      evicted_sets.fetch_add(1, std::memory_order_relaxed);
    }
    evict_pending.store(total > options.max_cached_bytes,
                        std::memory_order_relaxed);
  }
};

IncrementalApplier::IncrementalApplier(Options options)
    : state_(std::make_unique<State>(options)) {}

IncrementalApplier::IncrementalApplier(IncrementalApplier&&) noexcept =
    default;
IncrementalApplier& IncrementalApplier::operator=(
    IncrementalApplier&&) noexcept = default;
IncrementalApplier::~IncrementalApplier() = default;

void IncrementalApplier::InvalidateAll() {
  std::unique_lock<std::shared_mutex> lock(state_->sets_mu);
  // In-flight Apply calls keep their entries alive via shared_ptr and
  // finish correctly against them; the orphans die with their last pin.
  state_->sets.clear();
}

void IncrementalApplier::Invalidate(uint64_t fingerprint) {
  std::unique_lock<std::shared_mutex> lock(state_->sets_mu);
  for (auto& [digest, entry] : state_->sets) {
    std::unique_lock<std::shared_mutex> columns_lock(entry->columns_mu);
    auto it = entry->columns.find(fingerprint);
    if (it == entry->columns.end()) continue;
    // A still-computing column has no bytes recorded yet, and its claimer
    // checks map membership (under this lock) before recording any: erasing
    // it here both drops it for future lookups AND stops it from being
    // published into the cache. Requests that started before this call may
    // still be served from the in-flight computation — no ordering
    // guarantee exists for them — but requests starting after Invalidate
    // returns recompute.
    if (it->second->state.load(std::memory_order_acquire) ==
        ColumnState::kReady) {
      entry->bytes.fetch_sub(it->second->labels.size() * sizeof(Label),
                             std::memory_order_relaxed);
    }
    entry->columns.erase(it);
  }
}

IncrementalApplier::Stats IncrementalApplier::stats() const {
  Stats stats;
  stats.columns_reused =
      state_->columns_reused.load(std::memory_order_relaxed);
  stats.columns_computed =
      state_->columns_computed.load(std::memory_order_relaxed);
  stats.set_hits = state_->set_hits.load(std::memory_order_relaxed);
  stats.set_misses = state_->set_misses.load(std::memory_order_relaxed);
  stats.appended_rows =
      state_->appended_rows.load(std::memory_order_relaxed);
  stats.evicted_sets = state_->evicted_sets.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(state_->sets_mu);
  for (const auto& [digest, entry] : state_->sets) {
    stats.bytes_cached += entry->bytes.load(std::memory_order_relaxed);
  }
  return stats;
}

size_t IncrementalApplier::cached_columns() const {
  std::shared_lock<std::shared_mutex> lock(state_->sets_mu);
  size_t total = 0;
  for (const auto& [digest, entry] : state_->sets) {
    std::shared_lock<std::shared_mutex> columns_lock(entry->columns_mu);
    total += entry->columns.size();
  }
  return total;
}

size_t IncrementalApplier::cached_sets() const {
  std::shared_lock<std::shared_mutex> lock(state_->sets_mu);
  return state_->sets.size();
}

Result<LabelMatrix> IncrementalApplier::Apply(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<Candidate>& candidates, const CancelToken* cancel) {
  RowSource rows;
  rows.owned = candidates.data();
  rows.size = candidates.size();
  return ApplyInternal(lfs, corpus, rows, cancel);
}

Result<LabelMatrix> IncrementalApplier::ApplyRefs(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<CandidateRef>& refs, const CancelToken* cancel) {
  RowSource rows;
  rows.refs = refs.data();
  rows.size = refs.size();
  return ApplyInternal(lfs, corpus, rows, cancel);
}

Result<LabelMatrix> IncrementalApplier::ApplyInternal(
    const LabelingFunctionSet& lfs, const Corpus& corpus, RowSource rows,
    const CancelToken* cancel) {
  State& state = *state_;
  const size_t m = rows.size;
  const size_t n = lfs.size();
  const uint64_t tick =
      state.tick.fetch_add(1, std::memory_order_relaxed) + 1;

  // ---- Fingerprint the set, recording the chain at every row count a
  // cached set has: those checkpoints are what detect "this request extends
  // a cached set by appended rows". ----
  std::unordered_map<uint64_t, uint64_t> chain_at;  // count -> chain.
  {
    std::shared_lock<std::shared_mutex> lock(state.sets_mu);
    for (const auto& [digest, entry] : state.sets) {
      if (entry->fp.count > 0 && entry->fp.count < m) {
        chain_at.emplace(entry->fp.count, 0);
      }
    }
  }
  // Salt with the corpus identity: LFs read corpus text the row hash does
  // not cover, so same-shaped candidate sets from DIFFERENT corpora must
  // not share columns. (In-place corpus mutation still needs
  // InvalidateAll(); the address cannot observe it.)
  CandidateFingerprinter fingerprinter(
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&corpus)));
  for (size_t i = 0; i < m; ++i) {
    fingerprinter.Add(rows.candidate(i), rows.index(i));
    auto checkpoint = chain_at.find(fingerprinter.count());
    if (checkpoint != chain_at.end()) {
      checkpoint->second = fingerprinter.chain();
    }
  }
  const SetFingerprint fp = fingerprinter.Finish();

  // ---- Find or create the set entry. The hit path is a shared lock plus
  // relaxed LRU-clock stores; only a brand-new set takes the exclusive
  // lock. On a miss, the longest cached set whose chain matches one of the
  // prefix checkpoints becomes the append-extension base. ----
  std::shared_ptr<SetEntry> entry;
  std::shared_ptr<SetEntry> base;
  bool inserted = false;
  // Pin and LRU-touch WHILE holding the lock that found (or inserted) the
  // entry: eviction also runs under sets_mu, so it can never observe this
  // entry unpinned between lookup and use.
  auto acquire = [&](const std::shared_ptr<SetEntry>& found) {
    entry = found;
    entry->pins.fetch_add(1, std::memory_order_relaxed);
    entry->last_used.store(tick, std::memory_order_relaxed);
  };
  {
    std::shared_lock<std::shared_mutex> lock(state.sets_mu);
    auto it = state.sets.find(fp.digest);
    if (it != state.sets.end()) acquire(it->second);
  }
  if (entry == nullptr) {
    std::unique_lock<std::shared_mutex> lock(state.sets_mu);
    auto it = state.sets.find(fp.digest);
    if (it != state.sets.end()) {
      acquire(it->second);  // Lost a benign insert race: treat as a hit.
    } else {
      uint64_t best_count = 0;
      for (const auto& [digest, cached] : state.sets) {
        if (cached->fp.count == 0 || cached->fp.count >= m) continue;
        auto checkpoint = chain_at.find(cached->fp.count);
        if (checkpoint == chain_at.end()) continue;
        if (checkpoint->second != cached->fp.chain) continue;
        if (cached->fp.count > best_count) {
          best_count = cached->fp.count;
          base = cached;
        }
      }
      auto fresh = std::make_shared<SetEntry>();
      fresh->fp = fp;
      state.sets.emplace(fp.digest, fresh);
      acquire(fresh);
      if (base != nullptr) {
        // Keep the base warm: extending it again next request should find
        // it (touched under the same lock eviction takes).
        base->last_used.store(tick, std::memory_order_relaxed);
      }
      inserted = true;
    }
  }
  if (inserted) {
    state.set_misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    state.set_hits.fetch_add(1, std::memory_order_relaxed);
  }
  // Releases the pin taken above (taken under sets_mu, so eviction never
  // sees the entry unpinned between lookup and use) on every exit path.
  // If an eviction pass stalled on pinned entries while this call ran, the
  // unpin retries it — the last pin release is what restores the byte
  // budget on a quiescent cache.
  struct PinRelease {
    State* state;
    SetEntry* entry;
    ~PinRelease() {
      entry->pins.fetch_sub(1, std::memory_order_relaxed);
      if (state->evict_pending.load(std::memory_order_relaxed)) {
        state->EvictOverBudget();
      }
    }
  } pin{&state, entry.get()};

  // ---- Resolve every LF column: reuse ready columns, claim absent ones
  // (the claimer computes; duplicate misses from concurrent callers land on
  // the same Column object and wait), remember claims this call owns. ----
  struct Claim {
    uint64_t fingerprint = 0;
    size_t lf_index = 0;           // First LF position with this fingerprint.
    std::shared_ptr<Column> column;
    size_t start_row = 0;          // > 0: rows [0, start_row) copy from base.
    std::shared_ptr<Column> base_column;
  };
  std::vector<Claim> claimed;
  std::vector<std::shared_ptr<Column>> wait_for;
  // Column resolved for each LF position (shared across duplicate
  // fingerprints within one set).
  std::vector<std::shared_ptr<Column>> by_position(n);
  std::unordered_map<uint64_t, std::shared_ptr<Column>> resolved;
  uint64_t reused = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t lf_fp = lfs.at(j).fingerprint();
    auto seen = resolved.find(lf_fp);
    if (seen != resolved.end()) {
      by_position[j] = seen->second;
      continue;
    }
    std::shared_ptr<Column> column;
    {
      std::shared_lock<std::shared_mutex> lock(entry->columns_mu);
      auto it = entry->columns.find(lf_fp);
      if (it != entry->columns.end()) column = it->second;
    }
    bool claimed_here = false;
    if (column == nullptr) {
      std::unique_lock<std::shared_mutex> lock(entry->columns_mu);
      auto it = entry->columns.find(lf_fp);
      if (it != entry->columns.end()) {
        column = it->second;
      } else {
        column = std::make_shared<Column>();
        entry->columns.emplace(lf_fp, column);
        claimed_here = true;
      }
    }
    if (claimed_here) {
      Claim claim;
      claim.fingerprint = lf_fp;
      claim.lf_index = j;
      claim.column = column;
      if (base != nullptr) {
        std::shared_lock<std::shared_mutex> lock(base->columns_mu);
        auto it = base->columns.find(lf_fp);
        if (it != base->columns.end() &&
            it->second->state.load(std::memory_order_acquire) ==
                ColumnState::kReady) {
          claim.start_row = base->fp.count;
          claim.base_column = it->second;
        }
      }
      claimed.push_back(std::move(claim));
    } else {
      ++reused;
      if (column->state.load(std::memory_order_acquire) ==
          ColumnState::kComputing) {
        wait_for.push_back(column);
      }
    }
    by_position[j] = column;
    resolved.emplace(lf_fp, std::move(column));
  }
  if (reused > 0) {
    state.columns_reused.fetch_add(reused, std::memory_order_relaxed);
  }

  // ---- Compute the claimed columns in one fused pass over the rows each
  // needs: full columns start at row 0, append-extensions copy the cached
  // prefix and start at the base's row count. Different callers' claims
  // compute concurrently; nothing here holds any cache lock. ----

  // Fails every claim this call owns without poisoning the cache: pull the
  // columns off the map first (new lookups recompute), publish the failure
  // for callers already waiting on them, and reclaim the set entry if the
  // failure left it empty (zero-byte entries are invisible to the
  // byte-budget eviction, so a stream of failing requests over fresh sets
  // would otherwise grow the map without bound).
  auto fail_claims = [&](const Status& error) {
    {
      std::unique_lock<std::shared_mutex> lock(entry->columns_mu);
      for (const Claim& claim : claimed) {
        auto it = entry->columns.find(claim.fingerprint);
        if (it != entry->columns.end() && it->second == claim.column) {
          entry->columns.erase(it);
        }
      }
    }
    for (const Claim& claim : claimed) {
      claim.column->labels.clear();
      claim.column->error = error;
      claim.column->state.store(ColumnState::kFailed,
                                std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(entry->wait_mu);
    }
    entry->wait_cv.notify_all();
    {
      std::unique_lock<std::shared_mutex> sets_lock(state.sets_mu);
      std::shared_lock<std::shared_mutex> columns_lock(entry->columns_mu);
      if (entry->columns.empty()) {
        auto it = state.sets.find(fp.digest);
        if (it != state.sets.end() && it->second == entry) {
          state.sets.erase(it);
        }
      }
    }
  };
  // If an LF throws (user code; std::function can), the exception unwinds
  // past the publish below — without this guard the claims would sit in
  // kComputing forever and every later Apply for this set would block on
  // them. Fail them typed instead, then let the exception propagate.
  struct ClaimAbortGuard {
    std::function<void()> abort;
    bool armed = false;
    ~ClaimAbortGuard() {
      if (armed) abort();
    }
  } abort_guard{[&fail_claims] {
                  fail_claims(Status::Internal(
                      "LF application aborted by an exception; the claimed "
                      "columns were failed, not cached"));
                },
                false};

  if (!claimed.empty()) {
    abort_guard.armed = true;
    size_t min_start = m;
    for (Claim& claim : claimed) {
      claim.column->labels.assign(m, kAbstain);
      if (claim.start_row > 0) {
        std::copy(claim.base_column->labels.begin(),
                  claim.base_column->labels.end(),
                  claim.column->labels.begin());
      }
      min_start = std::min(min_start, claim.start_row);
    }

    // Compiled dispatch for the claimed columns that have compiled slots:
    // scan each distinct sentence of the to-compute rows once, then answer
    // those columns from the hit stream. Bitwise-identical to interpreting,
    // so mixed cached/compiled/interpreted columns stay interchangeable.
    std::shared_ptr<const CompiledLfProgram> program;
    if (state.options.use_compiled) {
      if (state.options.compiled_program &&
          ProgramMatchesLfSet(*state.options.compiled_program, lfs)) {
        program = state.options.compiled_program;
      } else {
        program = GetOrCompileProgram(lfs);
      }
      bool any_compiled_claim = false;
      for (const Claim& claim : claimed) {
        if (program->slot_of_lf[claim.lf_index] >= 0) {
          any_compiled_claim = true;
          break;
        }
      }
      if (!any_compiled_claim) program = nullptr;
    }
    std::optional<CompiledLfBatch> batch;
    if (program != nullptr && min_start < m) {
      std::vector<const Candidate*> candidates(m, nullptr);
      for (size_t i = min_start; i < m; ++i) {
        candidates[i] = &rows.candidate(i);
      }
      batch.emplace(program, corpus, candidates, min_start);
    }

    std::atomic<bool> has_error{false};
    std::atomic<size_t> error_col{0};
    std::atomic<Label> error_label{0};
    // Latched when the caller's deadline expires mid-compute; the claimed
    // columns are then failed off the map (never cached half-filled).
    std::atomic<bool> cancelled{false};
    state.ParallelRows(min_start, m, [&](size_t i) {
      // Cooperative cancellation at row chunk boundaries: probe the clock
      // only every 64 rows (the token latches, so after first expiry this
      // is a relaxed load for every sibling thread).
      if ((i & 63) == 0 && cancel != nullptr && cancel->Expired()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      if (cancelled.load(std::memory_order_relaxed)) return;
      CandidateView view(&corpus, &rows.candidate(i), rows.index(i));
      for (const Claim& claim : claimed) {
        if (i < claim.start_row) continue;
        int32_t slot = batch ? program->slot_of_lf[claim.lf_index] : -1;
        Label label = slot >= 0
                          ? batch->Eval(static_cast<uint32_t>(slot), i)
                          : lfs.at(claim.lf_index).Apply(view);
        if (!LabelValidFor(label, state.options.cardinality)) {
          bool expected = false;
          if (has_error.compare_exchange_strong(expected, true)) {
            error_col.store(claim.lf_index);
            error_label.store(label);
          }
          return;
        }
        claim.column->labels[i] = label;
      }
    });
    if (has_error.load()) {
      Status error = Status::InvalidArgument(
          "LF '" + lfs.at(error_col.load()).name() + "' voted " +
          std::to_string(error_label.load()) + ", invalid for cardinality " +
          std::to_string(state.options.cardinality));
      abort_guard.armed = false;
      fail_claims(error);
      return error;
    }
    if (cancelled.load()) {
      // Expired mid-compute: abandon the claims through the same
      // cache-safe path a bad vote takes — pulled off the map (future
      // lookups recompute), failed typed for anyone already waiting.
      Status error = Status::DeadlineExceeded(
          "request deadline expired during LF application; claimed columns "
          "abandoned");
      abort_guard.armed = false;
      fail_claims(error);
      return error;
    }
    uint64_t appended = 0;
    {
      // Exclusive over the map so the membership check AND the byte
      // accounting serialize with Invalidate(): a claim dropped
      // mid-compute publishes for its own waiters but contributes no
      // bytes (it is off the map, and Invalidate subtracted nothing).
      std::unique_lock<std::shared_mutex> lock(entry->columns_mu);
      uint64_t published_bytes = 0;
      for (const Claim& claim : claimed) {
        auto it = entry->columns.find(claim.fingerprint);
        if (it != entry->columns.end() && it->second == claim.column) {
          published_bytes += claim.column->labels.size() * sizeof(Label);
        }
        if (claim.start_row > 0) appended += m - claim.start_row;
        claim.column->state.store(ColumnState::kReady,
                                  std::memory_order_release);
      }
      entry->bytes.fetch_add(published_bytes, std::memory_order_relaxed);
    }
    abort_guard.armed = false;
    state.columns_computed.fetch_add(claimed.size(),
                                     std::memory_order_relaxed);
    if (appended > 0) {
      state.appended_rows.fetch_add(appended, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(entry->wait_mu);
    }
    entry->wait_cv.notify_all();
  }

  // ---- Wait for columns claimed by concurrent callers (duplicate misses
  // collapse here: one computation, everyone else sleeps until publish). ----
  // Expired callers don't park behind someone else's computation: their own
  // claims (if any) are already published ready and stay cached for the
  // next request — only this reply is abandoned.
  if (!wait_for.empty() && cancel != nullptr && cancel->Expired()) {
    return Status::DeadlineExceeded(
        "request deadline expired before cached columns were ready");
  }
  for (const std::shared_ptr<Column>& column : wait_for) {
    if (column->state.load(std::memory_order_acquire) !=
        ColumnState::kComputing) {
      continue;
    }
    std::unique_lock<std::mutex> lock(entry->wait_mu);
    entry->wait_cv.wait(lock, [&] {
      return column->state.load(std::memory_order_acquire) !=
             ColumnState::kComputing;
    });
  }
  for (size_t j = 0; j < n; ++j) {
    if (by_position[j]->state.load(std::memory_order_acquire) ==
        ColumnState::kFailed) {
      return by_position[j]->error;
    }
  }

  // ---- Assemble Λ from the resolved columns (all ready, all length m). ----
  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  for (size_t j = 0; j < n; ++j) {
    const std::vector<Label>& column = by_position[j]->labels;
    for (size_t i = 0; i < m; ++i) {
      if (column[i] != kAbstain) triplets.emplace_back(i, j, column[i]);
    }
  }
  Result<LabelMatrix> matrix = LabelMatrix::FromTriplets(
      m, n, triplets, state.options.cardinality);

  // Miss paths grew the cache: enforce the byte budget before returning.
  // The hit path never reaches here, so hits stay exclusive-lock-free.
  if (!claimed.empty()) state.EvictOverBudget();
  return matrix;
}

}  // namespace snorkel
