#include "serve/label_service.h"

#include <algorithm>
#include <cmath>

#include "lf/applier.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace snorkel {

namespace {

// CAS-min / CAS-max for the monotonic throughput anchors.
void AtomicMinU64(std::atomic<uint64_t>* target, uint64_t v) {
  uint64_t old = target->load(std::memory_order_relaxed);
  while (v < old && !target->compare_exchange_weak(
                        old, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxU64(std::atomic<uint64_t>* target, uint64_t v) {
  uint64_t old = target->load(std::memory_order_relaxed);
  while (v > old && !target->compare_exchange_weak(
                        old, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

LabelService::LabelService(
    GenerativeModel model, DawidSkeneModel ds_model, int cardinality,
    LabelingFunctionSet lfs, Options options,
    std::shared_ptr<const CompiledLfProgram> compiled_program)
    : options_(options),
      cardinality_(cardinality),
      model_(std::move(model)),
      ds_model_(std::move(ds_model)),
      lfs_(std::move(lfs)),
      // Exactly one of the two appliers serves this service's requests;
      // pin the unused one serial so an explicit num_threads never spawns
      // a second, idle dedicated pool. Both appliers share the snapshot's
      // pre-built LFCP program (null = compile live on first use).
      applier_(IncrementalApplier::Options{
          .num_threads =
              options.use_incremental_cache ? options.num_threads : 1,
          .cardinality = cardinality,
          .use_compiled = options.use_compiled_lfs,
          .compiled_program = compiled_program}),
      stateless_applier_(LFApplier::Options{
          .num_threads =
              options.use_incremental_cache ? 1 : options.num_threads,
          .cardinality = cardinality,
          .use_compiled = options.use_compiled_lfs,
          .compiled_program = std::move(compiled_program)}),
      anchors_(std::make_shared<TimeAnchors>()) {
  auto& registry = obs::MetricsRegistry::Default();
  requests_total_ = registry.CreateCounter("snorkel_serve_requests_total");
  candidates_total_ =
      registry.CreateCounter("snorkel_serve_candidates_total");
  latency_hist_ = registry.CreateHistogram("snorkel_serve_latency_ms",
                                           obs::LatencyBucketsMs());
}

Result<LabelService> LabelService::Create(const ModelSnapshot& snapshot,
                                          LabelingFunctionSet lfs,
                                          Options options) {
  if (snapshot.cardinality < 2) {
    return Status::InvalidArgument(
        "snapshot cardinality must be >= 2; got " +
        std::to_string(snapshot.cardinality));
  }
  if (lfs.size() != snapshot.num_lfs()) {
    return Status::InvalidArgument(
        "LF set has " + std::to_string(lfs.size()) + " functions; snapshot " +
        "was trained over " + std::to_string(snapshot.num_lfs()));
  }
  for (size_t j = 0; j < lfs.size(); ++j) {
    if (lfs.at(j).name() != snapshot.lf_names[j]) {
      return Status::InvalidArgument(
          "LF column " + std::to_string(j) + " is '" + lfs.at(j).name() +
          "' but the snapshot was trained with '" + snapshot.lf_names[j] +
          "' there; columns must align with the learned weights");
    }
    if (lfs.at(j).fingerprint() != snapshot.lf_fingerprints[j]) {
      return Status::InvalidArgument(
          "LF '" + lfs.at(j).name() + "' has a different fingerprint than " +
          "at training time; its behaviour changed, so the snapshot's " +
          "weights no longer apply (re-train and re-export)");
    }
  }
  // Dispatch on what the snapshot carries: a binary snapshot serves a
  // scalar posterior — from the generative model (GENM) when present, else
  // from a binary Dawid-Skene model's P(class +1) — and a K-class snapshot
  // serves the Dawid-Skene class distribution (DAWD required).
  // Artifact identity surfaced in stats (rollout observability): the
  // store version the snapshot was loaded at plus its canonical content
  // checksum.
  const uint64_t artifact_version = snapshot.artifact_version;
  const uint64_t artifact_checksum = snapshot.CanonicalChecksum();
  if (snapshot.cardinality == 2 && snapshot.has_gen_model) {
    auto model = snapshot.RestoreGenerativeModel(options.gen);
    if (!model.ok()) return model.status();
    LabelService service(std::move(*model), DawidSkeneModel(), 2,
                         std::move(lfs), options, snapshot.compiled_lfs);
    service.snapshot_version_ = artifact_version;
    service.snapshot_checksum_ = artifact_checksum;
    return service;
  }
  if (!snapshot.has_ds_model) {
    return Status::InvalidArgument(
        "cardinality-" + std::to_string(snapshot.cardinality) +
        " snapshot carries no label model to serve (needs " +
        (snapshot.cardinality == 2 ? "a GENM or DAWD" : "a DAWD") +
        " section)");
  }
  auto ds_model = snapshot.RestoreDawidSkeneModel(options.ds);
  if (!ds_model.ok()) return ds_model.status();
  LabelService service(GenerativeModel(), std::move(*ds_model),
                       snapshot.cardinality, std::move(lfs), options,
                       snapshot.compiled_lfs);
  service.snapshot_version_ = artifact_version;
  service.snapshot_checksum_ = artifact_checksum;
  return service;
}

Result<LabelService> LabelService::FromFile(const std::string& path,
                                            LabelingFunctionSet lfs,
                                            Options options) {
  // Mapped load: replicas opening the same artifact share one page-cache
  // copy of its bytes (identical validation to the read-copy path).
  auto snapshot = LoadSnapshotMapped(path);
  if (!snapshot.ok()) return snapshot.status();
  return Create(*snapshot, std::move(lfs), options);
}

Result<LabelResponse> LabelService::Label(const LabelRequest& request) {
  if (request.corpus == nullptr) {
    return Status::InvalidArgument("request missing corpus");
  }
  const bool by_refs = request.candidate_refs != nullptr;
  if (by_refs == (request.candidates != nullptr)) {
    return Status::InvalidArgument(
        "request must set exactly one of candidates / candidate_refs");
  }
  const size_t num_candidates =
      by_refs ? request.candidate_refs->size() : request.candidates->size();
  // Stage boundary check: a request that arrives already expired (e.g. it
  // sat in an admission queue past its budget) does no work at all.
  if (request.cancel != nullptr && request.cancel->Expired()) {
    return Status::DeadlineExceeded(
        "request budget spent before LF application started");
  }
  const uint64_t request_start_ns = obs::NowNanos();
  WallTimer timer;

  // LF application: both the cached and the stateless path run without any
  // service-level lock. The concurrent column cache lets callers overlap —
  // hits read under shared locks, misses for different LFs compute in
  // parallel, and duplicate misses collapse onto one computation. Ref
  // requests (the sharded tier's zero-copy fan-out) cache by content +
  // reported index, so repeat sub-batches hit like owned batches do.
  Result<LabelMatrix> matrix(Status::Internal("unset"));
  {
    obs::TraceSpan span("service.lf_apply");
    // Cache-delta annotation only when traced: the applier counters are
    // relaxed atomics, so under concurrent callers the delta attributes
    // overlapping work approximately, which is fine for a trace.
    IncrementalApplier::Stats before;
    if (span.active() && options_.use_incremental_cache) {
      before = applier_.stats();
    }
    if (options_.use_incremental_cache) {
      matrix = by_refs ? applier_.ApplyRefs(lfs_, *request.corpus,
                                            *request.candidate_refs,
                                            request.cancel)
                       : applier_.Apply(lfs_, *request.corpus,
                                        *request.candidates, request.cancel);
    } else {
      matrix = by_refs ? stateless_applier_.ApplyRefs(lfs_, *request.corpus,
                                                      *request.candidate_refs,
                                                      request.cancel)
                       : stateless_applier_.Apply(lfs_, *request.corpus,
                                                  *request.candidates,
                                                  request.cancel);
    }
    if (span.active()) {
      span.Annotate("rows=" + std::to_string(num_candidates));
      if (options_.use_incremental_cache) {
        IncrementalApplier::Stats after = applier_.stats();
        span.Annotate(
            "cols_reused=" +
            std::to_string(after.columns_reused - before.columns_reused) +
            " cols_computed=" +
            std::to_string(after.columns_computed - before.columns_computed));
      } else {
        span.Annotate("cache=off");
      }
    }
  }
  if (!matrix.ok()) return matrix.status();
  // Stage boundary check between LF application and inference: don't start
  // the posterior pass for a caller that already gave up.
  if (request.cancel != nullptr && request.cancel->Expired()) {
    return Status::DeadlineExceeded(
        "request budget spent before inference started");
  }

  // Posterior computation reads the immutable restored model: lock-free.
  LabelResponse response;
  response.cardinality = cardinality_;
  {
  obs::TraceSpan inference_span("service.inference");
  if (inference_span.active()) {
    inference_span.Annotate("cardinality=" + std::to_string(cardinality_));
  }
  if (cardinality_ == 2) {
    if (ds_model_.is_fit()) {
      // Binary Dawid-Skene snapshot: the scalar posterior is P(class 0),
      // i.e. P(y = +1) under the model's label mapping. The DS posterior
      // has no class-symmetric form, so its own priors always apply
      // (request.apply_class_balance is a generative-model knob).
      std::vector<double> flat = ds_model_.PredictProbaFlat(*matrix);
      response.posteriors.resize(num_candidates);
      for (size_t i = 0; i < num_candidates; ++i) {
        response.posteriors[i] = flat[i * 2];
      }
    } else {
      response.posteriors =
          model_.PredictProba(*matrix, request.apply_class_balance);
    }
    response.hard_labels.resize(response.posteriors.size());
    for (size_t i = 0; i < response.posteriors.size(); ++i) {
      if (response.posteriors[i] > 0.5) {
        response.hard_labels[i] = 1;
      } else if (response.posteriors[i] < 0.5) {
        response.hard_labels[i] = -1;
      } else {
        response.hard_labels[i] = kAbstain;
      }
    }
  } else {
    // K-class: the batched Dawid-Skene E-step kernel over precomputed
    // log-tables; hard labels are the MAP class (first-max tie break,
    // exactly DawidSkeneModel::PredictLabels).
    const size_t k = static_cast<size_t>(cardinality_);
    response.class_posteriors = ds_model_.PredictProbaFlat(*matrix);
    response.hard_labels.resize(num_candidates);
    for (size_t i = 0; i < num_candidates; ++i) {
      const double* row = response.class_posteriors.data() + i * k;
      size_t best = 0;
      for (size_t c = 1; c < k; ++c) {
        if (row[c] > row[best]) best = c;
      }
      response.hard_labels[i] = ds_model_.ClassToLabel(best);
    }
  }
  }  // inference span
  if (request.include_votes) response.votes = std::move(*matrix);
  response.latency_ms = timer.ElapsedMillis();

  // Lock-free stats: two counter bumps, one histogram Observe, and two CAS
  // anchor updates. Anchoring on the earliest request START keeps the
  // throughput span covering all overlapping concurrent work exactly once
  // even when requests retire out of order.
  requests_total_->Increment();
  candidates_total_->Increment(num_candidates);
  latency_hist_->Observe(response.latency_ms);
  AtomicMinU64(&anchors_->first_start_ns, request_start_ns);
  AtomicMaxU64(&anchors_->last_done_ns, obs::NowNanos());
  return response;
}

void LabelService::InvalidateCache() { applier_.InvalidateAll(); }

ServiceStats LabelService::stats() const {
  ServiceStats stats;
  stats.num_requests = requests_total_->value();
  stats.num_candidates = candidates_total_->value();
  stats.latency = latency_hist_->Snapshot();
  stats.p50_latency_ms = stats.latency.Quantile(0.5);
  stats.p99_latency_ms = stats.latency.Quantile(0.99);
  stats.max_latency_ms = stats.latency.max;
  // Wall-clock throughput: earliest request start to latest completion.
  // Summing per-request latencies here would count every overlapping
  // concurrent request's time separately and understate throughput.
  const uint64_t first_ns = anchors_->first_start_ns.load();
  const uint64_t last_ns = anchors_->last_done_ns.load();
  if (first_ns != ~0ull && last_ns > first_ns) {
    stats.busy_span_s = static_cast<double>(last_ns - first_ns) / 1e9;
    stats.throughput_cps =
        static_cast<double>(stats.num_candidates) / stats.busy_span_s;
  }
  // The applier's counters are atomics: no lock, and never blocked behind
  // an in-flight miss computation.
  IncrementalApplier::Stats cache = applier_.stats();
  stats.lf_columns_reused = cache.columns_reused;
  stats.lf_columns_computed = cache.columns_computed;
  stats.cache_set_hits = cache.set_hits;
  stats.cache_set_misses = cache.set_misses;
  stats.cache_bytes = cache.bytes_cached;
  stats.cache_appended_rows = cache.appended_rows;
  stats.snapshot_version = snapshot_version_;
  stats.snapshot_checksum = snapshot_checksum_;
  return stats;
}

}  // namespace snorkel
