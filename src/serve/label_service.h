#ifndef SNORKEL_SERVE_LABEL_SERVICE_H_
#define SNORKEL_SERVE_LABEL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/generative_model.h"
#include "obs/metrics.h"
#include "core/label_matrix.h"
#include "data/candidate.h"
#include "lf/applier.h"
#include "lf/labeling_function.h"
#include "serve/incremental_applier.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace snorkel {

/// One batched labeling request: a set of candidates (rows) drawn from a
/// corpus, to be labeled under the snapshot's model. Rows are given either
/// as an owned vector (`candidates`) or as borrowed, index-preserving refs
/// (`candidate_refs`) — exactly one must be set. The ref form is the
/// zero-copy fan-out path used by the sharded tier: sub-batches reference
/// the original request's candidates and keep their original indices, so
/// even index-dependent LFs behave identically under sharding. Both forms
/// go through the incremental column cache when it is enabled (ref batches
/// fingerprint by content + reported index, and an identity ref view of a
/// vector shares cached columns with the owned form).
struct LabelRequest {
  const Corpus* corpus = nullptr;
  const std::vector<Candidate>* candidates = nullptr;
  const std::vector<CandidateRef>* candidate_refs = nullptr;
  /// Include the per-LF vote matrix Λ in the response (costs a copy).
  bool include_votes = false;
  /// Apply the snapshot's class-balance prior (off = the class-symmetric
  /// posterior used as discriminative training targets).
  bool apply_class_balance = true;
  /// Router-tier degradation policy (ignored by an unsharded service, which
  /// has no shards to lose). Default false: any failed shard fails the
  /// whole request with a typed status — never partial data. True opts this
  /// request into typed PARTIAL results: rows on healthy shards come back
  /// bit-identical to the unsharded answer, rows on failed shards are
  /// marked uncovered (LabelResponse::covered/shard_outcomes), and the
  /// response reports is_partial instead of failing.
  bool allow_partial = false;
  /// Optional cooperative cancellation token (not owned; must outlive the
  /// call). Checked between pipeline stages and at row chunk boundaries
  /// inside LF application, so a request whose caller has given up stops
  /// consuming CPU and fails typed kDeadlineExceeded instead of computing a
  /// reply nobody reads. Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// One attempt at one replica while serving a shard's sub-batch: which
/// endpoint was tried and the typed status it returned. A sub-batch that
/// failed over records one entry per replica tried, in order.
struct ShardAttempt {
  size_t endpoint = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
};

/// Outcome of one shard's sub-batch: which shard, how many of the request's
/// rows it owned, and the typed status of its final attempt (kOk for
/// covered rows). Populated for allow_partial requests, and for any request
/// where some sub-batch needed more than one attempt — so callers can see
/// the failover chain (`attempts`) even when the response is complete.
struct ShardOutcome {
  size_t shard = 0;
  size_t rows = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Per-replica attempt chain (empty when the primary answered first try).
  std::vector<ShardAttempt> attempts;
};

/// The serving result for one batch. Binary snapshots fill the scalar
/// fields exactly as they always have (`posteriors` = P(y=+1), hard labels
/// in {+1, -1, ∅}); K-class snapshots fill `class_posteriors` — a flat
/// row-major num_candidates × K distribution — plus MAP `hard_labels` in
/// {1..K}, and leave `posteriors` empty. `cardinality` says which shape
/// this response carries.
struct LabelResponse {
  /// Task cardinality of the serving snapshot (2 = binary).
  int cardinality = 2;
  /// Binary only: P(y = +1 | Λ_i) per candidate, in request order.
  std::vector<double> posteriors;
  /// Hard labels: binary thresholded at 0.5 (∅ at exactly 0.5); K-class
  /// MAP over the class posterior (first-max tie break, matching
  /// DawidSkeneModel::PredictLabels).
  std::vector<Label> hard_labels;
  /// K-class only: flat row-major num_candidates × K class posteriors,
  /// row i at [i*K, (i+1)*K), class index c ↦ label c+1.
  std::vector<double> class_posteriors;
  /// Per-LF votes (populated when LabelRequest::include_votes).
  LabelMatrix votes;
  /// Wall-clock for this request, milliseconds.
  double latency_ms = 0.0;

  /// ---- Partial-degradation fields (allow_partial requests only). ----
  /// True when at least one shard failed and its rows are uncovered. A
  /// response with is_partial == false is complete: every row is exactly
  /// what the unsharded service would have produced.
  bool is_partial = false;
  /// Covered-index bitmap, one bit per request row (row i at word i/64, bit
  /// i%64). Empty means "all rows covered". Uncovered rows hold kAbstain
  /// hard labels and zeroed posteriors — placeholders, not model output.
  std::vector<uint64_t> covered;
  /// Per-sub-batch status for allow_partial requests (covered shards
  /// report kOk) and for complete responses that needed failover; empty
  /// when every sub-batch succeeded on its primary first try.
  std::vector<ShardOutcome> shard_outcomes;

  /// True when row `i` carries real model output (always true for
  /// non-partial responses).
  bool RowCovered(size_t i) const {
    if (covered.empty()) return true;
    return (covered[i / 64] >> (i % 64)) & 1u;
  }
};

/// Cumulative serving counters. Latency quantiles come from a fixed-bucket
/// all-time histogram (obs::LatencyBucketsMs edges): bounded memory for
/// long-lived serving processes, lock-free on the request hot path, and
/// mergeable across shards and processes. p50/p99 are bucket-interpolated
/// estimates; max is exact.
struct ServiceStats {
  uint64_t num_requests = 0;
  uint64_t num_candidates = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// The full latency histogram the quantiles above are derived from.
  /// Shards share bucket bounds, so RouterStats can sum these across the
  /// fleet and re-derive fleet-level quantiles.
  obs::HistogramSnapshot latency;
  /// Candidates per second over WALL CLOCK: all-time candidates divided by
  /// the span from the first request's start to the latest request's
  /// completion. (Dividing by *summed* request latencies would double-count
  /// elapsed time under concurrent callers and understate true throughput.)
  double throughput_cps = 0.0;
  /// The wall-clock span the throughput is measured over, seconds.
  double busy_span_s = 0.0;
  /// Column-cache effectiveness, forwarded from the incremental applier
  /// (see IncrementalApplier::Stats for the exact semantics).
  uint64_t lf_columns_reused = 0;
  uint64_t lf_columns_computed = 0;
  /// Candidate-set-level cache behaviour: requests whose set was already
  /// cached vs not, resident cached label bytes, and rows computed as
  /// appended tails of a cached prefix (the append-only stream path).
  uint64_t cache_set_hits = 0;
  uint64_t cache_set_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_appended_rows = 0;
  /// Identity of the snapshot this service is serving: the artifact's store
  /// version (0 = not store-managed) and the canonical content checksum
  /// (ModelSnapshot::CanonicalChecksum). During a rollout, a fleet's stats
  /// show per shard which replicas have swapped onto the new artifact.
  uint64_t snapshot_version = 0;
  uint64_t snapshot_checksum = 0;
};

/// The label-serving front end: loads one model snapshot, binds it to the
/// live LabelingFunctionSet, and answers batched LabelRequests — apply LFs
/// (cached + sharded over the thread pool), run the label-model posterior,
/// record latency. This is the Snorkel-DryBell-shaped deployment surface:
/// the Figure 2 training loop happens offline, a snapshot is shipped, and
/// fresh candidates are labeled online without refitting anything.
///
/// Create() dispatches on what the snapshot carries: binary snapshots
/// serve a scalar posterior — the generative model's (GENM section) when
/// present, else P(y=+1) from a binary Dawid-Skene model — while K-class
/// snapshots (e.g. the §4.1.2 five-class Crowd task) serve the Dawid-Skene
/// class distribution (DAWD section) through the batched K-class E-step
/// kernel. LF votes are validated against the snapshot's cardinality on
/// every path.
///
/// Thread-safe, with narrow critical sections: the posterior computation is
/// read-only on the restored model and runs lock-free, and the incremental
/// applier's column cache is itself concurrent (shared-lock hits, per-column
/// miss collapse) — so concurrent Label() callers overlap their compute on
/// BOTH the cached and the stateless path. The serving counters are
/// lock-free too (atomic counters + an atomic-bucket latency histogram),
/// so no request ever serializes on stats.
class LabelService {
 public:
  struct Options {
    size_t num_threads = 0;
    /// Reuse memoized LF columns across requests (the §4.1 iterate loop,
    /// repeat/alternating serving batches, and append-only candidate
    /// streams); identical posteriors either way. The cache is concurrent:
    /// hits take no exclusive lock and misses for the same column collapse
    /// onto one computation across callers.
    bool use_incremental_cache = true;
    /// Forwarded to GenerativeModel at restore time (binary snapshots).
    GenerativeModelOptions gen;
    /// Forwarded to DawidSkeneModel at restore time (K-class snapshots).
    DawidSkeneOptions ds;
    /// Dispatch compilable LFs through the batch engine (lf/compiled/),
    /// seeded with the snapshot's LFCP program when it carries one (else
    /// compiled live on first use). Votes and posteriors are bitwise
    /// identical either way; off = interpret every LF per row.
    bool use_compiled_lfs = true;
  };

  /// Binds `snapshot` to the live LF set. Every LF must match the snapshot's
  /// per-column name AND fingerprint — a renamed, reordered, or re-versioned
  /// LF set would silently misalign Λ's columns with the learned weights, so
  /// mismatches are an InvalidArgument at load time, not a serving-time bug.
  static Result<LabelService> Create(const ModelSnapshot& snapshot,
                                     LabelingFunctionSet lfs, Options options);
  static Result<LabelService> Create(const ModelSnapshot& snapshot,
                                     LabelingFunctionSet lfs) {
    return Create(snapshot, std::move(lfs), Options());
  }

  /// LoadSnapshot + Create.
  static Result<LabelService> FromFile(const std::string& path,
                                       LabelingFunctionSet lfs,
                                       Options options);
  static Result<LabelService> FromFile(const std::string& path,
                                       LabelingFunctionSet lfs) {
    return FromFile(path, std::move(lfs), Options());
  }

  LabelService(LabelService&&) = default;

  /// Labels one batch.
  Result<LabelResponse> Label(const LabelRequest& request);

  /// Snapshot of the cumulative serving counters.
  ServiceStats stats() const;

  /// Drops every cached LF column. Call after reusing a corpus the cache
  /// cannot observe changing — mutating one in place, or tearing one down
  /// and allocating another at the same address (the cache scopes entries
  /// by corpus identity, which address reuse defeats). Safe concurrently
  /// with Label(); in-flight requests finish against their pinned entries.
  void InvalidateCache();

  /// The restored generative model (meaningful for binary services only).
  const GenerativeModel& model() const { return model_; }
  /// The restored Dawid-Skene model (meaningful for K-class services only).
  const DawidSkeneModel& ds_model() const { return ds_model_; }
  /// Task cardinality this service serves (2 = binary).
  int cardinality() const { return cardinality_; }
  size_t num_lfs() const { return lfs_.size(); }
  /// Artifact identity of the serving snapshot (see
  /// ServiceStats::snapshot_version/snapshot_checksum).
  uint64_t snapshot_version() const { return snapshot_version_; }
  uint64_t snapshot_checksum() const { return snapshot_checksum_; }

 private:
  LabelService(GenerativeModel model, DawidSkeneModel ds_model,
               int cardinality, LabelingFunctionSet lfs, Options options,
               std::shared_ptr<const CompiledLfProgram> compiled_program);

  Options options_;
  /// 2 serves model_ (scalar posterior); >2 serves ds_model_ (K columns).
  int cardinality_ = 2;
  /// Immutable after Create: the serving artifact's identity.
  uint64_t snapshot_version_ = 0;
  uint64_t snapshot_checksum_ = 0;
  GenerativeModel model_;
  DawidSkeneModel ds_model_;
  LabelingFunctionSet lfs_;
  /// Concurrent multi-set column cache (when enabled); no service-level
  /// lock guards it — concurrent callers hit, miss, and wait inside it.
  IncrementalApplier applier_;
  /// Stateless fallback (cache disabled); persistent so an explicit
  /// num_threads pool is created once, not per request.
  LFApplier stateless_applier_;

  /// Monotonic anchors for wall-clock throughput: start of the first
  /// request ever (CAS-min; ~0 = never served) and completion of the most
  /// recent one (CAS-max). Heap-held atomics so the service stays movable
  /// (Result<LabelService> needs it) while concurrent Label() callers
  /// update them lock-free.
  struct TimeAnchors {
    std::atomic<uint64_t> first_start_ns{~0ull};
    std::atomic<uint64_t> last_done_ns{0};
  };
  std::shared_ptr<TimeAnchors> anchors_;

  /// Lock-free serving instruments, registered into the process metrics
  /// registry (PR 8: replaces the mutexed latency window — the whole
  /// request hot path is now atomic increments + one histogram Observe).
  /// shared_ptr-owned: the registry holds weak refs, so a destroyed
  /// service's instruments drop out of the next export.
  std::shared_ptr<obs::Counter> requests_total_;
  std::shared_ptr<obs::Counter> candidates_total_;
  std::shared_ptr<obs::Histogram> latency_hist_;
};

}  // namespace snorkel

#endif  // SNORKEL_SERVE_LABEL_SERVICE_H_
