#ifndef SNORKEL_OBS_TRACE_H_
#define SNORKEL_OBS_TRACE_H_

// Distributed request tracing for the serving fabric.
//
// A 64-bit trace id is minted at the router when tracing is enabled and
// propagated over the wire in the `TRAC` request section; each process
// records named stage spans (placement, backoff, socket send/recv, decode,
// corpus intern, queue wait, LF apply, inference, encode) against that id.
// Spans accumulate in a per-thread buffer — no locks on the hot path — and
// are flushed into one bounded process-global ring when the root span of a
// request completes (or explicitly, for detached attempt threads). The ring
// is drained over the kTraceRequest RPC and stitched across processes by
// tools/trace_dump.
//
// All timestamps come from NowNanos(), a CLOCK_MONOTONIC read behind one
// settable seam (SetClockForTest) so tests and the chaos harness can pin
// time. CLOCK_MONOTONIC is system-wide on Linux, so spans recorded by a
// client and a server process on the same host stitch directly.

#include <cstdint>
#include <string>
#include <vector>

namespace snorkel {
namespace obs {

// -------------------------------------------------------------- clock seam

/// Monotonic nanoseconds since an arbitrary (boot-time) epoch.
uint64_t NowNanos();

/// Replaces the clock used by NowNanos / spans. Pass nullptr to restore the
/// real CLOCK_MONOTONIC. Test-only; not synchronized with in-flight spans.
void SetClockForTest(uint64_t (*clock_fn)());

// ------------------------------------------------------------ trace switch

/// When disabled (the default) routers mint no trace ids, so TraceSpan
/// construction on every downstream hot path reduces to one thread-local
/// load and a branch. Servers honor an incoming TRAC section regardless —
/// enabling tracing is purely a client/router-side decision.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Non-zero random 64-bit id (trace ids and span ids share the generator).
uint64_t MintId();

// ------------------------------------------------------------ span records

/// One completed stage. `parent_id == 0` marks a root span.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::string annotation;  // free-form "key=value key=value" detail
};

// ------------------------------------------------------------ propagation

/// The ambient trace identity of the current thread. `parent_span` is the
/// innermost open TraceSpan's id; new spans attach under it.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// Thread-local ambient context (zero => untraced).
TraceContext CurrentTraceContext();

/// Installs `ctx` as the current thread's context for the scope's lifetime
/// and restores the previous one after — used to carry a request's identity
/// onto worker / attempt threads.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII stage span. Inert (near-zero cost) when the current thread has no
/// trace context. While open it becomes the parent of nested spans on this
/// thread; on destruction it records [start, now] into the thread buffer
/// and, if it was the outermost span on the thread, flushes to the ring.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t span_id() const { return span_.span_id; }
  /// Appends detail text (space-separated) to the span's annotation.
  void Annotate(const std::string& text);

 private:
  bool active_ = false;
  Span span_;
  uint64_t saved_parent_ = 0;
};

/// Records an already-timed span (used where the trace id is only known
/// after the work happened, e.g. the server-side decode of the very frame
/// that carries the TRAC section, or queue wait measured at dequeue).
/// Returns the minted span id (0 when `ctx` is invalid).
uint64_t EmitSpan(const TraceContext& ctx, const char* name,
                  uint64_t start_ns, uint64_t end_ns,
                  const std::string& annotation = std::string());

// -------------------------------------------------------- buffers / export

/// Moves this thread's completed spans into the process-global ring. Called
/// automatically when a root span closes; call explicitly before signaling
/// completion from detached attempt threads so the drain sees their spans.
void FlushThreadSpans();

/// Returns ring spans with the given trace id (0 matches all), oldest
/// first. `drain` removes the returned spans from the ring (the
/// kTraceRequest RPC drains; the slow-request log copies).
std::vector<Span> CollectSpans(uint64_t trace_id, bool drain);

/// Spans discarded because the ring was full (oldest-first eviction).
uint64_t DroppedSpans();

/// Resizes the global ring (test hook; default 16384 spans). Clears it.
void SetSpanRingCapacityForTest(size_t capacity);

/// Label identifying this process in exported spans / stitched traces
/// (e.g. "router", "shard-0"). Defaults to "pid-<pid>".
void SetProcessLabel(const std::string& label);
std::string ProcessLabel();

/// Multi-line indented rendering of one trace's span tree (slow-request
/// log format): spans sorted by start time, children indented under
/// parents, durations in milliseconds.
std::string FormatSpanTree(const std::vector<Span>& spans);

}  // namespace obs
}  // namespace snorkel

#endif  // SNORKEL_OBS_TRACE_H_
