#ifndef SNORKEL_OBS_METRICS_H_
#define SNORKEL_OBS_METRICS_H_

// Unified metrics registry for the serving fabric.
//
// Components own their instruments (Counter / Gauge / Histogram) via
// shared_ptr and register them with a MetricsRegistry, which holds only
// weak_ptrs: when a component dies its instruments silently drop out of the
// next Collect(). The hot path (Counter::Increment, Histogram::Observe) is
// lock-free — plain atomic fetch_adds plus a CAS loop for the double-valued
// sum/max — which is what lets LabelService retire its mutexed latency
// window (PR 8) without giving up p50/p99/max.
//
// Several replicas of one component (e.g. R-way shard placement in one
// process) may register instruments under the same name; Collect() sums
// same-name samples of the same type, so exported totals are per-process
// rollups. Callback metrics cover values that live in foreign structs
// (router counters under their own mutex, fault-injection totals): the
// callback runs at Collect() time and may take locks — only instrument
// *updates* are required to be lock-free, not export.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snorkel {
namespace obs {

// ------------------------------------------------------------------ Counter

/// Monotonically increasing uint64 counter. Lock-free.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// -------------------------------------------------------------------- Gauge

/// Last-written double value (set/add). Lock-free via bit-cast CAS.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) {
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }
  void Add(double delta) {
    uint64_t old_bits = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old_bits,
                                        ToBits(FromBits(old_bits) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }
  const std::string& name() const { return name_; }

 private:
  static uint64_t ToBits(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double FromBits(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string name_;
  std::atomic<uint64_t> bits_{0};  // 0 bits == +0.0
};

// ---------------------------------------------------------------- Histogram

/// Point-in-time copy of a histogram's state. `bounds[i]` is the inclusive
/// upper edge of bucket i; `counts` has bounds.size() + 1 entries, the last
/// being the overflow bucket (> bounds.back()).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket. Empty histogram -> 0. Samples landing in the
  /// overflow bucket interpolate toward the observed max, so an
  /// all-overflow histogram still reports a finite p99 <= max.
  double Quantile(double q) const;

  /// Mean of all observations (0 when empty).
  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Adds `other`'s populations into this snapshot. The bucket bounds must
  /// be identical (true for all fabric latency histograms, which share
  /// kLatencyBucketsMs); mismatched bounds are ignored rather than merged
  /// wrong. An empty `this` adopts `other`'s bounds.
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-boundary histogram with atomic buckets. Observe() is lock-free:
/// a binary search over immutable bounds, one fetch_add, and CAS loops for
/// the double-valued sum and max.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::string name_;
  std::vector<double> bounds_;                       // ascending upper edges
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
};

/// Shared latency bucket edges (milliseconds) for every fabric latency
/// histogram. Identical bounds everywhere is what makes cross-shard and
/// cross-process HistogramSnapshot::Merge well defined.
const std::vector<double>& LatencyBucketsMs();

// ----------------------------------------------------------------- Registry

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported sample, after same-name summing.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;            // counter / gauge
  HistogramSnapshot histogram;   // histograms only
};

class MetricsRegistry {
 public:
  /// Process-wide registry used by the serving fabric.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates an instrument owned by the caller and registers a weak
  /// reference. Multiple instruments may share a name; Collect() sums them.
  std::shared_ptr<Counter> CreateCounter(const std::string& name);
  std::shared_ptr<Gauge> CreateGauge(const std::string& name);
  std::shared_ptr<Histogram> CreateHistogram(const std::string& name,
                                             std::vector<double> bounds);

  /// Registers a callback polled at Collect() time for a value that lives
  /// elsewhere (a struct under someone else's mutex). Returns a token for
  /// Unregister. Callbacks run under the registry lock, which makes
  /// UnregisterCallback a barrier — once it returns, the callback cannot
  /// be running, so its captured state may be freed. Callbacks may take
  /// their own locks but must never call back into the registry.
  uint64_t RegisterCallback(const std::string& name, MetricType type,
                            std::function<double()> fn);
  void UnregisterCallback(uint64_t token);

  /// Snapshot of every live instrument and callback, same-name samples of
  /// the same type summed, sorted by name. Expired weak_ptrs are pruned.
  std::vector<MetricSample> Collect();

  /// Prometheus text exposition (the `MTRC` wire payload and the
  /// tools/metrics_scrape output format).
  std::string PrometheusText();

 private:
  struct CallbackEntry {
    uint64_t token;
    std::string name;
    MetricType type;
    std::function<double()> fn;
  };

  std::mutex mu_;
  std::vector<std::weak_ptr<Counter>> counters_;
  std::vector<std::weak_ptr<Gauge>> gauges_;
  std::vector<std::weak_ptr<Histogram>> histograms_;
  std::vector<CallbackEntry> callbacks_;
  uint64_t next_token_ = 1;
};

/// Renders samples as Prometheus-style text (used by PrometheusText() and
/// by tools/metrics_scrape when re-rendering a decoded MTRC payload).
std::string RenderPrometheusText(const std::vector<MetricSample>& samples);

/// Registers process-wide callback metrics (fault-injection totals,
/// dropped-span count) into Default(). Idempotent; called by the server
/// and router constructors so every process exports them.
void RegisterCommonProcessMetrics();

}  // namespace obs
}  // namespace snorkel

#endif  // SNORKEL_OBS_METRICS_H_
