#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/trace.h"
#include "util/fault.h"

namespace snorkel {
namespace obs {

namespace {

double BitsToDouble(uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// fetch_add for an atomic double stored as bits.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      old_bits, DoubleToBits(BitsToDouble(old_bits) + delta),
      std::memory_order_relaxed)) {
  }
}

// max-update for an atomic double stored as bits.
void AtomicMaxDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (BitsToDouble(old_bits) < v &&
         !bits->compare_exchange_weak(old_bits, DoubleToBits(v),
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- Histogram

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based; q=0 -> first, q=1 -> last.
  const double rank = q * (static_cast<double>(count) - 1.0) + 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no upper edge; interpolate toward the
      // observed max so the estimate stays finite and <= max.
      const double upper =
          i < bounds.size() ? bounds[i] : std::max(max, lower);
      const double within =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return std::min(lower + (upper - lower) * within, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (bounds != other.bounds || counts.size() != other.counts.size()) return;
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, v);
  AtomicMaxDouble(&max_bits_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
  snap.max = BitsToDouble(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1,   2,    4,    8,    16,
      32,   64,  128,  256, 512, 1024, 2048, 4096, 8192};
  return *kBuckets;
}

// ----------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::shared_ptr<Counter> MetricsRegistry::CreateCounter(
    const std::string& name) {
  auto counter = std::make_shared<Counter>(name);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(counter);
  return counter;
}

std::shared_ptr<Gauge> MetricsRegistry::CreateGauge(const std::string& name) {
  auto gauge = std::make_shared<Gauge>(name);
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.push_back(gauge);
  return gauge;
}

std::shared_ptr<Histogram> MetricsRegistry::CreateHistogram(
    const std::string& name, std::vector<double> bounds) {
  auto histogram = std::make_shared<Histogram>(name, std::move(bounds));
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.push_back(histogram);
  return histogram;
}

uint64_t MetricsRegistry::RegisterCallback(const std::string& name,
                                           MetricType type,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  callbacks_.push_back(CallbackEntry{token, name, type, std::move(fn)});
  return token;
}

void MetricsRegistry::UnregisterCallback(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(),
                     [&](const CallbackEntry& e) { return e.token == token; }),
      callbacks_.end());
}

std::vector<MetricSample> MetricsRegistry::Collect() {
  // Everything — including callback invocation — runs under the registry
  // lock. That makes UnregisterCallback a barrier: once it returns, the
  // callback is guaranteed not running, so owners may free the state it
  // reads. (The flip side: callbacks must never call into the registry.)
  std::vector<std::shared_ptr<Counter>> counters;
  std::vector<std::shared_ptr<Gauge>> gauges;
  std::vector<std::shared_ptr<Histogram>> histograms;
  std::lock_guard<std::mutex> lock(mu_);
  {
    auto prune = [](auto* vec, auto* out) {
      for (auto it = vec->begin(); it != vec->end();) {
        if (auto live = it->lock()) {
          out->push_back(std::move(live));
          ++it;
        } else {
          it = vec->erase(it);
        }
      }
    };
    prune(&counters_, &counters);
    prune(&gauges_, &gauges);
    prune(&histograms_, &histograms);
  }

  // keyed by (name, type) so a counter and a gauge sharing a name stay
  // distinct samples rather than summing across types.
  std::map<std::pair<std::string, int>, MetricSample> merged;
  auto slot = [&merged](const std::string& name,
                        MetricType type) -> MetricSample& {
    auto key = std::make_pair(name, static_cast<int>(type));
    auto [it, inserted] = merged.try_emplace(key);
    if (inserted) {
      it->second.name = name;
      it->second.type = type;
    }
    return it->second;
  };

  for (const auto& c : counters) {
    slot(c->name(), MetricType::kCounter).value +=
        static_cast<double>(c->value());
  }
  for (const auto& g : gauges) {
    slot(g->name(), MetricType::kGauge).value += g->value();
  }
  for (const auto& h : histograms) {
    slot(h->name(), MetricType::kHistogram).histogram.Merge(h->Snapshot());
  }
  for (const auto& cb : callbacks_) {
    slot(cb.name, cb.type).value += cb.fn();
  }

  std::vector<MetricSample> samples;
  samples.reserve(merged.size());
  for (auto& [key, sample] : merged) samples.push_back(std::move(sample));
  return samples;
}

std::string RenderPrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  char line[256];
  auto append_value = [&out, &line](const std::string& name, double v) {
    // Counters are integral in practice; print without a mantissa when so.
    if (v == static_cast<double>(static_cast<int64_t>(v))) {
      std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                    static_cast<long long>(v));
    } else {
      std::snprintf(line, sizeof(line), "%s %.6f\n", name.c_str(), v);
    }
    out += line;
  };
  for (const auto& s : samples) {
    switch (s.type) {
      case MetricType::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        append_value(s.name, s.value);
        break;
      case MetricType::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        append_value(s.name, s.value);
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + s.name + " histogram\n";
        const auto& h = s.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          if (i < h.bounds.size()) {
            std::snprintf(line, sizeof(line), "%s_bucket{le=\"%g\"} %llu\n",
                          s.name.c_str(), h.bounds[i],
                          static_cast<unsigned long long>(cumulative));
          } else {
            std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                          s.name.c_str(),
                          static_cast<unsigned long long>(cumulative));
          }
          out += line;
        }
        append_value(s.name + "_sum", h.sum);
        append_value(s.name + "_count", static_cast<double>(h.count));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() {
  return RenderPrometheusText(Collect());
}

void RegisterCommonProcessMetrics() {
  static bool registered = []() {
    auto& registry = MetricsRegistry::Default();
    registry.RegisterCallback("snorkel_faults_injected_total",
                              MetricType::kCounter, []() {
                                return static_cast<double>(
                                    fault::InjectedCount());
                              });
    registry.RegisterCallback("snorkel_trace_spans_dropped_total",
                              MetricType::kCounter, []() {
                                return static_cast<double>(DroppedSpans());
                              });
    return true;
  }();
  (void)registered;
}

}  // namespace obs
}  // namespace snorkel
