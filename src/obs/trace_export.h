#ifndef SNORKEL_OBS_TRACE_EXPORT_H_
#define SNORKEL_OBS_TRACE_EXPORT_H_

// Wire codec for span batches (the TSPN payload of kTraceResponse frames)
// and the Chrome trace-event JSON renderer used by tools/trace_dump.

#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace snorkel {
namespace obs {

/// Spans exported by one process, tagged with its label so a stitched
/// trace can attribute each span to the client or a specific shard server.
struct SpanBatch {
  std::string process;
  std::vector<Span> spans;
};

/// Encodes a batch for the wire. Layout: process label, span count, then
/// per span: trace_id, span_id, parent_id, name, start_ns, end_ns,
/// annotation. Future fields append at the end (decoders tolerate trailing
/// bytes, the same evolution rule as every other section payload).
std::string EncodeSpansPayload(const SpanBatch& batch);
Result<SpanBatch> DecodeSpansPayload(std::string_view payload);

/// Renders batches as Chrome trace-event JSON (chrome://tracing and
/// Perfetto both load it): one "X" complete event per span with
/// microsecond timestamps, one process per batch (pid = batch index,
/// named by a process_name metadata event), keyed across processes by the
/// shared trace id. When `trace_id` is non-zero only that trace's spans
/// are emitted.
std::string ChromeTraceJson(const std::vector<SpanBatch>& batches,
                            uint64_t trace_id = 0);

}  // namespace obs
}  // namespace snorkel

#endif  // SNORKEL_OBS_TRACE_EXPORT_H_
