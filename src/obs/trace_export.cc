#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "util/binary_io.h"

namespace snorkel {
namespace obs {

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string EncodeSpansPayload(const SpanBatch& batch) {
  BinaryWriter writer;
  writer.WriteString(batch.process);
  writer.WriteU64(batch.spans.size());
  for (const Span& span : batch.spans) {
    writer.WriteU64(span.trace_id);
    writer.WriteU64(span.span_id);
    writer.WriteU64(span.parent_id);
    writer.WriteString(span.name);
    writer.WriteU64(span.start_ns);
    writer.WriteU64(span.end_ns);
    writer.WriteString(span.annotation);
  }
  return writer.TakeBuffer();
}

Result<SpanBatch> DecodeSpansPayload(std::string_view payload) {
  BinaryReader reader(payload);
  SpanBatch batch;
  batch.process = reader.ReadString();
  const uint64_t count = reader.ReadU64();
  // Each span is at least 5 u64s + 2 string length prefixes.
  if (count > payload.size() / (5 * sizeof(uint64_t))) {
    return Status::IOError("trace payload: implausible span count");
  }
  batch.spans.reserve(count);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    Span span;
    span.trace_id = reader.ReadU64();
    span.span_id = reader.ReadU64();
    span.parent_id = reader.ReadU64();
    span.name = reader.ReadString();
    span.start_ns = reader.ReadU64();
    span.end_ns = reader.ReadU64();
    span.annotation = reader.ReadString();
    batch.spans.push_back(std::move(span));
  }
  if (!reader.ok()) {
    return Status::IOError("trace payload: truncated span batch");
  }
  return batch;
}

std::string ChromeTraceJson(const std::vector<SpanBatch>& batches,
                            uint64_t trace_id) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (size_t pid = 0; pid < batches.size(); ++pid) {
    const SpanBatch& batch = batches[pid];
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%zu", pid);
    out += buf;
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    AppendJsonEscaped(batch.process, &out);
    out += "\"}}";

    // Give each request its own row: lane = root ancestor of the span
    // (spans whose parent lives in another process fall back to their own
    // id, which still groups a server-side subtree together).
    std::unordered_map<uint64_t, const Span*> by_id;
    for (const Span& span : batch.spans) by_id.emplace(span.span_id, &span);
    std::unordered_map<uint64_t, int> lanes;
    auto lane_for = [&](const Span& span) {
      uint64_t root = span.span_id;
      uint64_t parent = span.parent_id;
      for (int hops = 0; parent != 0 && hops < 16; ++hops) {
        auto it = by_id.find(parent);
        if (it == by_id.end()) break;
        root = it->second->span_id;
        parent = it->second->parent_id;
      }
      auto [it, inserted] = lanes.emplace(root, lanes.size() + 1);
      return it->second;
    };

    for (const Span& span : batch.spans) {
      if (trace_id != 0 && span.trace_id != trace_id) continue;
      out += ",{\"name\":\"";
      AppendJsonEscaped(span.name, &out);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"pid\":%zu,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":"
                    "\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
                    "\",\"parent_id\":\"%016" PRIx64 "\"",
                    pid, lane_for(span),
                    static_cast<double>(span.start_ns) / 1e3,
                    static_cast<double>(span.end_ns - span.start_ns) / 1e3,
                    span.trace_id, span.span_id, span.parent_id);
      out += buf;
      if (!span.annotation.empty()) {
        out += ",\"annotation\":\"";
        AppendJsonEscaped(span.annotation, &out);
        out += '"';
      }
      out += "}}";
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace obs
}  // namespace snorkel
