#include "obs/trace.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <random>
#include <unordered_map>

namespace snorkel {
namespace obs {

namespace {

// -------------------------------------------------------------- clock seam

std::atomic<uint64_t (*)()> g_clock_override{nullptr};

uint64_t RealNowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// ------------------------------------------------------------------- state

std::atomic<bool> g_tracing_enabled{false};

thread_local TraceContext t_context;

// Completed spans buffered per thread; flushed into the global ring when
// the outermost span on the thread closes. `depth` counts open TraceSpans.
struct ThreadSpanBuffer {
  std::vector<Span> spans;
  int depth = 0;
};
thread_local ThreadSpanBuffer t_buffer;

// Process-global bounded ring of completed spans.
struct SpanRing {
  std::mutex mu;
  std::deque<Span> spans;
  size_t capacity = 16384;
  std::atomic<uint64_t> dropped{0};
};

SpanRing& Ring() {
  static SpanRing* ring = new SpanRing();
  return *ring;
}

std::mutex g_label_mu;
std::string g_process_label;  // empty => "pid-<pid>"

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void AppendToThreadBuffer(Span span) {
  t_buffer.spans.push_back(std::move(span));
  if (t_buffer.depth == 0 || t_buffer.spans.size() >= 256) {
    FlushThreadSpans();
  }
}

}  // namespace

uint64_t NowNanos() {
  uint64_t (*fn)() = g_clock_override.load(std::memory_order_acquire);
  return fn ? fn() : RealNowNanos();
}

void SetClockForTest(uint64_t (*clock_fn)()) {
  g_clock_override.store(clock_fn, std::memory_order_release);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t MintId() {
  static std::atomic<uint64_t> counter{[]() {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }()};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

TraceContext CurrentTraceContext() { return t_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(t_context) {
  t_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_context = saved_; }

TraceSpan::TraceSpan(const char* name) {
  if (!t_context.valid()) return;
  active_ = true;
  span_.trace_id = t_context.trace_id;
  span_.span_id = MintId();
  span_.parent_id = t_context.parent_span;
  span_.name = name;
  span_.start_ns = NowNanos();
  saved_parent_ = t_context.parent_span;
  t_context.parent_span = span_.span_id;
  ++t_buffer.depth;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  span_.end_ns = NowNanos();
  t_context.parent_span = saved_parent_;
  --t_buffer.depth;
  AppendToThreadBuffer(std::move(span_));
}

void TraceSpan::Annotate(const std::string& text) {
  if (!active_) return;
  if (!span_.annotation.empty()) span_.annotation += ' ';
  span_.annotation += text;
}

uint64_t EmitSpan(const TraceContext& ctx, const char* name,
                  uint64_t start_ns, uint64_t end_ns,
                  const std::string& annotation) {
  if (!ctx.valid()) return 0;
  Span span;
  span.trace_id = ctx.trace_id;
  span.span_id = MintId();
  span.parent_id = ctx.parent_span;
  span.name = name;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.annotation = annotation;
  const uint64_t id = span.span_id;
  AppendToThreadBuffer(std::move(span));
  return id;
}

void FlushThreadSpans() {
  if (t_buffer.spans.empty()) return;
  SpanRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  for (Span& span : t_buffer.spans) {
    if (ring.spans.size() >= ring.capacity) {
      ring.spans.pop_front();
      ring.dropped.fetch_add(1, std::memory_order_relaxed);
    }
    ring.spans.push_back(std::move(span));
  }
  t_buffer.spans.clear();
}

std::vector<Span> CollectSpans(uint64_t trace_id, bool drain) {
  FlushThreadSpans();
  SpanRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<Span> out;
  if (drain) {
    std::deque<Span> kept;
    for (Span& span : ring.spans) {
      if (trace_id == 0 || span.trace_id == trace_id) {
        out.push_back(std::move(span));
      } else {
        kept.push_back(std::move(span));
      }
    }
    ring.spans.swap(kept);
  } else {
    for (const Span& span : ring.spans) {
      if (trace_id == 0 || span.trace_id == trace_id) out.push_back(span);
    }
  }
  return out;
}

uint64_t DroppedSpans() {
  return Ring().dropped.load(std::memory_order_relaxed);
}

void SetSpanRingCapacityForTest(size_t capacity) {
  SpanRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.capacity = capacity == 0 ? 1 : capacity;
  ring.spans.clear();
}

void SetProcessLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(g_label_mu);
  g_process_label = label;
}

std::string ProcessLabel() {
  std::lock_guard<std::mutex> lock(g_label_mu);
  if (!g_process_label.empty()) return g_process_label;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pid-%d", static_cast<int>(getpid()));
  return buf;
}

std::string FormatSpanTree(const std::vector<Span>& spans) {
  if (spans.empty()) return "(no spans)\n";
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  std::unordered_map<uint64_t, const Span*> by_id;
  for (const Span& span : spans) {
    ordered.push_back(&span);
    by_id.emplace(span.span_id, &span);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Span* a, const Span* b) {
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              return a->span_id < b->span_id;
            });
  const uint64_t origin = ordered.front()->start_ns;
  std::string out;
  char buf[160];
  for (const Span* span : ordered) {
    // Depth = number of resolvable ancestors (cross-process parents that
    // were not collected truncate the chain rather than crashing).
    int depth = 0;
    uint64_t parent = span->parent_id;
    while (parent != 0 && depth < 16) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = it->second->parent_id;
    }
    const double offset_ms =
        static_cast<double>(span->start_ns - origin) / 1e6;
    const double duration_ms =
        static_cast<double>(span->end_ns - span->start_ns) / 1e6;
    out.append(static_cast<size_t>(depth) * 2, ' ');
    std::snprintf(buf, sizeof(buf), "%-24s +%8.3f ms  %9.3f ms",
                  span->name.c_str(), offset_ms, duration_ms);
    out += buf;
    if (!span->annotation.empty()) {
      out += "  [";
      out += span->annotation;
      out += ']';
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace snorkel
