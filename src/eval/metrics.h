#ifndef SNORKEL_EVAL_METRICS_H_
#define SNORKEL_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace snorkel {

/// Binary confusion counts plus the derived scores the paper reports
/// (precision, recall, F1, accuracy). Predictions and gold labels use the
/// {+1, -1} convention; a prediction of 0 (abstain) is counted as a negative
/// prediction, matching the paper's scoring protocol (Appendix A.5).
struct BinaryConfusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;

  std::string ToString() const;
};

/// Computes confusion counts for ±1 gold labels. `predictions` may contain 0
/// (abstain), which is treated as a negative prediction.
BinaryConfusion ComputeBinaryConfusion(const std::vector<Label>& predictions,
                                       const std::vector<Label>& gold);

/// Thresholds probabilistic predictions p(y=+1|x) at `threshold` and scores
/// them against ±1 gold labels.
BinaryConfusion ScoreProbabilistic(const std::vector<double>& proba,
                                   const std::vector<Label>& gold,
                                   double threshold = 0.5);

/// Area under the ROC curve via the rank statistic (equivalent to the
/// Mann-Whitney U). Ties in scores contribute 1/2. Returns 0.5 when one of
/// the classes is empty.
double RocAuc(const std::vector<double>& scores, const std::vector<Label>& gold);

/// Fraction of positions where prediction == gold (multi-class).
double MulticlassAccuracy(const std::vector<Label>& predictions,
                          const std::vector<Label>& gold);

/// K x K confusion matrix for labels in {1..cardinality}; rows are gold,
/// columns are predictions. Out-of-range labels are ignored.
std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<Label>& predictions, const std::vector<Label>& gold,
    int cardinality);

/// Candidate indices split into the four error buckets, the same buckets the
/// paper's Viewer utility displays for iterative LF development (App. C).
struct ErrorBuckets {
  std::vector<size_t> true_positives;
  std::vector<size_t> false_positives;
  std::vector<size_t> true_negatives;
  std::vector<size_t> false_negatives;
};

/// Buckets every index by (prediction, gold); abstains count as negative.
ErrorBuckets BucketErrors(const std::vector<Label>& predictions,
                          const std::vector<Label>& gold);

}  // namespace snorkel

#endif  // SNORKEL_EVAL_METRICS_H_
