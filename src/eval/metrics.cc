#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace snorkel {

double BinaryConfusion::Precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double BinaryConfusion::Recall() const {
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double BinaryConfusion::F1() const {
  double p = Precision();
  double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryConfusion::Accuracy() const {
  int64_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

std::string BinaryConfusion::ToString() const {
  std::ostringstream os;
  os << "tp=" << tp << " fp=" << fp << " tn=" << tn << " fn=" << fn
     << " P=" << Precision() << " R=" << Recall() << " F1=" << F1();
  return os.str();
}

BinaryConfusion ComputeBinaryConfusion(const std::vector<Label>& predictions,
                                       const std::vector<Label>& gold) {
  assert(predictions.size() == gold.size());
  BinaryConfusion c;
  for (size_t i = 0; i < gold.size(); ++i) {
    bool pred_pos = predictions[i] > 0;  // Abstain (0) counts as negative.
    bool gold_pos = gold[i] > 0;
    if (pred_pos && gold_pos) {
      ++c.tp;
    } else if (pred_pos && !gold_pos) {
      ++c.fp;
    } else if (!pred_pos && gold_pos) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

BinaryConfusion ScoreProbabilistic(const std::vector<double>& proba,
                                   const std::vector<Label>& gold,
                                   double threshold) {
  assert(proba.size() == gold.size());
  std::vector<Label> predictions(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    predictions[i] = proba[i] > threshold ? 1 : -1;
  }
  return ComputeBinaryConfusion(predictions, gold);
}

double RocAuc(const std::vector<double>& scores, const std::vector<Label>& gold) {
  assert(scores.size() == gold.size());
  size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tied scores, then apply the Mann-Whitney identity.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  int64_t num_pos = 0;
  int64_t num_neg = 0;
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (gold[k] > 0) {
      ++num_pos;
      pos_rank_sum += rank[k];
    } else {
      ++num_neg;
    }
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;
  double u = pos_rank_sum - static_cast<double>(num_pos) *
                                (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double MulticlassAccuracy(const std::vector<Label>& predictions,
                          const std::vector<Label>& gold) {
  assert(predictions.size() == gold.size());
  if (gold.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (predictions[i] == gold[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(gold.size());
}

std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<Label>& predictions, const std::vector<Label>& gold,
    int cardinality) {
  assert(predictions.size() == gold.size());
  std::vector<std::vector<int64_t>> m(
      static_cast<size_t>(cardinality),
      std::vector<int64_t>(static_cast<size_t>(cardinality), 0));
  for (size_t i = 0; i < gold.size(); ++i) {
    Label g = gold[i];
    Label p = predictions[i];
    if (g >= 1 && g <= cardinality && p >= 1 && p <= cardinality) {
      ++m[static_cast<size_t>(g - 1)][static_cast<size_t>(p - 1)];
    }
  }
  return m;
}

ErrorBuckets BucketErrors(const std::vector<Label>& predictions,
                          const std::vector<Label>& gold) {
  assert(predictions.size() == gold.size());
  ErrorBuckets buckets;
  for (size_t i = 0; i < gold.size(); ++i) {
    bool pred_pos = predictions[i] > 0;
    bool gold_pos = gold[i] > 0;
    if (pred_pos && gold_pos) {
      buckets.true_positives.push_back(i);
    } else if (pred_pos && !gold_pos) {
      buckets.false_positives.push_back(i);
    } else if (!pred_pos && gold_pos) {
      buckets.false_negatives.push_back(i);
    } else {
      buckets.true_negatives.push_back(i);
    }
  }
  return buckets;
}

}  // namespace snorkel
