#ifndef SNORKEL_NET_SNAPSHOT_STORE_H_
#define SNORKEL_NET_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace snorkel {

/// The on-disk artifact store the rollout machinery revolves around: a
/// directory of immutable, versioned snapshot files
///
///   <dir>/snapshot-<version>.snk
///
/// where the highest version present is the current one. Publication is
/// write-to-temp + atomic rename, so a watcher never observes a partially
/// written artifact: a version either does not exist yet or is complete.
/// Versions are never overwritten (AlreadyExists) — rollback is publishing
/// the old bytes at a NEW higher version, which keeps the history linear and
/// every transition observable.
///
/// Serving processes poll CurrentVersion() (see ShardServer's watcher) and
/// hot-swap replicas when it moves; tools/snapshot_diff --promote is the
/// gated path for putting a candidate artifact into the store.
class SnapshotStore {
 public:
  /// Opens (creating the directory if needed) the store at `dir`.
  static Result<SnapshotStore> Open(const std::string& dir);

  const std::string& dir() const { return dir_; }

  /// The store path an artifact at `version` lives at (whether or not it
  /// exists yet).
  std::string PathFor(uint64_t version) const;

  /// All versions present, ascending. An empty store returns an empty list.
  Result<std::vector<uint64_t>> ListVersions() const;

  /// The highest version present; NotFound when the store is empty.
  Result<uint64_t> CurrentVersion() const;

  /// Publishes `bytes` as `version` atomically. AlreadyExists when the
  /// version is taken (store versions are immutable).
  Status Publish(uint64_t version, std::string_view bytes) const;

  /// Moves an existing artifact file into the store at `version` via
  /// write-to-temp + atomic rename of a COPY (the source is left in place;
  /// promotion must not destroy the candidate if validation of a later step
  /// fails). AlreadyExists when the version is taken.
  Status PromoteFile(const std::string& source_path, uint64_t version) const;

 private:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_SNAPSHOT_STORE_H_
