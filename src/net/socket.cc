#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/fault.h"

namespace snorkel {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

/// Milliseconds until `deadline`, clamped for poll(): -1 = no deadline,
/// 0 = already expired.
int PollTimeout(SocketDeadline deadline) {
  if (deadline == kNoDeadline) return -1;
  auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1 << 30));
}

/// Waits for `events` on `fd` until the deadline. OK = ready.
Status WaitReady(int fd, short events, SocketDeadline deadline,
                 const char* what) {
  for (;;) {
    int timeout = PollTimeout(deadline);
    if (timeout == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " deadline expired");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("poll"));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " deadline expired");
    }
    // Readable/writable OR error/hangup: let the following read/write call
    // surface the precise failure.
    return Status::OK();
  }
}

}  // namespace

SocketDeadline DeadlineAfterMs(uint64_t timeout_ms) {
  if (timeout_ms == 0) return kNoDeadline;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(timeout_ms);
}

Socket::Socket(int fd) : fd_(fd) {
  if (fd_ >= 0) (void)SetNonBlocking(fd_);
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { Close(); }

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               SocketDeadline deadline) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve (IPv4 only — the fabric is loopback/LAN).
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* info = nullptr;
    int rc = getaddrinfo(host.c_str(), nullptr, &hints, &info);
    if (rc != 0 || info == nullptr) {
      if (info != nullptr) freeaddrinfo(info);
      return Status::Unavailable("cannot resolve host '" + host +
                                 "': " + gai_strerror(rc));
    }
    addr.sin_addr =
        reinterpret_cast<struct sockaddr_in*>(info->ai_addr)->sin_addr;
    freeaddrinfo(info);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  Socket socket(fd);  // Adopts + sets non-blocking; closes on early return.
  int one = 1;
  // Frames are written whole and latency matters more than byte count on
  // this RPC path; disable Nagle.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  // EINTR: a signal interrupted connect, but the connection attempt
  // continues asynchronously exactly like EINPROGRESS — poll for the
  // outcome instead of surfacing a spurious transport error.
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    return Status::Unavailable(Errno("connect to " + host + ":" +
                                     std::to_string(port)));
  }
  if (rc != 0) {
    Status ready = WaitReady(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Status::Unavailable(Errno("connect to " + host + ":" +
                                       std::to_string(port)));
    }
  }
  return socket;
}

Status Socket::SendAll(std::string_view bytes, SocketDeadline deadline) {
  if (fd_ < 0) return Status::Unavailable("send on closed socket");
  if (fault::Point("net.send")) {
    // Same typed error a real mid-send break produces; the connection is
    // poisoned from the caller's perspective either way.
    return Status::Unavailable("injected fault at net.send");
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SNORKEL_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(Errno("send"));
  }
  return Status::OK();
}

Status Socket::RecvExact(char* out, size_t size, SocketDeadline deadline,
                         bool eof_ok) {
  size_t got = 0;
  return RecvSome(out, size, &got, deadline, eof_ok);
}

Status Socket::RecvSome(char* out, size_t size, size_t* got,
                        SocketDeadline deadline, bool eof_ok) {
  if (fd_ < 0) return Status::Unavailable("recv on closed socket");
  if (fault::Point("net.recv")) {
    return Status::Unavailable("injected fault at net.recv");
  }
  while (*got < size) {
    ssize_t n = ::recv(fd_, out + *got, size - *got, 0);
    if (n > 0) {
      *got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (*got == 0 && eof_ok) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::Unavailable("peer closed the connection mid-message");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // A deadline expiry propagates with *got intact — the caller may
      // re-arm and resume without losing consumed stream bytes.
      SNORKEL_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("recv"));
  }
  return Status::OK();
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

ListenSocket::~ListenSocket() { Close(); }

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  ListenSocket listener;
  listener.fd_ = fd;
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) return nonblocking;

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(Errno("bind to port " + std::to_string(port)));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::Unavailable(Errno("listen"));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(Errno("getsockname"));
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> ListenSocket::Accept(uint64_t timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("accept on closed socket");
  SocketDeadline deadline = DeadlineAfterMs(timeout_ms);
  for (;;) {
    Status ready = WaitReady(fd_, POLLIN, deadline, "accept");
    if (!ready.ok()) return ready;
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // EINTR (signal) and EAGAIN (another waiter took the connection) are
      // both "nothing accepted YET", not errors: keep waiting within the
      // deadline instead of surfacing a spurious failure.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return Status::Unavailable(Errno("accept"));
    }
    int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

Status SendFrame(Socket& socket, const Frame& frame, SocketDeadline deadline) {
  return socket.SendAll(EncodeFrame(frame), deadline);
}

Result<Frame> RecvFrame(Socket& socket, SocketDeadline deadline, bool eof_ok) {
  char header_bytes[kWireHeaderBytes];
  SNORKEL_RETURN_IF_ERROR(
      socket.RecvExact(header_bytes, sizeof(header_bytes), deadline, eof_ok));
  auto header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)));
  if (!header.ok()) return header.status();
  std::string body(header->body_size, '\0');
  if (!body.empty()) {
    SNORKEL_RETURN_IF_ERROR(
        socket.RecvExact(body.data(), body.size(), deadline));
  }
  return DecodeFrameBody(body);
}

Result<Frame> FrameReader::Recv(Socket& socket, SocketDeadline deadline,
                                bool eof_ok) {
  if (!have_header_) {
    if (buffer_.size() != kWireHeaderBytes) {
      buffer_.assign(kWireHeaderBytes, '\0');
    }
    SNORKEL_RETURN_IF_ERROR(socket.RecvSome(buffer_.data(), kWireHeaderBytes,
                                            &got_, deadline,
                                            eof_ok && got_ == 0));
    auto header = DecodeFrameHeader(
        std::string_view(buffer_.data(), kWireHeaderBytes));
    if (!header.ok()) return header.status();
    header_ = *header;
    have_header_ = true;
    got_ = 0;
    buffer_.assign(header_.body_size, '\0');
  }
  SNORKEL_RETURN_IF_ERROR(
      socket.RecvSome(buffer_.data(), header_.body_size, &got_, deadline));
  auto frame = DecodeFrameBody(
      std::string_view(buffer_.data(), header_.body_size));
  // The frame's bytes are fully consumed either way; reset for the next one.
  have_header_ = false;
  got_ = 0;
  buffer_.clear();
  return frame;
}

}  // namespace snorkel
