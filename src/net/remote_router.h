#ifndef SNORKEL_NET_REMOTE_ROUTER_H_
#define SNORKEL_NET_REMOTE_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/health.h"
#include "net/remote_client.h"
#include "obs/metrics.h"
#include "serve/label_service.h"
#include "util/status.h"

namespace snorkel {

/// Router-side counters for the networked tier.
struct RemoteRouterStats {
  uint64_t num_requests = 0;
  uint64_t num_candidates = 0;
  /// Whole-request typed failures (default mode: any failed shard).
  uint64_t failed_requests = 0;
  /// allow_partial requests answered with is_partial == true.
  uint64_t degraded_requests = 0;
  // ---- Resilience counters. ----
  /// Sub-batches ultimately served by a FALLBACK replica after the
  /// preferred one(s) failed — each is a request that replication saved.
  uint64_t failovers = 0;
  /// Retries refused because the token-bucket retry budget was dry (the
  /// anti-retry-storm valve engaging).
  uint64_t retry_budget_exhausted = 0;
  /// Attempts rejected by an open per-endpoint circuit breaker WITHOUT
  /// dispatching work (failover moved on for free).
  uint64_t breaker_open_rejections = 0;
  /// Faults + delays injected in THIS process (util/fault.h registry —
  /// client-side transport/admission sites).
  uint64_t faults_injected = 0;
  /// End-to-end request latency (fan-out + failover + merge) as seen by
  /// Label() callers, on the shared obs::LatencyBucketsMs bounds.
  obs::HistogramSnapshot latency;
  /// Per-shard client stats (pool/hedge/health), indexed by shard.
  std::vector<RemoteShardClient::Stats> per_shard;
};

/// The cross-process ShardRouter: partitions a request over N remote
/// ShardServer processes with the SAME stable content-hash placement as the
/// in-process tier (shard/partitioner.h), fans sub-batches out concurrently
/// through RemoteShardClient stubs, and merges responses back into request
/// order.
///
/// Guarantees (the fabric-level extension of ShardRouter's):
///  - All shards healthy → the merged response is BITWISE-IDENTICAL to one
///    unsharded in-process LabelService answering the same request (doubles
///    cross the wire as raw IEEE-754 bytes; corpus slices preserve original
///    document indices; merge order is deterministic).
///  - REPLICATED FAILOVER (replication R > 1): every endpoint serves the
///    same snapshot and computes bit-identical posteriors, so a sub-batch
///    whose preferred replica fails retry-safely (kUnavailable, transport
///    failure, kResourceExhausted, kDeadlineExceeded with budget left) is
///    transparently retried on the next replica in its shard's
///    ShardPlacement preference list — the caller sees the SAME bits it
///    would have seen from the primary. Labeling is read-only and
///    idempotent, so a retry after a mid-exchange failure can at worst
///    duplicate server work, never corrupt a result. Retries (after an
///    attempt that actually dispatched work) spend a token-bucket
///    RetryBudget and back off with seeded jitter; a fail-fast from an open
///    breaker costs nothing and fails over immediately — which is why a
///    fleet with <= R-1 dead replicas per key keeps answering every request
///    completely, even under a steady outage. Attempt chains are recorded
///    in ShardOutcome::attempts.
///  - Default mode: a sub-batch whose every admissible replica failed fails
///    the WHOLE request with a typed status naming the shard — never silent
///    partial data.
///  - LabelRequest::allow_partial opts into typed degraded service: covered
///    rows stay bit-identical, failed sub-batches come back as uncovered
///    rows (covered bitmap + per-shard ShardOutcome), and only a request
///    with NO surviving sub-batch fails outright.
///
/// Thread-safe: concurrent Label() calls fan out independently.
class RemoteShardRouter {
 public:
  struct Options {
    /// Per-shard client options (host/port filled per endpoint).
    RemoteShardClient::Options client;
    /// Per-call deadline forwarded to every sub-batch RPC; 0 = none. With
    /// failover this is the OVERALL budget across a sub-batch's attempts.
    uint64_t request_timeout_ms = 0;
    /// Replicas to try per shard key (clamped to [1, endpoints]). 1
    /// reproduces single-owner routing exactly; the default 2 survives any
    /// single endpoint failure with zero failed requests.
    size_t replication = 2;
    /// Token-bucket bound on retry amplification (net/health.h).
    RetryBudget::Options retry_budget;
    /// Backoff between attempts that dispatched work (seeded jitter; one
    /// stream per shard).
    BackoffOptions backoff;
    /// Slow-request log threshold: a traced request whose end-to-end
    /// latency is >= this many ms logs its span tree at Warning through
    /// util/logging. 0 disables. Only fires when tracing is enabled (the
    /// request must have a trace id to collect spans for).
    uint64_t slow_request_log_ms = 0;
  };

  /// One stub per endpoint; primary placement = CandidateShardKey %
  /// endpoints.size(), fallback order per shard from rendezvous hashing
  /// (net/placement.h). Endpoint order IS shard order — every router over
  /// the same ordered endpoint list agrees on the whole placement.
  static Result<RemoteShardRouter> Create(
      const std::vector<std::pair<std::string, uint16_t>>& endpoints,
      Options options);

  RemoteShardRouter(RemoteShardRouter&&) noexcept = default;
  RemoteShardRouter& operator=(RemoteShardRouter&&) noexcept = default;
  ~RemoteShardRouter();

  /// Labels one batch across the remote fleet (LabelRequest semantics as in
  /// serve/label_service.h; include_votes is supported and reassembles the
  /// vote matrix bitwise).
  Result<LabelResponse> Label(const LabelRequest& request);

  RemoteRouterStats stats() const;

  size_t num_shards() const;

  /// Direct access to a shard's client stub (health probes, stats RPCs).
  RemoteShardClient& shard(size_t i);

 private:
  struct Impl;
  explicit RemoteShardRouter(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_REMOTE_ROUTER_H_
