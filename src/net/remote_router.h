#ifndef SNORKEL_NET_REMOTE_ROUTER_H_
#define SNORKEL_NET_REMOTE_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/remote_client.h"
#include "serve/label_service.h"
#include "util/status.h"

namespace snorkel {

/// Router-side counters for the networked tier.
struct RemoteRouterStats {
  uint64_t num_requests = 0;
  uint64_t num_candidates = 0;
  /// Whole-request typed failures (default mode: any failed shard).
  uint64_t failed_requests = 0;
  /// allow_partial requests answered with is_partial == true.
  uint64_t degraded_requests = 0;
  /// Per-shard client stats (pool/hedge/health), indexed by shard.
  std::vector<RemoteShardClient::Stats> per_shard;
};

/// The cross-process ShardRouter: partitions a request over N remote
/// ShardServer processes with the SAME stable content-hash placement as the
/// in-process tier (shard/partitioner.h), fans sub-batches out concurrently
/// through RemoteShardClient stubs, and merges responses back into request
/// order.
///
/// Guarantees (the fabric-level extension of ShardRouter's):
///  - All shards healthy → the merged response is BITWISE-IDENTICAL to one
///    unsharded in-process LabelService answering the same request (doubles
///    cross the wire as raw IEEE-754 bytes; corpus slices preserve original
///    document indices; merge order is deterministic).
///  - Default mode: any failed sub-batch fails the WHOLE request with a
///    typed status naming the shard — never silent partial data.
///  - LabelRequest::allow_partial opts into typed degraded service: covered
///    rows stay bit-identical, failed sub-batches come back as uncovered
///    rows (covered bitmap + per-shard ShardOutcome), and only a request
///    with NO surviving sub-batch fails outright.
///
/// Thread-safe: concurrent Label() calls fan out independently.
class RemoteShardRouter {
 public:
  struct Options {
    /// Per-shard client options (host/port filled per endpoint).
    RemoteShardClient::Options client;
    /// Per-call deadline forwarded to every sub-batch RPC; 0 = none.
    uint64_t request_timeout_ms = 0;
  };

  /// One stub per endpoint; placement = CandidateShardKey % endpoints.size().
  /// Endpoint order IS shard order — every router over the same ordered
  /// endpoint list agrees on placement.
  static Result<RemoteShardRouter> Create(
      const std::vector<std::pair<std::string, uint16_t>>& endpoints,
      Options options);

  RemoteShardRouter(RemoteShardRouter&&) noexcept = default;
  RemoteShardRouter& operator=(RemoteShardRouter&&) noexcept = default;
  ~RemoteShardRouter();

  /// Labels one batch across the remote fleet (LabelRequest semantics as in
  /// serve/label_service.h; include_votes is supported and reassembles the
  /// vote matrix bitwise).
  Result<LabelResponse> Label(const LabelRequest& request);

  RemoteRouterStats stats() const;

  size_t num_shards() const;

  /// Direct access to a shard's client stub (health probes, stats RPCs).
  RemoteShardClient& shard(size_t i);

 private:
  struct Impl;
  explicit RemoteShardRouter(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_REMOTE_ROUTER_H_
