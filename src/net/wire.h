#ifndef SNORKEL_NET_WIRE_H_
#define SNORKEL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/candidate.h"
#include "data/context.h"
#include "lf/applier.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/label_service.h"
#include "util/fault.h"
#include "util/status.h"

namespace snorkel {

/// The RPC wire format of the networked shard fabric: length-prefixed,
/// checksummed binary frames over a byte stream, built from the same
/// named-section idiom as the snapshot v2 artifact (serve/snapshot.h) so the
/// two formats evolve the same way.
///
/// Stream layout of one frame:
///
///   magic "SNRP" | u32 wire_version | u64 body_size | body
///
/// and the body:
///
///   u32 frame_type | u64 request_id | u32 section_count |
///   section_count × ( tag[4] | u64 payload_size | payload
///                     | u64 fnv1a64(payload) )
///
/// Sections carry SKIP-UNKNOWN semantics exactly like snapshot sections: a
/// decoder verifies every section's checksum but ignores tags it does not
/// recognize, and known sections tolerate trailing payload bytes (field
/// appends). A new server therefore understands old clients, and an old
/// client keeps working against a new server that appends sections or
/// fields — the forward/backward-compat contract the rollout story needs.
/// Corruption or truncation anywhere is a typed IOError naming the section,
/// never UB; frames above kMaxWireFrameBytes are rejected before allocation.
inline constexpr char kWireMagic[4] = {'S', 'N', 'R', 'P'};
inline constexpr uint32_t kWireVersion = 1;
/// Fixed bytes before the body: magic + u32 version + u64 body size.
inline constexpr size_t kWireHeaderBytes = 4 + 4 + 8;
/// Upper bound on one frame's body (defends against corrupt/hostile length
/// prefixes — a request this size is a bug, not traffic).
inline constexpr uint64_t kMaxWireFrameBytes = 1ull << 30;

/// Frame types. Values are wire ABI — append, never renumber.
enum class FrameType : uint32_t {
  kLabelRequest = 1,
  kLabelResponse = 2,
  /// Typed failure: an ERRS section carrying a wire status code + message.
  kError = 3,
  /// Liveness probe; the server answers kPong with the same request id.
  kPing = 4,
  kPong = 5,
  /// Server observability: stats incl. snapshot version/checksum (rollout
  /// progress per shard is observable over the wire).
  kStatsRequest = 6,
  kStatsResponse = 7,
  /// Test/chaos control: arms or disarms fault-injection sites in the
  /// server process (util/fault.h registry) via an FLTI section. An old
  /// server answers kError/kInvalidArgument — harnesses must tolerate that.
  kFaultRequest = 8,
  kFaultResponse = 9,
  /// Unified metrics export: the server answers with its MetricsRegistry
  /// rendered as Prometheus text in an MTRC section (tools/metrics_scrape).
  /// An old server answers kError — scrapers must tolerate that.
  kMetricsRequest = 10,
  kMetricsResponse = 11,
  /// Trace-span drain: the server returns (and by default removes) the
  /// spans in its bounded ring, optionally filtered to one trace id, as a
  /// TSPN section (tools/trace_dump stitches batches across processes).
  kTraceRequest = 12,
  kTraceResponse = 13,
};

// Section tags.
inline constexpr char kSectionCorpus[4] = {'C', 'O', 'R', 'P'};
inline constexpr char kSectionCandidates[4] = {'C', 'A', 'N', 'D'};
inline constexpr char kSectionRequestOptions[4] = {'R', 'O', 'P', 'T'};
inline constexpr char kSectionResponseMeta[4] = {'R', 'M', 'E', 'T'};
inline constexpr char kSectionPosteriors[4] = {'P', 'O', 'S', 'T'};
inline constexpr char kSectionClassPosteriors[4] = {'K', 'P', 'S', 'T'};
inline constexpr char kSectionHardLabels[4] = {'H', 'A', 'R', 'D'};
inline constexpr char kSectionVotes[4] = {'V', 'O', 'T', 'E'};
inline constexpr char kSectionError[4] = {'E', 'R', 'R', 'S'};
inline constexpr char kSectionServerStats[4] = {'S', 'V', 'S', 'T'};
inline constexpr char kSectionFaults[4] = {'F', 'L', 'T', 'I'};
/// Trace context on label requests / drain filter on trace requests. Old
/// peers skip it (unknown tag), so traced clients interoperate with
/// untraced servers and vice versa.
inline constexpr char kSectionTrace[4] = {'T', 'R', 'A', 'C'};
/// Prometheus-text metrics payload (kMetricsResponse).
inline constexpr char kSectionMetrics[4] = {'M', 'T', 'R', 'C'};
/// Encoded span batch (kTraceResponse; obs::EncodeSpansPayload bytes).
inline constexpr char kSectionTraceSpans[4] = {'T', 'S', 'P', 'N'};

/// StatusCode <-> stable wire value. The enum's numeric values are NOT wire
/// ABI (reordering the enum must not change what old peers decode), so the
/// mapping is an explicit table. Unknown wire values decode as kInternal.
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

/// One named, checksummed section of a frame body.
struct FrameSection {
  std::string tag;      // Exactly 4 bytes.
  std::string payload;  // Raw section bytes (checksum-verified on decode).
};

/// A decoded frame: type, correlation id, and its sections (known AND
/// unknown — payload-level decoders pick the tags they understand).
struct Frame {
  FrameType type = FrameType::kError;
  /// Client-assigned correlation id, echoed verbatim by the server; a
  /// response whose id does not match its request is a framing bug and the
  /// connection is discarded.
  uint64_t request_id = 0;
  std::vector<FrameSection> sections;

  /// Pointer to the first section named `tag`, or nullptr.
  const FrameSection* Find(const char tag[4]) const;
};

/// Encodes a complete frame (header + body).
std::string EncodeFrame(const Frame& frame);

/// Decoded fixed header of one frame.
struct FrameHeader {
  uint32_t version = 0;
  uint64_t body_size = 0;
};

/// Validates magic, version (> kWireVersion is FailedPrecondition — the
/// peer must speak down), and body size bound. `bytes` must hold exactly
/// kWireHeaderBytes.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Decodes a frame body (everything after the header): frame type,
/// request id, and checksum-verified sections. Unknown tags are kept (the
/// skip-unknown contract lives in payload decoding, which ignores them).
Result<Frame> DecodeFrameBody(std::string_view body);

/// Decodes one whole frame (header + body), for tests and tooling; the
/// streaming path reads the header first to size the body read.
Result<Frame> DecodeFrame(std::string_view bytes);

// ---------------------------------------------------------------------------
// LabelRequest / LabelResponse payloads.
// ---------------------------------------------------------------------------

/// A label request as it crosses the wire: the referenced corpus slice
/// (documents the candidates live in, at their ORIGINAL indices — so every
/// LF observable, including raw span coordinates, is bit-identical to the
/// client's view), the candidate rows with their LF-visible indices, and the
/// request flags.
struct WireLabelRequest {
  Corpus corpus;
  std::vector<Candidate> candidates;
  /// LF-visible index per row (CandidateView::index()), preserved across
  /// the wire exactly like the in-process ref fan-out preserves it.
  std::vector<uint64_t> indices;
  bool include_votes = false;
  bool apply_class_balance = true;
  /// Remaining request budget in milliseconds when the client sent the
  /// frame; 0 = no deadline. A server that dequeues the job after this
  /// budget fails it kDeadlineExceeded instead of doing dead work.
  uint64_t deadline_ms = 0;
  /// Distributed-tracing identity from the request's TRAC section: the
  /// router-minted trace id and the client-side span the server's spans
  /// hang under. Zero (untraced) when the client is old or tracing is off.
  obs::TraceContext trace;
};

/// Encodes a request over borrowed rows (the router's zero-copy fan-out
/// form). Only documents referenced by `rows` are shipped; their indices are
/// preserved via a sparse corpus reconstruction on the server. A valid
/// `trace` context adds a TRAC section (old servers skip it unread).
Frame EncodeLabelRequest(uint64_t request_id, const Corpus& corpus,
                         const std::vector<CandidateRef>& rows,
                         bool include_votes, bool apply_class_balance,
                         uint64_t deadline_ms,
                         const obs::TraceContext& trace = {});

/// The expensive, deadline-INDEPENDENT part of a label request: the encoded
/// corpus slice + candidate rows. Retries and hedges re-frame the SAME batch
/// with a freshly computed deadline_ms (EncodeLabelRequestFromBatch), so the
/// budget each attempt advertises reflects time already burned client-side —
/// encoding once per attempt would either repay the encode cost or (worse)
/// reuse a stale deadline.
struct EncodedLabelBatch {
  std::string corpus;      // EncodeCorpusSlice bytes (CORP payload).
  std::string candidates;  // EncodeCandidates bytes (CAND payload).
};

EncodedLabelBatch EncodeLabelBatch(const Corpus& corpus,
                                   const std::vector<CandidateRef>& rows);

/// Assembles a label-request frame around a pre-encoded batch. `deadline_ms`
/// is the REMAINING budget at assembly time; callers compute it immediately
/// before each wire attempt.
Frame EncodeLabelRequestFromBatch(uint64_t request_id,
                                  const EncodedLabelBatch& batch,
                                  bool include_votes, bool apply_class_balance,
                                  uint64_t deadline_ms,
                                  const obs::TraceContext& trace = {});

Result<WireLabelRequest> DecodeLabelRequest(const Frame& frame);

Frame EncodeLabelResponse(uint64_t request_id, const LabelResponse& response);

Result<LabelResponse> DecodeLabelResponse(const Frame& frame);

// ---------------------------------------------------------------------------
// Error + stats payloads.
// ---------------------------------------------------------------------------

Frame EncodeErrorFrame(uint64_t request_id, const Status& status);

/// Error frame with a backoff hint: `retry_after_ms` (how long the server
/// estimates the rejected caller should wait before retrying) is APPENDED to
/// the ERRS payload after the message. Old decoders stop after the message
/// and never see it (trailing-bytes tolerance); old encoders' frames decode
/// with retry_after_ms = 0 ("no hint").
Frame EncodeErrorFrame(uint64_t request_id, const Status& status,
                       uint64_t retry_after_ms);

/// The typed status carried by a kError frame (IOError when the frame is
/// not a well-formed error frame).
Status DecodeErrorFrame(const Frame& frame);

/// Same, also extracting the appended retry_after_ms hint (0 when the peer
/// is old or sent no hint). `retry_after_ms` may be null.
Status DecodeErrorFrame(const Frame& frame, uint64_t* retry_after_ms);

/// Server-side counters exposed over the wire (kStatsResponse).
struct WireServerStats {
  uint64_t snapshot_version = 0;
  uint64_t snapshot_checksum = 0;
  uint64_t requests_served = 0;
  uint64_t candidates_served = 0;
  uint64_t queue_rejections = 0;
  uint64_t snapshot_swaps = 0;
  int32_t cardinality = 2;
  /// Faults/delays injected in the server process (util/fault.h registry).
  /// Appended field: absent on old peers' frames, decoded as 0.
  uint64_t faults_injected = 0;
  /// Jobs failed kDeadlineExceeded at dequeue (budget already spent) and
  /// snapshot swaps refused by the rollout gate. Appended fields (PR 8):
  /// absent on old peers' frames, decoded as 0.
  uint64_t deadline_rejections = 0;
  uint64_t rejected_swaps = 0;
  /// Overload-control counters (PR 10, appended fields): requests whose
  /// compute was cooperatively cancelled mid-flight after their deadline
  /// expired, and jobs shed from the admission queue (displaced by
  /// interactive arrivals or CoDel-dropped for over-target sojourn).
  uint64_t expired_work_cancelled = 0;
  uint64_t shed_total = 0;
};

Frame EncodeStatsResponse(uint64_t request_id, const WireServerStats& stats);

Result<WireServerStats> DecodeStatsResponse(const Frame& frame);

// ---------------------------------------------------------------------------
// Fault-injection control payloads (kFaultRequest / kFaultResponse).
// ---------------------------------------------------------------------------

/// A fault-injection command for a server process: optionally disarm every
/// site, then arm the listed (site, schedule) pairs. The wire surface of
/// the util/fault.h registry, used by chaos tests to inject server-side
/// transport faults and latency spikes mid-stream.
struct WireFaultCommand {
  bool disarm_all = false;
  std::vector<std::pair<std::string, fault::Schedule>> arm;
};

Frame EncodeFaultRequest(uint64_t request_id, const WireFaultCommand& command);

Result<WireFaultCommand> DecodeFaultRequest(const Frame& frame);

/// Acknowledgement (no payload beyond the echoed request id).
Frame EncodeFaultResponse(uint64_t request_id);

// ---------------------------------------------------------------------------
// Metrics + trace-drain payloads (kMetricsRequest/.. kTraceResponse).
// ---------------------------------------------------------------------------

/// Metrics scrape: the request carries no payload; the response's MTRC
/// section is the server's registry rendered as Prometheus text.
Frame EncodeMetricsRequest(uint64_t request_id);
Frame EncodeMetricsResponse(uint64_t request_id,
                            const std::string& prometheus_text);
Result<std::string> DecodeMetricsResponse(const Frame& frame);

/// Trace drain parameters: which trace to return (0 = every span) and
/// whether the server should remove returned spans from its ring (the
/// default; a monitoring peek passes drain = false).
struct WireTraceRequest {
  uint64_t trace_id = 0;
  bool drain = true;
};

Frame EncodeTraceRequest(uint64_t request_id, const WireTraceRequest& request);
Result<WireTraceRequest> DecodeTraceRequest(const Frame& frame);

/// The drained spans, tagged with the server's process label (TSPN
/// section; obs::EncodeSpansPayload bytes).
Frame EncodeTraceResponse(uint64_t request_id, const obs::SpanBatch& batch);
Result<obs::SpanBatch> DecodeTraceResponse(const Frame& frame);

}  // namespace snorkel

#endif  // SNORKEL_NET_WIRE_H_
