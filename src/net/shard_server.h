#ifndef SNORKEL_NET_SHARD_SERVER_H_
#define SNORKEL_NET_SHARD_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "lf/labeling_function.h"
#include "serve/label_service.h"
#include "util/status.h"

namespace snorkel {

/// One serving process of the networked shard fabric: a LabelService replica
/// behind a listening TCP socket speaking the net/wire.h frame protocol.
///
///   accept loop ── per-connection handler threads
///        │            decode frame → BoundedQueue admission
///        │                 │ (full → kResourceExhausted error frame,
///        │                 │  closed → kUnavailable — typed backpressure,
///        │                 │  never an unbounded in-memory queue)
///        │            worker threads: pop job, run the CURRENT replica,
///        │            fulfil the connection's pending response
///        └─ snapshot watcher (store mode): polls the SnapshotStore and
///           hot-swaps the replica to a newer artifact version with zero
///           downtime — in-flight requests keep the OLD service (and its
///           mmap) alive through a shared_ptr until they drain, new requests
///           land on the new version, and not one request fails or blocks
///           on the transition. A candidate artifact that fails validation
///           (LabelService::Create) is rejected and the old version keeps
///           serving (rejected_swaps counts it).
///
/// Results over the wire are BITWISE-IDENTICAL to calling the wrapped
/// LabelService in-process: requests ship raw IEEE-754 bytes and the corpus
/// slice preserves original document indices, so not one bit of a posterior
/// can differ across the hop (the fabric-level extension of the repo's
/// sharding guarantee).
///
/// A request whose deadline_ms budget is already spent when a worker picks
/// it up fails kDeadlineExceeded without running the model (no dead work).
class ShardServer {
 public:
  struct Options {
    /// TCP port to bind on loopback; 0 = kernel-assigned (read port()).
    uint16_t port = 0;
    /// Bounded admission queue capacity (jobs); clamped to >= 1.
    size_t queue_capacity = 64;
    /// Cost-aware admission budget: jobs are priced rows × LFs and admitted
    /// only while the queued cost fits this budget (calibrated against wall
    /// clock by an EWMA of observed service time, which also prices the
    /// retry_after_ms hint rejections carry). 0 = count-only admission.
    uint64_t queue_cost_budget = 0;
    /// Lane split: requests with <= this many rows ride the interactive
    /// lane (served first, shed last); larger batches are bulk (shed first
    /// when an interactive arrival finds the queue full).
    size_t interactive_rows = 64;
    /// CoDel-style shed target: a BULK job popped after sojourning more
    /// than 2× this many ms is failed kResourceExhausted (with a hint)
    /// instead of served — its useful life already drained in the queue.
    /// 0 disables pop-time shedding.
    uint64_t sojourn_target_ms = 0;
    /// Label worker threads; clamped to >= 1.
    size_t num_workers = 1;
    /// Options for the wrapped LabelService replica.
    LabelService::Options service;
    /// Store mode: how often the watcher polls for a newer version.
    uint64_t watch_interval_ms = 100;
    /// Budget for writing one reply frame back to a client. A client that
    /// stops reading (dead peer, full socket buffer) gets its connection
    /// dropped after this long instead of pinning the handler thread — and
    /// with it Shutdown()'s drain — forever. 0 = no deadline.
    uint64_t send_deadline_ms = 30'000;
    /// Fault injection for tests and the hedged-retry tail probe: every Nth
    /// label request (1-based, process-wide) sleeps `inject_delay_ms`
    /// before serving. 0 disables. Injected latency only — results stay
    /// bit-identical. Implemented as a thin wrapper over the util/fault.h
    /// fabric (arms site "server.label" with a delay-nth schedule); the
    /// same site — and the transport/admission sites — are also
    /// wire-configurable via kFaultRequest.
    uint64_t inject_delay_every_n = 0;
    uint64_t inject_delay_ms = 0;
  };

  /// Server-side counters (also served over the wire via kStatsRequest).
  struct Stats {
    uint64_t requests_served = 0;
    uint64_t candidates_served = 0;
    /// Admission failures: queue at capacity (wire kResourceExhausted).
    uint64_t queue_rejections = 0;
    /// Jobs dequeued after their deadline budget was spent.
    uint64_t deadline_rejections = 0;
    /// Successful hot-swaps onto a newer store version.
    uint64_t snapshot_swaps = 0;
    /// Newer store versions that failed validation and were NOT swapped in.
    uint64_t rejected_swaps = 0;
    uint64_t snapshot_version = 0;
    uint64_t snapshot_checksum = 0;
    int32_t cardinality = 2;
    /// Faults + delays injected in this process (util/fault.h registry) —
    /// the server-side resilience counter, also served over the wire.
    uint64_t faults_injected = 0;
    /// Requests whose compute was cooperatively cancelled mid-flight after
    /// their deadline expired (LF application / inference stopped at a
    /// chunk boundary instead of running to completion).
    uint64_t expired_work_cancelled = 0;
    /// Jobs shed from the admission queue: displaced by an interactive
    /// arrival, or CoDel-dropped at pop for over-target sojourn.
    uint64_t shed_total = 0;
  };

  /// Serves a single artifact file (no watcher; snapshot_version is the
  /// artifact's store version if its name encodes one, else 0).
  static Result<ShardServer> Serve(const std::string& snapshot_path,
                                   const LabelingFunctionSet& lfs,
                                   Options options);

  /// Serves the CURRENT version of a SnapshotStore directory and watches it
  /// for newer versions (NotFound when the store is empty).
  static Result<ShardServer> ServeFromStore(const std::string& store_dir,
                                            const LabelingFunctionSet& lfs,
                                            Options options);

  ShardServer(ShardServer&&) noexcept;
  ShardServer& operator=(ShardServer&&) noexcept;
  ~ShardServer();

  /// The bound port (resolved when Options::port was 0).
  uint16_t port() const;

  Stats stats() const;

  /// Stops accepting, drains admitted jobs, joins every thread. Idempotent.
  void Shutdown();

 private:
  struct Impl;
  explicit ShardServer(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_SHARD_SERVER_H_
