#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "util/binary_io.h"
#include "util/hash.h"

namespace snorkel {

namespace {

bool TagIs(const std::string& tag, const char expected[4]) {
  return tag.size() == 4 && std::memcmp(tag.data(), expected, 4) == 0;
}

std::string TagString(const char tag[4]) { return std::string(tag, 4); }

void WriteSpan(BinaryWriter* writer, const Span& span) {
  writer->WriteU32(span.doc);
  writer->WriteU32(span.sentence);
  writer->WriteU32(span.word_start);
  writer->WriteU32(span.word_end);
  writer->WriteString(span.entity_type);
  writer->WriteString(span.canonical_id);
}

Span ReadSpan(BinaryReader* reader) {
  Span span;
  span.doc = reader->ReadU32();
  span.sentence = reader->ReadU32();
  span.word_start = reader->ReadU32();
  span.word_end = reader->ReadU32();
  span.entity_type = reader->ReadString();
  span.canonical_id = reader->ReadString();
  return span;
}

/// Corpus slice: only the documents the candidates reference, shipped at
/// their ORIGINAL indices. The server rebuilds a sparse corpus with empty
/// filler documents below the highest shipped index, so every span's
/// (doc, sentence) coordinates — and therefore every LF observable — are
/// byte-identical to the client's corpus.
std::string EncodeCorpusSlice(const Corpus& corpus,
                              const std::vector<CandidateRef>& rows) {
  std::vector<uint32_t> doc_indices;
  doc_indices.reserve(rows.size() * 2);
  for (const CandidateRef& ref : rows) {
    doc_indices.push_back(ref.candidate->span1.doc);
    doc_indices.push_back(ref.candidate->span2.doc);
  }
  std::sort(doc_indices.begin(), doc_indices.end());
  doc_indices.erase(std::unique(doc_indices.begin(), doc_indices.end()),
                    doc_indices.end());

  BinaryWriter writer;
  writer.WriteU64(doc_indices.size());
  for (uint32_t d : doc_indices) {
    const Document& doc = corpus.document(d);
    writer.WriteU64(d);
    writer.WriteString(doc.name);
    writer.WriteU64(doc.sentences.size());
    for (const Sentence& sentence : doc.sentences) {
      writer.WriteStringVector(sentence.words);
      writer.WriteU64(sentence.mentions.size());
      for (const Mention& mention : sentence.mentions) {
        writer.WriteU32(mention.word_start);
        writer.WriteU32(mention.word_end);
        writer.WriteString(mention.entity_type);
        writer.WriteString(mention.canonical_id);
      }
    }
  }
  return writer.TakeBuffer();
}

/// `doc_index_bound` is the exclusive upper bound on valid document indices,
/// derived from the request's CAND section: the encoder ships exactly the
/// documents the candidates reference, so a shipped index past every
/// candidate's doc is invalid by construction. Candidate doc fields are u32,
/// which also bounds the filler-pad loop below against corrupt u64 indices
/// that would otherwise make it allocate without limit.
Result<Corpus> DecodeCorpusSlice(std::string_view payload,
                                 uint64_t doc_index_bound) {
  BinaryReader reader(payload);
  uint64_t num_docs = reader.ReadU64();
  Corpus corpus;
  for (uint64_t i = 0; i < num_docs && reader.ok(); ++i) {
    uint64_t index = reader.ReadU64();
    // Sparse reconstruction: pad with empty documents so shipped documents
    // land at their original indices. Shipped indices are sorted ascending,
    // so a backwards index is corruption.
    if (index < corpus.num_documents()) {
      return Status::IOError("CORP section: document indices out of order");
    }
    if (index >= doc_index_bound) {
      return Status::IOError(
          "CORP section: document index beyond the candidate range");
    }
    while (corpus.num_documents() < index) corpus.AddDocument(Document{});
    Document doc;
    doc.name = reader.ReadString();
    uint64_t num_sentences = reader.ReadU64();
    if (num_sentences > payload.size()) {
      return Status::IOError("CORP section: corrupt sentence count");
    }
    for (uint64_t s = 0; s < num_sentences && reader.ok(); ++s) {
      Sentence sentence;
      sentence.words = reader.ReadStringVector();
      uint64_t num_mentions = reader.ReadU64();
      if (num_mentions > payload.size()) {
        return Status::IOError("CORP section: corrupt mention count");
      }
      for (uint64_t m = 0; m < num_mentions && reader.ok(); ++m) {
        Mention mention;
        mention.word_start = reader.ReadU32();
        mention.word_end = reader.ReadU32();
        mention.entity_type = reader.ReadString();
        mention.canonical_id = reader.ReadString();
        sentence.mentions.push_back(std::move(mention));
      }
      doc.sentences.push_back(std::move(sentence));
    }
    corpus.AddDocument(std::move(doc));
  }
  if (!reader.ok()) {
    return Status::IOError("CORP section: " + reader.status().message());
  }
  return corpus;
}

std::string EncodeCandidates(const std::vector<CandidateRef>& rows) {
  BinaryWriter writer;
  writer.WriteU64(rows.size());
  for (const CandidateRef& ref : rows) {
    WriteSpan(&writer, ref.candidate->span1);
    WriteSpan(&writer, ref.candidate->span2);
    writer.WriteU64(ref.index);
  }
  return writer.TakeBuffer();
}

Status DecodeCandidates(std::string_view payload, WireLabelRequest* out) {
  BinaryReader reader(payload);
  uint64_t count = reader.ReadU64();
  if (count > payload.size()) {
    return Status::IOError("CAND section: corrupt candidate count");
  }
  out->candidates.reserve(count);
  out->indices.reserve(count);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    Candidate candidate;
    candidate.span1 = ReadSpan(&reader);
    candidate.span2 = ReadSpan(&reader);
    out->indices.push_back(reader.ReadU64());
    out->candidates.push_back(std::move(candidate));
  }
  if (!reader.ok()) {
    return Status::IOError("CAND section: " + reader.status().message());
  }
  return Status::OK();
}

std::string EncodeVotes(const LabelMatrix& votes) {
  BinaryWriter writer;
  writer.WriteU64(votes.num_rows());
  writer.WriteU64(votes.num_lfs());
  writer.WriteI32(votes.cardinality());
  uint64_t entries = 0;
  for (size_t i = 0; i < votes.num_rows(); ++i) {
    for ([[maybe_unused]] const auto& entry : votes.row(i)) ++entries;
  }
  writer.WriteU64(entries);
  for (size_t i = 0; i < votes.num_rows(); ++i) {
    for (const auto& entry : votes.row(i)) {
      writer.WriteU64(i);
      writer.WriteU64(entry.lf);
      writer.WriteI32(entry.label);
    }
  }
  return writer.TakeBuffer();
}

Result<LabelMatrix> DecodeVotes(std::string_view payload) {
  BinaryReader reader(payload);
  uint64_t rows = reader.ReadU64();
  uint64_t lfs = reader.ReadU64();
  int32_t cardinality = reader.ReadI32();
  uint64_t entries = reader.ReadU64();
  if (entries > payload.size()) {
    return Status::IOError("VOTE section: corrupt entry count");
  }
  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  triplets.reserve(entries);
  for (uint64_t e = 0; e < entries && reader.ok(); ++e) {
    uint64_t row = reader.ReadU64();
    uint64_t lf = reader.ReadU64();
    Label label = reader.ReadI32();
    triplets.emplace_back(row, lf, label);
  }
  if (!reader.ok()) {
    return Status::IOError("VOTE section: " + reader.status().message());
  }
  auto matrix = LabelMatrix::FromTriplets(rows, lfs, triplets, cardinality);
  if (!matrix.ok()) {
    return Status::IOError("VOTE section: " + matrix.status().message());
  }
  return matrix;
}

}  // namespace

// ---------------------------------------------------------------- framing --

uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kFailedPrecondition:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kAlreadyExists:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kIOError:
      return 7;
    case StatusCode::kResourceExhausted:
      return 8;
    case StatusCode::kUnavailable:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
  }
  return 6;  // kInternal.
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kFailedPrecondition;
    case 4:
      return StatusCode::kOutOfRange;
    case 5:
      return StatusCode::kAlreadyExists;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kIOError;
    case 8:
      return StatusCode::kResourceExhausted;
    case 9:
      return StatusCode::kUnavailable;
    case 10:
      return StatusCode::kDeadlineExceeded;
    default:
      // A code minted by a newer peer: surface as an internal error rather
      // than inventing semantics for it.
      return StatusCode::kInternal;
  }
}

const FrameSection* Frame::Find(const char tag[4]) const {
  for (const FrameSection& section : sections) {
    if (TagIs(section.tag, tag)) return &section;
  }
  return nullptr;
}

std::string EncodeFrame(const Frame& frame) {
  BinaryWriter preamble;
  preamble.WriteU32(static_cast<uint32_t>(frame.type));
  preamble.WriteU64(frame.request_id);
  preamble.WriteU32(static_cast<uint32_t>(frame.sections.size()));
  std::string body = preamble.TakeBuffer();
  for (const FrameSection& section : frame.sections) {
    body.append(section.tag.data(), 4);
    BinaryWriter trailer;
    trailer.WriteU64(section.payload.size());
    body += trailer.buffer();
    body += section.payload;
    BinaryWriter checksum;
    checksum.WriteU64(Fnv1a64(section.payload));
    body += checksum.buffer();
  }
  std::string bytes(kWireMagic, sizeof(kWireMagic));
  BinaryWriter header;
  header.WriteU32(kWireVersion);
  header.WriteU64(body.size());
  bytes += header.buffer();
  bytes += body;
  return bytes;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() != kWireHeaderBytes) {
    return Status::IOError("wire header: expected " +
                           std::to_string(kWireHeaderBytes) + " bytes, got " +
                           std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::InvalidArgument("wire header: bad magic");
  }
  BinaryReader reader(bytes.substr(4));
  FrameHeader header;
  header.version = reader.ReadU32();
  header.body_size = reader.ReadU64();
  if (header.version > kWireVersion) {
    return Status::FailedPrecondition(
        "wire version " + std::to_string(header.version) +
        " is newer than this build speaks (" + std::to_string(kWireVersion) +
        ")");
  }
  if (header.body_size > kMaxWireFrameBytes) {
    return Status::IOError("wire frame body of " +
                           std::to_string(header.body_size) +
                           " bytes exceeds the frame bound");
  }
  return header;
}

Result<Frame> DecodeFrameBody(std::string_view body) {
  BinaryReader reader(body);
  Frame frame;
  frame.type = static_cast<FrameType>(reader.ReadU32());
  frame.request_id = reader.ReadU64();
  uint32_t section_count = reader.ReadU32();
  if (!reader.ok()) {
    return Status::IOError("wire body: truncated frame preamble");
  }
  size_t cursor = reader.position();
  for (uint32_t s = 0; s < section_count; ++s) {
    if (body.size() - cursor < 4 + sizeof(uint64_t)) {
      return Status::IOError("wire body: truncated section header");
    }
    std::string tag(body.substr(cursor, 4));
    uint64_t payload_size = 0;
    std::memcpy(&payload_size, body.data() + cursor + 4, sizeof(payload_size));
    size_t after_header = cursor + 4 + sizeof(uint64_t);
    if (payload_size > body.size() - after_header ||
        body.size() - after_header - payload_size < sizeof(uint64_t)) {
      return Status::IOError("wire body: truncated section '" + tag + "'");
    }
    std::string payload(body.substr(after_header, payload_size));
    uint64_t stored = 0;
    std::memcpy(&stored, body.data() + after_header + payload_size,
                sizeof(stored));
    if (stored != Fnv1a64(payload)) {
      return Status::IOError("wire body: checksum mismatch in section '" +
                             tag + "'");
    }
    frame.sections.push_back(FrameSection{std::move(tag), std::move(payload)});
    cursor = after_header + payload_size + sizeof(uint64_t);
  }
  if (cursor != body.size()) {
    return Status::IOError("wire body: trailing garbage after last section");
  }
  return frame;
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  if (bytes.size() < kWireHeaderBytes) {
    return Status::IOError("wire frame: shorter than the fixed header");
  }
  auto header = DecodeFrameHeader(bytes.substr(0, kWireHeaderBytes));
  if (!header.ok()) return header.status();
  if (bytes.size() - kWireHeaderBytes != header->body_size) {
    return Status::IOError("wire frame: body size mismatch");
  }
  return DecodeFrameBody(bytes.substr(kWireHeaderBytes));
}

// --------------------------------------------------------------- payloads --

EncodedLabelBatch EncodeLabelBatch(const Corpus& corpus,
                                   const std::vector<CandidateRef>& rows) {
  return EncodedLabelBatch{EncodeCorpusSlice(corpus, rows),
                           EncodeCandidates(rows)};
}

Frame EncodeLabelRequestFromBatch(uint64_t request_id,
                                  const EncodedLabelBatch& batch,
                                  bool include_votes, bool apply_class_balance,
                                  uint64_t deadline_ms,
                                  const obs::TraceContext& trace) {
  Frame frame;
  frame.type = FrameType::kLabelRequest;
  frame.request_id = request_id;
  frame.sections.push_back(
      FrameSection{TagString(kSectionCorpus), batch.corpus});
  frame.sections.push_back(
      FrameSection{TagString(kSectionCandidates), batch.candidates});
  BinaryWriter options;
  options.WriteU32(include_votes ? 1 : 0);
  options.WriteU32(apply_class_balance ? 1 : 0);
  options.WriteU64(deadline_ms);
  frame.sections.push_back(
      FrameSection{TagString(kSectionRequestOptions), options.TakeBuffer()});
  if (trace.valid()) {
    // Separate section rather than ROPT fields so an old server skips the
    // whole tag (unknown-section rule) instead of choking on new options.
    BinaryWriter writer;
    writer.WriteU64(trace.trace_id);
    writer.WriteU64(trace.parent_span);
    frame.sections.push_back(
        FrameSection{TagString(kSectionTrace), writer.TakeBuffer()});
  }
  return frame;
}

Frame EncodeLabelRequest(uint64_t request_id, const Corpus& corpus,
                         const std::vector<CandidateRef>& rows,
                         bool include_votes, bool apply_class_balance,
                         uint64_t deadline_ms,
                         const obs::TraceContext& trace) {
  return EncodeLabelRequestFromBatch(request_id, EncodeLabelBatch(corpus, rows),
                                     include_votes, apply_class_balance,
                                     deadline_ms, trace);
}

Result<WireLabelRequest> DecodeLabelRequest(const Frame& frame) {
  if (frame.type != FrameType::kLabelRequest) {
    return Status::InvalidArgument("frame is not a label request");
  }
  const FrameSection* corpus_section = frame.Find(kSectionCorpus);
  const FrameSection* candidates_section = frame.Find(kSectionCandidates);
  if (corpus_section == nullptr || candidates_section == nullptr) {
    return Status::IOError(
        "label request frame is missing its CORP/CAND sections");
  }
  WireLabelRequest request;
  // Candidates first: their doc indices bound the corpus slice (the encoder
  // ships exactly the documents the candidates reference).
  Status candidates_status =
      DecodeCandidates(candidates_section->payload, &request);
  if (!candidates_status.ok()) return candidates_status;
  uint64_t doc_index_bound = 0;
  for (const Candidate& candidate : request.candidates) {
    doc_index_bound = std::max(
        {doc_index_bound, static_cast<uint64_t>(candidate.span1.doc) + 1,
         static_cast<uint64_t>(candidate.span2.doc) + 1});
  }
  auto corpus = DecodeCorpusSlice(corpus_section->payload, doc_index_bound);
  if (!corpus.ok()) return corpus.status();
  request.corpus = std::move(*corpus);
  // Every span coordinate a LF can observe must resolve inside the slice:
  // an out-of-range doc, sentence, or word range is a typed IOError here,
  // never an out-of-bounds read during LF execution.
  for (const Candidate& candidate : request.candidates) {
    for (const Span* span : {&candidate.span1, &candidate.span2}) {
      if (span->doc >= request.corpus.num_documents()) {
        return Status::IOError(
            "label request references a document outside its corpus slice");
      }
      const Document& doc = request.corpus.document(span->doc);
      if (span->sentence >= doc.sentences.size()) {
        return Status::IOError(
            "label request references a sentence outside its document");
      }
      const Sentence& sentence = doc.sentences[span->sentence];
      if (span->word_start > span->word_end ||
          span->word_end > sentence.words.size()) {
        return Status::IOError(
            "label request references a word range outside its sentence");
      }
    }
  }
  if (const FrameSection* options = frame.Find(kSectionRequestOptions)) {
    BinaryReader reader(options->payload);
    request.include_votes = reader.ReadU32() != 0;
    request.apply_class_balance = reader.ReadU32() != 0;
    request.deadline_ms = reader.ReadU64();
    if (!reader.ok()) {
      return Status::IOError("ROPT section: " + reader.status().message());
    }
    // Trailing bytes tolerated: a newer client may append option fields.
  }
  if (const FrameSection* trace = frame.Find(kSectionTrace)) {
    BinaryReader reader(trace->payload);
    request.trace.trace_id = reader.ReadU64();
    request.trace.parent_span = reader.ReadU64();
    if (!reader.ok()) {
      return Status::IOError("TRAC section: " + reader.status().message());
    }
  }
  return request;
}

Frame EncodeLabelResponse(uint64_t request_id, const LabelResponse& response) {
  Frame frame;
  frame.type = FrameType::kLabelResponse;
  frame.request_id = request_id;
  BinaryWriter meta;
  meta.WriteI32(response.cardinality);
  meta.WriteU64(response.hard_labels.size());
  meta.WriteF64(response.latency_ms);
  frame.sections.push_back(
      FrameSection{TagString(kSectionResponseMeta), meta.TakeBuffer()});
  if (!response.posteriors.empty()) {
    BinaryWriter posteriors;
    posteriors.WriteF64Vector(response.posteriors);
    frame.sections.push_back(FrameSection{TagString(kSectionPosteriors),
                                          posteriors.TakeBuffer()});
  }
  if (!response.class_posteriors.empty()) {
    BinaryWriter class_posteriors;
    class_posteriors.WriteF64Vector(response.class_posteriors);
    frame.sections.push_back(FrameSection{TagString(kSectionClassPosteriors),
                                          class_posteriors.TakeBuffer()});
  }
  BinaryWriter hard;
  hard.WriteU64(response.hard_labels.size());
  for (Label label : response.hard_labels) hard.WriteI32(label);
  frame.sections.push_back(
      FrameSection{TagString(kSectionHardLabels), hard.TakeBuffer()});
  if (response.votes.num_rows() > 0) {
    frame.sections.push_back(
        FrameSection{TagString(kSectionVotes), EncodeVotes(response.votes)});
  }
  return frame;
}

Result<LabelResponse> DecodeLabelResponse(const Frame& frame) {
  if (frame.type != FrameType::kLabelResponse) {
    return Status::InvalidArgument("frame is not a label response");
  }
  const FrameSection* meta = frame.Find(kSectionResponseMeta);
  const FrameSection* hard = frame.Find(kSectionHardLabels);
  if (meta == nullptr || hard == nullptr) {
    return Status::IOError(
        "label response frame is missing its RMET/HARD sections");
  }
  LabelResponse response;
  uint64_t rows = 0;
  {
    BinaryReader reader(meta->payload);
    response.cardinality = reader.ReadI32();
    rows = reader.ReadU64();
    response.latency_ms = reader.ReadF64();
    if (!reader.ok()) {
      return Status::IOError("RMET section: " + reader.status().message());
    }
  }
  {
    BinaryReader reader(hard->payload);
    uint64_t count = reader.ReadU64();
    if (count != rows) {
      return Status::IOError("HARD section: row count mismatch");
    }
    response.hard_labels.reserve(count);
    for (uint64_t i = 0; i < count && reader.ok(); ++i) {
      response.hard_labels.push_back(reader.ReadI32());
    }
    if (!reader.ok()) {
      return Status::IOError("HARD section: " + reader.status().message());
    }
  }
  if (const FrameSection* posteriors = frame.Find(kSectionPosteriors)) {
    BinaryReader reader(posteriors->payload);
    response.posteriors = reader.ReadF64Vector();
    if (!reader.ok() || response.posteriors.size() != rows) {
      return Status::IOError("POST section: truncated or wrong row count");
    }
  }
  if (const FrameSection* class_posteriors =
          frame.Find(kSectionClassPosteriors)) {
    BinaryReader reader(class_posteriors->payload);
    response.class_posteriors = reader.ReadF64Vector();
    if (!reader.ok() ||
        response.class_posteriors.size() !=
            rows * static_cast<uint64_t>(response.cardinality)) {
      return Status::IOError("KPST section: truncated or wrong shape");
    }
  }
  if (const FrameSection* votes = frame.Find(kSectionVotes)) {
    auto matrix = DecodeVotes(votes->payload);
    if (!matrix.ok()) return matrix.status();
    response.votes = std::move(*matrix);
  }
  return response;
}

Frame EncodeErrorFrame(uint64_t request_id, const Status& status) {
  return EncodeErrorFrame(request_id, status, 0);
}

Frame EncodeErrorFrame(uint64_t request_id, const Status& status,
                       uint64_t retry_after_ms) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = request_id;
  BinaryWriter writer;
  writer.WriteU32(StatusCodeToWire(status.code()));
  writer.WriteString(status.message());
  // Appended field: old decoders stop after the message (they tolerate
  // trailing payload bytes) and simply never see the hint.
  writer.WriteU64(retry_after_ms);
  frame.sections.push_back(
      FrameSection{TagString(kSectionError), writer.TakeBuffer()});
  return frame;
}

Status DecodeErrorFrame(const Frame& frame) {
  return DecodeErrorFrame(frame, nullptr);
}

Status DecodeErrorFrame(const Frame& frame, uint64_t* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  const FrameSection* error = frame.Find(kSectionError);
  if (frame.type != FrameType::kError || error == nullptr) {
    return Status::IOError("frame is not a well-formed error frame");
  }
  BinaryReader reader(error->payload);
  uint32_t wire_code = reader.ReadU32();
  std::string message = reader.ReadString();
  if (!reader.ok()) {
    return Status::IOError("ERRS section: " + reader.status().message());
  }
  // Appended retry_after_ms hint: absent on old peers' frames, decoded 0.
  if (retry_after_ms != nullptr && reader.remaining() >= sizeof(uint64_t)) {
    *retry_after_ms = reader.ReadU64();
  }
  return Status(StatusCodeFromWire(wire_code), std::move(message));
}

Frame EncodeStatsResponse(uint64_t request_id, const WireServerStats& stats) {
  Frame frame;
  frame.type = FrameType::kStatsResponse;
  frame.request_id = request_id;
  BinaryWriter writer;
  writer.WriteU64(stats.snapshot_version);
  writer.WriteU64(stats.snapshot_checksum);
  writer.WriteU64(stats.requests_served);
  writer.WriteU64(stats.candidates_served);
  writer.WriteU64(stats.queue_rejections);
  writer.WriteU64(stats.snapshot_swaps);
  writer.WriteI32(stats.cardinality);
  writer.WriteU64(stats.faults_injected);
  writer.WriteU64(stats.deadline_rejections);
  writer.WriteU64(stats.rejected_swaps);
  writer.WriteU64(stats.expired_work_cancelled);
  writer.WriteU64(stats.shed_total);
  frame.sections.push_back(
      FrameSection{TagString(kSectionServerStats), writer.TakeBuffer()});
  return frame;
}

Result<WireServerStats> DecodeStatsResponse(const Frame& frame) {
  const FrameSection* section = frame.Find(kSectionServerStats);
  if (frame.type != FrameType::kStatsResponse || section == nullptr) {
    return Status::IOError("frame is not a well-formed stats response");
  }
  BinaryReader reader(section->payload);
  WireServerStats stats;
  stats.snapshot_version = reader.ReadU64();
  stats.snapshot_checksum = reader.ReadU64();
  stats.requests_served = reader.ReadU64();
  stats.candidates_served = reader.ReadU64();
  stats.queue_rejections = reader.ReadU64();
  stats.snapshot_swaps = reader.ReadU64();
  stats.cardinality = reader.ReadI32();
  // Appended fields: an old peer's SVST section simply ends early, and
  // every field it did not write decodes as 0.
  if (reader.remaining() >= sizeof(uint64_t)) {
    stats.faults_injected = reader.ReadU64();
  }
  if (reader.remaining() >= sizeof(uint64_t)) {
    stats.deadline_rejections = reader.ReadU64();
  }
  if (reader.remaining() >= sizeof(uint64_t)) {
    stats.rejected_swaps = reader.ReadU64();
  }
  if (reader.remaining() >= sizeof(uint64_t)) {
    stats.expired_work_cancelled = reader.ReadU64();
  }
  if (reader.remaining() >= sizeof(uint64_t)) {
    stats.shed_total = reader.ReadU64();
  }
  if (!reader.ok()) {
    return Status::IOError("SVST section: " + reader.status().message());
  }
  return stats;
}

Frame EncodeFaultRequest(uint64_t request_id, const WireFaultCommand& command) {
  Frame frame;
  frame.type = FrameType::kFaultRequest;
  frame.request_id = request_id;
  BinaryWriter writer;
  writer.WriteU32(command.disarm_all ? 1 : 0);
  writer.WriteU64(command.arm.size());
  for (const auto& [site, schedule] : command.arm) {
    writer.WriteString(site);
    writer.WriteU32(static_cast<uint32_t>(schedule.kind));
    writer.WriteU64(schedule.n);
    writer.WriteF64(schedule.probability);
    writer.WriteU64(schedule.delay_ms);
    writer.WriteU64(schedule.seed);
    writer.WriteU64(schedule.max_hits);
  }
  frame.sections.push_back(
      FrameSection{TagString(kSectionFaults), writer.TakeBuffer()});
  return frame;
}

Result<WireFaultCommand> DecodeFaultRequest(const Frame& frame) {
  const FrameSection* section = frame.Find(kSectionFaults);
  if (frame.type != FrameType::kFaultRequest || section == nullptr) {
    return Status::IOError("frame is not a well-formed fault request");
  }
  BinaryReader reader(section->payload);
  WireFaultCommand command;
  command.disarm_all = reader.ReadU32() != 0;
  uint64_t count = reader.ReadU64();
  if (!reader.ok() || count > 1024) {
    return Status::IOError("FLTI section: truncated or absurd arm count");
  }
  command.arm.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string site = reader.ReadString();
    fault::Schedule schedule;
    schedule.kind = static_cast<fault::Schedule::Kind>(reader.ReadU32());
    schedule.n = reader.ReadU64();
    schedule.probability = reader.ReadF64();
    schedule.delay_ms = reader.ReadU64();
    schedule.seed = reader.ReadU64();
    schedule.max_hits = reader.ReadU64();
    if (!reader.ok()) {
      return Status::IOError("FLTI section: truncated arm entry " +
                             std::to_string(i));
    }
    command.arm.emplace_back(std::move(site), schedule);
  }
  return command;
}

Frame EncodeFaultResponse(uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kFaultResponse;
  frame.request_id = request_id;
  return frame;
}

// ----------------------------------------------------- metrics + tracing --

Frame EncodeMetricsRequest(uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kMetricsRequest;
  frame.request_id = request_id;
  return frame;
}

Frame EncodeMetricsResponse(uint64_t request_id,
                            const std::string& prometheus_text) {
  Frame frame;
  frame.type = FrameType::kMetricsResponse;
  frame.request_id = request_id;
  BinaryWriter writer;
  writer.WriteString(prometheus_text);
  frame.sections.push_back(
      FrameSection{TagString(kSectionMetrics), writer.TakeBuffer()});
  return frame;
}

Result<std::string> DecodeMetricsResponse(const Frame& frame) {
  const FrameSection* section = frame.Find(kSectionMetrics);
  if (frame.type != FrameType::kMetricsResponse || section == nullptr) {
    return Status::IOError("frame is not a well-formed metrics response");
  }
  BinaryReader reader(section->payload);
  std::string text = reader.ReadString();
  if (!reader.ok()) {
    return Status::IOError("MTRC section: " + reader.status().message());
  }
  // Trailing bytes tolerated: a newer server may append fields.
  return text;
}

Frame EncodeTraceRequest(uint64_t request_id,
                         const WireTraceRequest& request) {
  Frame frame;
  frame.type = FrameType::kTraceRequest;
  frame.request_id = request_id;
  BinaryWriter writer;
  writer.WriteU64(request.trace_id);
  writer.WriteU32(request.drain ? 1 : 0);
  frame.sections.push_back(
      FrameSection{TagString(kSectionTrace), writer.TakeBuffer()});
  return frame;
}

Result<WireTraceRequest> DecodeTraceRequest(const Frame& frame) {
  const FrameSection* section = frame.Find(kSectionTrace);
  if (frame.type != FrameType::kTraceRequest || section == nullptr) {
    return Status::IOError("frame is not a well-formed trace request");
  }
  BinaryReader reader(section->payload);
  WireTraceRequest request;
  request.trace_id = reader.ReadU64();
  request.drain = reader.ReadU32() != 0;
  if (!reader.ok()) {
    return Status::IOError("TRAC section: " + reader.status().message());
  }
  return request;
}

Frame EncodeTraceResponse(uint64_t request_id, const obs::SpanBatch& batch) {
  Frame frame;
  frame.type = FrameType::kTraceResponse;
  frame.request_id = request_id;
  frame.sections.push_back(FrameSection{TagString(kSectionTraceSpans),
                                        obs::EncodeSpansPayload(batch)});
  return frame;
}

Result<obs::SpanBatch> DecodeTraceResponse(const Frame& frame) {
  const FrameSection* section = frame.Find(kSectionTraceSpans);
  if (frame.type != FrameType::kTraceResponse || section == nullptr) {
    return Status::IOError("frame is not a well-formed trace response");
  }
  return obs::DecodeSpansPayload(section->payload);
}

}  // namespace snorkel
