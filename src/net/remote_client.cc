#include "net/remote_client.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "net/health.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "util/hash.h"

namespace snorkel {

namespace {

/// Milliseconds left until `deadline` (0 when none / already expired —
/// callers have checked expiry separately).
uint64_t RemainingMs(SocketDeadline deadline) {
  if (deadline == kNoDeadline) return 0;
  auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count());
}

/// First-completion-wins rendezvous between the primary and hedge attempts.
struct PendingCall {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  int winner = -1;
  Result<LabelResponse> result{Status::Internal("pending")};
  /// The winning attempt's server backoff hint (0 = none).
  uint64_t retry_after_ms = 0;
};

}  // namespace

struct RemoteShardClient::Impl {
  Options options;

  std::mutex pool_mu;
  std::vector<Socket> pool;

  /// Per-endpoint breaker (net/health.h): consecutive transport failures
  /// open it, a jittered cooldown + single half-open probe close it.
  CircuitBreaker breaker;

  /// Per-endpoint AIMD in-flight limit: label calls hold a slot for their
  /// duration; the limit tracks the shard's observed capacity. The breaker
  /// is consulted FIRST (a dead endpoint fails fast without burning a
  /// slot-wait), then the limiter.
  AdaptiveLimiter limiter;

  /// In-flight attempt threads (hedge losers included); the destructor
  /// waits for all of them so no detached thread outlives the impl's user.
  std::mutex flight_mu;
  std::condition_variable flight_cv;
  size_t in_flight = 0;

  std::atomic<uint64_t> next_request_id{1};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> hedged_attempts{0};
  std::atomic<uint64_t> hedged_wins{0};
  std::atomic<uint64_t> fail_fast{0};
  std::atomic<uint64_t> pooled_reuses{0};
  std::atomic<uint64_t> limited_rejections{0};

  static CircuitBreaker::Options BreakerOptions(const Options& options) {
    CircuitBreaker::Options breaker;
    breaker.failure_threshold =
        options.unhealthy_threshold == 0 ? 1 : options.unhealthy_threshold;
    breaker.cooldown_ms = options.unhealthy_cooldown_ms;
    breaker.cooldown_jitter = options.unhealthy_cooldown_jitter;
    // Default seed is per-endpoint: clients of different shards (and
    // different fleets) draw decorrelated cooldowns.
    breaker.seed = options.health_seed != 0
                       ? options.health_seed
                       : HashCombine(Fnv1a64(options.host), options.port);
    return breaker;
  }

  static AdaptiveLimiter::Options LimiterOptions(const Options& options) {
    AdaptiveLimiter::Options limiter;
    limiter.initial_limit = options.adaptive_initial_limit;
    limiter.min_limit = options.adaptive_min_limit;
    limiter.max_limit = options.adaptive_max_limit;
    limiter.decrease_factor = options.adaptive_decrease;
    return limiter;
  }

  explicit Impl(Options opts)
      : options(std::move(opts)),
        breaker(BreakerOptions(options)),
        limiter(LimiterOptions(options)) {
    if (options.max_pooled_connections == 0) {
      options.max_pooled_connections = 1;
    }
    if (options.unhealthy_threshold == 0) options.unhealthy_threshold = 1;
  }

  // ---- Pool. ----

  Result<Socket> AcquireConnection(SocketDeadline deadline) {
    {
      std::lock_guard<std::mutex> lock(pool_mu);
      if (!pool.empty()) {
        Socket socket = std::move(pool.back());
        pool.pop_back();
        pooled_reuses.fetch_add(1, std::memory_order_relaxed);
        return socket;
      }
    }
    SocketDeadline connect_deadline = deadline;
    if (options.connect_timeout_ms > 0) {
      SocketDeadline bound = DeadlineAfterMs(options.connect_timeout_ms);
      if (bound < connect_deadline) connect_deadline = bound;
    }
    return Socket::Connect(options.host, options.port, connect_deadline);
  }

  void ReleaseConnection(Socket socket) {
    std::lock_guard<std::mutex> lock(pool_mu);
    if (pool.size() < options.max_pooled_connections) {
      pool.push_back(std::move(socket));
    }
    // Else: dropped — Socket's destructor closes it.
  }

  // ---- Health. ----

  void RecordOutcome(bool transport_ok) {
    if (transport_ok) {
      breaker.RecordSuccess();
    } else {
      breaker.RecordFailure();
    }
  }

  // ---- One exchange on one socket. ----

  /// Sends `frame_bytes`, receives the reply, verifies correlation, decodes.
  /// `transport_ok` reports whether the CONNECTION behaved (a typed error
  /// frame is transport_ok = true); used for pooling and health.
  Result<Frame> Exchange(const std::string& frame_bytes, uint64_t request_id,
                         SocketDeadline deadline, bool* transport_ok) {
    *transport_ok = false;
    auto socket = AcquireConnection(deadline);
    if (!socket.ok()) return socket.status();
    {
      obs::TraceSpan send_span("client.send");
      send_span.Annotate("bytes=" + std::to_string(frame_bytes.size()));
      Status sent = socket->SendAll(frame_bytes, deadline);
      if (!sent.ok()) {
        // A pooled connection can go stale (server dropped it between
        // requests); retry ONCE on a fresh connection. Only the send — once
        // bytes of a reply are in flight a retry could double-serve.
        auto fresh = Socket::Connect(options.host, options.port, deadline);
        if (!fresh.ok()) return fresh.status();
        socket = std::move(fresh);
        sent = socket->SendAll(frame_bytes, deadline);
        if (!sent.ok()) return sent;
      }
    }
    Result<Frame> reply(Status::Internal("unset"));
    {
      obs::TraceSpan recv_span("client.recv");
      reply = RecvFrame(*socket, deadline);
    }
    if (!reply.ok()) return reply.status();
    if (reply->request_id != request_id) {
      // Stream desync (a previous caller abandoned a reply?) — this
      // connection can't be trusted; drop it.
      return Status::Unavailable("response correlation mismatch");
    }
    *transport_ok = true;
    ReleaseConnection(std::move(*socket));
    return reply;
  }

  /// One full label attempt over pre-encoded frame bytes (encoded in the
  /// caller's thread — attempt threads must not borrow the caller's
  /// corpus/rows, which may go out of scope once the winning attempt
  /// returns). `retry_after_ms` receives the server's backoff hint when
  /// the reply is a rejection error frame (0 otherwise).
  Result<LabelResponse> LabelAttempt(const std::string& frame_bytes,
                                     uint64_t request_id,
                                     SocketDeadline deadline,
                                     uint64_t* retry_after_ms) {
    *retry_after_ms = 0;
    bool transport_ok = false;
    auto reply = Exchange(frame_bytes, request_id, deadline, &transport_ok);
    RecordOutcome(transport_ok);
    if (!reply.ok()) return reply.status();
    if (reply->type == FrameType::kError) {
      return DecodeErrorFrame(*reply, retry_after_ms);
    }
    obs::TraceSpan decode_span("client.decode");
    return DecodeLabelResponse(*reply);
  }
};

RemoteShardClient::RemoteShardClient(std::shared_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

RemoteShardClient RemoteShardClient::Create(Options options) {
  return RemoteShardClient(std::make_shared<Impl>(std::move(options)));
}

RemoteShardClient::~RemoteShardClient() {
  if (impl_ == nullptr) return;
  std::unique_lock<std::mutex> lock(impl_->flight_mu);
  impl_->flight_cv.wait(lock, [this] { return impl_->in_flight == 0; });
}

const RemoteShardClient::Options& RemoteShardClient::options() const {
  return impl_->options;
}

Result<LabelResponse> RemoteShardClient::Label(
    const Corpus& corpus, const std::vector<CandidateRef>& rows,
    bool include_votes, bool apply_class_balance, uint64_t deadline_ms,
    bool* failed_fast, uint64_t* retry_after_ms) {
  Impl& impl = *impl_;
  if (failed_fast != nullptr) *failed_fast = false;
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  impl.requests.fetch_add(1, std::memory_order_relaxed);
  const CircuitBreaker::Admission admission = impl.breaker.Admit();
  if (admission == CircuitBreaker::Admission::kReject) {
    // Open breaker: fail fast with NO work dispatched — the router's
    // failover treats this as a free redirect.
    impl.fail_fast.fetch_add(1, std::memory_order_relaxed);
    impl.failures.fetch_add(1, std::memory_order_relaxed);
    if (failed_fast != nullptr) *failed_fast = true;
    return Status::Unavailable(
        impl.options.host + ":" + std::to_string(impl.options.port) +
        " is marked unhealthy (failing fast during cooldown)");
  }
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);

  // AIMD admission AFTER the breaker (a dead endpoint fails fast without a
  // slot-wait) and BEFORE any encoding or I/O. Failing to get a slot before
  // the deadline is a LOCAL rejection — no work was dispatched, so the
  // router fails over for free (failed_fast), same as an open breaker.
  const bool limited = impl.options.enable_adaptive_limit;
  if (limited && !impl.limiter.Acquire(deadline)) {
    if (admission == CircuitBreaker::Admission::kProbe) {
      // This call held the single half-open probe slot but never reached
      // the wire; report it failed so the breaker re-arms its cooldown
      // instead of waiting forever on a probe that will never answer.
      impl.breaker.RecordFailure();
    }
    impl.limited_rejections.fetch_add(1, std::memory_order_relaxed);
    impl.failures.fetch_add(1, std::memory_order_relaxed);
    if (failed_fast != nullptr) *failed_fast = true;
    return Status::ResourceExhausted(
        impl.options.host + ":" + std::to_string(impl.options.port) +
        " adaptive concurrency limit reached before the request deadline");
  }

  auto pending = std::make_shared<PendingCall>();
  // Encode the batch (corpus slice + candidate rows — the expensive,
  // deadline-independent bytes) ONCE, up-front in this thread: attempt
  // threads are detached and may outlive this call (hedge losers), so they
  // must not borrow the caller's corpus or rows. Each attempt then frames
  // the shared batch at ITS OWN start with a freshly computed remaining
  // budget — so limiter waits, hedge delays, and time to this point are
  // subtracted from the deadline_ms the server sees, instead of every
  // attempt advertising the budget as of call entry (the budget leak: a
  // hedge fired 50 ms in claimed 50 ms more patience than the caller had).
  auto batch = std::make_shared<EncodedLabelBatch>(
      EncodeLabelBatch(corpus, rows));
  // Each attempt carries its own request id — a loser's late reply can
  // never be mistaken for the winner's on a pooled connection.
  struct AttemptPayload {
    uint64_t request_id = 0;
  };
  auto payloads = std::make_shared<std::vector<AttemptPayload>>();
  // Snapshot the caller's trace identity: the frame carries it in a TRAC
  // section (server spans hang under it), and each detached attempt thread
  // re-installs it so its send/recv/decode spans land in the same trace.
  obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  size_t num_attempts = impl.options.enable_hedging ? 2 : 1;
  for (size_t a = 0; a < num_attempts; ++a) {
    AttemptPayload payload;
    payload.request_id =
        impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
    payloads->push_back(payload);
  }

  auto launch = [this, pending, payloads, batch, deadline, trace_ctx,
                 include_votes, apply_class_balance](int attempt) {
    // Each attempt holds the impl (keep-alive past the stub) and runs on
    // its own socket; first completion wins, the loser still finishes its
    // exchange so its connection pools cleanly.
    std::shared_ptr<Impl> impl_keepalive = impl_;
    {
      std::lock_guard<std::mutex> lock(impl_keepalive->flight_mu);
      ++impl_keepalive->in_flight;
    }
    std::thread([impl_keepalive, pending, payloads, batch, deadline, attempt,
                 trace_ctx, include_votes, apply_class_balance] {
      const AttemptPayload& payload =
          (*payloads)[static_cast<size_t>(attempt)];
      Result<LabelResponse> result(Status::Internal("pending"));
      uint64_t attempt_retry_after = 0;
      if (deadline != kNoDeadline &&
          std::chrono::steady_clock::now() >= deadline) {
        // Budget spent before this attempt could even frame its request
        // (e.g. a hedge fired at the deadline's edge). RemainingMs would
        // encode 0 — which means "no deadline" on the wire — so fail here
        // instead of asking the server for unbounded patience.
        result = Status::DeadlineExceeded(
            "request budget spent before the attempt was sent");
      } else {
        // Frame NOW, with the budget left NOW (the deadline-propagation
        // contract: elapsed client time is subtracted before the hop).
        std::string frame_bytes = EncodeFrame(EncodeLabelRequestFromBatch(
            payload.request_id, *batch, include_votes, apply_class_balance,
            RemainingMs(deadline), trace_ctx));
        obs::ScopedTraceContext trace_scope(trace_ctx);
        result =
            impl_keepalive->LabelAttempt(frame_bytes, payload.request_id,
                                         deadline, &attempt_retry_after);
      }
      // Attempt threads are detached: push their spans to the global ring
      // NOW, before the winner signals — a drain right after the call
      // returns must already see them.
      obs::FlushThreadSpans();
      {
        std::lock_guard<std::mutex> lock(pending->mu);
        if (!pending->done) {
          pending->done = true;
          pending->winner = attempt;
          pending->result = std::move(result);
          pending->retry_after_ms = attempt_retry_after;
          pending->cv.notify_all();
        }
      }
      {
        std::lock_guard<std::mutex> lock(impl_keepalive->flight_mu);
        --impl_keepalive->in_flight;
        impl_keepalive->flight_cv.notify_all();
      }
    }).detach();
  };

  launch(0);
  std::unique_lock<std::mutex> lock(pending->mu);
  if (impl.options.enable_hedging) {
    bool completed = pending->cv.wait_for(
        lock, std::chrono::milliseconds(impl.options.hedge_delay_ms),
        [&] { return pending->done; });
    if (!completed &&
        (deadline == kNoDeadline ||
         std::chrono::steady_clock::now() < deadline)) {
      impl.hedged_attempts.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      launch(1);
      lock.lock();
    }
  }
  // Attempts enforce the deadline through every socket operation, which
  // bounds how long this wait can last whenever a deadline is set.
  pending->cv.wait(lock, [&] { return pending->done; });
  if (pending->winner == 1) {
    impl.hedged_wins.fetch_add(1, std::memory_order_relaxed);
  }
  Result<LabelResponse> result = std::move(pending->result);
  const uint64_t hint = pending->retry_after_ms;
  lock.unlock();
  if (retry_after_ms != nullptr) *retry_after_ms = hint;
  if (limited) {
    // Teach the limiter the outcome: overload signals shrink it (and a
    // retry-after hint gates new acquisitions); success grows it; anything
    // else says nothing about the shard's load.
    if (result.ok()) {
      impl.limiter.ReleaseSuccess();
    } else if (result.status().code() == StatusCode::kResourceExhausted ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      impl.limiter.ReleaseOverload(hint);
    } else {
      impl.limiter.ReleaseNeutral();
    }
  }
  if (!result.ok() && (result.status().code() == StatusCode::kUnavailable ||
                       result.status().code() ==
                           StatusCode::kDeadlineExceeded)) {
    impl.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Status RemoteShardClient::Ping(uint64_t deadline_ms) {
  Impl& impl = *impl_;
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);
  uint64_t request_id =
      impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = request_id;
  bool transport_ok = false;
  auto reply =
      impl.Exchange(EncodeFrame(ping), request_id, deadline, &transport_ok);
  impl.RecordOutcome(transport_ok);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) return DecodeErrorFrame(*reply);
  if (reply->type != FrameType::kPong) {
    return Status::IOError("ping answered by a non-pong frame");
  }
  return Status::OK();
}

Status RemoteShardClient::ConfigureFaults(const WireFaultCommand& command,
                                          uint64_t deadline_ms) {
  Impl& impl = *impl_;
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);
  uint64_t request_id =
      impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
  bool transport_ok = false;
  auto reply = impl.Exchange(EncodeFrame(EncodeFaultRequest(request_id, command)),
                             request_id, deadline, &transport_ok);
  impl.RecordOutcome(transport_ok);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) return DecodeErrorFrame(*reply);
  if (reply->type != FrameType::kFaultResponse) {
    return Status::IOError("fault request answered by an unexpected frame");
  }
  return Status::OK();
}

Result<WireServerStats> RemoteShardClient::GetStats(uint64_t deadline_ms) {
  Impl& impl = *impl_;
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);
  uint64_t request_id =
      impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
  Frame request;
  request.type = FrameType::kStatsRequest;
  request.request_id = request_id;
  bool transport_ok = false;
  auto reply =
      impl.Exchange(EncodeFrame(request), request_id, deadline, &transport_ok);
  impl.RecordOutcome(transport_ok);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) return DecodeErrorFrame(*reply);
  return DecodeStatsResponse(*reply);
}

Result<std::string> RemoteShardClient::GetMetrics(uint64_t deadline_ms) {
  Impl& impl = *impl_;
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);
  uint64_t request_id =
      impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
  bool transport_ok = false;
  auto reply = impl.Exchange(EncodeFrame(EncodeMetricsRequest(request_id)),
                             request_id, deadline, &transport_ok);
  impl.RecordOutcome(transport_ok);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) return DecodeErrorFrame(*reply);
  return DecodeMetricsResponse(*reply);
}

Result<obs::SpanBatch> RemoteShardClient::GetTraceSpans(
    const WireTraceRequest& request, uint64_t deadline_ms) {
  Impl& impl = *impl_;
  if (deadline_ms == 0) deadline_ms = impl.options.request_timeout_ms;
  SocketDeadline deadline = DeadlineAfterMs(deadline_ms);
  uint64_t request_id =
      impl.next_request_id.fetch_add(1, std::memory_order_relaxed);
  bool transport_ok = false;
  auto reply =
      impl.Exchange(EncodeFrame(EncodeTraceRequest(request_id, request)),
                    request_id, deadline, &transport_ok);
  impl.RecordOutcome(transport_ok);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) return DecodeErrorFrame(*reply);
  return DecodeTraceResponse(*reply);
}

RemoteShardClient::Stats RemoteShardClient::stats() const {
  const Impl& impl = *impl_;
  Stats stats;
  stats.requests = impl.requests.load(std::memory_order_relaxed);
  stats.failures = impl.failures.load(std::memory_order_relaxed);
  stats.hedged_attempts = impl.hedged_attempts.load(std::memory_order_relaxed);
  stats.hedged_wins = impl.hedged_wins.load(std::memory_order_relaxed);
  stats.fail_fast = impl.fail_fast.load(std::memory_order_relaxed);
  stats.pooled_reuses = impl.pooled_reuses.load(std::memory_order_relaxed);
  stats.healthy = impl.breaker.state() == CircuitBreaker::State::kClosed;
  stats.adaptive_limit = impl.limiter.limit();
  stats.limited_rejections =
      impl.limited_rejections.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace snorkel
