#include "net/snapshot_store.h"

#include <dirent.h>
#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/binary_io.h"

namespace snorkel {

namespace {

constexpr char kPrefix[] = "snapshot-";
constexpr char kSuffix[] = ".snk";

/// Parses "snapshot-<version>.snk"; false for anything else (incl. temp
/// files, which start with '.').
bool ParseVersion(const char* name, uint64_t* version) {
  size_t len = std::strlen(name);
  size_t prefix_len = sizeof(kPrefix) - 1;
  size_t suffix_len = sizeof(kSuffix) - 1;
  if (len <= prefix_len + suffix_len) return false;
  if (std::strncmp(name, kPrefix, prefix_len) != 0) return false;
  if (std::strcmp(name + len - suffix_len, kSuffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = prefix_len; i < len - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *version = v;
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<SnapshotStore> SnapshotStore::Open(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create snapshot store at '" + dir +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("snapshot store path '" + dir +
                           "' is not a directory");
  }
  return SnapshotStore(dir);
}

std::string SnapshotStore::PathFor(uint64_t version) const {
  return dir_ + "/" + kPrefix + std::to_string(version) + kSuffix;
}

Result<std::vector<uint64_t>> SnapshotStore::ListVersions() const {
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) {
    return Status::IOError("cannot list snapshot store '" + dir_ +
                           "': " + std::strerror(errno));
  }
  std::vector<uint64_t> versions;
  while (struct dirent* entry = ::readdir(handle)) {
    uint64_t version = 0;
    if (ParseVersion(entry->d_name, &version)) versions.push_back(version);
  }
  ::closedir(handle);
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<uint64_t> SnapshotStore::CurrentVersion() const {
  auto versions = ListVersions();
  if (!versions.ok()) return versions.status();
  if (versions->empty()) {
    return Status::NotFound("snapshot store '" + dir_ + "' is empty");
  }
  return versions->back();
}

Status SnapshotStore::Publish(uint64_t version, std::string_view bytes) const {
  std::string final_path = PathFor(version);
  if (FileExists(final_path)) {
    return Status::AlreadyExists("snapshot version " +
                                 std::to_string(version) +
                                 " already exists in '" + dir_ + "'");
  }
  // Temp name starts with '.', so a concurrent ListVersions never sees it.
  std::string temp_path = dir_ + "/.publish-" + std::to_string(version) +
                          "-" + std::to_string(::getpid());
  SNORKEL_RETURN_IF_ERROR(WriteFileBytes(temp_path, bytes));
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    Status status = Status::IOError("cannot publish snapshot version " +
                                    std::to_string(version) + ": " +
                                    std::strerror(errno));
    (void)std::remove(temp_path.c_str());
    return status;
  }
  return Status::OK();
}

Status SnapshotStore::PromoteFile(const std::string& source_path,
                                  uint64_t version) const {
  auto bytes = ReadFileBytes(source_path);
  if (!bytes.ok()) return bytes.status();
  return Publish(version, *bytes);
}

}  // namespace snorkel
