#include "net/health.h"

#include <algorithm>
#include <cmath>

namespace snorkel {

uint64_t BackoffDelayMs(const BackoffOptions& options, uint64_t stream,
                        uint32_t attempt) {
  if (attempt == 0) return 0;
  double delay = static_cast<double>(options.base_ms) *
                 std::pow(options.multiplier, static_cast<double>(attempt - 1));
  delay = std::min(delay, static_cast<double>(options.max_ms));
  if (options.jitter > 0.0) {
    // One deterministic draw per (seed, stream, attempt): decorrelated
    // across streams, reproducible across runs.
    SplitMix64 rng(options.seed, (stream << 8) ^ attempt);
    delay *= 1.0 + options.jitter * rng.Uniform();
  }
  return static_cast<uint64_t>(delay);
}

RetryBudget::RetryBudget(Options options)
    : options_(options), tokens_(options.initial) {
  if (options_.max_tokens < 0.0) options_.max_tokens = 0.0;
  tokens_ = std::min(tokens_, options_.max_tokens);
}

void RetryBudget::OnRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(tokens_ + options_.per_request_refill,
                     options_.max_tokens);
}

bool RetryBudget::TryConsume() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++exhausted_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

uint64_t RetryBudget::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

CircuitBreaker::CircuitBreaker(Options options)
    : options_(options), jitter_rng_(options.seed) {
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
}

std::chrono::steady_clock::time_point CircuitBreaker::JitteredReopenAt() {
  double cooldown = static_cast<double>(options_.cooldown_ms);
  if (options_.cooldown_jitter > 0.0) {
    cooldown *= 1.0 + options_.cooldown_jitter * jitter_rng_.Uniform();
  }
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(static_cast<int64_t>(cooldown));
}

CircuitBreaker::Admission CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Admission::kAllow;
    case State::kOpen:
      if (std::chrono::steady_clock::now() < reopen_at_) {
        ++open_rejections_;
        return Admission::kReject;
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return Admission::kProbe;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        // The previous probe's outcome re-opened or closed the breaker
        // before this caller arrived; treat a stale half-open as a probe
        // slot (cannot happen in practice — transitions leave half-open —
        // but stay safe).
        probe_in_flight_ = true;
        return Admission::kProbe;
      }
      ++open_rejections_;
      return Admission::kReject;
  }
  return Admission::kAllow;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  // Evidence of life closes the breaker from any state (a late success from
  // an attempt dispatched before the breaker opened counts too).
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        reopen_at_ = JitteredReopenAt();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: re-arm the cooldown.
      state_ = State::kOpen;
      probe_in_flight_ = false;
      reopen_at_ = JitteredReopenAt();
      break;
    case State::kOpen:
      // A straggler from before the breaker opened; the cooldown already
      // running is the right response.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::open_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_rejections_;
}

AdaptiveLimiter::AdaptiveLimiter(Options options)
    : options_(options), limit_(options.initial_limit) {
  if (options_.min_limit < 1.0) options_.min_limit = 1.0;
  if (options_.max_limit < options_.min_limit) {
    options_.max_limit = options_.min_limit;
  }
  limit_ = std::clamp(limit_, options_.min_limit, options_.max_limit);
  if (options_.decrease_factor <= 0.0 || options_.decrease_factor >= 1.0) {
    options_.decrease_factor = 0.7;
  }
}

bool AdaptiveLimiter::Acquire(std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      ++rejections_;
      return false;
    }
    bool slot_free = in_flight_ < static_cast<size_t>(limit_);
    bool gate_open = now >= not_before_;
    if (slot_free && gate_open) {
      ++in_flight_;
      return true;
    }
    // Wake at whichever bound comes first: the caller's deadline, or (when
    // only the retry-after gate blocks us) the gate opening.
    auto wake = deadline;
    if (slot_free && not_before_ < wake) wake = not_before_;
    if (wake == std::chrono::steady_clock::time_point::max()) {
      // No finite bound (caller has no deadline): a timed wait on max()
      // risks clock-conversion overflow; park until released.
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, wake);
    }
  }
}

void AdaptiveLimiter::ReleaseSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  // Additive increase spread over a window of `limit` successes: the limit
  // climbs by ~increase_per_success per "round trip", TCP-style.
  limit_ = std::min(options_.max_limit,
                    limit_ + options_.increase_per_success / limit_);
  cv_.notify_all();
}

void AdaptiveLimiter::ReleaseOverload(uint64_t retry_after_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  limit_ = std::max(options_.min_limit, limit_ * options_.decrease_factor);
  if (retry_after_ms > 0) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(retry_after_ms);
    if (until > not_before_) not_before_ = until;
  }
  cv_.notify_all();
}

void AdaptiveLimiter::ReleaseNeutral() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  cv_.notify_all();
}

double AdaptiveLimiter::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

size_t AdaptiveLimiter::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

uint64_t AdaptiveLimiter::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

}  // namespace snorkel
