#ifndef SNORKEL_NET_PLACEMENT_H_
#define SNORKEL_NET_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snorkel {

/// R-way replica placement for the shard fabric.
///
/// Placement has two layers that must not be conflated:
///
///  1. The PRIMARY map — which shard id owns a candidate key. This stays the
///     stable content-hash modulo both tiers have always used
///     (`key % num_endpoints`), so the in-process ShardRouter, every remote
///     router, and every mixed fleet keep agreeing on primaries with zero
///     coordination, and a candidate's sub-batch grouping is unchanged.
///  2. The PREFERENCE LIST — for each shard id, an ordered list of R
///     endpoints to try: the primary first, then fallback replicas ordered
///     by rendezvous (highest-random-weight) score. HRW gives every
///     (shard, endpoint) pair an independent deterministic score, so each
///     shard's fallbacks spread across the fleet instead of all piling onto
///     `(s+1) % n`, and every router computes the identical list from
///     nothing but (num_endpoints, replication).
///
/// With replication R, any single endpoint failure leaves >= 1 live endpoint
/// in every shard's preference list as long as <= R-1 replicas of that shard
/// are down — the structural invariant the failover router's coverage
/// guarantee rests on. Replication 1 degenerates to PR 6's single-owner
/// placement exactly.
class ShardPlacement {
 public:
  /// `replication` is clamped to [1, num_endpoints]; `num_endpoints` to
  /// >= 1. Preference lists are precomputed (num_endpoints is fleet-sized,
  /// not data-sized).
  ShardPlacement(size_t num_endpoints, size_t replication);

  /// The primary endpoint for a candidate key — identical to the historic
  /// single-owner placement (`key % num_endpoints`), shared with
  /// CandidatePartitioner::ShardOf so both tiers agree on primaries.
  static size_t PrimaryOf(uint64_t key, size_t num_endpoints);

  size_t num_endpoints() const { return num_endpoints_; }
  /// Effective replication (after clamping).
  size_t replication() const { return replication_; }

  /// Ordered endpoints to try for shard id `shard`: element 0 is `shard`
  /// itself (the primary), the rest are HRW-ordered fallbacks. Size ==
  /// replication().
  const std::vector<uint32_t>& Preferences(size_t shard) const {
    return preferences_[shard];
  }

 private:
  size_t num_endpoints_;
  size_t replication_;
  std::vector<std::vector<uint32_t>> preferences_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_PLACEMENT_H_
