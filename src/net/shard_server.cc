#include "net/shard_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/snapshot_store.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "util/bounded_queue.h"
#include "util/cancellation.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/mmap_file.h"

namespace snorkel {

namespace {

/// One immutable serving generation: the replica plus the mapped artifact it
/// was decoded from, swapped wholesale on rollout. In-flight requests pin a
/// generation through shared_ptr, so a hot-swap never invalidates the mmap
/// under a request that is still reading model state — the old mapping is
/// unmapped only when the last in-flight holder drains.
struct ServingState {
  LabelService service;
  std::shared_ptr<MappedFile> mapping;  // Null on non-file paths.
  uint64_t version = 0;
  uint64_t checksum = 0;

  ServingState(LabelService s, std::shared_ptr<MappedFile> m, uint64_t v,
               uint64_t c)
      : service(std::move(s)), mapping(std::move(m)), version(v), checksum(c) {}
};

/// Builds a serving generation from an artifact file: mmap, decode over the
/// mapped view, validate against the live LF set.
Result<std::shared_ptr<ServingState>> LoadServingState(
    const std::string& path, uint64_t store_version,
    const LabelingFunctionSet& lfs, const LabelService::Options& options) {
  // Injection site "store.load": an injected fault is a failed artifact
  // load — startup fails typed, a watcher swap is rejected and the old
  // generation keeps serving (the crash-consistency paths under test).
  if (fault::Point("store.load")) {
    return Status::Unavailable("injected fault at store.load");
  }
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto mapping = std::make_shared<MappedFile>(std::move(*file));
  auto snapshot = DeserializeSnapshot(mapping->view());
  if (!snapshot.ok()) return snapshot.status();
  snapshot->artifact_version = store_version;
  auto service = LabelService::Create(*snapshot, lfs, options);
  if (!service.ok()) return service.status();
  return std::make_shared<ServingState>(std::move(*service),
                                        std::move(mapping), store_version,
                                        snapshot->CanonicalChecksum());
}

/// A decoded label request cached per connectionless admission: the corpus
/// slice is interned process-wide (below) so repeat traffic keys the same
/// Corpus object and the replica's incremental column cache — which scopes
/// entries by corpus identity — hits across requests and connections.
struct Job {
  uint64_t request_id = 0;
  std::shared_ptr<const Corpus> corpus;
  std::vector<Candidate> candidates;
  std::vector<CandidateRef> refs;
  bool include_votes = false;
  bool apply_class_balance = true;
  /// Absolute deadline derived from the request's remaining budget at
  /// decode time; kNoDeadline when the request carried none.
  SocketDeadline deadline = kNoDeadline;
  /// Trace identity from the request's TRAC section (zero when untraced)
  /// and the admission timestamp the worker turns into a queue-wait span.
  obs::TraceContext trace;
  uint64_t admit_ns = 0;
  /// Cost-aware admission metadata: estimated cost (rows × LFs), lane
  /// (small batches ride the interactive lane — served first, shed last),
  /// and the admission instant the per-lane wait histograms measure from.
  uint64_t cost = 0;
  bool interactive = true;
  std::chrono::steady_clock::time_point admitted_at{};
  std::promise<Result<LabelResponse>> result;
};

}  // namespace

struct ShardServer::Impl {
  Options options;
  LabelingFunctionSet lfs;
  std::optional<SnapshotStore> store;

  ListenSocket listener;

  /// Current serving generation; swapped atomically under state_mu.
  mutable std::mutex state_mu;
  std::shared_ptr<ServingState> state;

  BoundedQueue<std::unique_ptr<Job>> queue;
  std::vector<std::thread> workers;
  std::thread accept_thread;
  std::thread watcher_thread;

  /// Connection handler threads (one per accepted connection; clients pool
  /// connections so the LIVE count stays bounded by pool size). A handler
  /// marks itself `done` when its connection closes and the accept loop
  /// joins marked entries, so a long-lived server churning through many
  /// short-lived connections does not accumulate dead thread handles.
  struct ConnHandle {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conn_mu;
  std::list<std::unique_ptr<ConnHandle>> conn_threads;

  std::atomic<bool> stopping{false};
  std::atomic<bool> shut_down{false};

  // ---- Counters. ----
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> candidates_served{0};
  std::atomic<uint64_t> queue_rejections{0};
  std::atomic<uint64_t> deadline_rejections{0};
  std::atomic<uint64_t> snapshot_swaps{0};
  std::atomic<uint64_t> rejected_swaps{0};
  std::atomic<uint64_t> expired_work_cancelled{0};
  std::atomic<uint64_t> shed_total{0};

  /// Per-lane queue-wait histograms (shared fabric latency buckets, so
  /// cross-process merges stay well defined). The registry has no label
  /// dimension — the lane is encoded in the metric name.
  std::shared_ptr<obs::Histogram> queue_wait_interactive;
  std::shared_ptr<obs::Histogram> queue_wait_bulk;

  /// Fault sites this server armed (inject flags + kFaultRequest commands);
  /// disarmed on Shutdown so one server's schedules never leak into the
  /// next server sharing the process (sequential tests).
  std::mutex fault_mu;
  std::vector<std::string> armed_sites;

  /// Process-wide corpus intern table: CORP payload bytes -> decoded Corpus.
  /// Keyed by content hash and verified by full payload comparison (a hash
  /// collision must never alias two different corpora — the column cache
  /// trusts corpus identity). Bounded; eviction drops the oldest entry, and
  /// in-flight requests keep evicted corpora alive via shared_ptr.
  struct CorpusEntry {
    std::string payload;
    std::shared_ptr<const Corpus> corpus;
  };
  static constexpr size_t kMaxCachedCorpora = 16;
  std::mutex corpus_mu;
  std::list<std::pair<uint64_t, CorpusEntry>> corpus_cache;

  /// Registered callback metrics (unregistered in the destructor — the
  /// registry runs callbacks under its lock, so unregistration is a
  /// lifetime barrier for the `this` they capture).
  std::vector<uint64_t> metric_tokens;

  explicit Impl(Options opts, LabelingFunctionSet lf_set)
      : options(opts),
        lfs(std::move(lf_set)),
        queue(BoundedQueueOptions{
            opts.queue_capacity == 0 ? 1 : opts.queue_capacity,
            opts.queue_cost_budget, opts.sojourn_target_ms}) {
    obs::RegisterCommonProcessMetrics();
    auto& registry = obs::MetricsRegistry::Default();
    auto atomic_counter = [this, &registry](const char* name,
                                            std::atomic<uint64_t>* value) {
      metric_tokens.push_back(
          registry.RegisterCallback(name, obs::MetricType::kCounter, [value] {
            return static_cast<double>(
                value->load(std::memory_order_relaxed));
          }));
    };
    atomic_counter("snorkel_server_requests_total", &requests_served);
    atomic_counter("snorkel_server_candidates_total", &candidates_served);
    atomic_counter("snorkel_server_queue_rejections_total",
                   &queue_rejections);
    atomic_counter("snorkel_server_deadline_rejections_total",
                   &deadline_rejections);
    atomic_counter("snorkel_server_snapshot_swaps_total", &snapshot_swaps);
    atomic_counter("snorkel_server_rejected_swaps_total", &rejected_swaps);
    atomic_counter("snorkel_server_shed_total", &shed_total);
    atomic_counter("snorkel_server_expired_work_cancelled_total",
                   &expired_work_cancelled);
    queue_wait_interactive = registry.CreateHistogram(
        "snorkel_server_queue_wait_ms_interactive", obs::LatencyBucketsMs());
    queue_wait_bulk = registry.CreateHistogram(
        "snorkel_server_queue_wait_ms_bulk", obs::LatencyBucketsMs());
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_server_queue_cost_used", obs::MetricType::kGauge,
        [this] { return static_cast<double>(queue.cost_used()); }));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_server_snapshot_version", obs::MetricType::kGauge, [this] {
          // `state` is installed after construction; a scrape racing
          // startup reads 0 rather than dereferencing null.
          auto generation = CurrentState();
          return generation == nullptr
                     ? 0.0
                     : static_cast<double>(generation->version);
        }));
  }

  ~Impl() {
    auto& registry = obs::MetricsRegistry::Default();
    for (uint64_t token : metric_tokens) registry.UnregisterCallback(token);
  }

  std::shared_ptr<ServingState> CurrentState() const {
    std::lock_guard<std::mutex> lock(state_mu);
    return state;
  }

  Result<std::shared_ptr<const Corpus>> InternCorpus(
      const std::string& payload, Corpus&& decoded_fallback,
      bool* decoded_used) {
    uint64_t key = Fnv1a64(payload);
    std::lock_guard<std::mutex> lock(corpus_mu);
    for (auto it = corpus_cache.begin(); it != corpus_cache.end(); ++it) {
      if (it->first == key && it->second.payload == payload) {
        // Refresh LRU position.
        corpus_cache.splice(corpus_cache.end(), corpus_cache, it);
        *decoded_used = false;
        return corpus_cache.back().second.corpus;
      }
    }
    auto corpus = std::make_shared<const Corpus>(std::move(decoded_fallback));
    corpus_cache.push_back({key, CorpusEntry{payload, corpus}});
    if (corpus_cache.size() > kMaxCachedCorpora) corpus_cache.pop_front();
    *decoded_used = true;
    return corpus;
  }

  // ---- Label path. ----

  /// Fails every shed job typed — kResourceExhausted with a message naming
  /// the shed reason — and counts it. Shed jobs were admitted, so their
  /// connection handlers are blocked on the promise; nothing is dropped
  /// silently.
  void FailShed(std::vector<std::unique_ptr<Job>>& shed) {
    for (std::unique_ptr<Job>& job : shed) {
      shed_total.fetch_add(1, std::memory_order_relaxed);
      job->result.set_value(Status::ResourceExhausted(
          "shard shed queued work under overload"));
    }
    shed.clear();
  }

  void Worker() {
    std::vector<std::unique_ptr<Job>> shed;
    for (;;) {
      auto job_opt = queue.Pop(&shed);
      // CoDel-shed bulk jobs (sojourn past 2× target) fail typed before the
      // popped job is served — stale queued work must not starve fresh work.
      FailShed(shed);
      if (!job_opt.has_value()) break;
      std::unique_ptr<Job> job = std::move(*job_opt);
      const auto popped_at = std::chrono::steady_clock::now();
      const double wait_ms =
          std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
              popped_at - job->admitted_at)
              .count();
      (job->interactive ? queue_wait_interactive : queue_wait_bulk)
          ->Observe(wait_ms);
      if (job->deadline != kNoDeadline && popped_at > job->deadline) {
        deadline_rejections.fetch_add(1, std::memory_order_relaxed);
        job->result.set_value(Status::DeadlineExceeded(
            "request budget spent before a worker picked it up"));
        continue;
      }
      // Injection site "server.label": delay schedules sleep here and the
      // request proceeds bit-identically (the inject_delay_* flags arm
      // this); fail schedules reject the job with the typed error a dying
      // replica would produce.
      if (fault::Point("server.label")) {
        job->result.set_value(
            Status::Unavailable("injected fault at server.label"));
        continue;
      }
      // Queue wait is only measurable AFTER the pop — emit it
      // retroactively from the admission timestamp.
      if (job->admit_ns != 0) {
        obs::EmitSpan(job->trace, "server.queue_wait", job->admit_ns,
                      obs::NowNanos());
      }
      // Pin the current generation for the whole request: a concurrent
      // hot-swap retires the old state only after this shared_ptr drops.
      std::shared_ptr<ServingState> generation = CurrentState();
      // Cooperative cancellation: the replica checks this token at chunk
      // boundaries (between LF columns, every 64 rows) and stops computing
      // when the deadline passes mid-flight — expired work must not keep
      // burning CPU that admitted work needs. kNoDeadline is already the
      // token's never-expires sentinel (both are time_point::max()).
      CancelToken cancel(job->deadline);
      LabelRequest request;
      request.corpus = job->corpus.get();
      request.candidate_refs = &job->refs;
      request.include_votes = job->include_votes;
      request.apply_class_balance = job->apply_class_balance;
      request.cancel = &cancel;
      Result<LabelResponse> response(Status::Internal("unset"));
      const auto service_start = std::chrono::steady_clock::now();
      {
        // The request's identity rides onto this worker thread so the
        // replica's own spans (LF apply, inference) nest under server.label.
        obs::ScopedTraceContext trace_scope(job->trace);
        obs::TraceSpan label_span("server.label");
        label_span.Annotate("rows=" + std::to_string(job->refs.size()));
        response = generation->service.Label(request);
      }
      if (response.ok()) {
        requests_served.fetch_add(1, std::memory_order_relaxed);
        candidates_served.fetch_add(job->refs.size(),
                                    std::memory_order_relaxed);
        // Calibrate the queue's cost model on COMPLETED work only —
        // cancelled work finished early and would bias the EWMA low.
        const uint64_t elapsed_us =
            static_cast<uint64_t>(std::chrono::duration_cast<
                                      std::chrono::microseconds>(
                                      std::chrono::steady_clock::now() -
                                      service_start)
                                      .count());
        queue.OnServiced(job->cost, elapsed_us);
      } else if (response.status().code() == StatusCode::kDeadlineExceeded) {
        expired_work_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
      job->result.set_value(std::move(response));
    }
    // Close() leaves admitted items drainable; a final Pop already returned
    // nullopt, but CoDel may have shed on the way out — already failed above.
  }

  // ---- Connection handling. ----

  Frame HandleStatsRequest(uint64_t request_id) {
    std::shared_ptr<ServingState> generation = CurrentState();
    WireServerStats stats;
    stats.snapshot_version = generation->version;
    stats.snapshot_checksum = generation->checksum;
    stats.requests_served = requests_served.load(std::memory_order_relaxed);
    stats.candidates_served =
        candidates_served.load(std::memory_order_relaxed);
    stats.queue_rejections = queue_rejections.load(std::memory_order_relaxed);
    stats.snapshot_swaps = snapshot_swaps.load(std::memory_order_relaxed);
    stats.deadline_rejections =
        deadline_rejections.load(std::memory_order_relaxed);
    stats.rejected_swaps = rejected_swaps.load(std::memory_order_relaxed);
    stats.cardinality = generation->service.cardinality();
    stats.faults_injected = fault::InjectedCount();
    stats.expired_work_cancelled =
        expired_work_cancelled.load(std::memory_order_relaxed);
    stats.shed_total = shed_total.load(std::memory_order_relaxed);
    return EncodeStatsResponse(request_id, stats);
  }

  Frame HandleFaultRequest(const Frame& frame) {
    auto command = DecodeFaultRequest(frame);
    if (!command.ok()) {
      return EncodeErrorFrame(frame.request_id, command.status());
    }
    if (command->disarm_all) fault::DisarmAll();
    for (const auto& [site, schedule] : command->arm) {
      Status armed = fault::Arm(site, schedule);
      if (!armed.ok()) return EncodeErrorFrame(frame.request_id, armed);
      RememberArmedSite(site);
    }
    return EncodeFaultResponse(frame.request_id);
  }

  Frame HandleTraceRequest(const Frame& frame) {
    auto request = DecodeTraceRequest(frame);
    if (!request.ok()) {
      return EncodeErrorFrame(frame.request_id, request.status());
    }
    obs::SpanBatch batch;
    batch.process = obs::ProcessLabel();
    batch.spans = obs::CollectSpans(request->trace_id, request->drain);
    return EncodeTraceResponse(frame.request_id, batch);
  }

  void RememberArmedSite(const std::string& site) {
    std::lock_guard<std::mutex> lock(fault_mu);
    for (const std::string& existing : armed_sites) {
      if (existing == site) return;
    }
    armed_sites.push_back(site);
  }

  Frame HandleLabelRequest(const Frame& frame) {
    // The trace id travels INSIDE the frame being decoded, so the decode
    // span is recorded retroactively once the TRAC section is out.
    const uint64_t decode_start_ns = obs::NowNanos();
    auto wire = DecodeLabelRequest(frame);
    if (!wire.ok()) return EncodeErrorFrame(frame.request_id, wire.status());
    obs::EmitSpan(wire->trace, "server.decode", decode_start_ns,
                  obs::NowNanos(),
                  "rows=" + std::to_string(wire->candidates.size()));

    auto job = std::make_unique<Job>();
    job->request_id = frame.request_id;
    job->include_votes = wire->include_votes;
    job->apply_class_balance = wire->apply_class_balance;
    job->trace = wire->trace;
    if (wire->deadline_ms > 0) {
      job->deadline = DeadlineAfterMs(wire->deadline_ms);
    }

    const FrameSection* corpus_section = frame.Find(kSectionCorpus);
    bool decoded_used = false;
    const uint64_t intern_start_ns = obs::NowNanos();
    auto corpus = InternCorpus(corpus_section->payload,
                               std::move(wire->corpus), &decoded_used);
    if (!corpus.ok()) {
      return EncodeErrorFrame(frame.request_id, corpus.status());
    }
    obs::EmitSpan(job->trace, "server.intern", intern_start_ns,
                  obs::NowNanos(), decoded_used ? "cache=miss" : "cache=hit");
    job->corpus = *corpus;
    job->candidates = std::move(wire->candidates);
    job->refs.reserve(job->candidates.size());
    for (size_t i = 0; i < job->candidates.size(); ++i) {
      job->refs.push_back(CandidateRef{&job->candidates[i],
                                       static_cast<size_t>(wire->indices[i])});
    }

    // Cost-aware admission: price the job (rows × LFs — proportional to the
    // LF-application work it will consume) and lane it by size. Small
    // batches ride the interactive lane: served first, shed last.
    job->cost = static_cast<uint64_t>(job->refs.size()) *
                static_cast<uint64_t>(std::max<size_t>(1, lfs.size()));
    job->interactive = job->refs.size() <= options.interactive_rows;

    // A request whose budget is already spent must not consume a queue slot
    // another request could use — reject before admission, typed.
    if (job->deadline != kNoDeadline &&
        std::chrono::steady_clock::now() > job->deadline) {
      deadline_rejections.fetch_add(1, std::memory_order_relaxed);
      return EncodeErrorFrame(
          frame.request_id,
          Status::DeadlineExceeded("request budget spent before admission"));
    }

    std::future<Result<LabelResponse>> result = job->result.get_future();
    const obs::TraceContext trace = job->trace;
    job->admit_ns = trace.valid() ? obs::NowNanos() : 0;
    job->admitted_at = std::chrono::steady_clock::now();
    using Queue = BoundedQueue<std::unique_ptr<Job>>;
    const uint64_t cost = job->cost;
    const Queue::Lane lane =
        job->interactive ? Queue::Lane::kInteractive : Queue::Lane::kBulk;
    // An interactive arrival may displace queued bulk work; displaced jobs
    // come back here and are failed typed below (their handlers hold the
    // matching futures).
    std::vector<std::unique_ptr<Job>> displaced;
    const Queue::PushResult pushed =
        queue.TryPush(std::move(job), cost, lane, &displaced);
    FailShed(displaced);
    switch (pushed) {
      case Queue::PushResult::kOk:
        break;
      case Queue::PushResult::kQueueFull:
        queue_rejections.fetch_add(1, std::memory_order_relaxed);
        // The retry hint prices the queued backlog at the EWMA-calibrated
        // service time, divided by worker parallelism — "come back when
        // the backlog you bounced off has drained".
        return EncodeErrorFrame(
            frame.request_id,
            Status::ResourceExhausted("shard admission queue is full"),
            queue.EstimateRetryAfterMs(std::max<size_t>(1,
                                                        options.num_workers)));
      case Queue::PushResult::kClosed:
        return EncodeErrorFrame(
            frame.request_id,
            Status::Unavailable("shard is shutting down"));
    }
    Result<LabelResponse> response = result.get();
    if (!response.ok()) {
      // Every kResourceExhausted outcome (queue-full above, displacement,
      // CoDel shed) carries a backoff hint in the error frame — clients feed
      // it to their adaptive limiter.
      if (response.status().code() == StatusCode::kResourceExhausted) {
        return EncodeErrorFrame(
            frame.request_id, response.status(),
            queue.EstimateRetryAfterMs(std::max<size_t>(1,
                                                        options.num_workers)));
      }
      return EncodeErrorFrame(frame.request_id, response.status());
    }
    const uint64_t encode_start_ns = obs::NowNanos();
    Frame reply = EncodeLabelResponse(frame.request_id, *response);
    obs::EmitSpan(trace, "server.encode", encode_start_ns, obs::NowNanos());
    return reply;
  }

  void HandleConnection(Socket socket) {
    FrameReader reader;
    while (!stopping.load(std::memory_order_acquire)) {
      // Bounded receive wait so this thread notices shutdown. The reader is
      // resumable: a timeout — between frames OR with a frame partially
      // received (large frame, slow link) — keeps its progress, so the next
      // wait continues the same frame instead of reading mid-stream.
      auto frame = reader.Recv(socket, DeadlineAfterMs(100), /*eof_ok=*/true);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded) continue;
        if (frame.status().code() == StatusCode::kNotFound) return;  // EOF.
        // Framing/protocol error: answer typed if the stream still works,
        // then drop the connection (framing state is unrecoverable).
        (void)SendFrame(socket, EncodeErrorFrame(0, frame.status()),
                        DeadlineAfterMs(1000));
        return;
      }
      Frame reply;
      switch (frame->type) {
        case FrameType::kPing:
          reply.type = FrameType::kPong;
          reply.request_id = frame->request_id;
          break;
        case FrameType::kStatsRequest:
          reply = HandleStatsRequest(frame->request_id);
          break;
        case FrameType::kLabelRequest:
          reply = HandleLabelRequest(*frame);
          break;
        case FrameType::kFaultRequest:
          reply = HandleFaultRequest(*frame);
          break;
        case FrameType::kMetricsRequest:
          reply = EncodeMetricsResponse(
              frame->request_id,
              obs::MetricsRegistry::Default().PrometheusText());
          break;
        case FrameType::kTraceRequest:
          reply = HandleTraceRequest(*frame);
          break;
        default:
          reply = EncodeErrorFrame(
              frame->request_id,
              Status::InvalidArgument("unsupported frame type " +
                                      std::to_string(static_cast<uint32_t>(
                                          frame->type))));
          break;
      }
      // Bounded reply send: a peer that stops reading must not pin this
      // thread (and Shutdown's join) forever.
      if (!SendFrame(socket, reply,
                     DeadlineAfterMs(options.send_deadline_ms))
               .ok()) {
        return;
      }
    }
  }

  /// Joins and erases every handler whose connection has closed. Joining a
  /// `done` handler blocks at most for its final few instructions.
  void ReapFinishedConnections() {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (auto it = conn_threads.begin(); it != conn_threads.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = conn_threads.erase(it);
      } else {
        ++it;
      }
    }
  }

  void AcceptLoop() {
    while (!stopping.load(std::memory_order_acquire)) {
      auto socket = listener.Accept(/*timeout_ms=*/100);
      ReapFinishedConnections();
      if (!socket.ok()) continue;  // Timeout (stop check) or transient.
      auto handle = std::make_unique<ConnHandle>();
      ConnHandle* raw = handle.get();
      std::lock_guard<std::mutex> lock(conn_mu);
      if (stopping.load(std::memory_order_acquire)) return;
      handle->thread = std::thread(
          [this, raw,
           s = std::make_shared<Socket>(std::move(*socket))]() mutable {
            HandleConnection(std::move(*s));
            raw->done.store(true, std::memory_order_release);
          });
      conn_threads.push_back(std::move(handle));
    }
  }

  // ---- Snapshot watcher (store mode). ----

  void WatchLoop() {
    uint64_t last_rejected = 0;
    while (!stopping.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.watch_interval_ms));
      if (stopping.load(std::memory_order_acquire)) return;
      auto current = store->CurrentVersion();
      if (!current.ok()) continue;
      uint64_t serving = CurrentState()->version;
      if (*current <= serving || *current == last_rejected) continue;
      auto next = LoadServingState(store->PathFor(*current), *current, lfs,
                                   options.service);
      if (!next.ok()) {
        // A bad artifact must not take the shard down: reject the swap,
        // keep serving the old generation, and don't retry this version.
        rejected_swaps.fetch_add(1, std::memory_order_relaxed);
        last_rejected = *current;
        continue;
      }
      {
        // Drop the old generation outside state_mu: its teardown chain
        // unregisters metric callbacks under the registry lock, which a
        // concurrent scrape holds while the version gauge below calls
        // CurrentState() — releasing under state_mu would ABBA-deadlock.
        std::shared_ptr<ServingState> old;
        {
          std::lock_guard<std::mutex> lock(state_mu);
          old = std::exchange(state, std::move(*next));
        }
      }
      snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Start() {
    // Default process label for stitched traces; a CLI that hosts several
    // servers (or wants its own name) calls SetProcessLabel itself after.
    obs::SetProcessLabel("shard-" + std::to_string(listener.port()));
    if (options.inject_delay_every_n > 0) {
      fault::Schedule delay;
      delay.kind = fault::Schedule::Kind::kDelayNth;
      delay.n = options.inject_delay_every_n;
      delay.delay_ms = options.inject_delay_ms;
      (void)fault::Arm("server.label", delay);  // Validated above n >= 1.
      RememberArmedSite("server.label");
    }
    for (size_t i = 0; i < std::max<size_t>(1, options.num_workers); ++i) {
      workers.emplace_back([this] { Worker(); });
    }
    accept_thread = std::thread([this] { AcceptLoop(); });
    if (store.has_value()) {
      watcher_thread = std::thread([this] { WatchLoop(); });
    }
  }

  void Shutdown() {
    if (shut_down.exchange(true)) return;
    stopping.store(true, std::memory_order_release);
    if (accept_thread.joinable()) accept_thread.join();
    if (watcher_thread.joinable()) watcher_thread.join();
    listener.Close();
    // Connection handlers notice `stopping` within one receive wait; any
    // label job they already admitted drains below before workers exit.
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      for (auto& handle : conn_threads) handle->thread.join();
      conn_threads.clear();
    }
    queue.Close();
    for (std::thread& worker : workers) worker.join();
    workers.clear();
    // The fault registry is process-wide; schedules this server armed must
    // not outlive it (sequential in-process tests share the registry).
    {
      std::lock_guard<std::mutex> lock(fault_mu);
      for (const std::string& site : armed_sites) fault::Disarm(site);
      armed_sites.clear();
    }
  }
};

ShardServer::ShardServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
ShardServer::ShardServer(ShardServer&&) noexcept = default;
ShardServer& ShardServer::operator=(ShardServer&&) noexcept = default;

ShardServer::~ShardServer() {
  if (impl_ != nullptr) impl_->Shutdown();
}

Result<ShardServer> ShardServer::Serve(const std::string& snapshot_path,
                                       const LabelingFunctionSet& lfs,
                                       Options options) {
  auto state = LoadServingState(snapshot_path, /*store_version=*/0, lfs,
                                options.service);
  if (!state.ok()) return state.status();
  auto impl = std::make_unique<Impl>(options, lfs);
  impl->state = std::move(*state);
  auto listener = ListenSocket::Listen(options.port);
  if (!listener.ok()) return listener.status();
  impl->listener = std::move(*listener);
  impl->Start();
  return ShardServer(std::move(impl));
}

Result<ShardServer> ShardServer::ServeFromStore(const std::string& store_dir,
                                                const LabelingFunctionSet& lfs,
                                                Options options) {
  auto store = SnapshotStore::Open(store_dir);
  if (!store.ok()) return store.status();
  auto version = store->CurrentVersion();
  if (!version.ok()) return version.status();
  auto state = LoadServingState(store->PathFor(*version), *version, lfs,
                                options.service);
  if (!state.ok()) return state.status();
  auto impl = std::make_unique<Impl>(options, lfs);
  impl->store = std::move(*store);
  impl->state = std::move(*state);
  auto listener = ListenSocket::Listen(options.port);
  if (!listener.ok()) return listener.status();
  impl->listener = std::move(*listener);
  impl->Start();
  return ShardServer(std::move(impl));
}

uint16_t ShardServer::port() const { return impl_->listener.port(); }

ShardServer::Stats ShardServer::stats() const {
  Stats stats;
  auto state = impl_->CurrentState();
  stats.requests_served =
      impl_->requests_served.load(std::memory_order_relaxed);
  stats.candidates_served =
      impl_->candidates_served.load(std::memory_order_relaxed);
  stats.queue_rejections =
      impl_->queue_rejections.load(std::memory_order_relaxed);
  stats.deadline_rejections =
      impl_->deadline_rejections.load(std::memory_order_relaxed);
  stats.snapshot_swaps = impl_->snapshot_swaps.load(std::memory_order_relaxed);
  stats.rejected_swaps = impl_->rejected_swaps.load(std::memory_order_relaxed);
  stats.snapshot_version = state->version;
  stats.snapshot_checksum = state->checksum;
  stats.cardinality = state->service.cardinality();
  stats.faults_injected = fault::InjectedCount();
  stats.expired_work_cancelled =
      impl_->expired_work_cancelled.load(std::memory_order_relaxed);
  stats.shed_total = impl_->shed_total.load(std::memory_order_relaxed);
  return stats;
}

void ShardServer::Shutdown() { impl_->Shutdown(); }

}  // namespace snorkel
