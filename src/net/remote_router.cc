#include "net/remote_router.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "lf/applier.h"
#include "net/placement.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/partitioner.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/timer.h"

namespace snorkel {

namespace {

/// Milliseconds left until `deadline`; 0 when no deadline is set OR the
/// deadline is already spent (callers distinguish via kNoDeadline).
uint64_t RemainingMs(SocketDeadline deadline) {
  if (deadline == kNoDeadline) return 0;
  auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count());
}

/// May the NEXT replica be tried after this typed failure?
///  - kUnavailable: unreachable / broke mid-exchange / breaker fail-fast.
///    Labeling is read-only and idempotent, so even a mid-exchange break
///    (work possibly dispatched) is safe to retry elsewhere.
///  - kResourceExhausted: backpressure on that replica; another replica
///    has its own queue.
///  - kDeadlineExceeded: only when the overall budget still has time —
///    retrying a spent deadline is dead work.
/// Anything else (kInvalidArgument, a server-side model error, ...) is
/// deterministic: every replica serves the same snapshot and would fail
/// identically, so failover would only mask the real error.
bool RetrySafe(StatusCode code, SocketDeadline overall_deadline) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kDeadlineExceeded:
      return overall_deadline == kNoDeadline ||
             std::chrono::steady_clock::now() < overall_deadline;
    default:
      return false;
  }
}

}  // namespace

struct RemoteShardRouter::Impl {
  Options options;
  CandidatePartitioner partitioner;
  ShardPlacement placement;
  RetryBudget budget;
  std::vector<RemoteShardClient> clients;

  mutable std::mutex stats_mu;
  uint64_t num_requests = 0;
  uint64_t num_candidates = 0;
  uint64_t failed_requests = 0;
  uint64_t degraded_requests = 0;
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> breaker_open_rejections{0};

  /// End-to-end Label() latency; lock-free Observe on the request path.
  std::shared_ptr<obs::Histogram> latency_hist;
  std::vector<uint64_t> metric_tokens;

  Impl(Options opts, size_t num_shards)
      : options(std::move(opts)),
        partitioner(num_shards),
        placement(num_shards, options.replication),
        budget(options.retry_budget) {
    obs::RegisterCommonProcessMetrics();
    auto& registry = obs::MetricsRegistry::Default();
    latency_hist = registry.CreateHistogram("snorkel_remote_router_latency_ms",
                                            obs::LatencyBucketsMs());
    // Counters that live under stats_mu export through callbacks; the
    // registry runs them at Collect() time, where taking the mutex is fine.
    auto locked_counter = [this](uint64_t Impl::*member) {
      return [this, member]() {
        std::lock_guard<std::mutex> lock(stats_mu);
        return static_cast<double>(this->*member);
      };
    };
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_requests_total", obs::MetricType::kCounter,
        locked_counter(&Impl::num_requests)));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_candidates_total", obs::MetricType::kCounter,
        locked_counter(&Impl::num_candidates)));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_failed_requests_total",
        obs::MetricType::kCounter, locked_counter(&Impl::failed_requests)));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_degraded_requests_total",
        obs::MetricType::kCounter, locked_counter(&Impl::degraded_requests)));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_failovers_total", obs::MetricType::kCounter,
        [this] {
          return static_cast<double>(
              failovers.load(std::memory_order_relaxed));
        }));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_breaker_open_rejections_total",
        obs::MetricType::kCounter, [this] {
          return static_cast<double>(
              breaker_open_rejections.load(std::memory_order_relaxed));
        }));
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_remote_router_retry_budget_exhausted_total",
        obs::MetricType::kCounter,
        [this] { return static_cast<double>(budget.exhausted()); }));
  }

  ~Impl() {
    // UnregisterCallback is a barrier: after it returns no callback can be
    // mid-run, so the `this` they capture is safe to destroy.
    auto& registry = obs::MetricsRegistry::Default();
    for (uint64_t token : metric_tokens) registry.UnregisterCallback(token);
  }
};

RemoteShardRouter::RemoteShardRouter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

RemoteShardRouter::~RemoteShardRouter() = default;

size_t RemoteShardRouter::num_shards() const { return impl_->clients.size(); }

RemoteShardClient& RemoteShardRouter::shard(size_t i) {
  return impl_->clients[i];
}

Result<RemoteShardRouter> RemoteShardRouter::Create(
    const std::vector<std::pair<std::string, uint16_t>>& endpoints,
    Options options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "RemoteShardRouter needs at least one endpoint");
  }
  auto impl = std::make_unique<Impl>(options, endpoints.size());
  impl->clients.reserve(endpoints.size());
  for (const auto& [host, port] : endpoints) {
    RemoteShardClient::Options client_options = options.client;
    client_options.host = host;
    client_options.port = port;
    impl->clients.push_back(
        RemoteShardClient::Create(std::move(client_options)));
  }
  return RemoteShardRouter(std::move(impl));
}

Result<LabelResponse> RemoteShardRouter::Label(const LabelRequest& request) {
  Impl& impl = *impl_;
  if (request.corpus == nullptr) {
    return Status::InvalidArgument("request missing corpus");
  }
  const bool by_refs = request.candidate_refs != nullptr;
  if (by_refs == (request.candidates != nullptr)) {
    return Status::InvalidArgument(
        "request must set exactly one of candidates / candidate_refs");
  }
  WallTimer timer;

  // Mint this request's trace identity (tracing on only): the root span
  // every downstream stage — placement, attempts, client I/O, and the
  // server-side spans shipped back over TRAC — hangs under.
  obs::TraceContext minted;
  if (obs::TracingEnabled()) minted.trace_id = obs::MintId();
  obs::ScopedTraceContext trace_scope(minted);
  // unique_ptr, not a plain local: the slow-request log at the bottom needs
  // the root CLOSED (recorded into the ring) before it collects the tree.
  auto root_span = std::make_unique<obs::TraceSpan>("router.request");

  // Identical placement to the in-process tier: stable content hash, so a
  // mixed fleet of local routers and remote routers agrees on which shard
  // owns every candidate.
  std::vector<CandidateRef> identity;
  if (!by_refs) identity = MakeCandidateRefs(*request.candidates);
  const std::vector<CandidateRef>& base =
      by_refs ? *request.candidate_refs : identity;
  ShardedRefBatch parts;
  {
    obs::TraceSpan placement_span("router.placement");
    parts = impl.partitioner.PartitionRefs(base);
    placement_span.Annotate("rows=" + std::to_string(parts.total));
  }

  // Budget refill: one deposit per router request, however many shards it
  // fans out to (amplification is bounded relative to offered load).
  impl.budget.OnRequest();

  // ---- Fan out: one failover chain per non-empty shard, concurrently.
  // Each slot is written by exactly one thread, then joined before any
  // read. ----
  struct Pending {
    size_t shard = 0;
    const std::vector<size_t>* to_request = nullptr;
    Result<LabelResponse> result{Status::Internal("pending")};
    /// Replica attempt chain, in order (size 1 = primary answered).
    std::vector<ShardAttempt> attempts;
  };
  std::vector<Pending> pending;
  pending.reserve(impl.clients.size());
  for (size_t s = 0; s < impl.clients.size(); ++s) {
    if (parts.shard_rows[s].empty()) continue;
    Pending p;
    p.shard = s;
    p.to_request = &parts.shard_to_request[s];
    pending.push_back(std::move(p));
  }
  {
    // Fan-out threads inherit the request's identity with the root span as
    // parent, so each attempt chain nests under router.request.
    const obs::TraceContext fan_ctx = obs::CurrentTraceContext();
    std::vector<std::thread> rpcs;
    rpcs.reserve(pending.size());
    for (Pending& p : pending) {
      rpcs.emplace_back([&impl, &request, &parts, &p, fan_ctx] {
        obs::ScopedTraceContext rpc_scope(fan_ctx);
        const std::vector<uint32_t>& prefs =
            impl.placement.Preferences(p.shard);
        const SocketDeadline overall =
            impl.options.request_timeout_ms > 0
                ? DeadlineAfterMs(impl.options.request_timeout_ms)
                : kNoDeadline;
        // Did the previous attempt actually dispatch work? A breaker
        // fail-fast did not — failing over from it is free (no budget, no
        // backoff), so a steady outage of <= R-1 replicas costs nothing
        // once the breakers open.
        bool prev_dispatched = false;
        uint64_t prev_retry_after_ms = 0;
        for (size_t attempt = 0; attempt < prefs.size(); ++attempt) {
          if (attempt > 0 && prev_dispatched) {
            if (!impl.budget.TryConsume()) {
              const Status& last = p.result.status();
              p.result = Status(last.code(),
                                last.message() + " [retry budget exhausted]");
              break;
            }
            uint64_t delay = BackoffDelayMs(impl.options.backoff, p.shard,
                                            static_cast<uint32_t>(attempt));
            // An overloaded replica's retry_after hint floors the backoff:
            // under fleet-wide overload the next replica is unlikely to be
            // better off, and honoring the hint is what keeps a retrying
            // router from amplifying the surge it was just shed from.
            delay = std::max(delay, prev_retry_after_ms);
            uint64_t left = RemainingMs(overall);
            if (overall != kNoDeadline) delay = std::min(delay, left);
            if (delay > 0) {
              obs::TraceSpan backoff_span("router.backoff");
              backoff_span.Annotate("shard=" + std::to_string(p.shard) +
                                    " delay_ms=" + std::to_string(delay));
              std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            }
          }
          uint64_t attempt_budget_ms = impl.options.request_timeout_ms;
          if (overall != kNoDeadline) {
            attempt_budget_ms = RemainingMs(overall);
            if (attempt_budget_ms == 0) {
              p.result = Status::DeadlineExceeded(
                  "request budget spent before replica " +
                  std::to_string(prefs[attempt]) + " could be tried");
              break;
            }
          }
          const size_t endpoint = prefs[attempt];
          bool failed_fast = false;
          uint64_t retry_after_ms = 0;
          {
            obs::TraceSpan attempt_span("router.attempt");
            p.result = impl.clients[endpoint].Label(
                *request.corpus, parts.shard_rows[p.shard],
                request.include_votes, request.apply_class_balance,
                attempt_budget_ms, &failed_fast, &retry_after_ms);
            attempt_span.Annotate(
                "shard=" + std::to_string(p.shard) +
                " endpoint=" + std::to_string(endpoint) + " status=" +
                (p.result.ok()
                     ? std::string("ok")
                     : std::to_string(
                           static_cast<int>(p.result.status().code()))));
          }
          p.attempts.push_back(ShardAttempt{
              endpoint,
              p.result.ok() ? StatusCode::kOk : p.result.status().code(),
              p.result.ok() ? std::string() : p.result.status().message()});
          if (p.result.ok()) {
            if (attempt > 0) {
              impl.failovers.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          if (failed_fast) {
            impl.breaker_open_rejections.fetch_add(1,
                                                   std::memory_order_relaxed);
          }
          prev_dispatched = !failed_fast;
          prev_retry_after_ms = retry_after_ms;
          if (!RetrySafe(p.result.status().code(), overall)) break;
        }
        obs::FlushThreadSpans();
      });
    }
    for (std::thread& rpc : rpcs) rpc.join();
  }

  // ---- Collect: default policy fails the whole request on any failed
  // sub-batch, typed, naming the shard; allow_partial degrades instead. ----
  std::vector<ShardOutcome> failed_outcomes;
  std::vector<const Pending*> served;
  served.reserve(pending.size());
  for (const Pending& p : pending) {
    if (p.result.ok()) {
      served.push_back(&p);
      continue;
    }
    const Status& cause = p.result.status();
    if (!request.allow_partial) {
      std::lock_guard<std::mutex> lock(impl.stats_mu);
      ++impl.failed_requests;
      return Status(cause.code(),
                    "shard " + std::to_string(p.shard) + "/" +
                        std::to_string(impl.clients.size()) +
                        " failed: " + cause.message());
    }
    ShardOutcome outcome{p.shard, p.to_request->size(), cause.code(),
                         cause.message(), {}};
    outcome.attempts = p.attempts;
    failed_outcomes.push_back(std::move(outcome));
  }
  if (request.allow_partial && served.empty() && !failed_outcomes.empty()) {
    // Zero coverage is a failure wearing a success type — fail typed.
    const ShardOutcome& first = failed_outcomes.front();
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    ++impl.failed_requests;
    return Status(first.code, "shard " + std::to_string(first.shard) + "/" +
                                  std::to_string(impl.clients.size()) +
                                  " failed (no shard survived): " +
                                  first.message);
  }

  // ---- Merge into request order (same scatter as ShardRouter: every value
  // copied verbatim from its shard's response, so the merged batch is
  // bitwise what one unsharded service would produce). ----
  const int cardinality = served.empty() ? 2 : (*served.front()).result->cardinality;
  const size_t k = static_cast<size_t>(cardinality);
  LabelResponse response;
  response.cardinality = cardinality;
  if (cardinality == 2) {
    response.posteriors.resize(parts.total);
  } else {
    response.class_posteriors.resize(parts.total * k);
  }
  response.hard_labels.resize(parts.total);
  const bool degraded = !failed_outcomes.empty();
  // Attempt chains surface even on COMPLETE responses: a caller can see
  // that replication saved a sub-batch (and which replicas failed) without
  // opting into partial results.
  bool any_failover = false;
  for (const Pending& p : pending) {
    if (p.attempts.size() > 1) any_failover = true;
  }
  if (degraded) {
    response.is_partial = true;
    response.covered.assign((parts.total + 63) / 64, 0);
    response.shard_outcomes = std::move(failed_outcomes);
  }
  size_t num_lfs = 0;
  std::vector<std::tuple<size_t, size_t, snorkel::Label>> vote_triplets;
  for (const Pending* p : served) {
    const LabelResponse& shard_response = *p->result;
    const std::vector<size_t>& to_request = *p->to_request;
    if (degraded || any_failover) {
      ShardOutcome outcome{p->shard, to_request.size(), StatusCode::kOk, "",
                           {}};
      outcome.attempts = p->attempts;
      response.shard_outcomes.push_back(std::move(outcome));
    }
    if (degraded) {
      for (size_t t = 0; t < to_request.size(); ++t) {
        response.covered[to_request[t] / 64] |= uint64_t{1}
                                                << (to_request[t] % 64);
      }
    }
    for (size_t t = 0; t < to_request.size(); ++t) {
      response.hard_labels[to_request[t]] = shard_response.hard_labels[t];
      if (cardinality == 2) {
        response.posteriors[to_request[t]] = shard_response.posteriors[t];
      } else {
        std::copy(shard_response.class_posteriors.begin() + t * k,
                  shard_response.class_posteriors.begin() + (t + 1) * k,
                  response.class_posteriors.begin() + to_request[t] * k);
      }
    }
    if (request.include_votes) {
      num_lfs = std::max(num_lfs, shard_response.votes.num_lfs());
      for (size_t t = 0; t < to_request.size(); ++t) {
        for (const auto& entry : shard_response.votes.row(t)) {
          vote_triplets.emplace_back(to_request[t], entry.lf, entry.label);
        }
      }
    }
  }
  if (request.include_votes) {
    auto votes = LabelMatrix::FromTriplets(parts.total, num_lfs,
                                           vote_triplets, cardinality);
    if (!votes.ok()) {
      return Status::Internal("vote reassembly failed: " +
                              votes.status().message());
    }
    response.votes = std::move(*votes);
  }
  if (degraded || any_failover) {
    std::sort(response.shard_outcomes.begin(), response.shard_outcomes.end(),
              [](const ShardOutcome& a, const ShardOutcome& b) {
                return a.shard < b.shard;
              });
  }
  response.latency_ms = timer.ElapsedMillis();
  impl.latency_hist->Observe(response.latency_ms);

  {
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    if (degraded) ++impl.degraded_requests;
    ++impl.num_requests;
    impl.num_candidates += parts.total;
  }

  // Slow-request log: close the root first so the collected tree includes
  // it, then copy (not drain — tools/trace_dump still gets the spans) this
  // trace's spans out of the ring.
  root_span->Annotate("rows=" + std::to_string(parts.total) +
                      (degraded ? " degraded=1" : ""));
  root_span.reset();
  if (minted.valid() && impl.options.slow_request_log_ms > 0 &&
      response.latency_ms >=
          static_cast<double>(impl.options.slow_request_log_ms)) {
    SNORKEL_LOG(Warning) << "slow request: " << response.latency_ms
                         << " ms (threshold "
                         << impl.options.slow_request_log_ms << " ms) trace="
                         << minted.trace_id << "\n"
                         << obs::FormatSpanTree(obs::CollectSpans(
                                minted.trace_id, /*drain=*/false));
  }
  return response;
}

RemoteRouterStats RemoteShardRouter::stats() const {
  const Impl& impl = *impl_;
  RemoteRouterStats out;
  {
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    out.num_requests = impl.num_requests;
    out.num_candidates = impl.num_candidates;
    out.failed_requests = impl.failed_requests;
    out.degraded_requests = impl.degraded_requests;
  }
  out.failovers = impl.failovers.load(std::memory_order_relaxed);
  out.retry_budget_exhausted = impl.budget.exhausted();
  out.breaker_open_rejections =
      impl.breaker_open_rejections.load(std::memory_order_relaxed);
  out.faults_injected = fault::InjectedCount();
  out.latency = impl.latency_hist->Snapshot();
  for (const RemoteShardClient& client : impl.clients) {
    out.per_shard.push_back(client.stats());
  }
  return out;
}

}  // namespace snorkel
