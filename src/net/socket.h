#ifndef SNORKEL_NET_SOCKET_H_
#define SNORKEL_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"
#include "util/status.h"

namespace snorkel {

/// Absolute deadline for a socket operation (steady clock, so wall-clock
/// jumps cannot spuriously expire a request). kNoDeadline = wait forever.
using SocketDeadline = std::chrono::steady_clock::time_point;
inline constexpr SocketDeadline kNoDeadline = SocketDeadline::max();

/// Deadline `timeout_ms` milliseconds from now; 0 = kNoDeadline.
SocketDeadline DeadlineAfterMs(uint64_t timeout_ms);

/// A connected TCP stream socket (RAII over the fd, move-only). All IO is
/// non-blocking under the hood with poll()-based waits, so every call takes
/// an absolute deadline and fails typed instead of hanging:
///   - kDeadlineExceeded: the deadline expired mid-operation.
///   - kUnavailable: the peer is unreachable or the connection broke
///     (ECONNREFUSED/ECONNRESET/EPIPE/EOF mid-message).
/// SIGPIPE is suppressed per-send (MSG_NOSIGNAL); no global signal state.
class Socket {
 public:
  Socket() = default;
  /// Adopts an fd (already connected; switched to non-blocking).
  explicit Socket(int fd);
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  /// Connects to host:port within the deadline. `host` is a dotted-quad or
  /// resolvable name ("127.0.0.1", "localhost").
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                SocketDeadline deadline);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `bytes` or fails typed.
  Status SendAll(std::string_view bytes, SocketDeadline deadline);

  /// Reads exactly `size` bytes into `out` or fails typed. EOF before
  /// `size` bytes is kUnavailable (the peer hung up mid-message); EOF at
  /// offset 0 with `eof_ok` reports kNotFound so callers can distinguish a
  /// clean peer close from a mid-frame break. A deadline expiry mid-read
  /// LOSES the partial bytes — use RecvSome where the caller must be able
  /// to re-arm the deadline and resume.
  Status RecvExact(char* out, size_t size, SocketDeadline deadline,
                   bool eof_ok = false);

  /// Resumable RecvExact: `*got` is the read cursor, advanced as bytes
  /// arrive and PRESERVED when the deadline expires, so a later call with a
  /// fresh deadline continues where this one stopped instead of discarding
  /// consumed stream bytes. `eof_ok` as in RecvExact (clean close only when
  /// `*got` is still 0).
  Status RecvSome(char* out, size_t size, size_t* got, SocketDeadline deadline,
                  bool eof_ok = false);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the fabric is a single-host /
/// trusted-network tier; binding loopback by default keeps test servers off
/// external interfaces). Accept() polls with a bounded wait so server loops
/// can interleave accepts with their own stop checks.
class ListenSocket {
 public:
  ListenSocket() = default;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ~ListenSocket();

  /// Binds and listens on `port` (0 = kernel-assigned ephemeral port; read
  /// it back from port()).
  static Result<ListenSocket> Listen(uint16_t port, int backlog = 64);

  /// The bound port (resolved after Listen with port 0).
  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Accepts one connection, waiting at most `timeout_ms`. Returns
  /// kDeadlineExceeded when nothing arrived in time (the server loop's
  /// chance to check its stop flag) and kUnavailable once the socket is
  /// closed.
  Result<Socket> Accept(uint64_t timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Writes one encoded frame to the stream.
Status SendFrame(Socket& socket, const Frame& frame, SocketDeadline deadline);

/// Reads one frame (header, then body) from the stream. `eof_ok` as in
/// RecvExact: a clean close between frames decodes as kNotFound. A deadline
/// expiry anywhere inside the frame abandons the partial bytes, so callers
/// must treat it as fatal for the connection (the client does: its deadline
/// is the whole request budget). Server loops that re-arm short waits use
/// FrameReader instead.
Result<Frame> RecvFrame(Socket& socket, SocketDeadline deadline,
                        bool eof_ok = false);

/// Incremental frame reader for receive loops that interleave short waits
/// with stop checks: kDeadlineExceeded PRESERVES partial progress (header or
/// body bytes already consumed from the stream stay buffered), so the next
/// Recv call resumes the same frame instead of reading mid-stream and
/// poisoning the framing. One instance per connection; not thread-safe.
class FrameReader {
 public:
  /// Reads toward one complete frame. Returns the frame when it completes,
  /// kDeadlineExceeded to ask the caller to re-arm (progress kept), or a
  /// terminal framing/transport error. `eof_ok`: a clean peer close is
  /// kNotFound only while NO byte of the next frame has arrived; EOF
  /// mid-frame is always kUnavailable.
  Result<Frame> Recv(Socket& socket, SocketDeadline deadline,
                     bool eof_ok = false);

 private:
  std::string buffer_;
  size_t got_ = 0;
  bool have_header_ = false;
  FrameHeader header_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_SOCKET_H_
