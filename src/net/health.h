#ifndef SNORKEL_NET_HEALTH_H_
#define SNORKEL_NET_HEALTH_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/random.h"

namespace snorkel {

/// Seeded exponential backoff with deterministic jitter, shared by the
/// failover router (delay between replica attempts) and the circuit
/// breaker (cooldown spreading). Pure function of (options, stream,
/// attempt): the same seed reproduces the same delays, different streams
/// (one per shard / endpoint) decorrelate, so a fleet never retries or
/// probes in lockstep yet every run of a seeded test sleeps identically.
struct BackoffOptions {
  uint64_t base_ms = 10;
  double multiplier = 2.0;
  uint64_t max_ms = 1000;
  /// Delay is scaled by a factor drawn uniformly from [1, 1 + jitter].
  double jitter = 0.5;
  uint64_t seed = 42;
};

/// Delay before retry `attempt` (1-based) of logical stream `stream`.
uint64_t BackoffDelayMs(const BackoffOptions& options, uint64_t stream,
                        uint32_t attempt);

/// Token-bucket retry budget: bounds how much EXTRA work retries may add on
/// top of first attempts, so a struggling shard degrades into typed errors
/// instead of an amplifying retry storm. Each first attempt deposits
/// `per_request_refill` tokens (capped at `max_tokens`); each retry spends
/// one whole token. The classic "retries <= ~10% of requests" discipline,
/// expressed in request counts rather than wall clock so seeded tests are
/// deterministic. Thread-safe.
class RetryBudget {
 public:
  struct Options {
    double initial = 10.0;
    double max_tokens = 10.0;
    double per_request_refill = 0.1;
  };

  explicit RetryBudget(Options options);

  /// Called once per incoming request (deposits refill tokens).
  void OnRequest();

  /// Spends one token; false (and counted) when the bucket is dry.
  bool TryConsume();

  double tokens() const;
  uint64_t exhausted() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t exhausted_ = 0;
};

/// Per-endpoint circuit breaker: closed / open / half-open with
/// single-probe admission — the generalization of RemoteShardClient's
/// consecutive-failure fail-fast, reusable by client and router.
///
///   closed ──(threshold consecutive transport failures)──> open
///   open   ──(jittered cooldown expires; ONE caller admitted)──> half-open
///   half-open ──probe succeeds──> closed
///             ──probe fails────> open (fresh jittered cooldown)
///
/// While open, Admit() rejects without any I/O (no connect storm against a
/// dead endpoint). The cooldown is drawn per opening from a seeded stream —
/// [cooldown, cooldown * (1 + jitter)] — so after a fleet-wide blip,
/// endpoints with different seeds probe at different times instead of in
/// lockstep (the thundering-herd fix). While half-open, exactly one probe
/// is in flight and every other caller keeps failing fast until the probe
/// reports. A success observed in ANY state closes the breaker (evidence of
/// life wins). Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive transport failures before the breaker opens (>= 1).
    size_t failure_threshold = 3;
    uint64_t cooldown_ms = 1000;
    /// Cooldown jitter factor (see class comment); 0 = fixed cooldown.
    double cooldown_jitter = 0.5;
    /// Seed for the jitter stream; give each endpoint its own.
    uint64_t seed = 42;
  };

  enum class Admission {
    /// Breaker closed: dispatch normally.
    kAllow,
    /// Cooldown expired and this caller won the single probe slot: dispatch,
    /// and the outcome decides closed vs re-open.
    kProbe,
    /// Open (cooldown running, or a probe already in flight): fail fast.
    kReject,
  };

  explicit CircuitBreaker(Options options);

  /// Call before dispatching work to the endpoint.
  Admission Admit();

  /// Report the transport outcome of an admitted attempt.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Attempts rejected while open / probing (fail-fast count).
  uint64_t open_rejections() const;

 private:
  /// Caller holds mu_.
  std::chrono::steady_clock::time_point JitteredReopenAt();

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point reopen_at_{};
  SplitMix64 jitter_rng_;
  uint64_t open_rejections_ = 0;
};

/// Per-endpoint AIMD in-flight limit — the client half of overload control.
/// The limit grows additively (+increase/limit per success, i.e. roughly +1
/// per round-trip of successes, TCP-style) and shrinks multiplicatively on
/// an overload signal (kResourceExhausted / kDeadlineExceeded), so a client
/// fleet converges onto a saturated shard's actual capacity instead of
/// retry-storming it. A server-supplied retry_after_ms hint additionally
/// gates NEW acquisitions until the hinted time passes.
///
/// Acquire() blocks (bounded by the caller's own deadline) until a slot is
/// free and any retry-after gate has passed; callers release with the
/// outcome so the limit learns. Composes with the circuit breaker (breaker
/// first: a dead endpoint fails fast before consuming a slot) and the retry
/// budget (the limiter bounds concurrency, the budget bounds retry
/// amplification). Thread-safe.
class AdaptiveLimiter {
 public:
  struct Options {
    double initial_limit = 8.0;
    double min_limit = 1.0;
    double max_limit = 128.0;
    /// Multiplicative decrease factor applied per overload signal.
    double decrease_factor = 0.7;
    /// Additive increase credited per success, spread over a window of
    /// `limit` successes (limit += increase/limit).
    double increase_per_success = 1.0;
  };

  explicit AdaptiveLimiter(Options options);

  /// Blocks until an in-flight slot is free and any retry-after gate has
  /// passed, or `deadline` arrives (false: counted as a limited rejection,
  /// no slot held). Every true MUST be paired with exactly one Release*.
  bool Acquire(std::chrono::steady_clock::time_point deadline);

  /// The attempt succeeded: additive increase.
  void ReleaseSuccess();
  /// The endpoint signalled overload: multiplicative decrease, and new
  /// acquisitions wait out `retry_after_ms` (0 = shrink only).
  void ReleaseOverload(uint64_t retry_after_ms);
  /// Outcome says nothing about endpoint load (transport error, bad
  /// request, shutdown): free the slot, leave the limit as is.
  void ReleaseNeutral();

  double limit() const;
  size_t in_flight() const;
  /// Acquire() calls that timed out at the limit.
  uint64_t rejections() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  double limit_;
  size_t in_flight_ = 0;
  uint64_t rejections_ = 0;
  /// New acquisitions stall until this instant (retry_after_ms gate).
  std::chrono::steady_clock::time_point not_before_{};
};

}  // namespace snorkel

#endif  // SNORKEL_NET_HEALTH_H_
