#ifndef SNORKEL_NET_REMOTE_CLIENT_H_
#define SNORKEL_NET_REMOTE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/candidate.h"
#include "data/context.h"
#include "lf/applier.h"
#include "net/wire.h"
#include "serve/label_service.h"
#include "util/status.h"

namespace snorkel {

/// Client stub for one remote ShardServer: connection pooling, per-call
/// deadlines, health tracking with fail-fast, and optional hedged retries on
/// the latency tail.
///
///  - POOLING: completed exchanges return their connection for reuse
///    (bounded pool); transport failures close it. A typed error FRAME
///    (e.g. kResourceExhausted backpressure) is a healthy exchange — the
///    server answered — so the connection is still pooled.
///  - HEALTH: a per-endpoint circuit breaker (net/health.h).
///    `unhealthy_threshold` consecutive TRANSPORT failures open the breaker;
///    for a JITTERED cooldown (`unhealthy_cooldown_ms` scaled by up to
///    1 + unhealthy_cooldown_jitter, drawn from a per-endpoint seeded
///    stream so a fleet of clients never probes a recovering shard in
///    lockstep) every call fails fast with kUnavailable (no connect storm
///    against a dead shard), after which a single half-open probe either
///    revives the endpoint or re-arms the cooldown.
///  - HEDGING: when enabled, a label call that hasn't completed within
///    `hedge_delay_ms` launches ONE second attempt on its own fresh
///    connection; the first completion wins. The loser runs to completion
///    in the background (its socket is independent, so no stream desync) and
///    still returns its connection to the pool. Hedging trades duplicate
///    server work for tail latency — results are bit-identical either way,
///    so the race is safe.
///
/// Thread-safe; calls from any thread. The destructor waits for in-flight
/// hedge attempts to finish (bounded by their deadlines).
class RemoteShardClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    uint64_t connect_timeout_ms = 1000;
    /// Default per-call budget when the call passes deadline_ms = 0;
    /// 0 here too = wait forever.
    uint64_t request_timeout_ms = 0;
    /// Max idle pooled connections (clamped to >= 1).
    size_t max_pooled_connections = 4;
    bool enable_hedging = false;
    uint64_t hedge_delay_ms = 50;
    /// Consecutive transport failures before fail-fast kicks in (clamped
    /// to >= 1).
    size_t unhealthy_threshold = 3;
    uint64_t unhealthy_cooldown_ms = 1000;
    /// Each cooldown is scaled by a factor drawn from
    /// [1, 1 + unhealthy_cooldown_jitter] (0 = fixed cooldown).
    double unhealthy_cooldown_jitter = 0.5;
    /// Seed for the cooldown jitter stream; 0 derives a per-endpoint seed
    /// from host:port so distinct endpoints never probe in lockstep.
    uint64_t health_seed = 0;
    /// AIMD in-flight limit (net/health.h AdaptiveLimiter): label calls
    /// acquire a slot before dispatching; the limit grows additively on
    /// success and shrinks multiplicatively on server overload signals
    /// (kResourceExhausted / kDeadlineExceeded), and a server-supplied
    /// retry_after_ms hint gates new acquisitions. A call that cannot get
    /// a slot before its deadline fails kResourceExhausted locally WITHOUT
    /// touching the wire (reported via `failed_fast` — a free failover).
    bool enable_adaptive_limit = true;
    double adaptive_initial_limit = 8.0;
    double adaptive_min_limit = 1.0;
    double adaptive_max_limit = 128.0;
    /// Multiplicative shrink factor per overload signal (0 < f < 1).
    double adaptive_decrease = 0.7;
  };

  struct Stats {
    uint64_t requests = 0;
    /// Calls whose final outcome was a transport failure or deadline.
    uint64_t failures = 0;
    /// Second attempts actually launched.
    uint64_t hedged_attempts = 0;
    /// Calls won by the hedge attempt (attempt #2 completed first).
    uint64_t hedged_wins = 0;
    /// Calls failed immediately because the endpoint was in cooldown.
    uint64_t fail_fast = 0;
    /// Exchanges that reused a pooled connection.
    uint64_t pooled_reuses = 0;
    /// True while the breaker is closed.
    bool healthy = true;
    /// Current AIMD in-flight limit (adaptive_initial_limit when disabled).
    double adaptive_limit = 0.0;
    /// Label calls rejected locally because no in-flight slot freed up
    /// before their deadline.
    uint64_t limited_rejections = 0;
  };

  /// Builds a client stub (no I/O yet — connections are made per call and
  /// pooled; an unreachable server surfaces on the first call, or use
  /// Ping()).
  static RemoteShardClient Create(Options options);

  RemoteShardClient(RemoteShardClient&&) noexcept = default;
  RemoteShardClient& operator=(RemoteShardClient&&) noexcept = default;
  ~RemoteShardClient();

  /// Labels `rows` (borrowed refs into the caller's candidates, original
  /// LF-visible indices preserved) against the remote shard. `deadline_ms`
  /// 0 = Options::request_timeout_ms. Typed failures: kUnavailable
  /// (unreachable / broke mid-exchange / cooldown), kDeadlineExceeded,
  /// kResourceExhausted (server backpressure), or any status the server
  /// itself returned. When `failed_fast` is non-null it reports whether
  /// the call was rejected LOCALLY without dispatching any work — by the
  /// open breaker, or by the adaptive in-flight limit — the failover
  /// router uses this to fail over for free (a fail-fast does not spend
  /// retry budget; nothing was attempted). When `retry_after_ms` is
  /// non-null it receives the server's backoff hint from a rejection's
  /// error frame (0 = none); the hint also feeds the adaptive limiter,
  /// which stalls new acquisitions until it passes.
  ///
  /// The remaining deadline budget is computed immediately before each
  /// wire attempt (including hedges and the post-limiter send), so time
  /// burned client-side — limiter waits, hedge delays, connection setup —
  /// is subtracted from the deadline_ms the server sees.
  Result<LabelResponse> Label(const Corpus& corpus,
                              const std::vector<CandidateRef>& rows,
                              bool include_votes, bool apply_class_balance,
                              uint64_t deadline_ms = 0,
                              bool* failed_fast = nullptr,
                              uint64_t* retry_after_ms = nullptr);

  /// Round-trips a ping frame.
  Status Ping(uint64_t deadline_ms = 0);

  /// Fetches the server's wire stats (snapshot version/checksum — the
  /// rollout observability hook).
  Result<WireServerStats> GetStats(uint64_t deadline_ms = 0);

  /// Sends a fault-injection command (util/fault.h schedules) to the
  /// server process — the chaos harness's remote control surface.
  Status ConfigureFaults(const WireFaultCommand& command,
                         uint64_t deadline_ms = 0);

  /// Scrapes the server's MetricsRegistry as Prometheus text
  /// (kMetricsRequest; tools/metrics_scrape). An old server answers
  /// kError/kInvalidArgument — callers must tolerate that.
  Result<std::string> GetMetrics(uint64_t deadline_ms = 0);

  /// Drains (or, with request.drain = false, peeks at) the server's trace
  /// span ring, optionally filtered to one trace id (kTraceRequest;
  /// tools/trace_dump stitches the returned batches across processes).
  Result<obs::SpanBatch> GetTraceSpans(const WireTraceRequest& request,
                                       uint64_t deadline_ms = 0);

  Stats stats() const;

  const Options& options() const;

 private:
  struct Impl;
  explicit RemoteShardClient(std::shared_ptr<Impl> impl);

  /// shared_ptr: background hedge attempts keep the impl alive past the
  /// stub if the caller destroys it mid-flight.
  std::shared_ptr<Impl> impl_;
};

}  // namespace snorkel

#endif  // SNORKEL_NET_REMOTE_CLIENT_H_
