#include "net/placement.h"

#include <algorithm>

#include "util/hash.h"

namespace snorkel {

namespace {

/// Rendezvous score of endpoint `e` for shard `s`: an independent
/// deterministic draw per (shard, endpoint) pair. Pure arithmetic over
/// stable hashes — every process computes the same ordering.
uint64_t RendezvousScore(uint64_t shard, uint64_t endpoint) {
  uint64_t h = Fnv1a64("rendezvous-placement");
  h = HashCombine(h, shard);
  h = HashCombine(h, endpoint);
  return h;
}

}  // namespace

size_t ShardPlacement::PrimaryOf(uint64_t key, size_t num_endpoints) {
  return static_cast<size_t>(key % (num_endpoints == 0 ? 1 : num_endpoints));
}

ShardPlacement::ShardPlacement(size_t num_endpoints, size_t replication)
    : num_endpoints_(num_endpoints == 0 ? 1 : num_endpoints),
      replication_(std::min(std::max<size_t>(replication, 1), num_endpoints_)) {
  preferences_.resize(num_endpoints_);
  for (size_t s = 0; s < num_endpoints_; ++s) {
    std::vector<uint32_t>& prefs = preferences_[s];
    prefs.reserve(replication_);
    prefs.push_back(static_cast<uint32_t>(s));
    // Fallback replicas: every OTHER endpoint by descending rendezvous
    // score, ties broken by endpoint id so the order is total.
    std::vector<uint32_t> others;
    others.reserve(num_endpoints_ - 1);
    for (size_t e = 0; e < num_endpoints_; ++e) {
      if (e != s) others.push_back(static_cast<uint32_t>(e));
    }
    std::sort(others.begin(), others.end(), [s](uint32_t a, uint32_t b) {
      uint64_t score_a = RendezvousScore(s, a);
      uint64_t score_b = RendezvousScore(s, b);
      if (score_a != score_b) return score_a > score_b;
      return a < b;
    });
    for (uint32_t e : others) {
      if (prefs.size() >= replication_) break;
      prefs.push_back(e);
    }
  }
}

}  // namespace snorkel
