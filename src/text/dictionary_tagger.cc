#include "text/dictionary_tagger.h"

#include <algorithm>
#include <cctype>

#include "util/hash.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

constexpr uint32_t kUnknownToken = 0xffffffffu;

/// A token the id fast path can represent: non-empty, no whitespace — so a
/// window of such tokens joins to exactly one canonical string.
bool SimpleToken(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

size_t DictionaryTagger::IdSeqHash::operator()(
    const std::vector<uint32_t>& ids) const {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t id : ids) h = HashCombine(h, id);
  return static_cast<size_t>(h);
}

void DictionaryTagger::AddEntry(const std::string& phrase,
                                const std::string& entity_type,
                                const std::string& canonical_id) {
  std::string key = ToLower(phrase);
  std::vector<std::string> tokens = SplitWhitespace(key);
  if (tokens.empty()) return;
  max_phrase_words_ = std::max(max_phrase_words_, tokens.size());
  Entry& slot = entries_[key];
  slot = Entry{entity_type, canonical_id, tokens.size()};
  // Canonical keys (exactly the single-space join of their tokens — every
  // key a window of simple sentence tokens can produce) also get a
  // token-id-sequence row for the string-free probe. Other keys stay
  // reachable through the legacy string fallback.
  if (key != Join(tokens, " ")) return;
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) {
    auto it = token_ids_
                  .try_emplace(token, static_cast<uint32_t>(token_ids_.size()))
                  .first;
    ids.push_back(it->second);
  }
  phrase_ids_[std::move(ids)] = &slot;
}

void DictionaryTagger::TagSentence(Sentence* sentence) const {
  const auto& words = sentence->words;
  std::vector<bool> covered(words.size(), false);
  for (const Mention& m : sentence->mentions) {
    for (size_t i = m.word_start; i < m.word_end && i < words.size(); ++i) {
      covered[i] = true;
    }
  }

  // Lower + intern each token once; windows below compare u32 ids.
  std::vector<std::string> lowered(words.size());
  std::vector<uint32_t> ids(words.size(), kUnknownToken);
  std::vector<bool> simple(words.size(), false);
  for (size_t i = 0; i < words.size(); ++i) {
    lowered[i] = ToLower(words[i]);
    simple[i] = SimpleToken(lowered[i]);
    if (simple[i]) {
      auto it = token_ids_.find(lowered[i]);
      if (it != token_ids_.end()) ids[i] = it->second;
    }
  }

  std::vector<uint32_t> probe;  // Reused window key.
  probe.reserve(max_phrase_words_);
  for (size_t start = 0; start < words.size(); ++start) {
    if (covered[start]) continue;
    // Longest match first.
    size_t max_len = std::min(max_phrase_words_, words.size() - start);
    for (size_t len = max_len; len >= 1; --len) {
      bool blocked = false;
      bool fast = true;
      bool unknown = false;
      for (size_t i = start; i < start + len; ++i) {
        if (covered[i]) {
          blocked = true;
          break;
        }
        if (!simple[i]) {
          fast = false;
        } else if (ids[i] == kUnknownToken) {
          unknown = true;
        }
      }
      if (blocked) continue;
      const Entry* entry = nullptr;
      if (fast) {
        // All-simple windows join canonically, so only id-sequence rows can
        // match — and a token no phrase uses rules every length out without
        // touching the table.
        if (unknown) continue;
        probe.assign(ids.begin() + start, ids.begin() + start + len);
        auto it = phrase_ids_.find(probe);
        if (it == phrase_ids_.end()) continue;
        entry = it->second;
      } else {
        // Degenerate tokens (empty / embedded whitespace): the exact legacy
        // joined-string probe.
        std::string phrase;
        for (size_t i = start; i < start + len; ++i) {
          if (!phrase.empty()) phrase += ' ';
          phrase += lowered[i];
        }
        auto it = entries_.find(phrase);
        if (it == entries_.end()) continue;
        entry = &it->second;
      }
      Mention mention;
      mention.word_start = static_cast<uint32_t>(start);
      mention.word_end = static_cast<uint32_t>(start + len);
      mention.entity_type = entry->entity_type;
      mention.canonical_id = entry->canonical_id;
      sentence->mentions.push_back(std::move(mention));
      for (size_t i = start; i < start + len; ++i) covered[i] = true;
      start += len - 1;  // Continue after the match.
      break;
    }
  }
  std::sort(sentence->mentions.begin(), sentence->mentions.end(),
            [](const Mention& a, const Mention& b) {
              return a.word_start < b.word_start;
            });
}

void DictionaryTagger::TagCorpus(Corpus* corpus) const {
  for (size_t d = 0; d < corpus->num_documents(); ++d) {
    for (Sentence& sentence : corpus->mutable_document(d)->sentences) {
      TagSentence(&sentence);
    }
  }
}

}  // namespace snorkel
