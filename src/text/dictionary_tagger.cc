#include "text/dictionary_tagger.h"

#include <algorithm>

#include "util/string_util.h"

namespace snorkel {

void DictionaryTagger::AddEntry(const std::string& phrase,
                                const std::string& entity_type,
                                const std::string& canonical_id) {
  size_t num_words = SplitWhitespace(phrase).size();
  if (num_words == 0) return;
  max_phrase_words_ = std::max(max_phrase_words_, num_words);
  entries_[ToLower(phrase)] = Entry{entity_type, canonical_id, num_words};
}

void DictionaryTagger::TagSentence(Sentence* sentence) const {
  const auto& words = sentence->words;
  std::vector<bool> covered(words.size(), false);
  for (const Mention& m : sentence->mentions) {
    for (size_t i = m.word_start; i < m.word_end && i < words.size(); ++i) {
      covered[i] = true;
    }
  }

  for (size_t start = 0; start < words.size(); ++start) {
    if (covered[start]) continue;
    // Longest match first.
    size_t max_len = std::min(max_phrase_words_, words.size() - start);
    for (size_t len = max_len; len >= 1; --len) {
      bool blocked = false;
      std::string phrase;
      for (size_t i = start; i < start + len; ++i) {
        if (covered[i]) {
          blocked = true;
          break;
        }
        if (!phrase.empty()) phrase += ' ';
        phrase += ToLower(words[i]);
      }
      if (blocked) continue;
      auto it = entries_.find(phrase);
      if (it == entries_.end()) continue;
      Mention mention;
      mention.word_start = static_cast<uint32_t>(start);
      mention.word_end = static_cast<uint32_t>(start + len);
      mention.entity_type = it->second.entity_type;
      mention.canonical_id = it->second.canonical_id;
      sentence->mentions.push_back(std::move(mention));
      for (size_t i = start; i < start + len; ++i) covered[i] = true;
      start += len - 1;  // Continue after the match.
      break;
    }
  }
  std::sort(sentence->mentions.begin(), sentence->mentions.end(),
            [](const Mention& a, const Mention& b) {
              return a.word_start < b.word_start;
            });
}

void DictionaryTagger::TagCorpus(Corpus* corpus) const {
  for (size_t d = 0; d < corpus->num_documents(); ++d) {
    for (Sentence& sentence : corpus->mutable_document(d)->sentences) {
      TagSentence(&sentence);
    }
  }
}

}  // namespace snorkel
