#ifndef SNORKEL_TEXT_TOKENIZER_H_
#define SNORKEL_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace snorkel {

/// Rule-based word tokenizer: splits on whitespace and detaches leading /
/// trailing punctuation from tokens ("preeclampsia." -> "preeclampsia", ".").
/// Intra-token punctuation (hyphens, apostrophes) is preserved. The
/// single-node stand-in for the paper's CoreNLP/SpaCy preprocessing wrappers
/// (Appendix C).
class Tokenizer {
 public:
  struct Options {
    bool lowercase = true;
  };

  explicit Tokenizer(Options options) : options_(options) {}
  Tokenizer() : Tokenizer(Options{}) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  Options options_;
};

/// Rule-based sentence splitter: breaks on '.', '!', '?' followed by
/// whitespace and an uppercase letter or end of text; guards common
/// abbreviations ("Dr.", "e.g.") and decimal numbers.
class SentenceSplitter {
 public:
  std::vector<std::string> Split(std::string_view text) const;
};

}  // namespace snorkel

#endif  // SNORKEL_TEXT_TOKENIZER_H_
