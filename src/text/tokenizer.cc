#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace snorkel {

namespace {

bool IsPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

/// Punctuation that may stay inside a word ("x-ray", "don't").
bool IsInnerPunct(char c) { return c == '-' || c == '\''; }

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  auto emit = [&](std::string_view piece) {
    if (piece.empty()) return;
    tokens.emplace_back(options_.lowercase ? ToLower(piece)
                                           : std::string(piece));
  };

  for (const std::string& raw : SplitWhitespace(text)) {
    std::string_view word(raw);
    // Detach leading punctuation.
    while (!word.empty() && IsPunct(word.front()) &&
           !IsInnerPunct(word.front())) {
      emit(word.substr(0, 1));
      word.remove_prefix(1);
    }
    // Detach trailing punctuation (remember it to emit in order).
    std::vector<std::string_view> trailing;
    while (!word.empty() && IsPunct(word.back()) &&
           !IsInnerPunct(word.back())) {
      trailing.push_back(word.substr(word.size() - 1, 1));
      word.remove_suffix(1);
    }
    emit(word);
    for (auto it = trailing.rbegin(); it != trailing.rend(); ++it) emit(*it);
  }
  return tokens;
}

std::vector<std::string> SentenceSplitter::Split(std::string_view text) const {
  static const char* kAbbreviations[] = {"dr.",  "mr.",  "mrs.", "ms.",
                                         "e.g.", "i.e.", "et",   "al.",
                                         "fig.", "vs.",  "st."};
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;

    // Decimal number guard: "3.14".
    if (c == '.' && i > 0 && i + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
        std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
      continue;
    }

    // Abbreviation guard: look back to the token containing this period.
    if (c == '.') {
      size_t tok_start = i;
      while (tok_start > start &&
             !std::isspace(static_cast<unsigned char>(text[tok_start - 1]))) {
        --tok_start;
      }
      std::string token = ToLower(text.substr(tok_start, i - tok_start + 1));
      bool is_abbrev = false;
      for (const char* abbrev : kAbbreviations) {
        if (token == abbrev) is_abbrev = true;
      }
      if (is_abbrev) continue;
    }

    // Must be followed by whitespace + uppercase, or end of text.
    size_t next = i + 1;
    while (next < text.size() &&
           std::isspace(static_cast<unsigned char>(text[next]))) {
      ++next;
    }
    if (next < text.size() &&
        !std::isupper(static_cast<unsigned char>(text[next]))) {
      continue;
    }

    std::string sentence = Trim(text.substr(start, i - start + 1));
    if (!sentence.empty()) sentences.push_back(std::move(sentence));
    start = next;
    i = next == 0 ? i : next - 1;
  }
  std::string tail = Trim(text.substr(start));
  if (!tail.empty()) sentences.push_back(std::move(tail));
  return sentences;
}

}  // namespace snorkel
