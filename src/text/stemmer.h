#ifndef SNORKEL_TEXT_STEMMER_H_
#define SNORKEL_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace snorkel {

/// Lightweight suffix-stripping stemmer (Porter-style step-1 rules plus
/// common verbal/adjectival suffixes). Labeling functions use it so that
/// "causes", "caused" and "causing" all match the "cause" pattern —
/// the paper observes LFs over raw tokens and their lemmatizations are a
/// common correlated-input pair (§3.2).
class Stemmer {
 public:
  /// Returns the stem of a single lower-case token.
  static std::string Stem(std::string_view word);

  /// Stem() through a process-wide token→stem memo, so each distinct token
  /// is stemmed once ever instead of once per LF per candidate. Safe to call
  /// concurrently (sharded reader/writer locks). The returned reference is
  /// stable for the life of the process, except under memo-full overflow
  /// where it points at thread-local storage valid until this thread's next
  /// overflowing call — treat it as borrowed for immediate use.
  static const std::string& StemCached(const std::string& word);
};

}  // namespace snorkel

#endif  // SNORKEL_TEXT_STEMMER_H_
