#include "text/stemmer.h"

namespace snorkel {

namespace {

bool EndsWith(std::string_view word, std::string_view suffix) {
  return word.size() >= suffix.size() &&
         word.substr(word.size() - suffix.size()) == suffix;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view word) {
  for (char c : word) {
    if (IsVowel(c)) return true;
  }
  return false;
}

}  // namespace

std::string Stemmer::Stem(std::string_view word) {
  std::string w(word);
  if (w.size() <= 3) return w;

  // Plural / 3rd-person endings.
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ies")) {
    w.resize(w.size() - 3);
    w += 'y';
  } else if (EndsWith(w, "s") && !EndsWith(w, "ss") && !EndsWith(w, "us") &&
             w.size() > 3) {
    w.resize(w.size() - 1);
  }

  // Verbal endings.
  if (w.size() > 4 && EndsWith(w, "ing") &&
      HasVowel(std::string_view(w).substr(0, w.size() - 3))) {
    w.resize(w.size() - 3);
    // "causing" -> "caus" -> restore the silent e heuristically when the
    // stem ends consonant+s/c/v ("caus" -> "cause", "induc" -> "induce").
    if (!w.empty() && (w.back() == 's' || w.back() == 'c' || w.back() == 'v')) {
      w += 'e';
    } else if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
               !IsVowel(w.back())) {
      w.resize(w.size() - 1);  // "stopping" -> "stop".
    }
  } else if (w.size() > 3 && EndsWith(w, "ed") &&
             HasVowel(std::string_view(w).substr(0, w.size() - 2))) {
    w.resize(w.size() - 2);
    if (!w.empty() && (w.back() == 's' || w.back() == 'c' || w.back() == 'v')) {
      w += 'e';
    } else if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
               !IsVowel(w.back())) {
      w.resize(w.size() - 1);  // "stopped" -> "stop".
    }
  }

  // Adjectival / nominal endings.
  if (w.size() > 5 && EndsWith(w, "ation")) {
    w.resize(w.size() - 5);
    w += "ate";
  } else if (w.size() > 4 && EndsWith(w, "ness")) {
    w.resize(w.size() - 4);
  } else if (w.size() > 4 && EndsWith(w, "ful")) {
    w.resize(w.size() - 3);
  }
  return w;
}

}  // namespace snorkel
