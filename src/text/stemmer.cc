#include "text/stemmer.h"

#include <array>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace snorkel {

namespace {

bool EndsWith(std::string_view word, std::string_view suffix) {
  return word.size() >= suffix.size() &&
         word.substr(word.size() - suffix.size()) == suffix;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view word) {
  for (char c : word) {
    if (IsVowel(c)) return true;
  }
  return false;
}

}  // namespace

std::string Stemmer::Stem(std::string_view word) {
  std::string w(word);
  if (w.size() <= 3) return w;

  // Plural / 3rd-person endings.
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ies")) {
    w.resize(w.size() - 3);
    w += 'y';
  } else if (EndsWith(w, "s") && !EndsWith(w, "ss") && !EndsWith(w, "us") &&
             w.size() > 3) {
    w.resize(w.size() - 1);
  }

  // Verbal endings.
  if (w.size() > 4 && EndsWith(w, "ing") &&
      HasVowel(std::string_view(w).substr(0, w.size() - 3))) {
    w.resize(w.size() - 3);
    // "causing" -> "caus" -> restore the silent e heuristically when the
    // stem ends consonant+s/c/v ("caus" -> "cause", "induc" -> "induce").
    if (!w.empty() && (w.back() == 's' || w.back() == 'c' || w.back() == 'v')) {
      w += 'e';
    } else if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
               !IsVowel(w.back())) {
      w.resize(w.size() - 1);  // "stopping" -> "stop".
    }
  } else if (w.size() > 3 && EndsWith(w, "ed") &&
             HasVowel(std::string_view(w).substr(0, w.size() - 2))) {
    w.resize(w.size() - 2);
    if (!w.empty() && (w.back() == 's' || w.back() == 'c' || w.back() == 'v')) {
      w += 'e';
    } else if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2] &&
               !IsVowel(w.back())) {
      w.resize(w.size() - 1);  // "stopped" -> "stop".
    }
  }

  // Adjectival / nominal endings.
  if (w.size() > 5 && EndsWith(w, "ation")) {
    w.resize(w.size() - 5);
    w += "ate";
  } else if (w.size() > 4 && EndsWith(w, "ness")) {
    w.resize(w.size() - 4);
  } else if (w.size() > 4 && EndsWith(w, "ful")) {
    w.resize(w.size() - 3);
  }
  return w;
}

const std::string& Stemmer::StemCached(const std::string& word) {
  // Sharded so concurrent LF appliers on different tokens rarely contend.
  // Entries are never erased, and unordered_map nodes are pointer-stable, so
  // returned references stay valid for the life of the process.
  static constexpr size_t kShards = 16;
  static constexpr size_t kMaxEntriesPerShard = 1 << 18;
  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::string, std::string> memo;
  };
  static std::array<Shard, kShards>& shards = *new std::array<Shard, kShards>;

  Shard& shard = shards[std::hash<std::string>{}(word) % kShards];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.memo.find(word);
    if (it != shard.memo.end()) return it->second;
  }
  std::string stemmed = Stem(word);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.memo.size() >= kMaxEntriesPerShard &&
      shard.memo.find(word) == shard.memo.end()) {
    // Memo full: serve from thread-local storage instead of growing without
    // bound on adversarial vocabularies.
    lock.unlock();
    static thread_local std::string overflow;
    overflow = std::move(stemmed);
    return overflow;
  }
  return shard.memo.try_emplace(word, std::move(stemmed)).first->second;
}

}  // namespace snorkel
