#ifndef SNORKEL_TEXT_DICTIONARY_TAGGER_H_
#define SNORKEL_TEXT_DICTIONARY_TAGGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/context.h"

namespace snorkel {

/// Dictionary-driven named-entity tagger: matches known (multi-word) phrases
/// against sentence tokens, longest match first, and attaches Mention tags
/// with an entity type and canonical id. The stand-in for the paper's
/// NER preprocessing (SpaCy NER for Spouses, provided chemical/disease tags
/// for CDR).
///
/// Matching compares interned token ids, not strings: each registered phrase
/// whose key is a plain single-space token join gets a token-id-sequence row,
/// and TagSentence lowers + interns each sentence token ONCE, then probes
/// windows as id sequences — no per-window string concatenation or string
/// hashing. A window containing a token no phrase uses is rejected without
/// any lookup. Degenerate tokens (empty, or containing whitespace, which the
/// joined-string key space can express ambiguously) fall back to the exact
/// legacy string probe, so results are identical to the string-keyed tagger.
class DictionaryTagger {
 public:
  DictionaryTagger() = default;

  /// Registers a phrase (tokens already lower-cased, space separated) for an
  /// entity type, mapped to `canonical_id`. Later registrations overwrite.
  void AddEntry(const std::string& phrase, const std::string& entity_type,
                const std::string& canonical_id);

  /// Number of registered phrases.
  size_t size() const { return entries_.size(); }

  /// Scans the sentence tokens and appends non-overlapping mentions, longest
  /// match first, left to right. Existing mentions are preserved; words
  /// covered by them are not re-tagged.
  void TagSentence(Sentence* sentence) const;

  /// Tags every sentence in the corpus.
  void TagCorpus(Corpus* corpus) const;

 private:
  struct Entry {
    std::string entity_type;
    std::string canonical_id;
    size_t num_words = 1;
  };

  struct IdSeqHash {
    size_t operator()(const std::vector<uint32_t>& ids) const;
  };

  /// Authoritative store, keyed by the lowered phrase string (preserves the
  /// public overwrite/size semantics for ANY registered key).
  std::unordered_map<std::string, Entry> entries_;
  /// Interned ids for tokens of canonically-keyed phrases, and the fast
  /// probe table over their id sequences. Values point into `entries_`
  /// (node-based map: stable across rehash and overwrite).
  std::unordered_map<std::string, uint32_t> token_ids_;
  std::unordered_map<std::vector<uint32_t>, const Entry*, IdSeqHash>
      phrase_ids_;
  size_t max_phrase_words_ = 1;
};

}  // namespace snorkel

#endif  // SNORKEL_TEXT_DICTIONARY_TAGGER_H_
