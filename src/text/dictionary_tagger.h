#ifndef SNORKEL_TEXT_DICTIONARY_TAGGER_H_
#define SNORKEL_TEXT_DICTIONARY_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/context.h"

namespace snorkel {

/// Dictionary-driven named-entity tagger: matches known (multi-word) phrases
/// against sentence tokens, longest match first, and attaches Mention tags
/// with an entity type and canonical id. The stand-in for the paper's
/// NER preprocessing (SpaCy NER for Spouses, provided chemical/disease tags
/// for CDR).
class DictionaryTagger {
 public:
  DictionaryTagger() = default;

  /// Registers a phrase (tokens already lower-cased, space separated) for an
  /// entity type, mapped to `canonical_id`. Later registrations overwrite.
  void AddEntry(const std::string& phrase, const std::string& entity_type,
                const std::string& canonical_id);

  /// Number of registered phrases.
  size_t size() const { return entries_.size(); }

  /// Scans the sentence tokens and appends non-overlapping mentions, longest
  /// match first, left to right. Existing mentions are preserved; words
  /// covered by them are not re-tagged.
  void TagSentence(Sentence* sentence) const;

  /// Tags every sentence in the corpus.
  void TagCorpus(Corpus* corpus) const;

 private:
  struct Entry {
    std::string entity_type;
    std::string canonical_id;
    size_t num_words = 1;
  };

  std::unordered_map<std::string, Entry> entries_;
  size_t max_phrase_words_ = 1;
};

}  // namespace snorkel

#endif  // SNORKEL_TEXT_DICTIONARY_TAGGER_H_
