#include "pipeline/export_snapshot.h"

#include <algorithm>
#include <cmath>

#include "core/dawid_skene.h"
#include "lf/compiled/program.h"

namespace snorkel {

Result<ModelSnapshot> TrainSnapshot(const RelationTask& task,
                                    const ExportSnapshotOptions& options) {
  // ---- Apply LFs (Figure 2, step 2). ----
  LFApplier applier(LFApplier::Options{options.num_threads, 2});
  auto matrix_result = applier.Apply(task.lfs, task.corpus, task.candidates);
  if (!matrix_result.ok()) return matrix_result.status();
  LabelMatrix matrix = std::move(matrix_result).value();
  LabelMatrix train_matrix = matrix.SelectRows(task.train_idx);

  // Class balance from the labeled dev split, as in RunRelationPipeline.
  double pos = 0.0;
  for (size_t i : task.dev_idx) pos += task.gold[i] > 0 ? 1.0 : 0.0;
  double class_balance =
      task.dev_idx.empty()
          ? 0.5
          : std::clamp(pos / static_cast<double>(task.dev_idx.size()), 0.02,
                       0.98);

  // ---- Model the label sources. ----
  std::vector<CorrelationPair> correlations;
  if (options.use_optimizer) {
    ModelingStrategyOptimizer optimizer(options.optimizer);
    auto decision = optimizer.Choose(train_matrix);
    if (!decision.ok()) return decision.status();
    // A snapshot always embeds a generative model: when Algorithm 1 picks
    // majority vote the independent GM is its learned-weight analog, so we
    // keep only the correlation decision.
    if (decision->strategy == ModelingStrategy::kGenerativeModel) {
      correlations = decision->correlations;
    }
  }
  GenerativeModelOptions gen_options = options.gen;
  gen_options.class_balance = class_balance;
  GenerativeModel gen(gen_options);
  SNORKEL_RETURN_IF_ERROR(gen.Fit(train_matrix, correlations));

  auto snapshot_result =
      ModelSnapshot::Capture(gen, task.lfs.Names(), task.lfs.Fingerprints());
  if (!snapshot_result.ok()) return snapshot_result.status();
  ModelSnapshot snapshot = std::move(snapshot_result).value();

  // ---- Noise-aware discriminative model on the probabilistic labels. ----
  if (options.include_disc_model) {
    TextFeaturizer featurizer(options.features);
    std::vector<double> train_probs =
        gen.PredictProba(train_matrix, /*apply_class_balance=*/false);
    std::vector<FeatureVector> features;
    std::vector<double> soft_labels;
    constexpr double kNeutralBand = 0.02;
    for (size_t r = 0; r < task.train_idx.size(); ++r) {
      if (train_matrix.row(r).empty()) continue;
      if (std::fabs(train_probs[r] - 0.5) <= kNeutralBand) continue;
      size_t i = task.train_idx[r];
      CandidateView view(&task.corpus, &task.candidates[i], i);
      features.push_back(featurizer.Featurize(view));
      soft_labels.push_back(train_probs[r]);
    }
    if (features.empty()) {
      return Status::FailedPrecondition("no covered training candidates");
    }
    LogisticRegressionClassifier disc(options.disc);
    SNORKEL_RETURN_IF_ERROR(
        disc.Fit(features, featurizer.num_buckets(), soft_labels));
    SNORKEL_RETURN_IF_ERROR(
        snapshot.AttachDiscModel(disc, featurizer.num_buckets()));
  }

  // ---- Compiled LF artifact (LFCP). ----
  // Ship the lowered automata with the model so serving loads mmap-shared
  // match structure instead of recompiling per process; omitted when no LF
  // in the set is compilable (the section would be empty weight).
  auto program = CompileLfSet(task.lfs);
  if (program->num_compiled() > 0) snapshot.compiled_lfs = std::move(program);
  return snapshot;
}

Status ExportSnapshot(const RelationTask& task,
                      const ExportSnapshotOptions& options,
                      const std::string& path) {
  auto snapshot = TrainSnapshot(task, options);
  if (!snapshot.ok()) return snapshot.status();
  return SaveSnapshot(*snapshot, path);
}

Result<ModelSnapshot> TrainKClassSnapshot(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<Candidate>& candidates, int cardinality,
    const KClassExportOptions& options) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  // Apply at the task's cardinality: a worker-LF vote outside {1..K} fails
  // here, typed, instead of poisoning the fitted confusion matrices.
  LFApplier applier(LFApplier::Options{options.num_threads, cardinality});
  auto matrix = applier.Apply(lfs, corpus, candidates);
  if (!matrix.ok()) return matrix.status();

  DawidSkeneModel model(options.ds);
  SNORKEL_RETURN_IF_ERROR(model.Fit(*matrix));
  if (model.cardinality() != cardinality) {
    // Fit infers cardinality from the matrix, which inherits the applier's;
    // a mismatch here would mean the plumbing above broke.
    return Status::Internal("fitted cardinality disagrees with the task's");
  }
  auto snapshot = ModelSnapshot::CaptureDawidSkene(model, lfs.Names(),
                                                   lfs.Fingerprints());
  if (!snapshot.ok()) return snapshot.status();
  auto program = CompileLfSet(lfs);
  if (program->num_compiled() > 0) snapshot->compiled_lfs = std::move(program);
  return snapshot;
}

}  // namespace snorkel
