#include "pipeline/pipeline.h"
#include <cmath>

#include <algorithm>

#include "core/majority_vote.h"
#include "util/timer.h"
#include "util/random.h"

namespace snorkel {

namespace {

/// Gathers the subset of `values` at `indices`.
template <typename T>
std::vector<T> Gather(const std::vector<T>& values,
                      const std::vector<size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(values[i]);
  return out;
}

/// Picks the decision threshold maximizing F1 on the dev split (all end
/// models get the same treatment; the paper selects hyper-parameters on the
/// small labeled dev set).
double TuneThreshold(const std::vector<double>& dev_proba,
                     const std::vector<Label>& dev_gold) {
  double best_threshold = 0.5;
  double best_f1 = -1.0;
  for (int t = 1; t < 50; ++t) {
    double threshold = static_cast<double>(t) * 0.02;
    double f1 = ScoreProbabilistic(dev_proba, dev_gold, threshold).F1();
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

/// Trains, tunes the threshold on dev, and scores on test.
BinaryConfusion EvalWithTunedThreshold(
    const LogisticRegressionClassifier& model,
    const std::vector<FeatureVector>& dev_features,
    const std::vector<Label>& dev_gold,
    const std::vector<FeatureVector>& test_features,
    const std::vector<Label>& test_gold) {
  double threshold = TuneThreshold(model.PredictProba(dev_features), dev_gold);
  return ScoreProbabilistic(model.PredictProba(test_features), test_gold,
                            threshold);
}

}  // namespace

Result<PipelineReport> RunRelationPipeline(const RelationTask& task,
                                           const PipelineOptions& options) {
  PipelineReport report;
  report.task_name = task.name;

  // ---- Stage 1: apply labeling functions (Figure 2, step 2). ----
  const LabelingFunctionSet* lfs = &task.lfs;
  LabelingFunctionSet subset_lfs;
  if (!options.lf_subset.empty()) {
    for (size_t j : options.lf_subset) {
      if (j >= task.lfs.size()) {
        return Status::OutOfRange("lf_subset index out of range");
      }
      subset_lfs.Add(task.lfs.at(j));
    }
    lfs = &subset_lfs;
  }
  LFApplier applier(LFApplier::Options{options.num_threads, 2});
  auto matrix_result = applier.Apply(*lfs, task.corpus, task.candidates);
  if (!matrix_result.ok()) return matrix_result.status();
  LabelMatrix matrix = std::move(matrix_result).value();
  report.label_density = matrix.LabelDensity();

  LabelMatrix train_matrix = matrix.SelectRows(task.train_idx);
  LabelMatrix test_matrix = matrix.SelectRows(task.test_idx);
  std::vector<Label> dev_gold = Gather(task.gold, task.dev_idx);
  std::vector<Label> test_gold = Gather(task.gold, task.test_idx);
  std::vector<Label> train_gold = Gather(task.gold, task.train_idx);

  // Class balance from the labeled dev split (the only gold the pipeline
  // itself consumes, mirroring the paper's use of a small dev set).
  double pos = 0.0;
  for (Label y : dev_gold) pos += y > 0 ? 1.0 : 0.0;
  report.class_balance =
      dev_gold.empty() ? 0.5
                       : std::clamp(pos / static_cast<double>(dev_gold.size()),
                                    0.02, 0.98);

  // ---- Stage 2: model the label sources (Figure 2, step 2). ----
  WallTimer modeling_timer;
  bool use_mv = false;
  std::vector<CorrelationPair> correlations;
  if (options.use_optimizer) {
    ModelingStrategyOptimizer optimizer(options.optimizer);
    auto decision = optimizer.Choose(train_matrix);
    if (!decision.ok()) return decision.status();
    report.decision = std::move(decision).value();
    use_mv = report.decision.strategy == ModelingStrategy::kMajorityVote;
    correlations = report.decision.correlations;
  }

  LabelMatrix dev_matrix = matrix.SelectRows(task.dev_idx);
  std::vector<double> train_probs;
  std::vector<double> test_probs;
  std::vector<double> gen_dev_probs;
  if (use_mv) {
    train_probs = UnweightedAverageProbs(train_matrix);
    test_probs = UnweightedAverageProbs(test_matrix);
    gen_dev_probs = UnweightedAverageProbs(dev_matrix);
  } else {
    GenerativeModelOptions gen_options = options.gen;
    gen_options.class_balance = report.class_balance;
    GenerativeModel gen(gen_options);
    Status status = gen.Fit(train_matrix, correlations);
    if (!status.ok()) return status;
    // Training targets use the class-symmetric posterior (uncovered and
    // weakly-covered rows sit at a neutral 0.5, not at the prior); the
    // prior-shifted posterior is for prediction/scoring.
    train_probs = gen.PredictProba(train_matrix, /*apply_class_balance=*/false);
    test_probs = gen.PredictProba(test_matrix, /*apply_class_balance=*/false);
    gen_dev_probs = gen.PredictProba(dev_matrix, /*apply_class_balance=*/false);
    report.gen_accuracies = gen.EstimatedAccuracies();
  }
  report.label_modeling_seconds = modeling_timer.ElapsedSeconds();

  // Snorkel (Gen.) test score: the class-symmetric posterior σ(f_w(Λ))
  // thresholded at 0.5, exactly the paper's convention (their factor graph
  // carries no class prior); abstaining / uncovered rows sit at 0.5 and
  // count negative (Appendix A.5).
  report.gen_test = ScoreProbabilistic(test_probs, test_gold);

  // ---- Stage 3: discriminative model (Figure 2, step 3). ----
  TextFeaturizer featurizer(options.features);
  std::vector<FeatureVector> features(task.candidates.size());
  for (size_t i = 0; i < task.candidates.size(); ++i) {
    CandidateView view(&task.corpus, &task.candidates[i], i);
    features[i] = featurizer.Featurize(view);
  }
  std::vector<FeatureVector> test_features = Gather(features, task.test_idx);
  std::vector<FeatureVector> dev_features = Gather(features, task.dev_idx);

  // Train on rows that actually carry supervision signal: uncovered
  // candidates and rows whose (class-symmetric) posterior is neutral are
  // effectively unlabeled — Snorkel filters them rather than training a
  // model to output "0.5" on their features. Both the generative and the
  // unweighted-average arm get the same treatment so the Table 5 comparison
  // isolates label quality.
  constexpr double kNeutralBand = 0.02;
  auto covered_rows = [&](const std::vector<double>& probs,
                          std::vector<FeatureVector>* out_features,
                          std::vector<double>* out_probs) {
    for (size_t r = 0; r < task.train_idx.size(); ++r) {
      if (train_matrix.row(r).empty()) continue;
      if (std::fabs(probs[r] - 0.5) <= kNeutralBand) continue;
      out_features->push_back(features[task.train_idx[r]]);
      out_probs->push_back(probs[r]);
    }
  };

  std::vector<FeatureVector> gen_features_train;
  std::vector<double> gen_probs_train;
  covered_rows(train_probs, &gen_features_train, &gen_probs_train);
  if (gen_features_train.empty()) {
    return Status::FailedPrecondition("no covered training candidates");
  }

  LogisticRegressionClassifier disc(options.disc);
  SNORKEL_RETURN_IF_ERROR(disc.Fit(gen_features_train,
                                   featurizer.num_buckets(), gen_probs_train,
                                   &dev_features, &dev_gold));
  report.disc_test = EvalWithTunedThreshold(disc, dev_features, dev_gold,
                                            test_features, test_gold);

  // Label-quality comparison (Table 5's premise): Brier score of each
  // arm's probabilistic labels against the training gold.
  {
    std::vector<double> unweighted_probs = UnweightedAverageProbs(train_matrix);
    double gen_brier = 0.0;
    double unw_brier = 0.0;
    for (size_t r = 0; r < task.train_idx.size(); ++r) {
      double y = train_gold[r] > 0 ? 1.0 : 0.0;
      gen_brier += (train_probs[r] - y) * (train_probs[r] - y);
      unw_brier += (unweighted_probs[r] - y) * (unweighted_probs[r] - y);
    }
    double denom = std::max<size_t>(task.train_idx.size(), 1);
    report.gen_label_brier = gen_brier / denom;
    report.unweighted_label_brier = unw_brier / denom;
  }

  if (options.run_unweighted_baseline) {
    std::vector<double> unweighted_probs = UnweightedAverageProbs(train_matrix);
    std::vector<FeatureVector> unw_features_train;
    std::vector<double> unw_probs_train;
    covered_rows(unweighted_probs, &unw_features_train, &unw_probs_train);
    LogisticRegressionClassifier unweighted(options.disc);
    SNORKEL_RETURN_IF_ERROR(unweighted.Fit(unw_features_train,
                                           featurizer.num_buckets(),
                                           unw_probs_train, &dev_features,
                                           &dev_gold));
    report.disc_unweighted_test = EvalWithTunedThreshold(
        unweighted, dev_features, dev_gold, test_features, test_gold);
  }

  if (options.run_ds_baseline && !task.ds_labels.empty()) {
    LogisticRegressionClassifier ds(options.disc);
    std::vector<Label> ds_train = Gather(task.ds_labels, task.train_idx);
    SNORKEL_RETURN_IF_ERROR(ds.FitHard(Gather(features, task.train_idx),
                                       featurizer.num_buckets(), ds_train,
                                       &dev_features, &dev_gold));
    report.ds_test = EvalWithTunedThreshold(ds, dev_features, dev_gold,
                                            test_features, test_gold);
  }

  if (options.run_hand_baseline) {
    LogisticRegressionClassifier hand(options.disc);
    std::vector<Label> hand_labels = train_gold;
    if (options.hand_label_noise > 0.0) {
      Rng noise_rng(options.disc.seed + 1);
      for (Label& y : hand_labels) {
        if (noise_rng.Bernoulli(options.hand_label_noise)) y = -y;
      }
    }
    SNORKEL_RETURN_IF_ERROR(hand.FitHard(Gather(features, task.train_idx),
                                         featurizer.num_buckets(), hand_labels,
                                         &dev_features, &dev_gold));
    report.hand_test = EvalWithTunedThreshold(hand, dev_features, dev_gold,
                                              test_features, test_gold);
  }
  return report;
}

}  // namespace snorkel
