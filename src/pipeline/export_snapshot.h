#ifndef SNORKEL_PIPELINE_EXPORT_SNAPSHOT_H_
#define SNORKEL_PIPELINE_EXPORT_SNAPSHOT_H_

#include <string>

#include "pipeline/pipeline.h"
#include "serve/snapshot.h"
#include "synth/relation_task.h"
#include "util/status.h"

namespace snorkel {

/// The pipeline step that turns one Figure 2 training run into a servable
/// artifact: apply LFs on the train split, estimate class balance from dev,
/// fit the generative model (with the optimizer's correlation structure when
/// enabled), optionally fit the noise-aware discriminative model on the
/// resulting probabilistic labels, and capture everything in a
/// ModelSnapshot for serve/label_service.h.
struct ExportSnapshotOptions {
  GenerativeModelOptions gen;
  DiscModelOptions disc;
  TextFeaturizer::Options features;
  /// Run Algorithm 1 and honor its learned correlation set.
  bool use_optimizer = false;
  OptimizerOptions optimizer;
  /// Also train and embed the discriminative model.
  bool include_disc_model = true;
  size_t num_threads = 0;
};

/// Trains on `task` and returns the servable snapshot (in memory).
Result<ModelSnapshot> TrainSnapshot(const RelationTask& task,
                                    const ExportSnapshotOptions& options);

/// TrainSnapshot + SaveSnapshot(path).
Status ExportSnapshot(const RelationTask& task,
                      const ExportSnapshotOptions& options,
                      const std::string& path);

/// K-class analog of TrainSnapshot for Crowd-shaped tasks (§4.1.2): applies
/// the LF set at the task's cardinality, fits the Dawid-Skene label model,
/// and captures a DAWD (snapshot v2) servable artifact.
struct KClassExportOptions {
  DawidSkeneOptions ds;
  /// Worker threads for LF application.
  size_t num_threads = 0;
};

Result<ModelSnapshot> TrainKClassSnapshot(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<Candidate>& candidates, int cardinality,
    const KClassExportOptions& options = {});

}  // namespace snorkel

#endif  // SNORKEL_PIPELINE_EXPORT_SNAPSHOT_H_
