#ifndef SNORKEL_PIPELINE_PIPELINE_H_
#define SNORKEL_PIPELINE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/generative_model.h"
#include "core/label_matrix.h"
#include "core/optimizer.h"
#include "disc/features.h"
#include "disc/linear_model.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/relation_task.h"
#include "util/status.h"

namespace snorkel {

/// Configuration of one end-to-end Snorkel execution (Figure 2): apply LFs,
/// model them (MV or GM, optionally via the Algorithm 1 optimizer), emit
/// probabilistic labels, train the noise-aware discriminative model, and
/// evaluate everything on the held-out test split.
struct PipelineOptions {
  GenerativeModelOptions gen;
  DiscModelOptions disc;
  TextFeaturizer::Options features;
  /// Run Algorithm 1 and honor its MV-vs-GM decision (and its learned
  /// correlation set) instead of always fitting the independent GM.
  bool use_optimizer = false;
  OptimizerOptions optimizer;
  /// Restrict the task's LF set to these columns (Table 6 ablation, Fig. 6
  /// growth curves). Empty = all LFs.
  std::vector<size_t> lf_subset;
  /// Also train the Table 5 baseline (disc model on unweighted LF average).
  bool run_unweighted_baseline = true;
  /// Also train the distant-supervision / legacy-heuristic baseline.
  bool run_ds_baseline = true;
  /// Also train the hand-supervision skyline (disc on gold train labels).
  bool run_hand_baseline = true;
  /// Label-flip noise applied to the hand-supervision baseline's *training*
  /// labels only (test gold is untouched): large hand-curated sets carry
  /// annotator noise (the paper's Spouses gold is an MTurk majority vote).
  double hand_label_noise = 0.08;
  size_t num_threads = 0;
};

/// Everything one pipeline execution produces, test-split metrics included.
/// Confusions follow the paper's scoring (abstain counts negative).
struct PipelineReport {
  std::string task_name;
  double label_density = 0.0;
  double class_balance = 0.5;  // Estimated from the dev split.
  /// Optimizer decision (meaningful when use_optimizer).
  OptimizerDecision decision;
  /// Generative-model accuracy weights (empty if MV was chosen).
  std::vector<double> gen_accuracies;
  /// Test-split scores.
  BinaryConfusion ds_test;              // Distant supervision baseline.
  BinaryConfusion gen_test;             // Snorkel (Gen.).
  BinaryConfusion disc_test;            // Snorkel (Disc.).
  BinaryConfusion disc_unweighted_test; // Disc on unweighted LF average.
  BinaryConfusion hand_test;            // Hand supervision skyline.
  /// Wall-clock seconds spent modeling labels (MV is ~0; GM pays training) —
  /// the §3.1 speed-vs-accuracy tradeoff measurement.
  double label_modeling_seconds = 0.0;
  /// Train-split Brier scores of the probabilistic training labels against
  /// gold (class-symmetric posteriors for both arms): the label-quality
  /// comparison underlying Table 5. Lower is better.
  double gen_label_brier = 0.0;
  double unweighted_label_brier = 0.0;
};

/// Runs the full pipeline on a relation task. The heavy artifacts (label
/// matrix, features) are recomputed internally; use the lower-level APIs
/// directly for custom experiments.
Result<PipelineReport> RunRelationPipeline(const RelationTask& task,
                                           const PipelineOptions& options);

}  // namespace snorkel

#endif  // SNORKEL_PIPELINE_PIPELINE_H_
